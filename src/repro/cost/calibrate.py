"""Calibrate the cost model's machine constants on the host.

The default :class:`~repro.cost.model.MachineModel` describes the
paper's Xeon E5-2620 v4.  To project lookup costs onto *your* machine
instead, :func:`calibrate_machine` measures the two quantities the
model depends on -- dependent random-access latency at several working
set sizes, and throughput of simple arithmetic -- and returns a fitted
``MachineModel``.

Measurement technique: a pointer-chase over a random permutation
(dependent loads defeat both prefetching and out-of-order overlap),
batched through NumPy in blocks large enough to amortize interpreter
overhead.  Python adds a constant per-block cost which the measurement
subtracts via a tiny-working-set baseline, so the *differences* between
cache tiers are meaningful even though absolute numbers carry
interpreter noise.  Calibration is best-effort by design: it refuses to
return nonsense (monotonicity of tier latencies is enforced).
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import replace

import numpy as np

from .model import MachineModel

__all__ = [
    "measure_chase_latency",
    "calibrate_machine",
    "calibrate_kernel_overhead",
    "cached_kernel_overhead",
    "machine_id",
    "KERNEL_FAMILIES",
]


def _pointer_chase(size_bytes: int, hops: int, seed: int = 0) -> float:
    """Seconds per hop of a dependent pointer chase in a working set."""
    n = max(size_bytes // 8, 16)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(n).astype(np.int64)
    # Build a single cycle so the chase visits the whole working set.
    chain = np.empty(n, dtype=np.int64)
    chain[perm[:-1]] = perm[1:]
    chain[perm[-1]] = perm[0]
    idx = int(perm[0])
    # Chase in Python but with a stride of vectorized gathers: each
    # gather of the "next" pointers is one dependent load per element.
    hops_done = 0
    t0 = time.perf_counter()
    while hops_done < hops:
        idx = int(chain[idx])
        hops_done += 1
    elapsed = time.perf_counter() - t0
    return elapsed / hops


def measure_chase_latency(
    sizes_bytes: "list[int] | None" = None, hops: int = 200_000
) -> dict[int, float]:
    """Per-hop latency (ns) for several working-set sizes.

    The smallest working set serves as the interpreter baseline; the
    returned values are baseline-subtracted so they approximate the
    pure memory-latency difference between tiers.
    """
    sizes = sizes_bytes or [
        16 * 1024,          # comfortably L1
        128 * 1024,         # L2
        4 * 1024 * 1024,    # L3
        64 * 1024 * 1024,   # memory
    ]
    raw = {s: _pointer_chase(s, hops) * 1e9 for s in sizes}
    base = min(raw.values())
    return {s: max(v - base, 0.0) for s, v in raw.items()}


def calibrate_machine(
    hops: int = 200_000, base: MachineModel | None = None
) -> MachineModel:
    """Return a MachineModel with latencies fitted to this host.

    Only the latency *ladder* is replaced; cache sizes keep the paper
    machine's defaults unless the measurements are degenerate, in which
    case the base model is returned unchanged.
    """
    base = base or MachineModel()
    lat = measure_chase_latency(hops=hops)
    tiers = sorted(lat.items())
    values = [v for _, v in tiers]
    # Enforce the monotone ladder the model assumes; bail out to the
    # defaults when the measurement is too noisy to honor it.
    if any(b < a for a, b in zip(values, values[1:])):
        values = list(np.maximum.accumulate(values))
    l1, l2, l3, mem = values[:4]
    floor = base.l1_latency_ns
    fitted = replace(
        base,
        l1_latency_ns=max(l1, floor),
        l2_latency_ns=max(l2, floor * 2),
        l3_latency_ns=max(l3, floor * 4),
        memory_latency_ns=max(mem, floor * 8),
    )
    if not (
        fitted.l1_latency_ns
        <= fitted.l2_latency_ns
        <= fitted.l3_latency_ns
        <= fitted.memory_latency_ns
    ):  # pragma: no cover - construction forbids it
        return base
    return fitted


#: Kernel families :func:`calibrate_kernel_overhead` can probe.
KERNEL_FAMILIES = ("search", "rmi", "pla", "tree")


def _family_probe(family: str, n: int):
    """A ``(keys, packed)`` pair whose fused lookup does near-zero
    search work, so timing it isolates the family's dispatch/descent
    overhead.

    The keys are ``0..n-1``, making every structure's prediction exact
    (windows of width <= a few slots) and the true position of query
    ``q`` simply ``q``.
    """
    keys = np.arange(n, dtype=np.uint64)
    if family == "rmi":
        from ..core.rmi import RMI
        from ..kernels import pack_rmi

        packed = pack_rmi(RMI(keys, layer_sizes=[64], bound_type="labs"))
    elif family == "pla":
        from ..kernels import PLA_SEGMENT, pack_pla_levels

        packed = pack_pla_levels(
            "calibration", PLA_SEGMENT,
            [(np.asarray([0], dtype=np.uint64), np.asarray([1.0]),
              np.asarray([0.0]))],
            eps=1, n=n,
        )
    elif family == "tree":
        from ..kernels import pack_sparse_directory

        packed = pack_sparse_directory(
            "calibration", keys[::8],
            np.arange(0, n, 8, dtype=np.int64), n,
        )
    else:
        raise ValueError(
            f"unknown kernel family {family!r}; pick from {KERNEL_FAMILIES}"
        )
    if packed is None:  # pragma: no cover - shapes above always pack
        raise RuntimeError(f"calibration probe for {family!r} did not pack")
    return keys, packed


def calibrate_kernel_overhead(
    backend: "str | None" = None,
    n: int = 100_000,
    batch: int = 4096,
    repeats: int = 5,
    seed: int = 0,
    family: str = "search",
) -> dict:
    """Measure the fixed per-lookup cost of a kernel backend's dispatch.

    ``family="search"`` (the default) times
    :meth:`~repro.kernels.base.KernelBackend.lower_bound_window` over
    width-1 windows (``lo == hi`` at the true position), where the
    search itself does near-zero work -- so the median per-lookup time
    approximates the backend's call/dispatch overhead.  This is the
    value to install as ``CostModel.per_lookup_overhead_ns``.

    The packed families (``"rmi"``, ``"pla"``, ``"tree"``) instead time
    the backend's *fused* lookup over a tiny synthetic structure whose
    predictions are exact, isolating that family's dispatch-plus-
    descent floor -- the constant a cost model should charge a packed
    index on this backend before any real search work.

    Unlike built indexes, this is a *performance* measurement: the
    result depends on the executing backend and family, so the returned
    dict carries explicit ``backend``/``family`` fields and pairs with
    :func:`repro.cache.fingerprint.calibration_fingerprint` (which
    fingerprints per ``(backend, family)`` and never serves across
    either).
    """
    from ..kernels import get_backend

    be = get_backend(backend)
    be.warmup()
    rng = np.random.default_rng(seed)
    if family == "search":
        keys = np.sort(rng.integers(0, 2**63, size=n, dtype=np.uint64))
        queries = keys[rng.integers(0, n, size=batch)]
        true_pos = np.searchsorted(keys, queries, side="left").astype(np.int64)

        def probe():
            return be.lower_bound_window(keys, queries, true_pos, true_pos)
    else:
        keys, packed = _family_probe(family, n)
        queries = keys[rng.integers(0, n, size=batch)]
        true_pos = queries.astype(np.int64)

        def probe():
            return be.lookup(packed, keys, queries)
    # Warm call outside the timed loop (loads code paths, page-faults
    # the arrays); JIT backends already compiled in warmup().
    probe()
    per_call = []
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        got = probe()
        per_call.append(time.perf_counter() - t0)
    if not np.array_equal(got, true_pos):  # pragma: no cover - conformance
        raise RuntimeError(f"backend {be.name!r} mis-answered the probe")
    overhead_ns = float(np.median(per_call)) / batch * 1e9
    return {
        "backend": be.name,
        "family": str(family),
        "compiled": bool(be.compiled),
        "per_lookup_overhead_ns": overhead_ns,
        "params": {
            "n": int(n),
            "batch": int(batch),
            "repeats": int(repeats),
            "seed": int(seed),
        },
    }


def machine_id() -> str:
    """A stable identifier for the measured host.

    Calibrations are performance measurements, so a cached one is only
    valid on the machine that produced it; this string is the
    ``machine_id`` field of
    :func:`repro.cache.fingerprint.calibration_fingerprint`.
    """
    return "-".join((
        platform.node() or "unknown",
        platform.machine() or "unknown",
        f"{os.cpu_count() or 0}c",
    ))


#: In-process calibration memo: (machine, backend, family, params) ->
#: result.  Even without a disk cache a process probes each pair once.
_overhead_memo: "dict[tuple, dict]" = {}


def cached_kernel_overhead(
    backend: "str | None" = None,
    n: int = 100_000,
    batch: int = 4096,
    repeats: int = 5,
    seed: int = 0,
    family: str = "search",
    cache=None,
) -> dict:
    """:func:`calibrate_kernel_overhead`, probed at most once per pair.

    Results persist through the artifact cache (kind
    ``"calibrations"``) keyed by
    :func:`~repro.cache.fingerprint.calibration_fingerprint` over
    ``(machine_id(), backend, params, family)``, so a ``(backend,
    family)`` pair is never re-probed on the same machine -- the
    autotune controller calls this on every planning cycle and must not
    pay ~100ms of probe per family each time.  An in-process memo backs
    the disk store so the fast path is a dict hit.  ``cache=None`` uses
    the process's active cache (``repro.cache.active_cache()``); pass an
    :class:`~repro.cache.store.ArtifactCache` to override.
    """
    from ..cache import active_cache
    from ..cache.fingerprint import calibration_fingerprint
    from ..kernels import get_backend

    be = get_backend(backend)
    params = {"n": int(n), "batch": int(batch), "repeats": int(repeats),
              "seed": int(seed)}
    host = machine_id()
    memo_key = (host, be.name, str(family), tuple(sorted(params.items())))
    hit = _overhead_memo.get(memo_key)
    if hit is not None:
        return dict(hit)
    store = cache if cache is not None else active_cache()
    fp = calibration_fingerprint(host, be.name, params, family)
    if store is not None:
        path = store.get("calibrations", fp)
        if path is not None:
            result = json.loads(path.read_text())
            _overhead_memo[memo_key] = result
            return dict(result)
    result = calibrate_kernel_overhead(
        be.name, n=n, batch=batch, repeats=repeats, seed=seed,
        family=family,
    )
    if store is not None:
        store.put(
            "calibrations", fp,
            lambda p: p.write_text(json.dumps(result, indent=2) + "\n"),
        )
    _overhead_memo[memo_key] = result
    return dict(result)
