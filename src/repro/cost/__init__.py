"""Operation counting and the analytic latency model."""

from .calibrate import (cached_kernel_overhead, calibrate_machine,
                        machine_id, measure_chase_latency)
from .counters import BuildCounters, OperationCounters
from .model import XEON_E5_2620V4, CostModel, MachineModel

__all__ = [
    "OperationCounters",
    "BuildCounters",
    "CostModel",
    "MachineModel",
    "XEON_E5_2620V4",
    "cached_kernel_overhead",
    "calibrate_machine",
    "machine_id",
    "measure_chase_latency",
]
