"""Analytic lookup-latency model.

The paper's timing figures were measured on a Xeon E5-2620 v4 in C++;
Python wall-clock numbers cannot reproduce their absolute values
(interpreter overhead swamps cache effects).  Following the
substitution rule in DESIGN.md, this module converts machine-
independent operation counts into *nanosecond estimates* using a small
calibrated latency model of the paper's machine.  The model reproduces
the figures' shapes -- who wins, by what factor, where curves cross --
because those are driven by exactly the quantities the model consumes:

* evaluation steps (models evaluated / nodes visited) and the cache
  residency of the structures they touch (Section 7: build and lookup
  costs jump when the RMI no longer fits in cache),
* the error-interval size searched during error correction (binary
  search costs one random access per halving until the interval fits
  in a cache line; Marcus et al. [22] attribute learned-index wins to
  the resulting cache-miss reduction).

Calibration constants approximate the paper's hardware (20 MiB L3,
DDR4) and the C++ per-operation costs reported in the learned-index
literature; they are deliberately simple and documented so users can
re-calibrate to their own machine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MachineModel", "CostModel", "XEON_E5_2620V4"]


@dataclass(frozen=True)
class MachineModel:
    """Cache hierarchy and latency constants of the modeled machine."""

    l1_bytes: int = 32 * 1024
    l2_bytes: int = 256 * 1024
    l3_bytes: int = 20 * 1024 * 1024  # the paper's Xeon has 20 MiB L3
    l1_latency_ns: float = 1.5
    l2_latency_ns: float = 4.0
    l3_latency_ns: float = 16.0
    memory_latency_ns: float = 90.0
    alu_op_ns: float = 0.4  # pipelined multiply-add / compare
    branch_miss_ns: float = 7.0
    cache_line_bytes: int = 64

    def access_latency(self, resident_bytes: int) -> float:
        """Latency of a dependent random access into a structure of the
        given size (assumed uniformly hot)."""
        if resident_bytes <= self.l1_bytes:
            return self.l1_latency_ns
        if resident_bytes <= self.l2_bytes:
            return self.l2_latency_ns
        if resident_bytes <= self.l3_bytes:
            return self.l3_latency_ns
        return self.memory_latency_ns


#: The paper's evaluation machine (Section 4).
XEON_E5_2620V4 = MachineModel()


@dataclass(frozen=True)
class CostModel:
    """Converts operation counts into lookup-latency estimates (ns)."""

    machine: MachineModel = XEON_E5_2620V4

    #: Fixed per-lookup dispatch cost of the executing kernel backend
    #: (call overhead amortized over a batch), measured by
    #: :func:`repro.cost.calibrate.calibrate_kernel_overhead`.  Zero by
    #: default: the analytic model then prices pure index work, as the
    #: paper's C++ numbers do.  Set per backend to project end-to-end
    #: batch throughput instead.
    per_lookup_overhead_ns: float = 0.0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def evaluation_ns(
        self,
        evaluation_steps: float,
        index_bytes: int,
        eval_units_per_step: float = 1.0,
    ) -> float:
        """Cost of the evaluation phase.

        Each step is one model evaluation / node visit: a handful of
        ALU operations plus one dependent access into the index
        structure (whose latency depends on the index's cache
        residency).
        """
        m = self.machine
        per_step = (
            eval_units_per_step * 4.0 * m.alu_op_ns
            + m.access_latency(max(index_bytes, 1))
        )
        return evaluation_steps * per_step

    def binary_search_ns(self, interval_size: float, data_bytes: int) -> float:
        """Cost of binary-searching an interval of the data array.

        One comparison per halving; each halving above the cache-line
        granularity is a dependent random access into the data array,
        the remaining ones hit the loaded line.  Binary search also
        suffers a ~50% branch-miss rate on random data.
        """
        m = self.machine
        w = max(float(interval_size), 1.0)
        halvings = np.ceil(np.log2(w + 1.0))
        keys_per_line = m.cache_line_bytes // 8
        line_halvings = np.log2(keys_per_line)
        miss_steps = max(halvings - line_halvings, 0.0)
        access = m.access_latency(max(data_bytes, 1))
        return float(
            halvings * (m.alu_op_ns + 0.5 * m.branch_miss_ns)
            + miss_steps * access
        )

    def sequential_search_ns(self, steps: float, data_bytes: int) -> float:
        """Cost of a linear scan of ``steps`` keys (prefetch-friendly:
        one access per cache line, no branch misses until the exit)."""
        m = self.machine
        keys_per_line = m.cache_line_bytes // 8
        lines = max(steps / keys_per_line, 1.0)
        access = m.access_latency(max(data_bytes, 1))
        return float(steps * m.alu_op_ns + lines * access * 0.3 + m.branch_miss_ns)

    def exponential_search_ns(
        self, actual_error: float, data_bytes: int
    ) -> float:
        """Cost of model-biased exponential search: gallop to bracket
        the actual error, then binary-search the bracket."""
        e = max(float(actual_error), 1.0)
        gallop = np.ceil(np.log2(e + 1.0))
        m = self.machine
        access = m.access_latency(max(data_bytes, 1))
        gallop_ns = gallop * (m.alu_op_ns + 0.5 * m.branch_miss_ns + access)
        return float(gallop_ns) + self.binary_search_ns(2 * e, data_bytes)

    def search_ns(
        self,
        algo: str,
        comparisons: float,
        interval_size: float,
        data_bytes: int,
    ) -> float:
        """Search-phase estimate from *measured* comparison counts.

        Binary variants are priced by the interval (their work is fixed
        by the bounds); linear and exponential variants by the measured
        comparisons (their work follows the actual error).
        """
        if algo in ("bin", "mbin"):
            return self.binary_search_ns(interval_size, data_bytes)
        if algo in ("mlin", "lin"):
            return self.sequential_search_ns(comparisons, data_bytes)
        if algo in ("mexp", "exp", "interp"):
            m = self.machine
            keys_per_line = m.cache_line_bytes // 8
            miss_steps = max(comparisons - np.log2(keys_per_line), 0.0)
            access = m.access_latency(max(data_bytes, 1))
            return float(
                comparisons * (m.alu_op_ns + 0.5 * m.branch_miss_ns)
                + miss_steps * access
            )
        raise ValueError(f"unknown search algorithm {algo!r}")

    def lookup_ns(
        self,
        evaluation_steps: float,
        interval_size: float,
        index_bytes: int,
        num_keys: int,
        search: str = "bin",
        actual_error: float | None = None,
        eval_units_per_step: float = 1.0,
    ) -> float:
        """End-to-end lookup estimate: evaluation + error correction."""
        data_bytes = num_keys * 8
        eval_ns = self.evaluation_ns(
            evaluation_steps, index_bytes, eval_units_per_step
        )
        if search in ("bin", "mbin"):
            search_ns = self.binary_search_ns(interval_size, data_bytes)
        elif search == "mlin":
            err = interval_size if actual_error is None else actual_error
            search_ns = self.sequential_search_ns(err, data_bytes)
        elif search == "mexp":
            err = interval_size if actual_error is None else actual_error
            search_ns = self.exponential_search_ns(err, data_bytes)
        else:
            raise ValueError(f"unknown search algorithm {search!r}")
        return eval_ns + search_ns + self.per_lookup_overhead_ns

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------

    def build_ns(
        self,
        keys_trained: float,
        keys_evaluated: float,
        index_bytes: int,
        bound_branch_misses: float = 0.0,
    ) -> float:
        """Build-time estimate from training/evaluation volume.

        Training and bulk evaluation stream the key array (sequential,
        cheap per key); writes into the model table incur cache misses
        once the RMI exceeds cache (Section 7's "build time increases
        due to cache misses"); bound computation adds branch misses.
        """
        m = self.machine
        stream_ns = 2.0 * m.alu_op_ns
        write_penalty = m.access_latency(max(index_bytes, 1)) * 0.2
        return float(
            keys_trained * stream_ns
            + keys_evaluated * (stream_ns + write_penalty)
            + bound_branch_misses * m.branch_miss_ns
        )
