"""Operation counters aggregated over a lookup workload.

Machine-independent measurements of the work a lookup performs: model
evaluations / nodes visited (the *evaluation* phase) and key
comparisons over the error interval (the *search* phase) -- the same
decomposition the paper uses in Figure 13.  The analytic cost model
(:mod:`repro.cost.model`) converts these counts into nanosecond
estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["OperationCounters", "BuildCounters"]


@dataclass(frozen=True)
class BuildCounters:
    """Machine-independent work counters of one RMI build.

    Complements the wall-clock timings in
    :class:`repro.core.rmi.BuildStats` with quantities that are stable
    across machines: how many keys were indexed, how many models were
    trained, how many model evaluations the build performed
    (``keys_touched``), how many keys were physically copied (reference
    algorithm only), and which fit path produced the leaf layer.
    """

    num_keys: int
    models_trained: int
    keys_touched: int
    keys_copied: int
    fit_path: str

    @classmethod
    def from_rmi(cls, rmi) -> "BuildCounters":
        """Extract counters from a trained RMI (duck-typed)."""
        stats = rmi.build_stats
        return cls(
            num_keys=int(rmi.n),
            models_trained=int(sum(len(layer) for layer in rmi.layers)),
            keys_touched=int(stats.keys_touched),
            keys_copied=int(stats.keys_copied),
            fit_path=str(stats.fit_path),
        )

    @property
    def touches_per_key(self) -> float:
        """Model evaluations per indexed key (layers visited per key)."""
        return self.keys_touched / max(self.num_keys, 1)


@dataclass(frozen=True)
class OperationCounters:
    """Aggregate counters over a batch of lookups."""

    num_lookups: int
    total_evaluation_steps: int
    total_comparisons: int
    total_interval: int
    max_interval: int
    median_interval: float

    @property
    def mean_evaluation_steps(self) -> float:
        return self.total_evaluation_steps / max(self.num_lookups, 1)

    @property
    def mean_comparisons(self) -> float:
        return self.total_comparisons / max(self.num_lookups, 1)

    @property
    def mean_interval(self) -> float:
        return self.total_interval / max(self.num_lookups, 1)

    @classmethod
    def collect(
        cls,
        evaluation_steps: Iterable[int],
        comparisons: Iterable[int],
        intervals: Iterable[int],
    ) -> "OperationCounters":
        ev = np.fromiter(evaluation_steps, dtype=np.int64)
        cmp_ = np.fromiter(comparisons, dtype=np.int64)
        iv = np.fromiter(intervals, dtype=np.int64)
        if not (len(ev) == len(cmp_) == len(iv)):
            raise ValueError("counter streams must have equal length")
        return cls(
            num_lookups=len(ev),
            total_evaluation_steps=int(ev.sum()),
            total_comparisons=int(cmp_.sum()),
            total_interval=int(iv.sum()),
            max_interval=int(iv.max()) if len(iv) else 0,
            median_interval=float(np.median(iv)) if len(iv) else 0.0,
        )

    def merged(self, other: "OperationCounters") -> "OperationCounters":
        """Combine counters of two workload batches."""
        total = self.num_lookups + other.num_lookups
        # The exact merged median is unavailable; weight the two medians,
        # which is adequate for reporting.
        med = (
            self.median_interval * self.num_lookups
            + other.median_interval * other.num_lookups
        ) / max(total, 1)
        return OperationCounters(
            num_lookups=total,
            total_evaluation_steps=self.total_evaluation_steps
            + other.total_evaluation_steps,
            total_comparisons=self.total_comparisons + other.total_comparisons,
            total_interval=self.total_interval + other.total_interval,
            max_interval=max(self.max_interval, other.max_interval),
            median_interval=med,
        )
