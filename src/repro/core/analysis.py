"""Structural analyses of RMIs (Section 5 of the paper).

Three families of machine-independent measurements drive the paper's
predictive-accuracy analysis:

* **Segmentation** (Section 5.1): how a root model divides the keys
  into segments -- the share of *empty segments* (Figure 4) and the
  size of the *largest segment* (Figure 5).
* **Prediction** (Section 5.2): per-key absolute error of the full RMI;
  the paper reports the *median* absolute error (Figure 6) because the
  mean is skewed by large LR-clamping segments.
* **Error bounds** (Section 5.3): the per-key size of the search
  interval each bound strategy induces (Figure 7).

All functions work on plain arrays or a trained :class:`~repro.core.rmi.RMI`
and return dataclasses that figure drivers render into the paper's
series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .models import Model, resolve_model_type
from .rmi import RMI, _assignments

__all__ = [
    "SegmentationStats",
    "segment_keys",
    "segmentation_stats",
    "root_approximation",
    "PredictionErrorStats",
    "prediction_errors",
    "interval_sizes",
    "IntervalStats",
    "interval_stats",
]


# ---------------------------------------------------------------------------
# Segmentation (Section 5.1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SegmentationStats:
    """Summary of a root model's key-to-segment partition."""

    num_segments: int
    num_keys: int
    empty_segments: int
    largest_segment: int
    mean_nonempty: float

    @property
    def empty_fraction(self) -> float:
        """Share of segments containing no key (Figure 4's y-axis)."""
        return self.empty_segments / self.num_segments if self.num_segments else 0.0

    @property
    def largest_fraction(self) -> float:
        """Largest segment as a fraction of all keys."""
        return self.largest_segment / self.num_keys if self.num_keys else 0.0


def segment_keys(
    keys: np.ndarray,
    root: "str | type[Model]",
    num_segments: int,
    train_on_model_index: bool = True,
) -> np.ndarray:
    """Assign every key to a segment using a freshly trained root model.

    Reproduces exactly what two-layer RMI training does before fitting
    the second layer: train the root on the scaled CDF and map each
    key's estimate to a segment index (Equation 3).
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    n = len(keys)
    model_type = resolve_model_type(root)
    positions = np.arange(n, dtype=np.float64)
    if train_on_model_index:
        targets = positions * (num_segments / n)
    else:
        targets = positions
    model = model_type.fit(keys, targets)
    preds = model.predict_batch(keys)
    return _assignments(preds, num_segments, n, train_on_model_index)


def segmentation_stats(assignments: np.ndarray, num_segments: int) -> SegmentationStats:
    """Compute Figure 4/5 statistics from a key-to-segment assignment."""
    counts = np.bincount(assignments, minlength=num_segments)
    nonempty = counts[counts > 0]
    return SegmentationStats(
        num_segments=num_segments,
        num_keys=int(len(assignments)),
        empty_segments=int(num_segments - len(nonempty)),
        largest_segment=int(counts.max()) if num_segments else 0,
        mean_nonempty=float(nonempty.mean()) if len(nonempty) else 0.0,
    )


def root_approximation(
    keys: np.ndarray, root: "str | type[Model]", samples: int = 512
) -> tuple[np.ndarray, np.ndarray]:
    """Root model's CDF approximation on sampled keys (Figure 3).

    Returns ``(sampled keys, predicted positions)`` with predictions in
    position space (0..n-1), clamped like the lookup path clamps.
    """
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    n = len(keys)
    model = resolve_model_type(root).fit(keys, np.arange(n, dtype=np.float64))
    idx = np.unique(np.linspace(0, n - 1, min(samples, n)).astype(np.int64))
    xs = keys[idx]
    preds = np.clip(model.predict_batch(xs), 0, n - 1)
    return xs, preds


# ---------------------------------------------------------------------------
# Prediction errors (Section 5.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PredictionErrorStats:
    """Distribution of per-key absolute prediction errors of an RMI."""

    median: float
    mean: float
    p99: float
    max: float

    @classmethod
    def from_errors(cls, abs_errors: np.ndarray) -> "PredictionErrorStats":
        if len(abs_errors) == 0:
            return cls(0.0, 0.0, 0.0, 0.0)
        return cls(
            median=float(np.median(abs_errors)),
            mean=float(np.mean(abs_errors)),
            p99=float(np.percentile(abs_errors, 99)),
            max=float(np.max(abs_errors)),
        )


def prediction_errors(rmi: RMI) -> np.ndarray:
    """Per-key absolute prediction error of a trained RMI.

    Uses the training-time leaf routing, matching how the paper (and
    the reference implementation) measures accuracy.
    """
    preds = rmi._predict_positions(rmi.keys, rmi.leaf_model_ids)
    return np.abs(preds - np.arange(rmi.n, dtype=np.int64))


# ---------------------------------------------------------------------------
# Error-interval sizes (Section 5.3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntervalStats:
    """Distribution of per-key error-interval sizes (Figure 7)."""

    median: float
    mean: float
    max: float
    bounds_bytes: int


def interval_sizes(rmi: RMI) -> np.ndarray:
    """Per-key search-interval size the RMI's bounds induce.

    The interval is clamped to the array like the lookup path clamps it,
    so the numbers equal the keys actually compared by ``bin`` search.
    """
    preds = rmi._predict_positions(rmi.keys, rmi.leaf_model_ids)
    lo, hi = rmi.bounds.intervals(preds, rmi.leaf_model_ids)
    lo = np.clip(lo, 0, rmi.n - 1)
    hi = np.clip(hi, 0, rmi.n - 1)
    return (hi - lo + 1).astype(np.int64)


def interval_stats(rmi: RMI) -> IntervalStats:
    """Summarize :func:`interval_sizes` for figure drivers."""
    sizes = interval_sizes(rmi)
    return IntervalStats(
        median=float(np.median(sizes)),
        mean=float(np.mean(sizes)),
        max=float(np.max(sizes)),
        bounds_bytes=rmi.bounds.size_in_bytes(),
    )
