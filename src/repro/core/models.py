"""Model types used inside recursive model indexes.

This module implements the four model families evaluated in the paper
(Table 2):

===== ===================== ===========================================
Abrv. Method                Formula
===== ===================== ===========================================
LR    Linear regression     ``f(x) = a*x + b`` (least squares)
LS    Linear spline         ``f(x) = a*x + b`` (through the endpoints)
CS    Cubic spline          ``f(x) = a*x^3 + b*x^2 + c*x + d``
RX    Radix                 ``f(x) = (x << a) >> b``
===== ===================== ===========================================

All models map a 64-bit unsigned integer key to a (floating point)
position estimate.  Every model fitted on keys with monotonically
non-decreasing targets is itself monotonically non-decreasing, a property
the optimized RMI training algorithm (Section 4.1 of the paper) relies on:
monotonic models never produce overlapping segments, so key ranges can be
represented by ``(lo, hi)`` index pairs instead of copied arrays.

Models are fitted via :meth:`Model.fit` on ``(keys, targets)`` pairs where
``targets`` is typically either the position of the key in the sorted
array (classic RMI training) or the pre-scaled next-layer model index
(the paper's optimized inner-layer training, Section 4.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Type

import numpy as np

__all__ = [
    "Model",
    "ConstantModel",
    "LinearRegression",
    "LinearSpline",
    "CubicSpline",
    "Radix",
    "AutoModel",
    "MODEL_TYPES",
    "resolve_model_type",
]

#: Number of bits in the key type.  The paper (and SOSD) use 64-bit
#: unsigned integer keys throughout.
KEY_BITS = 64


def _as_float(keys: np.ndarray) -> np.ndarray:
    """Convert a key array to float64 for arithmetic model evaluation."""
    return np.asarray(keys, dtype=np.float64)


class Model:
    """Abstract base class of all RMI component models.

    Subclasses implement :meth:`fit` (training), :meth:`predict_batch`
    (vectorized evaluation) and :meth:`size_in_bytes` (the contribution of
    one model instance to the index size, following the accounting of
    Table 2: one IEEE double per stored coefficient).
    """

    #: Short lowercase identifier, e.g. ``"lr"`` (set by subclasses).
    abbreviation: ClassVar[str] = "?"

    #: Relative cost of evaluating the model once; consumed by the
    #: analytic cost model (``repro.cost``).  Unit: multiply-adds.
    eval_cost_units: ClassVar[float] = 1.0

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "Model":
        """Train a model on ``keys`` (sorted ``uint64``) and ``targets``.

        ``keys`` and ``targets`` must have equal length.  Fitting an empty
        segment returns a model that predicts 0 everywhere, mirroring the
        reference implementation's behaviour for empty second-layer
        models.
        """
        raise NotImplementedError

    def predict(self, key: int) -> float:
        """Evaluate the model on a single key."""
        return float(self.predict_batch(np.asarray([key], dtype=np.uint64))[0])

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        """Evaluate the model on an array of keys, returning float64."""
        raise NotImplementedError

    def size_in_bytes(self) -> int:
        """Size of this model's parameters in bytes."""
        raise NotImplementedError

    def is_monotonic(self) -> bool:
        """Whether the fitted model is monotonically non-decreasing."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantModel(Model):
    """Degenerate model predicting a constant.

    Used for empty segments (no keys assigned to a second-layer model)
    and as the zero-key / one-key fallback of the spline models.
    """

    value: float = 0.0

    abbreviation: ClassVar[str] = "const"
    eval_cost_units: ClassVar[float] = 0.5

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "ConstantModel":
        if len(targets) == 0:
            return cls(0.0)
        return cls(float(np.mean(targets)))

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        return np.full(len(keys), self.value, dtype=np.float64)

    def size_in_bytes(self) -> int:
        return 8

    def is_monotonic(self) -> bool:
        return True


@dataclass(frozen=True)
class LinearRegression(Model):
    """Least-squares linear model ``f(x) = slope * x + intercept``.

    Unlike the spline models, LR considers *all* keys during training
    (it minimizes the mean squared error), which the paper identifies as
    the reason for its higher training cost (Section 7, Figure 11a).

    ``trim`` optionally ignores the lowest and highest ``trim`` fraction
    of keys during fitting.  The paper (Section 6.1) attributes the good
    fb numbers of prior work to exactly such a variant (trim = 0.0001,
    i.e. 0.01 %); we expose it to reproduce that discussion.
    """

    slope: float = 0.0
    intercept: float = 0.0

    abbreviation: ClassVar[str] = "lr"
    eval_cost_units: ClassVar[float] = 1.0

    @classmethod
    def fit(
        cls,
        keys: np.ndarray,
        targets: np.ndarray,
        trim: float = 0.0,
    ) -> "LinearRegression":
        n = len(keys)
        if n == 0:
            return cls(0.0, 0.0)
        if trim > 0.0 and n > 2:
            cut = int(n * trim)
            if cut > 0 and n - 2 * cut >= 2:
                keys = keys[cut : n - cut]
                targets = targets[cut : n - cut]
                n = len(keys)
        if n == 1:
            return cls(0.0, float(targets[0]))
        x = _as_float(keys)
        y = np.asarray(targets, dtype=np.float64)
        # Center x for numerical stability: 64-bit keys squared overflow
        # the exactly-representable range of float64 by a wide margin.
        mx = x.mean()
        my = y.mean()
        dx = x - mx
        denom = float(np.dot(dx, dx))
        if denom == 0.0:
            # All keys identical (duplicates collapse): constant model.
            return cls(0.0, my)
        slope = float(np.dot(dx, y - my) / denom)
        intercept = my - slope * mx
        return cls(slope, intercept)

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        return self.slope * _as_float(keys) + self.intercept

    def size_in_bytes(self) -> int:
        return 16  # two doubles

    def is_monotonic(self) -> bool:
        return self.slope >= 0.0


@dataclass(frozen=True)
class LinearSpline(Model):
    """Linear spline segment through the leftmost and rightmost points.

    Training touches only two data points, which makes LS dramatically
    cheaper to train than LR (Section 7) at a usually small accuracy
    penalty; evaluation cost is identical to LR.
    """

    slope: float = 0.0
    intercept: float = 0.0

    abbreviation: ClassVar[str] = "ls"
    eval_cost_units: ClassVar[float] = 1.0

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "LinearSpline":
        n = len(keys)
        if n == 0:
            return cls(0.0, 0.0)
        x0 = float(keys[0])
        y0 = float(targets[0])
        if n == 1 or float(keys[-1]) == x0:
            return cls(0.0, y0)
        x1 = float(keys[-1])
        y1 = float(targets[-1])
        slope = (y1 - y0) / (x1 - x0)
        return cls(slope, y0 - slope * x0)

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        return self.slope * _as_float(keys) + self.intercept

    def size_in_bytes(self) -> int:
        return 16

    def is_monotonic(self) -> bool:
        return self.slope >= 0.0


@dataclass(frozen=True)
class CubicSpline(Model):
    """Monotone cubic Hermite segment through the endpoints.

    Follows the reference implementation: a cubic is fit through the
    leftmost and rightmost data points with endpoint tangents estimated
    from the adjacent points; tangents are limited (Fritsch–Carlson) so
    that the segment remains monotone.  Keys are normalized to ``[0, 1]``
    before fitting to keep the cubic numerically sane on 64-bit keys.

    The reference implementation additionally trains a linear spline and
    falls back to it when the cubic has a higher maximum error (paper,
    footnote 1); that logic lives in :meth:`fit_with_fallback`.
    """

    # f(t) = a3*t^3 + a2*t^2 + a1*t + a0 on normalized t = (x-x0)/(x1-x0)
    a3: float = 0.0
    a2: float = 0.0
    a1: float = 0.0
    a0: float = 0.0
    x_offset: float = 0.0
    x_scale: float = 0.0  # 1 / (x1 - x0); zero means degenerate/constant

    abbreviation: ClassVar[str] = "cs"
    eval_cost_units: ClassVar[float] = 2.0

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "CubicSpline":
        n = len(keys)
        if n == 0:
            return cls()
        x0 = float(keys[0])
        y0 = float(targets[0])
        if n == 1 or float(keys[-1]) == x0:
            return cls(a0=y0, x_offset=x0, x_scale=0.0)
        x1 = float(keys[-1])
        y1 = float(targets[-1])
        scale = 1.0 / (x1 - x0)
        dy = y1 - y0
        # Endpoint tangents from the immediately adjacent interior points,
        # expressed in normalized coordinates (dt per unit t).
        m0 = cls._endpoint_slope(keys, targets, 0, x0, x1, scale)
        m1 = cls._endpoint_slope(keys, targets, n - 1, x0, x1, scale)
        # Fritsch-Carlson limiting keeps the Hermite segment monotone.
        if dy == 0.0:
            m0 = m1 = 0.0
        else:
            limit = 3.0 * dy
            m0 = min(max(m0, 0.0), limit) if dy > 0 else max(min(m0, 0.0), limit)
            m1 = min(max(m1, 0.0), limit) if dy > 0 else max(min(m1, 0.0), limit)
        # Hermite basis on t in [0, 1]:
        #   f(t) = y0*h00 + m0*h10 + y1*h01 + m1*h11
        a3 = 2.0 * y0 + m0 - 2.0 * y1 + m1
        a2 = -3.0 * y0 - 2.0 * m0 + 3.0 * y1 - m1
        a1 = m0
        a0 = y0
        return cls(a3, a2, a1, a0, x_offset=x0, x_scale=scale)

    @staticmethod
    def _endpoint_slope(
        keys: np.ndarray,
        targets: np.ndarray,
        at: int,
        x0: float,
        x1: float,
        scale: float,
    ) -> float:
        """Tangent estimate at the first or last point, in t-space."""
        n = len(keys)
        neighbour = 1 if at == 0 else n - 2
        xa = float(keys[at])
        xb = float(keys[neighbour])
        if xa == xb:
            # Fall back to the secant of the whole segment.
            return float(targets[-1]) - float(targets[0])
        secant = (float(targets[neighbour]) - float(targets[at])) / (xb - xa)
        return secant / scale  # d/dt = (d/dx) * (x1 - x0)

    @classmethod
    def fit_with_fallback(
        cls, keys: np.ndarray, targets: np.ndarray
    ) -> "Model":
        """Fit a cubic and a linear spline; keep whichever errs less.

        Mirrors the reference implementation (paper footnote 1).  The
        comparison uses the maximum absolute error over the training
        keys.
        """
        cubic = cls.fit(keys, targets)
        linear = LinearSpline.fit(keys, targets)
        if len(keys) == 0:
            return cubic
        y = np.asarray(targets, dtype=np.float64)
        err_cubic = float(np.max(np.abs(cubic.predict_batch(keys) - y)))
        err_linear = float(np.max(np.abs(linear.predict_batch(keys) - y)))
        return cubic if err_cubic <= err_linear else linear

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        t = (_as_float(keys) - self.x_offset) * self.x_scale
        return ((self.a3 * t + self.a2) * t + self.a1) * t + self.a0

    def size_in_bytes(self) -> int:
        return 32  # four doubles (normalization params fold into them)

    def is_monotonic(self) -> bool:
        # By construction (Fritsch-Carlson limited Hermite) the segment is
        # monotone between the endpoints; verify via the derivative's
        # critical points as a safety net.
        if self.x_scale == 0.0:
            return True
        # f'(t) = 3*a3*t^2 + 2*a2*t + a1 must not change sign on [0, 1].
        ts = np.linspace(0.0, 1.0, 17)
        d = (3.0 * self.a3 * ts + 2.0 * self.a2) * ts + self.a1
        return bool(np.all(d >= -1e-9) or np.all(d <= 1e-9))


@dataclass(frozen=True)
class Radix(Model):
    """Radix model ``f(x) = (x << a) >> b``.

    Eliminates the common bit prefix of the training keys (left shift)
    and maps the most significant remaining bits onto the target range
    (right shift).  Training inspects only the smallest and largest key;
    evaluation is two shifts, making RX the cheapest model to both train
    and evaluate (Section 7, Figure 11a).

    Note that RX only ever outputs the value of a bit prefix: its range
    is ``[0, 2^bits)`` for ``bits = left-shift-adjusted`` significant
    bits, which generally covers only a fraction of the target positions
    and explains the high share of empty segments it produces
    (Section 5.1, Figure 4).
    """

    left_shift: int = 0
    right_shift: int = KEY_BITS

    abbreviation: ClassVar[str] = "rx"
    eval_cost_units: ClassVar[float] = 0.5

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "Radix":
        n = len(keys)
        if n == 0:
            return cls(0, KEY_BITS)
        max_target = float(np.max(targets)) if n else 0.0
        if max_target < 1.0:
            return cls(0, KEY_BITS)
        lo = int(keys[0])
        hi = int(keys[-1])
        common = lo ^ hi
        prefix_bits = KEY_BITS - common.bit_length() if common else KEY_BITS
        significant = KEY_BITS - prefix_bits
        # Output bits: the bit length of the largest integral target,
        # like the reference implementation -- for a 2^k-model layer
        # this is k bits, so the radix output never exceeds the layer
        # (using k+1 bits would funnel every key with its top
        # significant bit set into the clamped last model).
        bits_needed = max(1, int(max_target).bit_length())
        bits = min(significant, bits_needed)
        if bits <= 0:
            return cls(0, KEY_BITS)
        return cls(prefix_bits, KEY_BITS - bits)

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        x = np.asarray(keys, dtype=np.uint64)
        if self.right_shift >= KEY_BITS:
            return np.zeros(len(x), dtype=np.float64)
        shifted = np.left_shift(x, np.uint64(self.left_shift))
        out = np.right_shift(shifted, np.uint64(self.right_shift))
        return out.astype(np.float64)

    def predict(self, key: int) -> float:
        if self.right_shift >= KEY_BITS:
            return 0.0
        mask = (1 << KEY_BITS) - 1
        return float(((key << self.left_shift) & mask) >> self.right_shift)

    def size_in_bytes(self) -> int:
        return 16  # two shift amounts, stored as 8-byte words

    def is_monotonic(self) -> bool:
        return True


class AutoModel(Model):
    """Per-segment best-of selection over {LR, LS, CS}.

    An extension in the spirit of CDFShop [23]: instead of fixing one
    model type for a whole layer, each segment gets whichever candidate
    has the smallest *maximum* training error -- the quantity that
    drives LAbs-bounded search intervals.  ``fit`` returns the chosen
    concrete model, so evaluation, serialization, and size accounting
    are those of the winner; only training pays for the tournament.
    """

    abbreviation: ClassVar[str] = "auto"
    #: Average of the candidates, used only by planning heuristics.
    eval_cost_units: ClassVar[float] = 1.5

    _CANDIDATES: ClassVar[tuple] = ()  # filled below (classes defined)

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "Model":
        if len(keys) == 0:
            return ConstantModel(0.0)
        y = np.asarray(targets, dtype=np.float64)
        best: Model | None = None
        best_err = np.inf
        for candidate in cls._CANDIDATES:
            model = candidate.fit(keys, targets)
            err = float(np.max(np.abs(model.predict_batch(keys) - y)))
            if err < best_err:
                best, best_err = model, err
        assert best is not None
        return best


AutoModel._CANDIDATES = (LinearRegression, LinearSpline, CubicSpline)


#: Registry of model type abbreviations (lowercase) to classes, matching
#: the abbreviations of Table 2 in the paper (plus extensions registered
#: by their modules: nn, logl, normal, lognorm).
MODEL_TYPES: dict[str, Type[Model]] = {
    "lr": LinearRegression,
    "ls": LinearSpline,
    "cs": CubicSpline,
    "rx": Radix,
    "const": ConstantModel,
    "auto": AutoModel,
}


def resolve_model_type(spec: "str | Type[Model]") -> Type[Model]:
    """Resolve a model type from an abbreviation string or a class.

    Accepts ``"lr"``, ``"LS"``, a :class:`Model` subclass, etc.  Raises
    ``ValueError`` for unknown abbreviations to fail fast on typos in
    experiment configurations.
    """
    if isinstance(spec, type) and issubclass(spec, Model):
        return spec
    key = str(spec).strip().lower()
    try:
        return MODEL_TYPES[key]
    except KeyError:
        known = ", ".join(sorted(MODEL_TYPES))
        raise ValueError(f"unknown model type {spec!r}; known types: {known}")
