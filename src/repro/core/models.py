"""Model types used inside recursive model indexes.

This module implements the four model families evaluated in the paper
(Table 2):

===== ===================== ===========================================
Abrv. Method                Formula
===== ===================== ===========================================
LR    Linear regression     ``f(x) = a*x + b`` (least squares)
LS    Linear spline         ``f(x) = a*x + b`` (through the endpoints)
CS    Cubic spline          ``f(x) = a*x^3 + b*x^2 + c*x + d``
RX    Radix                 ``f(x) = (x << a) >> b``
===== ===================== ===========================================

All models map a 64-bit unsigned integer key to a (floating point)
position estimate.  Every model fitted on keys with monotonically
non-decreasing targets is itself monotonically non-decreasing, a property
the optimized RMI training algorithm (Section 4.1 of the paper) relies on:
monotonic models never produce overlapping segments, so key ranges can be
represented by ``(lo, hi)`` index pairs instead of copied arrays.

Models are fitted via :meth:`Model.fit` on ``(keys, targets)`` pairs where
``targets`` is typically either the position of the key in the sorted
array (classic RMI training) or the pre-scaled next-layer model index
(the paper's optimized inner-layer training, Section 4.1).

Two representations coexist:

* **per-model objects** -- one :class:`Model` instance per segment, the
  reference (Listing 1) representation; and
* **struct-of-arrays (SoA) parameter tables** -- one parameter matrix
  per layer.  Closed-form model families additionally provide
  ``fit_grouped(keys, targets, offsets)``, which fits *every* segment
  of a layer in a handful of array operations (sufficient statistics
  via ``np.add.reduceat``, endpoint gathers for the splines) instead of
  a Python loop over segments.  The SoA registry
  (:data:`SOA_MODEL_CODES`, :meth:`Model.soa_row`,
  :meth:`Model.eval_soa`) lets layer tables materialize individual
  model objects lazily and evaluate whole layers with gathers.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, ClassVar, Type

import numpy as np

__all__ = [
    "Model",
    "ConstantModel",
    "LinearRegression",
    "LinearSpline",
    "CubicSpline",
    "Radix",
    "AutoModel",
    "MODEL_TYPES",
    "resolve_model_type",
    "SOA_PARAM_COLUMNS",
    "SOA_MODEL_CODES",
    "SOA_CODE_MODELS",
    "GROUPED_FITTERS",
    "register_soa_model",
    "grouped_fitter",
]

#: Number of bits in the key type.  The paper (and SOSD) use 64-bit
#: unsigned integer keys throughout.
KEY_BITS = 64


def _as_float(keys: np.ndarray) -> np.ndarray:
    """Convert a key array to float64 for arithmetic model evaluation."""
    return np.asarray(keys, dtype=np.float64)


#: Width of a struct-of-arrays parameter row, in float64 columns.  Wide
#: enough for the largest registered model (CubicSpline: 6 fields) and
#: identical to ``_PARAM_COLUMNS`` in ``core/serialize.py``.
SOA_PARAM_COLUMNS = 6

#: Model class -> small integer code used in SoA layer tables.  The
#: first five codes mirror ``core/serialize.py``'s on-disk codes.
SOA_MODEL_CODES: dict[Type["Model"], int] = {}

#: Inverse of :data:`SOA_MODEL_CODES`.
SOA_CODE_MODELS: dict[int, Type["Model"]] = {}

#: Code -> per-instance parameter size in bytes (Table 2 accounting).
SOA_MODEL_SIZES: dict[int, int] = {}

#: Model class -> grouped closed-form fitter.  Keyed by *exact* class so
#: subclasses with overridden ``fit`` never silently inherit a grouped
#: path that disagrees with their per-segment semantics.
GROUPED_FITTERS: dict[Type["Model"], Callable] = {}


def register_soa_model(cls: Type["Model"], code: int) -> None:
    """Register ``cls`` for struct-of-arrays layer storage.

    Requires a frozen-dataclass model with at most
    :data:`SOA_PARAM_COLUMNS` fields and an ``eval_soa`` implementation.
    """
    if code in SOA_CODE_MODELS and SOA_CODE_MODELS[code] is not cls:
        raise ValueError(f"SoA code {code} already taken by {SOA_CODE_MODELS[code]}")
    SOA_MODEL_CODES[cls] = code
    SOA_CODE_MODELS[code] = cls
    SOA_MODEL_SIZES[code] = cls().size_in_bytes()


def grouped_fitter(model_type: Type["Model"], cs_fallback: bool = True) -> "Callable | None":
    """Return the grouped fitter for ``model_type``, or ``None``.

    ``CubicSpline`` with the reference fallback enabled dispatches to
    :meth:`CubicSpline.fit_grouped_with_fallback`, matching what the
    per-segment path does via ``fit_with_fallback``.
    """
    if model_type is CubicSpline and cs_fallback:
        return CubicSpline.fit_grouped_with_fallback
    return GROUPED_FITTERS.get(model_type)


def _segment_sums(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``values`` under the ``offsets`` segmentation.

    ``offsets`` has one entry per segment boundary (``fanout + 1``
    entries, ``offsets[-1] == len(values)``); empty segments sum to 0.

    ``np.add.reduceat`` alone cannot express empty segments (for
    ``idx[i] == idx[i+1]`` it returns ``values[idx[i]]``, and clipping
    a trailing ``len(values)`` start corrupts the preceding segment),
    so we reduce only at the starts of non-empty segments: consecutive
    non-empty starts are exact segment boundaries, and the last
    non-empty segment runs to ``len(values)`` — exactly reduceat's
    final-segment rule.
    """
    counts = np.diff(offsets)
    out = np.zeros(len(counts), dtype=np.float64)
    nonempty = counts > 0
    if np.any(nonempty):
        out[nonempty] = np.add.reduceat(values, offsets[:-1][nonempty])
    return out


def _segment_max(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment maxima of ``values``; empty segments yield 0."""
    counts = np.diff(offsets)
    out = np.zeros(len(counts), dtype=np.float64)
    nonempty = counts > 0
    if np.any(nonempty):
        out[nonempty] = np.maximum.reduceat(values, offsets[:-1][nonempty])
    return out


class Model:
    """Abstract base class of all RMI component models.

    Subclasses implement :meth:`fit` (training), :meth:`predict_batch`
    (vectorized evaluation) and :meth:`size_in_bytes` (the contribution of
    one model instance to the index size, following the accounting of
    Table 2: one IEEE double per stored coefficient).
    """

    #: Short lowercase identifier, e.g. ``"lr"`` (set by subclasses).
    abbreviation: ClassVar[str] = "?"

    #: Relative cost of evaluating the model once; consumed by the
    #: analytic cost model (``repro.cost``).  Unit: multiply-adds.
    eval_cost_units: ClassVar[float] = 1.0

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "Model":
        """Train a model on ``keys`` (sorted ``uint64``) and ``targets``.

        ``keys`` and ``targets`` must have equal length.  Fitting an empty
        segment returns a model that predicts 0 everywhere, mirroring the
        reference implementation's behaviour for empty second-layer
        models.
        """
        raise NotImplementedError

    def predict(self, key: int) -> float:
        """Evaluate the model on a single key."""
        return float(self.predict_batch(np.asarray([key], dtype=np.uint64))[0])

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        """Evaluate the model on an array of keys, returning float64."""
        raise NotImplementedError

    def size_in_bytes(self) -> int:
        """Size of this model's parameters in bytes."""
        raise NotImplementedError

    def is_monotonic(self) -> bool:
        """Whether the fitted model is monotonically non-decreasing."""
        raise NotImplementedError

    # -- struct-of-arrays interface ------------------------------------
    #
    # Registered dataclass model types (see ``register_soa_model``) can
    # round-trip through a fixed-width float64 parameter row and be
    # evaluated straight from a parameter matrix without materializing
    # per-segment objects.  The row layout is the dataclass field order,
    # zero-padded to ``SOA_PARAM_COLUMNS`` — identical to the on-disk
    # layout of ``core/serialize.py``.

    def soa_row(self) -> np.ndarray:
        """This model's parameters as a zero-padded float64 row."""
        row = np.zeros(SOA_PARAM_COLUMNS, dtype=np.float64)
        for i, field in enumerate(dataclasses.fields(self)):
            row[i] = float(getattr(self, field.name))
        return row

    @classmethod
    def from_soa_row(cls, row: np.ndarray) -> "Model":
        """Rebuild a model instance from its parameter row."""
        values = []
        for i, field in enumerate(dataclasses.fields(cls)):
            raw = float(row[i])
            values.append(int(raw) if field.type == "int" else raw)
        return cls(*values)

    @classmethod
    def eval_soa(cls, rows: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Evaluate one model *per key*: ``rows[i]`` applied to ``keys[i]``.

        ``rows`` is a ``(len(keys), SOA_PARAM_COLUMNS)`` float64 gather
        of the layer's parameter table.  Must match ``predict_batch``
        bit for bit on every row/key pair.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantModel(Model):
    """Degenerate model predicting a constant.

    Used for empty segments (no keys assigned to a second-layer model)
    and as the zero-key / one-key fallback of the spline models.
    """

    value: float = 0.0

    abbreviation: ClassVar[str] = "const"
    eval_cost_units: ClassVar[float] = 0.5

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "ConstantModel":
        if len(targets) == 0:
            return cls(0.0)
        return cls(float(np.mean(targets)))

    @classmethod
    def fit_grouped(
        cls, keys: np.ndarray, targets: np.ndarray, offsets: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Fit every segment at once; returns ``(codes, params)``."""
        counts = np.diff(offsets)
        y = np.asarray(targets, dtype=np.float64)
        sums = _segment_sums(y, offsets)
        params = np.zeros((len(counts), SOA_PARAM_COLUMNS), dtype=np.float64)
        nonempty = counts > 0
        params[nonempty, 0] = sums[nonempty] / counts[nonempty]
        codes = np.full(len(counts), SOA_MODEL_CODES[cls], dtype=np.int8)
        return codes, params

    @classmethod
    def eval_soa(cls, rows: np.ndarray, keys: np.ndarray) -> np.ndarray:
        return rows[:, 0].copy()

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        return np.full(len(keys), self.value, dtype=np.float64)

    def size_in_bytes(self) -> int:
        return 8

    def is_monotonic(self) -> bool:
        return True


@dataclass(frozen=True)
class LinearRegression(Model):
    """Least-squares linear model ``f(x) = slope * x + intercept``.

    Unlike the spline models, LR considers *all* keys during training
    (it minimizes the mean squared error), which the paper identifies as
    the reason for its higher training cost (Section 7, Figure 11a).

    ``trim`` optionally ignores the lowest and highest ``trim`` fraction
    of keys during fitting.  The paper (Section 6.1) attributes the good
    fb numbers of prior work to exactly such a variant (trim = 0.0001,
    i.e. 0.01 %); we expose it to reproduce that discussion.
    """

    slope: float = 0.0
    intercept: float = 0.0

    abbreviation: ClassVar[str] = "lr"
    eval_cost_units: ClassVar[float] = 1.0

    @classmethod
    def fit(
        cls,
        keys: np.ndarray,
        targets: np.ndarray,
        trim: float = 0.0,
    ) -> "LinearRegression":
        n = len(keys)
        if n == 0:
            return cls(0.0, 0.0)
        if trim > 0.0 and n > 2:
            cut = int(n * trim)
            if cut > 0 and n - 2 * cut >= 2:
                keys = keys[cut : n - cut]
                targets = targets[cut : n - cut]
                n = len(keys)
        if n == 1:
            return cls(0.0, float(targets[0]))
        x = _as_float(keys)
        y = np.asarray(targets, dtype=np.float64)
        # Center x for numerical stability: 64-bit keys squared overflow
        # the exactly-representable range of float64 by a wide margin.
        mx = x.mean()
        my = y.mean()
        dx = x - mx
        denom = float(np.dot(dx, dx))
        if denom == 0.0:
            # All keys identical (duplicates collapse): constant model.
            return cls(0.0, my)
        slope = float(np.dot(dx, y - my) / denom)
        intercept = my - slope * mx
        return cls(slope, intercept)

    @classmethod
    def fit_grouped(
        cls, keys: np.ndarray, targets: np.ndarray, offsets: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Least-squares fit of every segment from grouped statistics.

        Uses the same centered normal equations as :meth:`fit`, with all
        per-segment sums taken by ``np.add.reduceat``.  Parameters agree
        with the per-segment path up to summation order (``np.mean`` /
        ``np.dot`` use pairwise summation; reduceat is sequential), i.e.
        to within a few ulp — cumsum differencing is deliberately *not*
        used because cancellation on ~2^63-magnitude keys would bias the
        OLS denominator.
        """
        counts = np.diff(offsets)
        fanout = len(counts)
        x = _as_float(keys)
        y = np.asarray(targets, dtype=np.float64)
        nonempty = counts > 0
        codes = np.where(
            nonempty, SOA_MODEL_CODES[cls], SOA_MODEL_CODES[ConstantModel]
        ).astype(np.int8)
        params = np.zeros((fanout, SOA_PARAM_COLUMNS), dtype=np.float64)
        if not np.any(nonempty):
            return codes, params
        safe = np.maximum(counts, 1).astype(np.float64)
        mx = _segment_sums(x, offsets) / safe
        my = _segment_sums(y, offsets) / safe
        seg = np.repeat(np.arange(fanout), counts)
        dx = x - mx[seg]
        dy = y - my[seg]
        denom = _segment_sums(dx * dx, offsets)
        num = _segment_sums(dx * dy, offsets)
        with np.errstate(divide="ignore", invalid="ignore"):
            slope = np.where(denom > 0.0, num / denom, 0.0)
        # All-duplicate (denom == 0) and single-key segments collapse to
        # slope 0, intercept my — exactly the scalar path's fallbacks.
        intercept = my - slope * mx
        params[nonempty, 0] = slope[nonempty]
        params[nonempty, 1] = intercept[nonempty]
        return codes, params

    @classmethod
    def eval_soa(cls, rows: np.ndarray, keys: np.ndarray) -> np.ndarray:
        return rows[:, 0] * _as_float(keys) + rows[:, 1]

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        return self.slope * _as_float(keys) + self.intercept

    def size_in_bytes(self) -> int:
        return 16  # two doubles

    def is_monotonic(self) -> bool:
        return self.slope >= 0.0


@dataclass(frozen=True)
class LinearSpline(Model):
    """Linear spline segment through the leftmost and rightmost points.

    Training touches only two data points, which makes LS dramatically
    cheaper to train than LR (Section 7) at a usually small accuracy
    penalty; evaluation cost is identical to LR.
    """

    slope: float = 0.0
    intercept: float = 0.0

    abbreviation: ClassVar[str] = "ls"
    eval_cost_units: ClassVar[float] = 1.0

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "LinearSpline":
        n = len(keys)
        if n == 0:
            return cls(0.0, 0.0)
        x0 = float(keys[0])
        y0 = float(targets[0])
        if n == 1 or float(keys[-1]) == x0:
            return cls(0.0, y0)
        x1 = float(keys[-1])
        y1 = float(targets[-1])
        slope = (y1 - y0) / (x1 - x0)
        return cls(slope, y0 - slope * x0)

    @classmethod
    def fit_grouped(
        cls, keys: np.ndarray, targets: np.ndarray, offsets: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Endpoint fit of every segment via two gathers.

        Elementwise identical formulas to :meth:`fit`, so the grouped
        parameters are bit-exact equal to the per-segment ones.
        """
        counts = np.diff(offsets)
        fanout = len(counts)
        x = _as_float(keys)
        y = np.asarray(targets, dtype=np.float64)
        nonempty = counts > 0
        codes = np.where(
            nonempty, SOA_MODEL_CODES[cls], SOA_MODEL_CODES[ConstantModel]
        ).astype(np.int8)
        params = np.zeros((fanout, SOA_PARAM_COLUMNS), dtype=np.float64)
        if not np.any(nonempty):
            return codes, params
        first = offsets[:-1][nonempty]
        last = offsets[1:][nonempty] - 1
        x0, y0 = x[first], y[first]
        x1, y1 = x[last], y[last]
        degenerate = x1 == x0  # single-key and all-duplicate segments
        with np.errstate(divide="ignore", invalid="ignore"):
            slope = np.where(degenerate, 0.0, (y1 - y0) / (x1 - x0))
        intercept = np.where(degenerate, y0, y0 - slope * x0)
        params[nonempty, 0] = slope
        params[nonempty, 1] = intercept
        return codes, params

    @classmethod
    def eval_soa(cls, rows: np.ndarray, keys: np.ndarray) -> np.ndarray:
        return rows[:, 0] * _as_float(keys) + rows[:, 1]

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        return self.slope * _as_float(keys) + self.intercept

    def size_in_bytes(self) -> int:
        return 16

    def is_monotonic(self) -> bool:
        return self.slope >= 0.0


@dataclass(frozen=True)
class CubicSpline(Model):
    """Monotone cubic Hermite segment through the endpoints.

    Follows the reference implementation: a cubic is fit through the
    leftmost and rightmost data points with endpoint tangents estimated
    from the adjacent points; tangents are limited (Fritsch–Carlson) so
    that the segment remains monotone.  Keys are normalized to ``[0, 1]``
    before fitting to keep the cubic numerically sane on 64-bit keys.

    The reference implementation additionally trains a linear spline and
    falls back to it when the cubic has a higher maximum error (paper,
    footnote 1); that logic lives in :meth:`fit_with_fallback`.
    """

    # f(t) = a3*t^3 + a2*t^2 + a1*t + a0 on normalized t = (x-x0)/(x1-x0)
    a3: float = 0.0
    a2: float = 0.0
    a1: float = 0.0
    a0: float = 0.0
    x_offset: float = 0.0
    x_scale: float = 0.0  # 1 / (x1 - x0); zero means degenerate/constant

    abbreviation: ClassVar[str] = "cs"
    eval_cost_units: ClassVar[float] = 2.0

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "CubicSpline":
        n = len(keys)
        if n == 0:
            return cls()
        x0 = float(keys[0])
        y0 = float(targets[0])
        if n == 1 or float(keys[-1]) == x0:
            return cls(a0=y0, x_offset=x0, x_scale=0.0)
        x1 = float(keys[-1])
        y1 = float(targets[-1])
        scale = 1.0 / (x1 - x0)
        dy = y1 - y0
        # Endpoint tangents from the immediately adjacent interior points,
        # expressed in normalized coordinates (dt per unit t).
        m0 = cls._endpoint_slope(keys, targets, 0, x0, x1, scale)
        m1 = cls._endpoint_slope(keys, targets, n - 1, x0, x1, scale)
        # Fritsch-Carlson limiting keeps the Hermite segment monotone.
        if dy == 0.0:
            m0 = m1 = 0.0
        else:
            limit = 3.0 * dy
            m0 = min(max(m0, 0.0), limit) if dy > 0 else max(min(m0, 0.0), limit)
            m1 = min(max(m1, 0.0), limit) if dy > 0 else max(min(m1, 0.0), limit)
        # Hermite basis on t in [0, 1]:
        #   f(t) = y0*h00 + m0*h10 + y1*h01 + m1*h11
        a3 = 2.0 * y0 + m0 - 2.0 * y1 + m1
        a2 = -3.0 * y0 - 2.0 * m0 + 3.0 * y1 - m1
        a1 = m0
        a0 = y0
        return cls(a3, a2, a1, a0, x_offset=x0, x_scale=scale)

    @staticmethod
    def _endpoint_slope(
        keys: np.ndarray,
        targets: np.ndarray,
        at: int,
        x0: float,
        x1: float,
        scale: float,
    ) -> float:
        """Tangent estimate at the first or last point, in t-space."""
        n = len(keys)
        neighbour = 1 if at == 0 else n - 2
        xa = float(keys[at])
        xb = float(keys[neighbour])
        if xa == xb:
            # Fall back to the secant of the whole segment.
            return float(targets[-1]) - float(targets[0])
        secant = (float(targets[neighbour]) - float(targets[at])) / (xb - xa)
        return secant / scale  # d/dt = (d/dx) * (x1 - x0)

    @classmethod
    def fit_with_fallback(
        cls, keys: np.ndarray, targets: np.ndarray
    ) -> "Model":
        """Fit a cubic and a linear spline; keep whichever errs less.

        Mirrors the reference implementation (paper footnote 1).  The
        comparison uses the maximum absolute error over the training
        keys.
        """
        cubic = cls.fit(keys, targets)
        linear = LinearSpline.fit(keys, targets)
        if len(keys) == 0:
            return cubic
        y = np.asarray(targets, dtype=np.float64)
        err_cubic = float(np.max(np.abs(cubic.predict_batch(keys) - y)))
        err_linear = float(np.max(np.abs(linear.predict_batch(keys) - y)))
        return cubic if err_cubic <= err_linear else linear

    @classmethod
    def fit_grouped(
        cls, keys: np.ndarray, targets: np.ndarray, offsets: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Monotone Hermite fit of every segment via endpoint gathers.

        Replicates :meth:`fit` operation for operation (endpoint-slope
        estimates, whole-segment secant fallback, Fritsch–Carlson
        limiting, Hermite coefficients), so parameters are bit-exact
        equal to the per-segment path.
        """
        counts = np.diff(offsets)
        fanout = len(counts)
        x = _as_float(keys)
        y = np.asarray(targets, dtype=np.float64)
        nonempty = counts > 0
        codes = np.where(
            nonempty, SOA_MODEL_CODES[cls], SOA_MODEL_CODES[ConstantModel]
        ).astype(np.int8)
        params = np.zeros((fanout, SOA_PARAM_COLUMNS), dtype=np.float64)
        if not np.any(nonempty):
            return codes, params
        first = offsets[:-1][nonempty]
        last = offsets[1:][nonempty] - 1
        x0, y0 = x[first], y[first]
        x1, y1 = x[last], y[last]
        # Degenerate (single-key / all-duplicate) segments: constant
        # cubic ``a0 = y0`` anchored at x0 with zero scale, like fit().
        rows = np.zeros((len(first), SOA_PARAM_COLUMNS), dtype=np.float64)
        rows[:, 3] = y0
        rows[:, 4] = x0
        proper = x1 != x0
        if np.any(proper):
            pf, pl = first[proper], last[proper]
            px0, py0 = x0[proper], y0[proper]
            px1, py1 = x1[proper], y1[proper]
            scale = 1.0 / (px1 - px0)
            dy = py1 - py0
            # Endpoint tangents from the adjacent interior points, with
            # the whole-segment secant (in t-space) as the duplicate-key
            # fallback — cf. _endpoint_slope().
            xb0, yb0 = x[pf + 1], y[pf + 1]
            xb1, yb1 = x[pl - 1], y[pl - 1]
            with np.errstate(divide="ignore", invalid="ignore"):
                m0 = np.where(
                    px0 == xb0, py1 - py0, ((yb0 - py0) / (xb0 - px0)) / scale
                )
                m1 = np.where(
                    px1 == xb1, py1 - py0, ((yb1 - py1) / (xb1 - px1)) / scale
                )
            limit = 3.0 * dy
            rising = dy > 0.0
            m0 = np.where(
                dy == 0.0,
                0.0,
                np.where(
                    rising,
                    np.minimum(np.maximum(m0, 0.0), limit),
                    np.maximum(np.minimum(m0, 0.0), limit),
                ),
            )
            m1 = np.where(
                dy == 0.0,
                0.0,
                np.where(
                    rising,
                    np.minimum(np.maximum(m1, 0.0), limit),
                    np.maximum(np.minimum(m1, 0.0), limit),
                ),
            )
            rows[proper, 0] = 2.0 * py0 + m0 - 2.0 * py1 + m1
            rows[proper, 1] = -3.0 * py0 - 2.0 * m0 + 3.0 * py1 - m1
            rows[proper, 2] = m0
            rows[proper, 3] = py0
            rows[proper, 4] = px0
            rows[proper, 5] = scale
        params[nonempty] = rows
        return codes, params

    @classmethod
    def fit_grouped_with_fallback(
        cls, keys: np.ndarray, targets: np.ndarray, offsets: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Grouped :meth:`fit_with_fallback`: per-segment CS-vs-LS choice.

        Both families are fit grouped, evaluated on the training keys
        with one gather each, and compared on per-segment maximum
        absolute error (``np.maximum.reduceat``) — the same tie-break
        (``err_cubic <= err_linear`` keeps the cubic) as the scalar
        path.  Max is order-independent, so the choice is exact.
        """
        codes_c, params_c = cls.fit_grouped(keys, targets, offsets)
        codes_l, params_l = LinearSpline.fit_grouped(keys, targets, offsets)
        counts = np.diff(offsets)
        if len(keys) == 0:
            return codes_c, params_c
        seg = np.repeat(np.arange(len(counts)), counts)
        y = np.asarray(targets, dtype=np.float64)
        err_c = _segment_max(
            np.abs(cls.eval_soa(params_c[seg], keys) - y), offsets
        )
        err_l = _segment_max(
            np.abs(LinearSpline.eval_soa(params_l[seg], keys) - y), offsets
        )
        keep_cubic = err_c <= err_l
        codes = np.where(keep_cubic, codes_c, codes_l).astype(np.int8)
        params = np.where(keep_cubic[:, None], params_c, params_l)
        return codes, params

    @classmethod
    def eval_soa(cls, rows: np.ndarray, keys: np.ndarray) -> np.ndarray:
        t = (_as_float(keys) - rows[:, 4]) * rows[:, 5]
        return ((rows[:, 0] * t + rows[:, 1]) * t + rows[:, 2]) * t + rows[:, 3]

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        t = (_as_float(keys) - self.x_offset) * self.x_scale
        return ((self.a3 * t + self.a2) * t + self.a1) * t + self.a0

    def size_in_bytes(self) -> int:
        return 32  # four doubles (normalization params fold into them)

    def is_monotonic(self) -> bool:
        # By construction (Fritsch-Carlson limited Hermite) the segment is
        # monotone between the endpoints; verify via the derivative's
        # critical points as a safety net.
        if self.x_scale == 0.0:
            return True
        # f'(t) = 3*a3*t^2 + 2*a2*t + a1 must not change sign on [0, 1].
        ts = np.linspace(0.0, 1.0, 17)
        d = (3.0 * self.a3 * ts + 2.0 * self.a2) * ts + self.a1
        return bool(np.all(d >= -1e-9) or np.all(d <= 1e-9))


@dataclass(frozen=True)
class Radix(Model):
    """Radix model ``f(x) = (x << a) >> b``.

    Eliminates the common bit prefix of the training keys (left shift)
    and maps the most significant remaining bits onto the target range
    (right shift).  Training inspects only the smallest and largest key;
    evaluation is two shifts, making RX the cheapest model to both train
    and evaluate (Section 7, Figure 11a).

    Note that RX only ever outputs the value of a bit prefix: its range
    is ``[0, 2^bits)`` for ``bits = left-shift-adjusted`` significant
    bits, which generally covers only a fraction of the target positions
    and explains the high share of empty segments it produces
    (Section 5.1, Figure 4).
    """

    left_shift: int = 0
    right_shift: int = KEY_BITS

    abbreviation: ClassVar[str] = "rx"
    eval_cost_units: ClassVar[float] = 0.5

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "Radix":
        n = len(keys)
        if n == 0:
            return cls(0, KEY_BITS)
        max_target = float(np.max(targets)) if n else 0.0
        if max_target < 1.0:
            return cls(0, KEY_BITS)
        lo = int(keys[0])
        hi = int(keys[-1])
        common = lo ^ hi
        prefix_bits = KEY_BITS - common.bit_length() if common else KEY_BITS
        significant = KEY_BITS - prefix_bits
        # Output bits: the bit length of the largest integral target,
        # like the reference implementation -- for a 2^k-model layer
        # this is k bits, so the radix output never exceeds the layer
        # (using k+1 bits would funnel every key with its top
        # significant bit set into the clamped last model).
        bits_needed = max(1, int(max_target).bit_length())
        bits = min(significant, bits_needed)
        if bits <= 0:
            return cls(0, KEY_BITS)
        return cls(prefix_bits, KEY_BITS - bits)

    @classmethod
    def eval_soa(cls, rows: np.ndarray, keys: np.ndarray) -> np.ndarray:
        x = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(len(x), dtype=np.float64)
        # Rows with right_shift >= 64 predict 0 (see predict_batch);
        # masking them out also keeps the uint64 shifts well-defined.
        active = rows[:, 1] < float(KEY_BITS)
        if np.any(active):
            shifted = np.left_shift(x[active], rows[active, 0].astype(np.uint64))
            out[active] = np.right_shift(
                shifted, rows[active, 1].astype(np.uint64)
            ).astype(np.float64)
        return out

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        x = np.asarray(keys, dtype=np.uint64)
        if self.right_shift >= KEY_BITS:
            return np.zeros(len(x), dtype=np.float64)
        shifted = np.left_shift(x, np.uint64(self.left_shift))
        out = np.right_shift(shifted, np.uint64(self.right_shift))
        return out.astype(np.float64)

    def predict(self, key: int) -> float:
        if self.right_shift >= KEY_BITS:
            return 0.0
        mask = (1 << KEY_BITS) - 1
        return float(((key << self.left_shift) & mask) >> self.right_shift)

    def size_in_bytes(self) -> int:
        return 16  # two shift amounts, stored as 8-byte words

    def is_monotonic(self) -> bool:
        return True


class AutoModel(Model):
    """Per-segment best-of selection over {LR, LS, CS}.

    An extension in the spirit of CDFShop [23]: instead of fixing one
    model type for a whole layer, each segment gets whichever candidate
    has the smallest *maximum* training error -- the quantity that
    drives LAbs-bounded search intervals.  ``fit`` returns the chosen
    concrete model, so evaluation, serialization, and size accounting
    are those of the winner; only training pays for the tournament.
    """

    abbreviation: ClassVar[str] = "auto"
    #: Average of the candidates, used only by planning heuristics.
    eval_cost_units: ClassVar[float] = 1.5

    _CANDIDATES: ClassVar[tuple] = ()  # filled below (classes defined)

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "Model":
        if len(keys) == 0:
            return ConstantModel(0.0)
        y = np.asarray(targets, dtype=np.float64)
        best: Model | None = None
        best_err = np.inf
        for candidate in cls._CANDIDATES:
            model = candidate.fit(keys, targets)
            err = float(np.max(np.abs(model.predict_batch(keys) - y)))
            if err < best_err:
                best, best_err = model, err
        assert best is not None
        return best


AutoModel._CANDIDATES = (LinearRegression, LinearSpline, CubicSpline)


#: Registry of model type abbreviations (lowercase) to classes, matching
#: the abbreviations of Table 2 in the paper (plus extensions registered
#: by their modules: nn, logl, normal, lognorm).
MODEL_TYPES: dict[str, Type[Model]] = {
    "lr": LinearRegression,
    "ls": LinearSpline,
    "cs": CubicSpline,
    "rx": Radix,
    "const": ConstantModel,
    "auto": AutoModel,
}


# SoA codes 0..4 mirror the serialization codes of ``core/serialize.py``;
# extension modules (models_more) register codes from 5 upward.
register_soa_model(ConstantModel, 0)
register_soa_model(LinearRegression, 1)
register_soa_model(LinearSpline, 2)
register_soa_model(CubicSpline, 3)
register_soa_model(Radix, 4)

# Radix deliberately has no grouped fitter: its training is two integer
# bit_length computations per segment — already O(1), awkward to
# vectorize, and only ever used for fanout-1 root layers in practice.
GROUPED_FITTERS[ConstantModel] = ConstantModel.fit_grouped
GROUPED_FITTERS[LinearRegression] = LinearRegression.fit_grouped
GROUPED_FITTERS[LinearSpline] = LinearSpline.fit_grouped
GROUPED_FITTERS[CubicSpline] = CubicSpline.fit_grouped


def resolve_model_type(spec: "str | Type[Model]") -> Type[Model]:
    """Resolve a model type from an abbreviation string or a class.

    Accepts ``"lr"``, ``"LS"``, a :class:`Model` subclass, etc.  Raises
    ``ValueError`` for unknown abbreviations to fail fast on typos in
    experiment configurations.
    """
    if isinstance(spec, type) and issubclass(spec, Model):
        return spec
    key = str(spec).strip().lower()
    try:
        return MODEL_TYPES[key]
    except KeyError:
        known = ", ".join(sorted(MODEL_TYPES))
        raise ValueError(f"unknown model type {spec!r}; known types: {known}")
