"""Search algorithms for RMI error correction.

Given a sorted array, a query key, a predicted position, and an
(inclusive) search interval, these algorithms locate the *lower bound*
of the query: the smallest index whose key is greater than or equal to
the query.  The paper evaluates four algorithms (Table 4):

===== ================================= ==========================
Abrv. Method                            Uses
===== ================================= ==========================
Bin   Binary search                     error bounds only
MBin  Model-biased binary search        bounds + prediction
MLin  Model-biased linear search        prediction (bounds optional)
MExp  Model-biased exponential search   prediction (bounds optional)
===== ================================= ==========================

Plain (non-model-biased) linear and exponential search are also
implemented; the paper reports they always lose to their model-biased
counterparts (Section 4.2) and our Figure 10 bench re-verifies that via
comparison counts.

Every scalar function returns a :class:`SearchResult` carrying the found
position and the number of key comparisons performed, which feeds the
analytic cost model.  Vectorized batch variants (used by the workload
runner for wall-clock throughput) perform the same amount of
window-bounded work but amortize Python interpreter overhead.

Lower-bound semantics follow ``numpy.searchsorted(side="left")``: if
every key in the interval is smaller than the query, the position one
past the interval is returned.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = [
    "SearchResult",
    "binary_search",
    "model_biased_binary_search",
    "model_biased_linear_search",
    "model_biased_exponential_search",
    "linear_search",
    "exponential_search",
    "interpolation_search",
    "SEARCH_ALGORITHMS",
    "resolve_search_algorithm",
    "batch_binary_search",
    "batch_exponential_search",
    "batch_lower_bound_window",
    "expected_comparisons",
]


@dataclass(frozen=True)
class SearchResult:
    """Result of a scalar search: position found and comparisons made."""

    position: int
    comparisons: int


def _clamp(value: int, lo: int, hi: int) -> int:
    return lo if value < lo else hi if value > hi else value


def binary_search(
    keys: np.ndarray, query: int, lo: int, hi: int, prediction: int = 0
) -> SearchResult:
    """Classic lower-bound binary search over ``keys[lo..hi]`` (Bin).

    Ignores the prediction entirely; only the error bounds matter.  The
    ``prediction`` parameter exists so all algorithms share a signature.
    """
    comparisons = 0
    left, right = lo, hi + 1  # search in the half-open range [left, right)
    while left < right:
        mid = (left + right) // 2
        comparisons += 1
        if keys[mid] < query:
            left = mid + 1
        else:
            right = mid
    return SearchResult(left, comparisons)


def model_biased_binary_search(
    keys: np.ndarray, query: int, lo: int, hi: int, prediction: int
) -> SearchResult:
    """Binary search whose first probe is the prediction (MBin, [20]).

    After the first comparison at the (clamped) predicted position the
    search continues as a classic binary search on the surviving half.
    With absolute bounds the prediction already is the interval centre,
    making MBin equivalent to Bin (Section 4.2).
    """
    if lo > hi:
        return SearchResult(lo, 0)
    probe = _clamp(prediction, lo, hi)
    comparisons = 1
    if keys[probe] < query:
        inner = binary_search(keys, query, probe + 1, hi)
    else:
        # The lower bound is at most ``probe``; searching [lo, probe-1]
        # returns ``probe`` itself when every key left of it is smaller.
        inner = binary_search(keys, query, lo, probe - 1)
    return SearchResult(inner.position, comparisons + inner.comparisons)


def model_biased_linear_search(
    keys: np.ndarray, query: int, lo: int, hi: int, prediction: int
) -> SearchResult:
    """Linear scan outward from the prediction (MLin).

    Starts at the clamped predicted position and walks left or right,
    depending on whether the model over- or underestimated, until the
    lower bound is found or an interval bound is hit.
    """
    n = len(keys)
    if lo > hi:
        return SearchResult(lo, 0)
    pos = _clamp(prediction, lo, hi)
    comparisons = 1
    if keys[pos] < query:
        # Underestimate: walk right until a key >= query appears.
        while pos < hi:
            pos += 1
            comparisons += 1
            if keys[pos] >= query:
                return SearchResult(pos, comparisons)
        return SearchResult(hi + 1 if hi + 1 <= n else n, comparisons)
    # Overestimate (or exact): walk left while the predecessor still >= query.
    while pos > lo:
        comparisons += 1
        if keys[pos - 1] >= query:
            pos -= 1
        else:
            return SearchResult(pos, comparisons)
    return SearchResult(pos, comparisons)


def model_biased_exponential_search(
    keys: np.ndarray, query: int, lo: int, hi: int, prediction: int
) -> SearchResult:
    """Exponential (galloping) search from the prediction (MExp, [20]).

    Doubles the step width away from the predicted position until the
    lower bound is bracketed, then finishes with binary search inside
    the bracket.  Cost is logarithmic in the *actual* prediction error
    rather than in the stored bound, which is why MExp wins once typical
    errors are much smaller than worst-case bounds (Section 6.3).
    """
    if lo > hi:
        return SearchResult(lo, 0)
    pos = _clamp(prediction, lo, hi)
    comparisons = 1
    if keys[pos] < query:
        # Underestimate: gallop right.  Invariant: the lower bound lies
        # in [bracket_lo, hi]; each failed probe advances bracket_lo.
        bracket_lo = pos + 1
        step = 1
        probe = pos + step
        while probe <= hi:
            comparisons += 1
            if keys[probe] >= query:
                inner = binary_search(keys, query, bracket_lo, probe)
                return SearchResult(
                    inner.position, comparisons + inner.comparisons
                )
            bracket_lo = probe + 1
            step *= 2
            probe = pos + step
        inner = binary_search(keys, query, bracket_lo, hi)
        return SearchResult(inner.position, comparisons + inner.comparisons)
    # Overestimate or exact hit: gallop left.  Invariant: the lower
    # bound lies in [lo, bracket_hi + 1]; binary search on
    # [found + 1, bracket_hi] returns bracket_hi + 1 when all smaller.
    bracket_hi = pos - 1
    step = 1
    probe = pos - step
    while probe >= lo:
        comparisons += 1
        if keys[probe] < query:
            inner = binary_search(keys, query, probe + 1, bracket_hi)
            return SearchResult(inner.position, comparisons + inner.comparisons)
        bracket_hi = probe - 1
        step *= 2
        probe = pos - step
    inner = binary_search(keys, query, lo, bracket_hi)
    return SearchResult(inner.position, comparisons + inner.comparisons)


def linear_search(
    keys: np.ndarray, query: int, lo: int, hi: int, prediction: int = 0
) -> SearchResult:
    """Plain left-to-right linear scan of the interval (non-model-biased)."""
    comparisons = 0
    for pos in range(lo, hi + 1):
        comparisons += 1
        if keys[pos] >= query:
            return SearchResult(pos, comparisons)
    return SearchResult(hi + 1, comparisons)


def exponential_search(
    keys: np.ndarray, query: int, lo: int, hi: int, prediction: int = 0
) -> SearchResult:
    """Plain exponential search starting at the interval's left edge."""
    return model_biased_exponential_search(keys, query, lo, hi, lo)


def interpolation_search(
    keys: np.ndarray, query: int, lo: int, hi: int, prediction: int = 0
) -> SearchResult:
    """Interpolation search within the error interval (extension).

    Not part of the paper's Table 4, but the natural companion of
    learned indexes (SOSD uses it for some baselines): each probe
    interpolates the query's position between the interval's boundary
    keys -- effectively re-learning a local linear model per step.
    O(log log w) on locally uniform data, degrading on skew; a probe
    that makes no progress falls back to a binary halving, so the
    worst case stays O(log w).
    """
    comparisons = 0
    # Half-open [left, right): the lower bound lies within; invariant
    # keys[left-1] < query <= keys[right] where those indexes exist.
    left, right = lo, hi + 1
    interpolate = True
    while left < right:
        i0, i1 = left, right - 1
        k0, k1 = int(keys[i0]), int(keys[i1])
        if interpolate and k1 > k0:
            frac = (query - k0) / (k1 - k0)
            frac = 0.0 if frac < 0.0 else 1.0 if frac > 1.0 else frac
            probe = i0 + int(frac * (i1 - i0))
        else:
            probe = (left + right) // 2  # halving step / flat region
        # Introspective alternation: every other probe halves, which
        # bounds the worst case (duplicate runs, adversarial skew) at
        # 2*log2(w) while keeping O(log log w) on friendly data.
        interpolate = not interpolate
        comparisons += 1
        if keys[probe] < query:
            left = probe + 1  # strictly increases (probe >= left)
        else:
            right = probe  # strictly decreases (probe <= right - 1)
    return SearchResult(left, comparisons)


#: Registry mapping Table 4 abbreviations to scalar search functions.
#: All share the signature ``(keys, query, lo, hi, prediction)``.
SEARCH_ALGORITHMS: dict[str, Callable[..., SearchResult]] = {
    "bin": binary_search,
    "mbin": model_biased_binary_search,
    "mlin": model_biased_linear_search,
    "mexp": model_biased_exponential_search,
    "lin": linear_search,
    "exp": exponential_search,
    "interp": interpolation_search,
}


def resolve_search_algorithm(spec: str) -> Callable[..., SearchResult]:
    """Resolve a Table 4 abbreviation to its search function."""
    if callable(spec):
        return spec
    key = str(spec).strip().lower()
    try:
        return SEARCH_ALGORITHMS[key]
    except KeyError:
        known = ", ".join(sorted(SEARCH_ALGORITHMS))
        raise ValueError(f"unknown search algorithm {spec!r}; known: {known}")


# ---------------------------------------------------------------------------
# Vectorized batch variants
# ---------------------------------------------------------------------------


def batch_binary_search(
    keys: np.ndarray,
    queries: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Vectorized lower-bound binary search on per-query windows.

    ``lo``/``hi`` are inclusive interval bounds per query (already
    clamped to the array).  Performs synchronized halving: every query
    participates in ``ceil(log2(max window))`` rounds, mirroring the
    data-dependent work of the scalar version while amortizing
    interpreter overhead.
    """
    left = lo.astype(np.int64).copy()
    right = hi.astype(np.int64) + 1
    while True:
        active = left < right
        if not active.any():
            break
        mid = (left + right) // 2
        probe = np.clip(mid, 0, len(keys) - 1)
        smaller = active & (keys[probe] < queries)
        left = np.where(smaller, mid + 1, left)
        right = np.where(active & ~smaller, mid, right)
    return left


def batch_exponential_search(
    keys: np.ndarray,
    queries: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    predictions: np.ndarray,
) -> np.ndarray:
    """Vectorized model-biased exponential search.

    Gallops outward from the clamped prediction with synchronized step
    doubling, then finishes with :func:`batch_binary_search` on the
    discovered brackets.
    """
    n = len(keys)
    lo64 = lo.astype(np.int64)
    hi64 = hi.astype(np.int64)
    pos = np.clip(predictions.astype(np.int64), lo64, hi64)
    under = keys[np.clip(pos, 0, n - 1)] < queries

    blo = np.where(under, pos + 1, lo64)
    bhi = np.where(under, hi64, pos - 1)

    # Gallop right for underestimates.
    step = np.ones(len(queries), dtype=np.int64)
    cur = pos + 1
    active = under & (cur <= hi64)
    while active.any():
        probe = np.clip(cur, 0, n - 1)
        found = active & (keys[probe] >= queries)
        bhi = np.where(found, cur, bhi)
        cont = active & ~found
        blo = np.where(cont, cur + 1, blo)
        step = np.where(cont, step * 2, step)
        cur = np.where(cont, pos + step, cur)
        active = cont & (cur <= hi64)

    # Gallop left for overestimates.
    step = np.ones(len(queries), dtype=np.int64)
    cur = pos - 1
    over = ~under
    blo = np.where(over, lo64, blo)
    bhi_left = pos - 1
    bhi = np.where(over, bhi_left, bhi)
    active = over & (cur >= lo64)
    while active.any():
        probe = np.clip(cur, 0, n - 1)
        found = active & (keys[probe] < queries)
        blo = np.where(found, cur + 1, blo)
        cont = active & ~found
        bhi = np.where(cont, cur - 1, bhi)
        step = np.where(cont, step * 2, step)
        cur = np.where(cont, pos - step, cur)
        active = cont & (cur >= lo64)

    result = batch_binary_search(keys, queries, np.maximum(blo, 0), bhi)
    # Exact hit at the probe position for overestimates that never moved.
    return result


#: Sorted-batch narrowing engages only above this batch size (the sort
#: and anchor passes must amortize) ...
NARROW_MIN_BATCH = 1024
#: ... and only when the mean window is at least this wide: eps-bounded
#: indexes hand the search tiny windows that synchronized halving
#: already finishes in a few rounds, and keeping their path byte-for-
#: byte unchanged keeps the compiled-kernel comparisons honest.
NARROW_MIN_MEAN_WIDTH = 256


def _repair_escapes(
    keys: np.ndarray,
    queries: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Repair window escapes in place; ``out`` becomes the global answer.

    An escape is a result pinned to the window's left edge while the
    key left of the window still satisfies the query (duplicate runs or
    absent keys spilling left), or a result one past the window's right
    edge (everything inside was smaller).  Escaped queries fall back to
    an unrestricted ``searchsorted``, exactly like the scalar
    interval-escape repair in ``OrderedIndex.lower_bound`` and
    ``RMI._escape_interval`` -- so for *any* well-formed window
    (``0 <= lo <= hi <= n-1``) the repaired result equals
    ``np.searchsorted(keys, queries, side="left")``, whether or not the
    window actually contains it.
    """
    n = len(keys)
    bad_left = (out == lo) & (lo > 0) & (
        keys[np.maximum(lo - 1, 0)] >= queries
    )
    bad_right = (out == hi + 1) & (hi + 1 < n)
    bad = bad_left | bad_right
    if bad.any():
        out[bad] = np.searchsorted(keys, queries[bad], side="left")
    return out


def _batch_lower_bound_window_plain(
    keys: np.ndarray,
    queries: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Window search + escape repair, no narrowing (the reference
    shape, kept separate so benchmarks can measure narrowing's gain)."""
    out = batch_binary_search(keys, queries, lo, hi)
    return _repair_escapes(keys, queries, lo, hi, out)


def _batch_lower_bound_window_narrowed(
    keys: np.ndarray,
    queries: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Sorted-batch window narrowing (ROADMAP item 5c).

    Process queries in sorted order (one argsort, skipped when the
    batch already arrives sorted); lower-bound answers are then
    monotone, so successive bounds shrink the search domain: no answer
    can precede the *first* window's start nor follow the *last*
    window's end, and one C-level ``searchsorted`` over just that slice
    of the key array resolves the whole batch.  Sorted needles are
    what make this fast -- consecutive queries descend near-identical
    probe paths, so the upper tree levels stay cache-resident and the
    leaf probes advance sequentially.  Measured against the
    alternatives on 50k queries over 2M keys, this beats the plain
    windowed halving 3-6x at wide windows, and also beats halving over
    per-query ``maximum.accumulate``/``minimum.accumulate``-narrowed
    windows ~3x: synchronized halving pays a full vectorized pass per
    round, which dwarfs the per-needle cost of NumPy's compiled binary
    search once the batch is sorted.

    Correctness never depends on the narrowed domain: escape repair
    lands on the global ``searchsorted`` answer whether or not the
    slice contains it, so narrowing is purely a performance transform
    and results stay bit-identical to the plain path.
    """
    m = len(queries)
    presorted = not np.any(queries[1:] < queries[:-1])
    if presorted:
        order = None
        qs, los, his = queries, lo, hi
    else:
        order = np.argsort(queries)
        qs, los, his = queries[order], lo[order], hi[order]
    # Monotone answers: the first window's start bounds every answer
    # from below, the last window's end bounds every answer from above.
    base = max(int(los[0]), 0)
    stop = min(int(his[-1]) + 1, len(keys))
    base = min(base, stop)
    res = base + np.searchsorted(keys[base:stop], qs, side="left")
    res = _repair_escapes(
        keys, qs,
        np.full(m, base, dtype=np.int64),
        np.full(m, stop - 1, dtype=np.int64),
        res,
    )
    if order is None:
        return res
    out = np.empty(m, dtype=np.int64)
    out[order] = res
    return out


def _batch_lower_bound_window_numpy(
    keys: np.ndarray,
    queries: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Staged NumPy implementation of :func:`batch_lower_bound_window`.

    Binary search each query inside its candidate window ``[lo, hi]``
    (inclusive, already clamped to the array), then repair the rare
    escapes (:func:`_repair_escapes`), so the result always equals
    ``np.searchsorted(keys, queries, side="left")``.  Large batches
    with wide windows take the sorted-batch narrowing fast path
    (:func:`_batch_lower_bound_window_narrowed`); small batches and
    the tight eps-windows of fitted indexes take the plain path
    unchanged.
    """
    queries = np.asarray(queries, dtype=keys.dtype)
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    m = len(queries)
    if m >= NARROW_MIN_BATCH:
        mean_width = float(np.mean(hi - lo)) + 1.0
        if mean_width >= NARROW_MIN_MEAN_WIDTH:
            return _batch_lower_bound_window_narrowed(keys, queries, lo, hi)
    return _batch_lower_bound_window_plain(keys, queries, lo, hi)


def batch_lower_bound_window(
    keys: np.ndarray,
    queries: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Window-restricted batch lower bound with interval-escape repair.

    The shared completion step of every index's batch lookup path; see
    :func:`_batch_lower_bound_window_numpy` for the exact semantics.
    Dispatches to the active kernel backend
    (:func:`repro.kernels.get_backend`: ``REPRO_KERNELS`` env var,
    process default, or auto-detection), so every baseline index picks
    up a compiled bounded search with no call-site changes.  All
    backends return bit-identical positions (the conformance suite
    pins this); the NumPy staged path is the universal fallback.
    """
    # Deferred import: repro.kernels imports this module for the
    # reference implementation.
    from ..kernels import get_backend

    return get_backend().lower_bound_window(keys, queries, lo, hi)


def expected_comparisons(interval_sizes: np.ndarray, algorithm: str) -> np.ndarray:
    """Analytic comparison-count estimate for the cost model.

    For binary variants this is ``ceil(log2(w + 1))`` on window size
    ``w``; linear and exponential variants are data dependent and should
    be measured, so this helper only covers the bounded binary searches.
    """
    w = np.maximum(np.asarray(interval_sizes, dtype=np.float64), 1.0)
    if algorithm in ("bin", "mbin"):
        return np.ceil(np.log2(w + 1.0))
    raise ValueError(
        f"expected_comparisons only supports bin/mbin, got {algorithm!r}"
    )
