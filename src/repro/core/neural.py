"""Neural-network model type for RMIs.

The original learned-index paper (Kraska et al. [20]) used small neural
networks as RMI models; the paper under reproduction restricts itself
to the four cheap model types of Table 2 and lists "more model types"
as future work (Section 4.2).  This module supplies that extension: a
single-hidden-layer ReLU network trained with full-batch Adam on a
normalized (key -> position) mapping.

Design notes:

* Keys and targets are normalized to [0, 1]; weights operate in that
  space, keeping training stable for 64-bit key magnitudes.
* Training runs on an evenly spaced subsample (default <= 4096 points):
  CDF approximation needs shape, not every key, and this keeps training
  time comparable to the paper's build-time discussions.
* ReLU networks are **not** monotonic in general.  The RMI trainer
  detects non-monotonic assignments and falls back to its stable-sort
  gather path automatically, so NN roots work unchanged -- but they
  forfeit the paper's no-copy optimization, which is itself an
  instructive trade-off (Section 4.1 requires monotonicity).
* Deterministic: weight init is seeded from the data size.

Evaluation cost: ``2 * hidden`` multiply-adds, reflected in
``eval_cost_units`` so the analytic cost model prices NN evaluation
honestly against the linear models.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from .models import MODEL_TYPES, Model

__all__ = ["NeuralNet"]


@dataclass(frozen=True)
class NeuralNet(Model):
    """One-hidden-layer ReLU regressor ``f(x) = w2·relu(w1*x + b1) + b2``."""

    w1: np.ndarray = field(default_factory=lambda: np.zeros(1))
    b1: np.ndarray = field(default_factory=lambda: np.zeros(1))
    w2: np.ndarray = field(default_factory=lambda: np.zeros(1))
    b2: float = 0.0
    x_offset: float = 0.0
    x_scale: float = 0.0
    y_offset: float = 0.0
    y_scale: float = 1.0

    abbreviation: ClassVar[str] = "nn"
    #: Priced per hidden unit; set for the default width below.
    eval_cost_units: ClassVar[float] = 16.0

    #: Training hyperparameters (class-level; fit() reads them so that
    #: experiments can subclass with different widths).
    hidden: ClassVar[int] = 8
    epochs: ClassVar[int] = 400
    learning_rate: ClassVar[float] = 0.05
    max_training_points: ClassVar[int] = 4096

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "NeuralNet":
        n = len(keys)
        if n == 0:
            return cls()
        x = np.asarray(keys, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        if n > cls.max_training_points:
            idx = np.linspace(0, n - 1, cls.max_training_points).astype(np.int64)
            x, y = x[idx], y[idx]
        x_off = float(x[0])
        span = float(x[-1]) - x_off
        if span <= 0:
            return cls(y_offset=float(y.mean()), y_scale=1.0,
                       x_offset=x_off, x_scale=0.0)
        x_scale = 1.0 / span
        y_off = float(y.min())
        y_span = float(y.max()) - y_off
        y_scale = y_span if y_span > 0 else 1.0
        xn = (x - x_off) * x_scale
        yn = (y - y_off) / y_scale

        rng = np.random.default_rng(len(x))
        h = cls.hidden
        w1 = rng.normal(0.0, 2.0, h)
        b1 = -rng.uniform(0.0, 1.0, h) * w1  # hinge positions in [0, 1]
        w2 = rng.normal(0.0, 0.5, h)
        b2 = 0.5

        # Full-batch Adam on the mean squared error.
        m = [np.zeros(h), np.zeros(h), np.zeros(h), 0.0]
        v = [np.zeros(h), np.zeros(h), np.zeros(h), 0.0]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        lr = cls.learning_rate
        for t in range(1, cls.epochs + 1):
            pre = np.outer(xn, w1) + b1  # (n, h)
            act = np.maximum(pre, 0.0)
            out = act @ w2 + b2
            err = out - yn  # (n,)
            # Gradients.
            g_w2 = act.T @ err / len(xn)
            g_b2 = float(err.mean())
            mask = (pre > 0).astype(np.float64)
            back = np.outer(err, w2) * mask  # (n, h)
            g_w1 = (back * xn[:, None]).mean(axis=0)
            g_b1 = back.mean(axis=0)
            for slot, grad in ((0, g_w1), (1, g_b1), (2, g_w2)):
                m[slot] = beta1 * m[slot] + (1 - beta1) * grad
                v[slot] = beta2 * v[slot] + (1 - beta2) * grad**2
                mh = m[slot] / (1 - beta1**t)
                vh = v[slot] / (1 - beta2**t)
                step = lr * mh / (np.sqrt(vh) + eps)
                if slot == 0:
                    w1 = w1 - step
                elif slot == 1:
                    b1 = b1 - step
                else:
                    w2 = w2 - step
            m[3] = beta1 * m[3] + (1 - beta1) * g_b2
            v[3] = beta2 * v[3] + (1 - beta2) * g_b2**2
            b2 = b2 - lr * (m[3] / (1 - beta1**t)) / (
                np.sqrt(v[3] / (1 - beta2**t)) + eps
            )
        return cls(w1=w1, b1=b1, w2=w2, b2=float(b2),
                   x_offset=x_off, x_scale=x_scale,
                   y_offset=y_off, y_scale=y_scale)

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        if self.x_scale == 0.0:
            return np.full(len(keys), self.y_offset, dtype=np.float64)
        xn = (np.asarray(keys, dtype=np.float64) - self.x_offset) * self.x_scale
        act = np.maximum(np.outer(xn, self.w1) + self.b1, 0.0)
        out = act @ self.w2 + self.b2
        return out * self.y_scale + self.y_offset

    def size_in_bytes(self) -> int:
        """3 doubles per hidden unit plus bias and normalization."""
        return 8 * (3 * len(self.w1) + 1 + 4)

    def is_monotonic(self) -> bool:
        """Checked empirically on a grid: ReLU nets are monotone only
        when training happens to make them so."""
        if self.x_scale == 0.0:
            return True
        xs = self.x_offset + np.linspace(0.0, 1.0, 257) / self.x_scale
        preds = self.predict_batch(xs.astype(np.float64).astype(np.uint64))
        return bool(np.all(np.diff(preds) >= -1e-9))


# Make "nn" available wherever Table 2 abbreviations are accepted
# (RMIConfig, segment_keys, the optimizer's grids, ...).
MODEL_TYPES["nn"] = NeuralNet
