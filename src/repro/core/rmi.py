"""Recursive model indexes (RMIs).

Implements the index described in Section 2 of the paper: a fixed-depth
hierarchy of models approximating the cumulative distribution function
(CDF) of a sorted key array.  A lookup proceeds in two steps:

1. **Prediction** -- the root model is evaluated on the key; its output
   selects a model of the next layer (Equation 3), and so on, until the
   last layer produces a position estimate (Equation 4).
2. **Error correction** -- the estimate is refined to the true lower
   bound by searching the sorted array, optionally restricted to an
   interval derived from stored error bounds (Section 2.2).

Both training variants discussed in the paper are implemented:

* the *reference* algorithm (Listing 1) which materializes per-model key
  arrays (``copy_keys=True``), and
* the paper's *optimized* algorithm (Section 4.1) which exploits that
  all supported models are monotonic -- key ranges are represented as
  ``(start, end)`` offsets into the sorted array and inner layers are
  trained directly on pre-scaled next-layer model indexes
  (``copy_keys=False``, ``train_on_model_index=True``).  The paper
  credits this optimization with a 2x build-time improvement.

The two-layer configuration studied throughout the paper's evaluation is
the default; arbitrary layer counts are supported (the paper's future
work).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .bounds import ErrorBounds, NoBounds, compute_bounds, resolve_bound_type
from .layers import LayerTable
from .models import ConstantModel, CubicSpline, Model, grouped_fitter, resolve_model_type
from .search import batch_lower_bound_window, resolve_search_algorithm

__all__ = ["RMI", "BuildStats", "LookupTrace", "build_rmi_layers"]


@dataclass
class BuildStats:
    """Timings and work counters of one RMI build.

    The four steps match the paper's Section 7 decomposition: (1) train
    the root model, (2) create segments based on the root model, (3)
    train the second-layer models, and (4) compute error bounds.  For
    RMIs with more than two layers, steps (1)-(3) aggregate over layers.
    """

    train_root_seconds: float = 0.0
    segment_seconds: float = 0.0
    train_leaves_seconds: float = 0.0
    bounds_seconds: float = 0.0
    keys_copied: int = 0  # keys physically copied (reference algorithm only)
    keys_touched: int = 0  # model-evaluation count during the build
    #: Which code path trained the (multi-model) leaf layer:
    #: ``"grouped"`` for the closed-form all-segments-at-once fit,
    #: ``"per_segment"`` for the Listing-1 style Python loop.
    fit_path: str = "grouped"

    @property
    def total_seconds(self) -> float:
        return (
            self.train_root_seconds
            + self.segment_seconds
            + self.train_leaves_seconds
            + self.bounds_seconds
        )

    def describe(self) -> str:
        """One-line summary, e.g. ``0.012s total (grouped fit)``."""
        return (
            f"{self.total_seconds:.4f}s total "
            f"(root {self.train_root_seconds:.4f}s, "
            f"segment {self.segment_seconds:.4f}s, "
            f"leaves {self.train_leaves_seconds:.4f}s, "
            f"bounds {self.bounds_seconds:.4f}s; {self.fit_path} fit)"
        )


@dataclass(frozen=True)
class LookupTrace:
    """Per-lookup instrumentation used by the analytic cost model."""

    position: int
    model_evaluations: int
    comparisons: int
    interval_size: int
    prediction: int


def _fit_model(model_type: type[Model], keys: np.ndarray, targets: np.ndarray,
               cs_fallback: bool) -> Model:
    """Fit one model, handling empty segments and the CS→LS fallback."""
    if len(keys) == 0:
        return ConstantModel(0.0)
    if model_type is CubicSpline and cs_fallback:
        return CubicSpline.fit_with_fallback(keys, targets)
    return model_type.fit(keys, targets)


def _predict_routed(layer, queries: np.ndarray,
                    model_ids: np.ndarray) -> np.ndarray:
    """Evaluate ``layer[model_ids[i]]`` on ``queries[i]`` for all i.

    Dispatches to :meth:`LayerTable.predict_routed` (SoA gathers) when
    available; plain model lists (e.g. deserialized RMIs from older
    code paths) fall back to the per-model loop.
    """
    if hasattr(layer, "predict_routed"):
        return layer.predict_routed(queries, model_ids)
    if len(layer) == 1:
        return layer[0].predict_batch(queries)
    out = np.empty(len(queries), dtype=np.float64)
    for j in np.unique(model_ids):
        mask = model_ids == j
        out[mask] = layer[j].predict_batch(queries[mask])
    return out


def _assignments(predictions: np.ndarray, fanout: int, n: int,
                 scaled: bool) -> np.ndarray:
    """Map raw model outputs to next-layer model indexes (Equation 3).

    When ``scaled`` is true the model was trained to emit indexes
    directly; otherwise its position estimate is scaled by
    ``fanout / n`` first.
    """
    if scaled:
        est = predictions
    else:
        est = predictions * (fanout / max(n, 1))
    # Clamp in float space: casting a float beyond int64 range first
    # would wrap to the wrong end of the layer.
    est = np.clip(np.nan_to_num(est), 0.0, float(fanout - 1))
    return np.floor(est).astype(np.int64)


class RMI:
    """A recursive model index over a sorted ``uint64`` key array.

    Parameters mirror the paper's hyperparameters (Section 2.4):

    ``layer_sizes``
        Sizes of layers 1..k-1 (the root layer always has size 1), e.g.
        ``[2**10]`` for the two-layer RMIs studied in the paper.
    ``model_types``
        One model type per layer, root first, e.g. ``("ls", "lr")``.
    ``bound_type``
        Error-bound strategy of Table 3 (``"labs"`` is the reference
        implementation's default and the paper's recommendation).
    ``search``
        Error-correction algorithm of Table 4.
    ``copy_keys``
        Use the reference training algorithm that materializes per-model
        key arrays instead of the paper's no-copy optimization.
    ``train_on_model_index``
        Train inner layers directly on scaled next-layer model indexes
        (Section 4.1), saving a multiply+divide per lookup.
    ``cs_fallback``
        Replace a cubic-spline model by a linear spline when the linear
        spline has the lower maximum training error (footnote 1).
    ``grouped_fit``
        Train multi-model layers with the grouped closed-form fitters
        (all segments at once, NumPy reductions) instead of the
        per-segment Python loop.  Both paths produce the same models —
        bit-exact for the spline families, up to summation order (a few
        ulp) for the mean-based ones; disable for the per-segment
        Listing-1 reference semantics.
    ``kernels``
        Kernel backend for the batch lookup hot path: a registry name
        (``"numpy"``/``"numba"``/``"cext"``), ``"auto"``, or ``None``
        to follow the process default / ``REPRO_KERNELS`` environment
        chain (see :mod:`repro.kernels`).  Compiled backends serve
        ``lookup_batch``/``predict_batch``/``serve_batch`` through the
        fused packed-array kernels; all backends are bit-identical, so
        this only affects speed.
    """

    def __init__(
        self,
        keys: np.ndarray,
        layer_sizes: Sequence[int] = (1024,),
        model_types: Sequence[str | type[Model]] = ("ls", "lr"),
        bound_type: "str | type[ErrorBounds]" = "labs",
        search: str = "bin",
        copy_keys: bool = False,
        train_on_model_index: bool = True,
        cs_fallback: bool = True,
        grouped_fit: bool = True,
        kernels: "str | None" = None,
    ) -> None:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            raise ValueError("cannot build an RMI over an empty key array")
        if np.any(keys[1:] < keys[:-1]):
            raise ValueError("keys must be sorted in non-decreasing order")
        if len(model_types) != len(layer_sizes) + 1:
            raise ValueError(
                "need one model type per layer: "
                f"{len(layer_sizes) + 1} layers but {len(model_types)} types"
            )
        if any(s < 1 for s in layer_sizes):
            raise ValueError("layer sizes must be positive")

        self.keys = keys
        self.n = len(keys)
        self.layer_sizes = [1, *map(int, layer_sizes)]
        self.model_types = [resolve_model_type(t) for t in model_types]
        self.search_name = search
        self._search = resolve_search_algorithm(search)
        self.bound_type = resolve_bound_type(bound_type)
        self.copy_keys = copy_keys
        self.train_on_model_index = train_on_model_index
        self.cs_fallback = cs_fallback
        self.grouped_fit = grouped_fit
        self.kernels = kernels
        self._packed_cache: "tuple | None" = None

        self.layers: list[LayerTable] = []
        self.bounds: ErrorBounds = NoBounds(self.n)
        self.build_stats = BuildStats()
        self._leaf_model_ids: np.ndarray | None = None
        self._leaf_linear: tuple[np.ndarray, np.ndarray] | None = None
        self._build()

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def _build(self) -> None:
        stats = BuildStats(
            fit_path="grouped" if self.grouped_fit else "per_segment"
        )
        n = self.n
        positions = np.arange(n, dtype=np.float64)
        num_layers = len(self.layer_sizes)

        # Current key->model assignment, non-decreasing when the no-copy
        # path applies.  ``order`` maps the training order back to array
        # positions (identity unless a non-monotonic model interleaved
        # segments or copy_keys forced the reference path).  While it
        # stays the identity, the per-layer gathers/scatters through it
        # are skipped entirely.
        assign = np.zeros(n, dtype=np.int64)
        order = np.arange(n, dtype=np.int64)
        identity_order = True

        for depth in range(num_layers):
            fanout = self.layer_sizes[depth]
            model_type = self.model_types[depth]
            last_layer = depth == num_layers - 1
            next_fanout = None if last_layer else self.layer_sizes[depth + 1]

            # --- gather keys per model -------------------------------
            t0 = time.perf_counter()
            # A monotonic single-model previous layer produces
            # non-decreasing assignments by construction, letting both
            # the O(n) ordering scan and the stable argsort be skipped.
            # Multi-model layers do not qualify even when every model
            # is monotone: independently fitted neighbours can still
            # cross at segment boundaries.
            ordered_known = depth == 0 or (
                len(self.layers[depth - 1]) == 1
                and self.layers[depth - 1][0].is_monotonic()
            )
            if self.copy_keys or (
                not ordered_known and np.any(np.diff(assign) < 0)
            ):
                perm = np.argsort(assign, kind="stable")
                order = order[perm]
                assign = assign[perm]
                identity_order = False
            ordered_keys = self.keys if identity_order else self.keys[order]
            if self.copy_keys:
                # Reference algorithm: physically materialize per-model
                # key arrays (Listing 1, line 11).
                ordered_keys = ordered_keys.copy()
                stats.keys_copied += n
            if fanout == 1:
                counts = np.asarray([n], dtype=np.int64)
            else:
                counts = np.bincount(assign, minlength=fanout)
            offsets = np.concatenate(([0], np.cumsum(counts)))
            t1 = time.perf_counter()
            if depth > 0:
                stats.segment_seconds += t1 - t0

            # --- choose targets --------------------------------------
            ordered_positions = (
                positions if identity_order else positions[order]
            )
            if last_layer:
                targets = ordered_positions
            elif self.train_on_model_index:
                targets = ordered_positions * (next_fanout / n)
            else:
                targets = ordered_positions

            # --- train models ----------------------------------------
            t2 = time.perf_counter()
            fitter = (
                grouped_fitter(model_type, self.cs_fallback)
                if self.grouped_fit and fanout > 1
                else None
            )
            if fitter is not None:
                codes, params = fitter(ordered_keys, targets, offsets)
                layer = LayerTable(codes, params)
                layer_fit_path = "grouped"
            else:
                # Per-segment reference path: fanout-1 layers (nothing
                # to group — and fitting the root per segment keeps it
                # bit-identical to the reference, so downstream segment
                # assignments match exactly), model families without a
                # grouped fitter, and the grouped_fit=False escape.
                # grouped_fit=False also keeps the layer in object form,
                # so whole-layer evaluation runs the reference per-model
                # loops rather than the SoA gathers.
                layer = LayerTable.from_models(
                    [
                        _fit_model(
                            model_type,
                            ordered_keys[offsets[j] : offsets[j + 1]],
                            targets[offsets[j] : offsets[j + 1]],
                            self.cs_fallback,
                        )
                        for j in range(fanout)
                    ],
                    soa=self.grouped_fit,
                )
                layer_fit_path = "per_segment"
            if fanout > 1:
                stats.fit_path = layer_fit_path
            self.layers.append(layer)
            t3 = time.perf_counter()
            if depth == 0:
                stats.train_root_seconds += t3 - t2
            else:
                stats.train_leaves_seconds += t3 - t2

            # --- assign keys to the next layer ------------------------
            if not last_layer:
                t4 = time.perf_counter()
                if fanout == 1:
                    preds = _predict_routed(layer, ordered_keys, None)
                else:
                    seg_ids = np.repeat(
                        np.arange(fanout, dtype=np.int64), counts
                    )
                    preds = _predict_routed(layer, ordered_keys, seg_ids)
                stats.keys_touched += n
                assign = _assignments(
                    preds, next_fanout, n, self.train_on_model_index
                )
                stats.segment_seconds += time.perf_counter() - t4
            elif identity_order:
                self._leaf_model_ids = assign
            else:
                leaf_ids = np.empty(n, dtype=np.int64)
                leaf_ids[order] = assign
                self._leaf_model_ids = leaf_ids

        self._cache_linear_leaves()

        # --- error bounds --------------------------------------------
        # With NB the last layer is never evaluated during the build
        # (paper Section 7: "the second layer is never evaluated
        # because we do not compute bounds"), which is what makes NB
        # builds cheaper in Figure 11c.
        if self.bound_type is NoBounds:
            self.bounds = NoBounds(n)
        else:
            t5 = time.perf_counter()
            preds = self._predict_positions(self.keys, self._leaf_model_ids)
            stats.keys_touched += n
            self.bounds = compute_bounds(
                self.bound_type,
                preds,
                np.arange(n, dtype=np.int64),
                self._leaf_model_ids,
                self.layer_sizes[-1],
                n,
            )
            stats.bounds_seconds += time.perf_counter() - t5
        self.build_stats = stats

    def _cache_linear_leaves(self) -> None:
        """Cache leaf parameters as arrays when all leaves are linear.

        The paper restricts last-layer models to LR and LS (both linear),
        so batch lookups can evaluate the whole last layer with two
        gathers and a fused multiply-add.  Only models that are linear
        *in the key* qualify — LogLinear also carries a slope/intercept
        pair but is linear in ``log1p(x)`` and must not be fused here.
        """
        leaves = self.layers[-1]
        if hasattr(leaves, "linear_params"):
            self._leaf_linear = leaves.linear_params()
            return
        from .models import LinearRegression, LinearSpline

        slopes = np.empty(len(leaves), dtype=np.float64)
        intercepts = np.empty(len(leaves), dtype=np.float64)
        for j, m in enumerate(leaves):
            if isinstance(m, (LinearRegression, LinearSpline)):
                slopes[j] = m.slope
                intercepts[j] = m.intercept
            elif isinstance(m, ConstantModel):
                slopes[j] = 0.0
                intercepts[j] = m.value
            else:
                self._leaf_linear = None
                return
        self._leaf_linear = (slopes, intercepts)

    # ------------------------------------------------------------------
    # Kernel backend dispatch
    # ------------------------------------------------------------------

    def _packed_rmi(self):
        """Kernel-ready packing of this RMI, cached until mutation.

        The cache token is the bounds object's identity plus every
        layer's mutation counter, so in-place model replacement
        (``rmi.layers[d][j] = model``) or a bounds swap re-packs on the
        next batch call.  Returns ``None`` for representations the
        kernels cannot evaluate (object-mode layers, extension model
        families, custom bounds) -- callers then stay on the staged
        NumPy path.
        """
        versions = tuple(getattr(l, "_version", 0) for l in self.layers)
        cached = self._packed_cache
        if (
            cached is not None
            and cached[0] is self.bounds
            and cached[1] == versions
        ):
            return cached[2]
        from ..kernels import pack_rmi

        packed = pack_rmi(self)
        self._packed_cache = (self.bounds, versions, packed)
        return packed

    def _kernel_state(self):
        """``(backend, packed)`` when a compiled backend serves this RMI.

        ``None`` keeps the staged NumPy batch path: the active backend
        is not compiled, or this RMI is not packable.
        """
        from ..kernels import get_backend

        backend = get_backend(self.kernels)
        if not backend.compiled:
            return None
        packed = self._packed_rmi()
        if packed is None:
            return None
        return backend, packed

    def warm_kernels(self) -> None:
        """Compile/load the active backend's kernels off the hot path.

        Idempotent.  Runs a one-element ``serve_batch`` probe so every
        kernel entry point (routing, prediction, bounded search, fused
        serve) is compiled -- or loaded from the JIT cache -- before
        live traffic arrives.
        """
        from ..kernels import get_backend

        get_backend(self.kernels).warmup()
        probe = self.keys[:1]
        self.serve_batch(probe, probe, probe)

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------

    def _route_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized Equation 3: map queries to last-layer model ids."""
        assign = np.zeros(len(queries), dtype=np.int64)
        for depth in range(len(self.layer_sizes) - 1):
            layer = self.layers[depth]
            next_fanout = self.layer_sizes[depth + 1]
            preds = _predict_routed(layer, queries, assign)
            assign = _assignments(
                preds, next_fanout, self.n, self.train_on_model_index
            )
        return assign

    def _predict_positions(
        self, queries: np.ndarray, model_ids: np.ndarray
    ) -> np.ndarray:
        """Clamped integral position estimates for given leaf routing."""
        if self._leaf_linear is not None:
            slopes, intercepts = self._leaf_linear
            est = slopes[model_ids] * queries.astype(np.float64) + intercepts[
                model_ids
            ]
        else:
            est = _predict_routed(self.layers[-1], queries, model_ids)
        est = np.clip(np.nan_to_num(est), 0.0, float(self.n - 1))
        return est.astype(np.int64)

    def predict_batch(self, queries: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized prediction: ``(model_ids, position_estimates)``."""
        queries = np.asarray(queries, dtype=np.uint64)
        state = self._kernel_state()
        if state is not None:
            backend, packed = state
            return backend.rmi_predict(packed, queries)
        model_ids = self._route_batch(queries)
        return model_ids, self._predict_positions(queries, model_ids)

    def predict(self, key: int) -> tuple[int, int]:
        """Predict ``(leaf model id, position estimate)`` for one key."""
        ids, preds = self.predict_batch(np.asarray([key], dtype=np.uint64))
        return int(ids[0]), int(preds[0])

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, key: int) -> int:
        """Lower-bound lookup: smallest index with ``keys[i] >= key``."""
        return self.lookup_traced(key).position

    def lookup_traced(self, key: int) -> LookupTrace:
        """Lookup returning instrumentation for the cost model."""
        model_id, pred = self.predict(int(key))
        lo, hi = self.bounds.interval(pred, model_id)
        lo = max(lo, 0)
        hi = min(hi, self.n - 1)
        result = self._search(self.keys, key, lo, hi, pred)
        position, comparisons = result.position, result.comparisons
        # Containment is only guaranteed for keys present in the array;
        # fall back to an unrestricted search when a miss escapes the
        # interval (possible for absent keys under tight bounds).
        if self.bounds.provides_bounds:
            position, comparisons = self._escape_interval(
                key, position, comparisons, lo, hi
            )
        return LookupTrace(
            position=position,
            model_evaluations=len(self.layer_sizes),
            comparisons=comparisons,
            interval_size=hi - lo + 1,
            prediction=pred,
        )

    def _escape_interval(
        self, key: int, position: int, comparisons: int, lo: int, hi: int
    ) -> tuple[int, int]:
        """Repair interval-relative results for out-of-bounds misses."""
        if position == lo and lo > 0 and self.keys[lo - 1] >= key:
            # The key left of the interval is still >= key, so the true
            # lower bound lies further left (absent key or duplicates
            # spilling over the interval edge).
            result = self._search(self.keys, key, 0, lo - 1, lo - 1)
            return result.position, comparisons + result.comparisons
        if position == hi + 1 and hi + 1 < self.n:
            # Everything in the interval is < key; continue right.
            result = self._search(self.keys, key, hi + 1, self.n - 1, hi + 1)
            return result.position, comparisons + result.comparisons
        return position, comparisons

    def range_query(self, low: int, high: int) -> tuple[int, int]:
        """Keys in ``[low, high)`` as ``(start position, count)``."""
        if high < low:
            raise ValueError("range_query requires low <= high")
        start = self.lookup(low)
        end = self.lookup(high)
        return start, end - start

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized lower-bound lookup (binary error correction).

        Used by the workload runner for wall-clock throughput; performs
        the same window-restricted work as scalar lookups with ``bin``
        search, batched across queries.
        """
        queries = np.asarray(queries, dtype=np.uint64)
        state = self._kernel_state()
        if state is not None:
            backend, packed = state
            return backend.rmi_lookup(packed, self.keys, queries)
        model_ids, preds = self.predict_batch(queries)
        lo, hi = self.bounds.intervals(preds, model_ids)
        lo = np.clip(lo, 0, self.n - 1)
        hi = np.clip(hi, 0, self.n - 1)
        # The shared completion repairs misses that escaped their
        # interval (absent keys or duplicate runs crossing the edge),
        # the batch counterpart of _escape_interval.
        return batch_lower_bound_window(self.keys, queries, lo, hi)

    def range_query_batch(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`range_query`: ``(start positions, counts)``."""
        lows = np.asarray(lows, dtype=np.uint64)
        highs = np.asarray(highs, dtype=np.uint64)
        if len(lows) != len(highs):
            raise ValueError("range_query_batch needs equal-length bounds")
        if np.any(highs < lows):
            raise ValueError("range_query_batch requires low <= high")
        starts = self.lookup_batch(lows)
        ends = self.lookup_batch(highs)
        return starts, ends - starts

    def serve_batch(
        self,
        point_queries: np.ndarray,
        range_lows: np.ndarray,
        range_highs: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fused serving unit: ``(positions, range_starts, range_counts)``.

        Same contract as ``OrderedIndex.serve_batch``.  On a compiled
        backend the whole batch -- routing, prediction, bounded search
        with escape repair, for points and both range boundaries --
        runs in one kernel call without returning to Python between
        stages.
        """
        points = np.asarray(point_queries, dtype=np.uint64)
        lows = np.asarray(range_lows, dtype=np.uint64)
        highs = np.asarray(range_highs, dtype=np.uint64)
        if len(lows) != len(highs):
            raise ValueError("serve_batch needs equal-length range bounds")
        if np.any(highs < lows):
            raise ValueError("serve_batch requires low <= high")
        state = self._kernel_state()
        if state is not None:
            backend, packed = state
            return backend.rmi_serve(packed, self.keys, points, lows, highs)
        if len(points):
            positions = self.lookup_batch(points)
        else:
            positions = np.empty(0, dtype=np.int64)
        if len(lows):
            starts = self.lookup_batch(lows)
            counts = self.lookup_batch(highs) - starts
        else:
            starts = np.empty(0, dtype=np.int64)
            counts = np.empty(0, dtype=np.int64)
        return positions, starts, counts

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def leaf_model_ids(self) -> np.ndarray:
        """Last-layer model id of every indexed key (training routing)."""
        assert self._leaf_model_ids is not None
        return self._leaf_model_ids

    def size_in_bytes(self) -> int:
        """Index size: all model parameters plus stored error bounds.

        Matches the paper's accounting: the sorted data array itself is
        not part of the index.
        """
        model_bytes = sum(
            layer.size_in_bytes()
            if hasattr(layer, "size_in_bytes")
            else sum(m.size_in_bytes() for m in layer)
            for layer in self.layers
        )
        return model_bytes + self.bounds.size_in_bytes()

    def describe(self) -> str:
        """Human-readable configuration string, e.g. ``LS→LR (2^10), LAbs``."""
        arrow = "→".join(t.abbreviation.upper() for t in self.model_types)
        sizes = ",".join(str(s) for s in self.layer_sizes[1:])
        return f"{arrow} ({sizes}), {self.bounds.abbreviation.upper()}, {self.search_name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RMI {self.describe()} over {self.n} keys>"


def build_rmi_layers(
    keys: np.ndarray,
    root: str = "ls",
    leaf: str = "lr",
    num_leaf_models: int = 1024,
    **kwargs,
) -> RMI:
    """Convenience constructor for the two-layer RMIs of the paper."""
    return RMI(
        keys,
        layer_sizes=[num_leaf_models],
        model_types=(root, leaf),
        **kwargs,
    )
