"""Core RMI implementation: the paper's primary subject.

Public surface:

* :class:`~repro.core.rmi.RMI` -- the recursive model index.
* Model types (Table 2), error bounds (Table 3), search algorithms
  (Table 4) with their registries.
* Structural analyses of Section 5 (:mod:`repro.core.analysis`).
* A CDFShop-style configuration optimizer (:mod:`repro.core.optimizer`).
"""

from .advisor import (Recommendation, WorkloadRequirements,
                      eligible_families, recommend_index)
from .analysis import (
    IntervalStats,
    PredictionErrorStats,
    SegmentationStats,
    interval_sizes,
    interval_stats,
    prediction_errors,
    root_approximation,
    segment_keys,
    segmentation_stats,
)
from .builder import (
    DEFAULT_CONFIG,
    LAYER2_SIZE_SWEEP,
    LEAF_MODEL_TYPES,
    ROOT_MODEL_TYPES,
    RMIConfig,
    build_rmi,
    guideline_config,
)
from .bounds import (
    BOUND_TYPES,
    ErrorBounds,
    GlobalAbsoluteBounds,
    GlobalIndividualBounds,
    LocalAbsoluteBounds,
    LocalIndividualBounds,
    NoBounds,
    compute_bounds,
    resolve_bound_type,
)
from .models import (
    MODEL_TYPES,
    ConstantModel,
    CubicSpline,
    LinearRegression,
    LinearSpline,
    Model,
    Radix,
    resolve_model_type,
)
from .models_more import LogLinear, LogNormalCdf, NormalCdf
from .neural import NeuralNet
from .optimizer import OptimizerResult, grid_search, pareto_front
from .rmi import RMI, BuildStats, LookupTrace, build_rmi_layers
from .robust import OutlierSplit, RobustRMI, detect_outliers
from .serialize import load_rmi, save_rmi
from .validate import ValidationReport, validate_rmi
from .search import (
    SEARCH_ALGORITHMS,
    SearchResult,
    binary_search,
    exponential_search,
    linear_search,
    model_biased_binary_search,
    model_biased_exponential_search,
    model_biased_linear_search,
    resolve_search_algorithm,
)

__all__ = [
    "eligible_families",
    "recommend_index",
    "WorkloadRequirements",
    "Recommendation",
    "LogLinear",
    "NormalCdf",
    "LogNormalCdf",
    "save_rmi",
    "load_rmi",
    "validate_rmi",
    "ValidationReport",
    "NeuralNet",
    "RobustRMI",
    "OutlierSplit",
    "detect_outliers",
    "RMIConfig",
    "DEFAULT_CONFIG",
    "build_rmi",
    "guideline_config",
    "ROOT_MODEL_TYPES",
    "LEAF_MODEL_TYPES",
    "LAYER2_SIZE_SWEEP",
    "SegmentationStats",
    "segment_keys",
    "segmentation_stats",
    "root_approximation",
    "PredictionErrorStats",
    "prediction_errors",
    "IntervalStats",
    "interval_sizes",
    "interval_stats",
    "OptimizerResult",
    "grid_search",
    "pareto_front",
    "RMI",
    "BuildStats",
    "LookupTrace",
    "build_rmi_layers",
    "Model",
    "ConstantModel",
    "LinearRegression",
    "LinearSpline",
    "CubicSpline",
    "Radix",
    "MODEL_TYPES",
    "resolve_model_type",
    "ErrorBounds",
    "LocalIndividualBounds",
    "LocalAbsoluteBounds",
    "GlobalIndividualBounds",
    "GlobalAbsoluteBounds",
    "NoBounds",
    "BOUND_TYPES",
    "compute_bounds",
    "resolve_bound_type",
    "SearchResult",
    "binary_search",
    "model_biased_binary_search",
    "model_biased_linear_search",
    "model_biased_exponential_search",
    "linear_search",
    "exponential_search",
    "SEARCH_ALGORITHMS",
    "resolve_search_algorithm",
]
