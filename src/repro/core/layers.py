"""Struct-of-arrays (SoA) layer tables for RMIs.

A trained RMI layer is logically a list of models, but storing it as one
Python object per segment makes every whole-layer operation (training,
routing, bounds, size accounting) a Python loop.  :class:`LayerTable`
stores a layer as two arrays instead:

``codes``
    ``int8`` model-family code per segment (:data:`SOA_MODEL_CODES`);
``params``
    ``(fanout, SOA_PARAM_COLUMNS)`` float64 parameter matrix, rows laid
    out in dataclass field order — the same layout ``core/serialize.py``
    writes to disk.

Individual :class:`~repro.core.models.Model` objects are materialized
lazily on ``layer[j]`` access and cached, so code written against the
list-of-models interface (``layers[d][j]``, iteration, ``len``) keeps
working unchanged.  Layers containing model types outside the SoA
registry (e.g. the neural extension) fall back to plain object storage
with the same interface.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from .models import (
    SOA_CODE_MODELS,
    SOA_MODEL_CODES,
    SOA_MODEL_SIZES,
    SOA_PARAM_COLUMNS,
    ConstantModel,
    LinearRegression,
    LinearSpline,
    Model,
)

__all__ = ["LayerTable"]

_CONST_CODE = SOA_MODEL_CODES[ConstantModel]
_LR_CODE = SOA_MODEL_CODES[LinearRegression]
_LS_CODE = SOA_MODEL_CODES[LinearSpline]


class LayerTable:
    """One RMI layer as a struct-of-arrays parameter table.

    Construct either from SoA arrays (``LayerTable(codes, params)``,
    the grouped-fit output) or from model objects
    (:meth:`from_models`).  The table behaves like a read-mostly list
    of models; assigning ``layer[j] = model`` updates the underlying
    parameter row (or demotes the table to object storage for
    unregistered model types).
    """

    def __init__(self, codes: np.ndarray, params: np.ndarray) -> None:
        codes = np.asarray(codes, dtype=np.int8)
        params = np.asarray(params, dtype=np.float64)
        if params.shape != (len(codes), SOA_PARAM_COLUMNS):
            raise ValueError(
                f"params shape {params.shape} does not match "
                f"({len(codes)}, {SOA_PARAM_COLUMNS})"
            )
        self.codes: "np.ndarray | None" = codes
        self.params: "np.ndarray | None" = params
        self._cache: dict[int, Model] = {}
        self._objects: "list[Model] | None" = None
        # Mutation counter: bumped by __setitem__ so consumers caching
        # derived views (the kernels' PackedRMI) can detect staleness.
        self._version = 0

    @classmethod
    def from_models(
        cls, models: Sequence[Model], soa: bool = True
    ) -> "LayerTable":
        """Wrap a list of models, extracting SoA arrays when possible.

        Falls back to object storage if any model's type is not in the
        SoA registry.  ``soa=False`` skips the extraction and stores
        objects unconditionally — the reference representation, whose
        whole-layer operations run the per-model Python loops (used by
        ``grouped_fit=False`` builds to preserve pre-SoA semantics).
        """
        models = list(models)
        if soa and all(type(m) in SOA_MODEL_CODES for m in models):
            codes = np.asarray(
                [SOA_MODEL_CODES[type(m)] for m in models], dtype=np.int8
            )
            params = (
                np.asarray([m.soa_row() for m in models], dtype=np.float64)
                if models
                else np.zeros((0, SOA_PARAM_COLUMNS), dtype=np.float64)
            )
            table = cls(codes, params)
            table._cache = dict(enumerate(models))
            return table
        table = cls.__new__(cls)
        table.codes = None
        table.params = None
        table._cache = {}
        table._objects = list(models)
        table._version = 0
        return table

    # -- list-of-models interface --------------------------------------

    def __len__(self) -> int:
        if self._objects is not None:
            return len(self._objects)
        assert self.codes is not None
        return len(self.codes)

    def __getitem__(self, j: int) -> Model:
        if self._objects is not None:
            return self._objects[j]
        assert self.codes is not None and self.params is not None
        j = int(j)
        if j < 0:
            j += len(self.codes)
        if not 0 <= j < len(self.codes):
            raise IndexError(j)
        model = self._cache.get(j)
        if model is None:
            model = SOA_CODE_MODELS[int(self.codes[j])].from_soa_row(
                self.params[j]
            )
            self._cache[j] = model
        return model

    def __setitem__(self, j: int, model: Model) -> None:
        self._version += 1
        if self._objects is not None:
            self._objects[j] = model
            return
        assert self.codes is not None and self.params is not None
        j = int(j)
        if j < 0:
            j += len(self.codes)
        if type(model) in SOA_MODEL_CODES:
            self.codes[j] = SOA_MODEL_CODES[type(model)]
            self.params[j] = model.soa_row()
            self._cache[j] = model
        else:
            # Unregistered type: demote the whole layer to object mode.
            self._objects = [self[i] for i in range(len(self))]
            self._objects[j] = model
            self.codes = None
            self.params = None
            self._cache = {}

    def __iter__(self) -> Iterator[Model]:
        for j in range(len(self)):
            yield self[j]

    # -- whole-layer operations ----------------------------------------

    def predict_routed(
        self, queries: np.ndarray, model_ids: np.ndarray
    ) -> np.ndarray:
        """Evaluate model ``model_ids[i]`` on ``queries[i]`` for all i.

        The SoA path is one parameter gather plus one ``eval_soa`` call
        per distinct model family present among the routed rows (at
        most a handful); results are bit-identical to calling each
        model's ``predict_batch``.
        """
        if len(self) == 1:
            return self[0].predict_batch(queries)
        if self._objects is not None:
            out = np.empty(len(queries), dtype=np.float64)
            for j in np.unique(model_ids):
                mask = model_ids == j
                out[mask] = self._objects[j].predict_batch(queries[mask])
            return out
        assert self.codes is not None and self.params is not None
        rows = self.params[model_ids]
        row_codes = self.codes[model_ids]
        present = np.unique(row_codes)
        if len(present) == 1:
            return SOA_CODE_MODELS[int(present[0])].eval_soa(rows, queries)
        out = np.empty(len(queries), dtype=np.float64)
        for code in present:
            mask = row_codes == code
            out[mask] = SOA_CODE_MODELS[int(code)].eval_soa(
                rows[mask], queries[mask]
            )
        return out

    def linear_params(self) -> "tuple[np.ndarray, np.ndarray] | None":
        """``(slopes, intercepts)`` when every model is linear in x.

        Only ConstantModel / LinearRegression / LinearSpline qualify —
        notably *not* LogLinear, which also stores a slope/intercept
        pair but is linear in ``log1p(x)``.  Returns ``None`` for mixed
        layers.
        """
        if self._objects is not None:
            slopes = np.empty(len(self._objects), dtype=np.float64)
            intercepts = np.empty(len(self._objects), dtype=np.float64)
            for j, m in enumerate(self._objects):
                if isinstance(m, (LinearRegression, LinearSpline)):
                    slopes[j] = m.slope
                    intercepts[j] = m.intercept
                elif isinstance(m, ConstantModel):
                    slopes[j] = 0.0
                    intercepts[j] = m.value
                else:
                    return None
            return slopes, intercepts
        assert self.codes is not None and self.params is not None
        if not bool(
            np.isin(self.codes, (_CONST_CODE, _LR_CODE, _LS_CODE)).all()
        ):
            return None
        is_const = self.codes == _CONST_CODE
        slopes = np.where(is_const, 0.0, self.params[:, 0])
        intercepts = np.where(is_const, self.params[:, 0], self.params[:, 1])
        return slopes, intercepts

    def size_in_bytes(self) -> int:
        """Parameter bytes of the whole layer (Table 2 accounting)."""
        if self._objects is not None:
            return sum(m.size_in_bytes() for m in self._objects)
        assert self.codes is not None
        values, counts = np.unique(self.codes, return_counts=True)
        return int(
            sum(SOA_MODEL_SIZES[int(c)] * int(k) for c, k in zip(values, counts))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "objects" if self._objects is not None else "soa"
        return f"<LayerTable {len(self)} models, {mode}>"
