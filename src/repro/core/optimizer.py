"""CDFShop-style grid-search optimizer for RMI configurations.

Marcus et al. [23] ship an automatic optimizer that grid-searches model
types and second-layer sizes and reports Pareto-optimal configurations
with respect to lookup time and index size.  The paper under
reproduction deliberately analyses hyperparameters one at a time
instead, but uses the optimizer's recommendations (e.g. LAbs as default
bounds) as reference points -- so we provide the optimizer too.

The lookup-cost proxy is machine-independent: the number of model
evaluations (weighted by each model type's evaluation cost) plus the
expected binary-search comparisons ``log2(median interval size + 1)``.
The proxy ranks configurations the same way the paper's timing
experiments do (accuracy dominates; see Sections 5.2 and 6.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .analysis import interval_sizes
from .builder import LEAF_MODEL_TYPES, ROOT_MODEL_TYPES, RMIConfig
from .rmi import RMI

__all__ = ["OptimizerResult", "grid_search", "pareto_front", "lookup_cost_proxy"]


@dataclass(frozen=True)
class OptimizerResult:
    """One evaluated configuration with its size and cost proxy."""

    config: RMIConfig
    size_bytes: int
    lookup_cost: float
    median_interval: float
    build_seconds: float

    def dominates(self, other: "OptimizerResult") -> bool:
        """Pareto dominance: no worse in both size and cost, better in one."""
        return (
            self.size_bytes <= other.size_bytes
            and self.lookup_cost <= other.lookup_cost
            and (
                self.size_bytes < other.size_bytes
                or self.lookup_cost < other.lookup_cost
            )
        )


def lookup_cost_proxy(rmi: RMI) -> tuple[float, float]:
    """Machine-independent lookup cost: ``(cost, median interval)``.

    Cost = summed evaluation units along the model path + expected
    binary-search comparisons over the median error interval.
    """
    eval_units = sum(
        layer[0].eval_cost_units if layer else 0.0 for layer in rmi.layers
    )
    med = float(np.median(interval_sizes(rmi)))
    comparisons = float(np.log2(med + 1.0))
    return eval_units + comparisons, med


def _evaluate_config(keys: np.ndarray, config: RMIConfig) -> OptimizerResult:
    """Build one configuration and measure its size/cost proxies.

    Module-level (not a closure) so :func:`grid_search` can dispatch it
    to worker processes via :mod:`repro.bench.parallel`.
    """
    rmi = config.build(keys)
    cost, med = lookup_cost_proxy(rmi)
    return OptimizerResult(
        config=config,
        size_bytes=rmi.size_in_bytes(),
        lookup_cost=cost,
        median_interval=med,
        build_seconds=rmi.build_stats.total_seconds,
    )


def grid_search(
    keys: np.ndarray,
    layer2_sizes: Sequence[int],
    root_types: Iterable[str] = ROOT_MODEL_TYPES,
    leaf_types: Iterable[str] = LEAF_MODEL_TYPES,
    bound_type: str = "labs",
    jobs: int = 1,
    grouped_fit: bool = True,
) -> list[OptimizerResult]:
    """Evaluate the full (root, leaf, size) grid on ``keys``.

    Returns every evaluated configuration in deterministic
    (root, leaf, size) order regardless of ``jobs``; feed the result
    through :func:`pareto_front` for the CDFShop-style recommendation
    set.  ``jobs > 1`` builds configurations in a process pool (the
    keys array is shared with workers once, not per task).
    """
    configs = [
        RMIConfig(
            model_types=(root, leaf),
            layer_sizes=(int(size),),
            bound_type=bound_type,
            grouped_fit=grouped_fit,
        )
        for root in root_types
        for leaf in leaf_types
        for size in layer2_sizes
    ]
    if jobs > 1:
        # Imported lazily: core must stay importable without bench.
        from repro.bench.parallel import pool_map_keys

        return pool_map_keys(_evaluate_config, keys, configs, jobs=jobs)
    return [_evaluate_config(keys, config) for config in configs]


def pareto_front(results: Sequence[OptimizerResult]) -> list[OptimizerResult]:
    """Pareto-optimal subset w.r.t. (size, lookup cost), sorted by size."""
    front = [
        r
        for r in results
        if not any(other.dominates(r) for other in results if other is not r)
    ]
    return sorted(front, key=lambda r: (r.size_bytes, r.lookup_cost))
