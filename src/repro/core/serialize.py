"""Persist trained RMIs to disk.

Training an RMI over hundreds of millions of keys takes seconds to
minutes (Section 7); a production deployment trains once and serves
many processes.  This module saves a trained
:class:`~repro.core.rmi.RMI` to a single ``.npz`` file and restores it
without retraining.

Format: one parameter matrix per layer (models of the Table 2 families
have a fixed number of scalar parameters) plus a per-model type code --
necessary because the CS→LS fallback (footnote 1) produces mixed-type
layers -- the error-bound payload, and the configuration needed to
rebuild the lookup path.  The indexed key array itself is stored
optionally (``include_keys``): real deployments usually map the data
array from elsewhere.

Models with array-valued parameters (the neural extension) are out of
scope for the matrix format and rejected with ``TypeError``.
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path

import numpy as np

from .bounds import (
    GlobalAbsoluteBounds,
    GlobalIndividualBounds,
    LocalAbsoluteBounds,
    LocalIndividualBounds,
    NoBounds,
)
from .models import (
    ConstantModel,
    CubicSpline,
    LinearRegression,
    LinearSpline,
    Model,
    Radix,
)
from .rmi import RMI

__all__ = ["save_rmi", "load_rmi", "rmi_payload", "rmi_from_payload"]

#: Type codes for the serializable model families.  Parameter columns
#: are the dataclass fields in declaration order, zero-padded to the
#: widest family (CubicSpline's 6 columns).
_MODEL_CODES: dict[type, int] = {
    ConstantModel: 0,
    LinearRegression: 1,
    LinearSpline: 2,
    CubicSpline: 3,
    Radix: 4,
}
_CODE_MODELS = {code: cls for cls, code in _MODEL_CODES.items()}
_PARAM_COLUMNS = 6


def _model_params(model: Model) -> list[float]:
    if type(model) not in _MODEL_CODES:
        raise TypeError(
            f"{type(model).__name__} is not serializable; only the Table 2 "
            "model families (and ConstantModel) are supported"
        )
    values = [float(getattr(model, f.name))
              for f in dataclasses.fields(model)]
    return values + [0.0] * (_PARAM_COLUMNS - len(values))


def _model_from_params(code: int, params: np.ndarray) -> Model:
    cls = _CODE_MODELS[int(code)]
    fields = dataclasses.fields(cls)
    kwargs = {}
    for field, value in zip(fields, params):
        caster = int if field.type in ("int",) else float
        kwargs[field.name] = caster(value)
    return cls(**kwargs)


def rmi_payload(rmi: RMI, include_keys: bool = True) -> dict:
    """A trained RMI as a dict of arrays (the ``.npz`` member layout).

    This is the serialization format itself, exposed so other persistence
    layers (the artifact cache, most prominently) can embed a trained
    RMI without going through a file path.  ``save_rmi`` is exactly
    ``np.savez_compressed(path, **rmi_payload(rmi))``.
    """
    payload: dict[str, np.ndarray] = {
        "format_version": np.array([1]),
        "n": np.array([rmi.n], dtype=np.int64),
        "layer_sizes": np.asarray(rmi.layer_sizes, dtype=np.int64),
        "train_on_model_index": np.array([int(rmi.train_on_model_index)]),
        "search": np.array([rmi.search_name]),
        "bound_abbrev": np.array([rmi.bounds.abbreviation]),
    }
    for i, layer in enumerate(rmi.layers):
        soa_codes = getattr(layer, "codes", None)
        if soa_codes is not None:
            # SoA layer tables share this module's code/param layout,
            # so they serialize without materializing model objects.
            # Codes beyond the Table 2 families (extension models) are
            # rejected like their object counterparts below.
            if np.any(soa_codes > max(_MODEL_CODES.values())):
                bad = int(np.max(soa_codes))
                from .models import SOA_CODE_MODELS

                raise TypeError(
                    f"{SOA_CODE_MODELS[bad].__name__} is not serializable; "
                    "only the Table 2 model families (and ConstantModel) "
                    "are supported"
                )
            payload[f"layer{i}_codes"] = np.asarray(soa_codes, dtype=np.int8)
            payload[f"layer{i}_params"] = np.asarray(
                layer.params, dtype=np.float64
            )
            continue
        for m in layer:
            if type(m) not in _MODEL_CODES:
                raise TypeError(
                    f"{type(m).__name__} is not serializable; only the "
                    "Table 2 model families (and ConstantModel) are "
                    "supported"
                )
        codes = np.asarray([_MODEL_CODES[type(m)] for m in layer],
                           dtype=np.int8)
        params = np.asarray([_model_params(m) for m in layer],
                            dtype=np.float64)
        payload[f"layer{i}_codes"] = codes
        payload[f"layer{i}_params"] = params
    b = rmi.bounds
    if isinstance(b, LocalIndividualBounds):
        payload["bounds_min"] = b.min_err
        payload["bounds_max"] = b.max_err
    elif isinstance(b, LocalAbsoluteBounds):
        payload["bounds_abs"] = b.abs_err
    elif isinstance(b, GlobalIndividualBounds):
        payload["bounds_min"] = np.array([b.min_err], dtype=np.int64)
        payload["bounds_max"] = np.array([b.max_err], dtype=np.int64)
    elif isinstance(b, GlobalAbsoluteBounds):
        payload["bounds_abs"] = np.array([b.abs_err], dtype=np.int64)
    payload["leaf_model_ids"] = rmi.leaf_model_ids
    if include_keys:
        payload["keys"] = rmi.keys
    return payload


def save_rmi(rmi: RMI, path: "str | os.PathLike",
             include_keys: bool = True) -> None:
    """Serialize a trained RMI to ``path`` (``.npz``)."""
    np.savez_compressed(Path(path), **rmi_payload(rmi, include_keys))


def rmi_from_payload(data, keys: np.ndarray | None = None) -> RMI:
    """Rebuild an RMI from a :func:`rmi_payload`-layout mapping.

    ``data`` is any mapping of member name to array -- an open ``.npz``
    file or a plain dict.  ``keys`` must be supplied when the payload
    was produced with ``include_keys=False`` and must equal the
    training keys (length is verified; the lookup guarantee only holds
    over the original array).
    """
    n = int(data["n"][0])
    if keys is None:
        if "keys" not in data:
            raise ValueError(
                "payload has no embedded keys; pass the key array"
            )
        keys = data["keys"]
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    if len(keys) != n:
        raise ValueError(
            f"key array has {len(keys)} keys but the RMI was trained "
            f"on {n}"
        )

    rmi = RMI.__new__(RMI)
    rmi.keys = keys
    rmi.n = n
    rmi.layer_sizes = [int(s) for s in data["layer_sizes"]]
    rmi.search_name = str(data["search"][0])
    from .search import resolve_search_algorithm

    rmi._search = resolve_search_algorithm(rmi.search_name)
    rmi.train_on_model_index = bool(int(data["train_on_model_index"][0]))
    rmi.copy_keys = False
    rmi.cs_fallback = True
    rmi.grouped_fit = True
    rmi.kernels = None  # deserialized RMIs follow the process default
    rmi._packed_cache = None
    from .rmi import BuildStats

    rmi.build_stats = BuildStats()

    from .layers import LayerTable

    rmi.layers = []
    for i in range(len(rmi.layer_sizes)):
        codes = data[f"layer{i}_codes"]
        params = data[f"layer{i}_params"]
        # The on-disk codes/params layout is exactly the SoA layer
        # layout (shared dataclass-field convention), so layers are
        # restored without materializing per-segment objects.
        rmi.layers.append(
            LayerTable(
                codes.astype(np.int8),
                np.ascontiguousarray(params, dtype=np.float64),
            )
        )
    rmi.model_types = [type(layer[0]) for layer in rmi.layers]

    abbrev = str(data["bound_abbrev"][0])
    num_leaves = rmi.layer_sizes[-1]
    if abbrev == "lind":
        rmi.bounds = LocalIndividualBounds(
            data["bounds_min"].astype(np.int64),
            data["bounds_max"].astype(np.int64),
        )
    elif abbrev == "labs":
        rmi.bounds = LocalAbsoluteBounds(
            data["bounds_abs"].astype(np.int64)
        )
    elif abbrev == "gind":
        rmi.bounds = GlobalIndividualBounds(
            int(data["bounds_min"][0]), int(data["bounds_max"][0])
        )
    elif abbrev == "gabs":
        rmi.bounds = GlobalAbsoluteBounds(int(data["bounds_abs"][0]))
    else:
        rmi.bounds = NoBounds(n)
    rmi.bound_type = type(rmi.bounds)
    del num_leaves

    rmi._leaf_model_ids = data["leaf_model_ids"].astype(np.int64)
    rmi._leaf_linear = None
    rmi._cache_linear_leaves()
    return rmi


def load_rmi(path: "str | os.PathLike",
             keys: np.ndarray | None = None) -> RMI:
    """Restore an RMI saved by :func:`save_rmi` without retraining.

    ``keys`` must be supplied when the file was written with
    ``include_keys=False`` and must equal the training keys (length is
    verified; the lookup guarantee only holds over the original array).
    """
    with np.load(Path(path), allow_pickle=False) as data:
        return rmi_from_payload(data, keys=keys)
