"""Outlier-robust RMI construction (the paper's suggested future work).

Section 6.1 of the paper explains prior work's good fb numbers by a
linear-regression variant that silently ignores the lowest and highest
0.01 % of keys -- and rejects it: the trick "only works if there are at
most 0.01 % of outliers at either end of the key space.  We did not
include this model type in our evaluation because we believe that a
more robust solution potentially involving outlier detection should be
sought."

This module provides that more robust solution:

* :func:`detect_outliers` -- distribution-free detection of extreme
  keys at either end of the key space, based on the gap structure of
  the sorted array: a key is an outlier when the gap separating it from
  the body exceeds ``gap_factor`` times the body's key span.  The 21 fb
  outliers sit beyond gaps that are orders of magnitude larger than the
  entire body, so any sane factor finds exactly them -- without a
  hard-coded trim fraction.
* :class:`RobustRMI` -- an RMI trained on the body only, with the
  detected outlier keys routed through a tiny sorted sidecar array.
  Lookups first check the (almost always empty) outlier ranges, then
  proceed through the body RMI; positions are translated back to the
  full array.

On outlier-free datasets the detector finds nothing and ``RobustRMI``
behaves exactly like a regular RMI (plus two range comparisons per
lookup).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .rmi import RMI

__all__ = ["OutlierSplit", "detect_outliers", "RobustRMI"]


@dataclass(frozen=True)
class OutlierSplit:
    """Result of outlier detection on a sorted key array.

    ``lo``/``hi`` delimit the body: keys ``[lo, hi)`` are the body,
    ``[0, lo)`` are low outliers, ``[hi, n)`` are high outliers.
    """

    lo: int
    hi: int
    n: int

    @property
    def num_low(self) -> int:
        return self.lo

    @property
    def num_high(self) -> int:
        return self.n - self.hi

    @property
    def num_outliers(self) -> int:
        return self.num_low + self.num_high


def detect_outliers(
    keys: np.ndarray,
    gap_factor: float = 2.0,
    max_fraction: float = 0.01,
) -> OutlierSplit:
    """Detect extreme outliers at either end of a sorted key array.

    Robust quantile-core criterion: take the inner 10..90 % of keys as
    the *core* and flag a tail key as an outlier when it lies more than
    ``gap_factor`` core-spans beyond the core's edge.  Because the core
    is quantile-based, the criterion is insensitive to how the outliers
    themselves are distributed (fb's 21 outliers are spread over many
    orders of magnitude -- peeling by local gaps would stall on them).
    At most ``max_fraction`` of the keys are stripped per end.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    n = len(keys)
    if n < 3:
        return OutlierSplit(0, n, n)
    limit = max(int(n * max_fraction), 1)

    core_lo = float(keys[int(n * 0.10)])
    core_hi = float(keys[min(int(n * 0.90), n - 1)])
    margin = gap_factor * max(core_hi - core_lo, 1.0)

    hi = n
    while n - hi < limit and hi > 2 and float(keys[hi - 1]) > core_hi + margin:
        hi -= 1
    lo = 0
    while lo < limit and lo < hi - 2 and float(keys[lo]) < core_lo - margin:
        lo += 1
    return OutlierSplit(lo, hi, n)


class RobustRMI:
    """An RMI that detects and side-steps extreme outliers.

    The body RMI is trained only on ``keys[split.lo : split.hi]``;
    outlier keys live in two tiny sorted ranges that are binary-searched
    directly (they are at most ``max_fraction * n`` keys, typically a
    few dozen).  All positions reported refer to the *full* array, so
    ``lookup`` is a drop-in replacement for :meth:`RMI.lookup`.
    """

    def __init__(self, keys: np.ndarray, gap_factor: float = 2.0,
                 max_fraction: float = 0.01, **rmi_kwargs) -> None:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            raise ValueError("cannot build a RobustRMI over no keys")
        self.keys = keys
        self.n = len(keys)
        self.split = detect_outliers(keys, gap_factor, max_fraction)
        self.body = RMI(keys[self.split.lo : self.split.hi], **rmi_kwargs)

    # -- lookups -----------------------------------------------------------

    def lookup(self, key: int) -> int:
        """Lower-bound position of ``key`` in the full array."""
        key = int(key)
        s = self.split
        if s.num_low and key <= int(self.keys[s.lo - 1]):
            return int(np.searchsorted(self.keys[: s.lo], key, side="left"))
        if s.num_high and key > int(self.keys[s.hi - 1]):
            return s.hi + int(
                np.searchsorted(self.keys[s.hi :], key, side="left")
            )
        return s.lo + self.body.lookup(key)

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized lower-bound lookup over the full array."""
        queries = np.asarray(queries, dtype=np.uint64)
        s = self.split
        out = np.empty(len(queries), dtype=np.int64)
        in_low = (
            queries <= self.keys[s.lo - 1] if s.num_low
            else np.zeros(len(queries), dtype=bool)
        )
        in_high = (
            queries > self.keys[s.hi - 1] if s.num_high
            else np.zeros(len(queries), dtype=bool)
        )
        body_mask = ~(in_low | in_high)
        if in_low.any():
            out[in_low] = np.searchsorted(
                self.keys[: s.lo], queries[in_low], side="left"
            )
        if in_high.any():
            out[in_high] = s.hi + np.searchsorted(
                self.keys[s.hi :], queries[in_high], side="left"
            )
        if body_mask.any():
            out[body_mask] = s.lo + self.body.lookup_batch(queries[body_mask])
        return out

    # -- accounting ---------------------------------------------------------

    def size_in_bytes(self) -> int:
        """Body RMI plus 8 bytes per sidecar outlier key and split
        bookkeeping."""
        return self.body.size_in_bytes() + 8 * self.split.num_outliers + 16

    def describe(self) -> str:
        return (
            f"robust[{self.body.describe()}] "
            f"({self.split.num_outliers} outliers side-stepped)"
        )
