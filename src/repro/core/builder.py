"""Configuration objects and convenience constructors for RMIs.

Encodes the paper's hyperparameter space (Section 4.2) and its final
recommendations (Section 9.1) as first-class, validated configuration
values, so experiments and user code share one vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

import numpy as np

from .bounds import resolve_bound_type
from .models import resolve_model_type
from .rmi import RMI
from .search import resolve_search_algorithm

__all__ = [
    "RMIConfig",
    "build_rmi",
    "DEFAULT_CONFIG",
    "guideline_config",
    "ROOT_MODEL_TYPES",
    "LEAF_MODEL_TYPES",
    "LAYER2_SIZE_SWEEP",
]

#: Root model types evaluated in the paper (Table 2).
ROOT_MODEL_TYPES: tuple[str, ...] = ("lr", "ls", "cs", "rx")

#: Last-layer model types evaluated in the paper ("For the last layer,
#: we only consider LR and LS", Section 4.2).
LEAF_MODEL_TYPES: tuple[str, ...] = ("lr", "ls")

#: The paper sweeps the second-layer size between 2^8 and 2^24 in
#: power-of-two steps (Section 4.2).  Callers slice this to their scale.
LAYER2_SIZE_SWEEP: tuple[int, ...] = tuple(2**e for e in range(8, 25))


@dataclass(frozen=True)
class RMIConfig:
    """A fully specified two-or-more-layer RMI configuration.

    Defaults follow the paper's Section 8 comparison configuration:
    ``LS→LR with LAbs`` and binary search, which "achieved optimal or
    near-optimal lookup performance" in the paper's experiments.
    """

    model_types: tuple[str, ...] = ("ls", "lr")
    layer_sizes: tuple[int, ...] = (1024,)
    bound_type: str = "labs"
    search: str = "bin"
    copy_keys: bool = False
    train_on_model_index: bool = True
    cs_fallback: bool = True
    #: Train multi-model layers with the grouped closed-form fitters and
    #: store them as struct-of-arrays tables.  ``False`` selects the
    #: per-segment reference path (Listing 1 semantics): one ``fit``
    #: call per segment and object-mode layers.
    grouped_fit: bool = True
    #: Kernel backend for the batch lookup hot path (``"numpy"``,
    #: ``"numba"``, ``"cext"``, ``"auto"``); ``None`` follows the
    #: process default / ``REPRO_KERNELS`` chain.  Backends are
    #: bit-identical, so this never affects results -- built-index
    #: artifacts deliberately exclude it from their fingerprints.
    kernels: "str | None" = None

    def __post_init__(self) -> None:
        # Fail fast on invalid names/shapes; the resolvers raise
        # ValueError with the known alternatives.
        for t in self.model_types:
            resolve_model_type(t)
        resolve_bound_type(self.bound_type)
        resolve_search_algorithm(self.search)
        if self.kernels is not None:
            # Name validation only -- availability is resolved at batch
            # time so a config built where numba exists still loads
            # (and falls back or raises there) where it does not.
            from ..kernels import KNOWN_BACKENDS

            if self.kernels not in (*KNOWN_BACKENDS, "auto"):
                known = ", ".join(sorted((*KNOWN_BACKENDS, "auto")))
                raise ValueError(
                    f"unknown kernel backend {self.kernels!r}; "
                    f"known: {known}"
                )
        if len(self.model_types) != len(self.layer_sizes) + 1:
            raise ValueError(
                "model_types must have exactly one more entry than layer_sizes"
            )
        if any(s < 1 for s in self.layer_sizes):
            raise ValueError("layer sizes must be positive")

    @property
    def num_layers(self) -> int:
        return len(self.model_types)

    def describe(self) -> str:
        """Paper-style description, e.g. ``LS→LR (2^10), LAbs, bin``."""
        arrow = "→".join(t.upper() for t in self.model_types)
        sizes = ",".join(
            f"2^{int(np.log2(s))}" if s & (s - 1) == 0 else str(s)
            for s in self.layer_sizes
        )
        return f"{arrow} ({sizes}), {self.bound_type.upper()}, {self.search}"

    def with_layer2_size(self, size: int) -> "RMIConfig":
        """Copy of this config with a different (two-layer) second layer."""
        return replace(self, layer_sizes=(int(size),) + self.layer_sizes[1:])

    def build(self, keys: np.ndarray) -> RMI:
        """Train an RMI with this configuration over ``keys``."""
        return RMI(
            keys,
            layer_sizes=self.layer_sizes,
            model_types=self.model_types,
            bound_type=self.bound_type,
            search=self.search,
            copy_keys=self.copy_keys,
            train_on_model_index=self.train_on_model_index,
            cs_fallback=self.cs_fallback,
            grouped_fit=self.grouped_fit,
            kernels=self.kernels,
        )


#: The fixed configuration used in the paper's Section 8 comparison.
DEFAULT_CONFIG = RMIConfig()


def guideline_config(num_keys: int) -> RMIConfig:
    """The paper's Section 9.1 guideline configuration for a dataset.

    * spline root, ``LS`` preferred;
    * ``LR`` on the second layer;
    * second-layer size of at least 0.01 % of the number of keys
      (rounded up to the next power of two, clamped to [2^8, 2^24]);
    * local absolute bounds with binary search.
    """
    minimum = max(int(num_keys * 0.0001), 1)
    size = 1 << (minimum - 1).bit_length()  # next power of two
    size = min(max(size, 2**8), 2**24)
    return RMIConfig(layer_sizes=(size,))


def build_rmi(
    keys: np.ndarray, config: RMIConfig | None = None, **overrides
) -> RMI:
    """Build an RMI from a config (default: the paper's Section 8 config).

    Keyword overrides are applied on top of the config, e.g.
    ``build_rmi(keys, bound_type="lind")``.
    """
    cfg = config or DEFAULT_CONFIG
    if overrides:
        cfg = replace(cfg, **overrides)
    return cfg.build(keys)


def sweep_configs(
    base: RMIConfig, layer2_sizes: Iterable[int]
) -> list[RMIConfig]:
    """Expand a base config over a second-layer size sweep."""
    return [base.with_layer2_size(s) for s in layer2_sizes]
