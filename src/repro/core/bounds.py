"""Error-bound strategies for RMIs.

After an RMI is trained, its prediction error on every key can be
measured.  Storing (an aggregate of) these errors lets the lookup
procedure restrict the error-correction search to a small interval
around the prediction instead of the full array.  The paper evaluates
five strategies (Table 3):

===== ========================= =========== ===================
Abrv. Method                    Granularity Stored bounds
===== ========================= =========== ===================
LInd  Local individual          per model   max +/- error
LAbs  Local absolute            per model   max absolute error
GInd  Global individual         whole RMI   max +/- error
GAbs  Global absolute           whole RMI   max absolute error
NB    No bounds                 --          none
===== ========================= =========== ===================

The *guarantee* all bounded strategies provide: if a key is present in
the indexed array, its position lies within the computed interval
(Section 2.2).  Local strategies are robust to outliers (a single bad
prediction only widens one model's interval); global strategies are not
(Section 5.3).

Sign convention: the signed error of a prediction is
``err = position - prediction``.  An *overestimating* model has negative
errors, an *underestimating* one positive errors.  Individual bounds
store both extremes separately, which pays off for models with a
one-sided bias such as linear splines (Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

__all__ = [
    "ErrorBounds",
    "LocalIndividualBounds",
    "LocalAbsoluteBounds",
    "GlobalIndividualBounds",
    "GlobalAbsoluteBounds",
    "NoBounds",
    "BOUND_TYPES",
    "resolve_bound_type",
    "compute_bounds",
]


class ErrorBounds:
    """Abstract base class of error-bound strategies.

    A bounds object answers one question: given a (clamped, integral)
    prediction and the last-layer model that produced it, which inclusive
    index interval ``[lo, hi]`` must be searched?
    """

    abbreviation: ClassVar[str] = "?"
    #: Whether intervals are derived from stored bounds (False for NB).
    provides_bounds: ClassVar[bool] = True

    @classmethod
    def compute(
        cls,
        predictions: np.ndarray,
        positions: np.ndarray,
        model_ids: np.ndarray,
        num_models: int,
        n: int,
    ) -> "ErrorBounds":
        """Compute bounds from per-key predictions and true positions.

        ``predictions`` must already be clamped to ``[0, n-1]`` and
        rounded, exactly as the lookup procedure will produce them --
        otherwise the containment guarantee would not transfer to
        lookups.  ``model_ids[i]`` is the last-layer model that produced
        ``predictions[i]``.
        """
        raise NotImplementedError

    def interval(self, prediction: int, model_id: int) -> tuple[int, int]:
        """Inclusive search interval for one prediction (unclamped)."""
        raise NotImplementedError

    def intervals(
        self, predictions: np.ndarray, model_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`interval` over arrays of predictions."""
        raise NotImplementedError

    def size_in_bytes(self) -> int:
        """Memory footprint of the stored bounds (8 bytes per bound)."""
        raise NotImplementedError


def _signed_errors(predictions: np.ndarray, positions: np.ndarray) -> np.ndarray:
    return positions.astype(np.int64) - predictions.astype(np.int64)


def _per_model_extremes(
    errors: np.ndarray, model_ids: np.ndarray, num_models: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-model minimum and maximum signed error.

    Extremes are taken over the keys actually assigned to each model,
    so a model with one-sided bias gets a one-sided (tighter) interval
    -- the advantage of individual over absolute bounds the paper
    highlights in Section 5.3.  Models with no assigned key get
    ``(0, 0)``: their predictions are never produced for present keys.
    """
    lo = np.full(num_models, np.iinfo(np.int64).max, dtype=np.int64)
    hi = np.full(num_models, np.iinfo(np.int64).min, dtype=np.int64)
    if len(errors):
        diffs = np.diff(model_ids)
        if not np.any(diffs < 0):
            # Sorted model ids (the common case: monotone-root no-copy
            # builds route keys in order): take run-wise extremes with
            # ``reduceat`` instead of the much slower scatter ``.at``
            # ufuncs.  Min/max are order-independent, so the results
            # are identical.
            starts = np.flatnonzero(np.r_[True, diffs != 0])
            ids = model_ids[starts]
            lo[ids] = np.minimum.reduceat(errors, starts)
            hi[ids] = np.maximum.reduceat(errors, starts)
        else:
            np.minimum.at(lo, model_ids, errors)
            np.maximum.at(hi, model_ids, errors)
    untouched = lo > hi  # no key ever mapped to this model
    lo[untouched] = 0
    hi[untouched] = 0
    return lo, hi


@dataclass(frozen=True)
class LocalIndividualBounds(ErrorBounds):
    """Per-model maximum positive and negative error (LInd, [20])."""

    min_err: np.ndarray  # most negative signed error per model (<= 0)
    max_err: np.ndarray  # most positive signed error per model (>= 0)

    abbreviation: ClassVar[str] = "lind"

    @classmethod
    def compute(cls, predictions, positions, model_ids, num_models, n):
        errors = _signed_errors(predictions, positions)
        lo, hi = _per_model_extremes(errors, model_ids, num_models)
        return cls(lo, hi)

    def interval(self, prediction: int, model_id: int) -> tuple[int, int]:
        return (
            prediction + int(self.min_err[model_id]),
            prediction + int(self.max_err[model_id]),
        )

    def intervals(self, predictions, model_ids):
        p = predictions.astype(np.int64)
        return p + self.min_err[model_ids], p + self.max_err[model_ids]

    def size_in_bytes(self) -> int:
        return 16 * len(self.min_err)


@dataclass(frozen=True)
class LocalAbsoluteBounds(ErrorBounds):
    """Per-model maximum absolute error (LAbs, default of [23])."""

    abs_err: np.ndarray  # max |signed error| per model (>= 0)

    abbreviation: ClassVar[str] = "labs"

    @classmethod
    def compute(cls, predictions, positions, model_ids, num_models, n):
        errors = _signed_errors(predictions, positions)
        lo, hi = _per_model_extremes(errors, model_ids, num_models)
        return cls(np.maximum(-lo, hi))

    def interval(self, prediction: int, model_id: int) -> tuple[int, int]:
        e = int(self.abs_err[model_id])
        return prediction - e, prediction + e

    def intervals(self, predictions, model_ids):
        p = predictions.astype(np.int64)
        e = self.abs_err[model_ids]
        return p - e, p + e

    def size_in_bytes(self) -> int:
        return 8 * len(self.abs_err)


@dataclass(frozen=True)
class GlobalIndividualBounds(ErrorBounds):
    """RMI-wide maximum positive and negative error (GInd)."""

    min_err: int
    max_err: int

    abbreviation: ClassVar[str] = "gind"

    @classmethod
    def compute(cls, predictions, positions, model_ids, num_models, n):
        errors = _signed_errors(predictions, positions)
        if len(errors) == 0:
            return cls(0, 0)
        return cls(int(errors.min()), int(errors.max()))

    def interval(self, prediction: int, model_id: int) -> tuple[int, int]:
        return prediction + self.min_err, prediction + self.max_err

    def intervals(self, predictions, model_ids):
        p = predictions.astype(np.int64)
        return p + self.min_err, p + self.max_err

    def size_in_bytes(self) -> int:
        return 16


@dataclass(frozen=True)
class GlobalAbsoluteBounds(ErrorBounds):
    """RMI-wide maximum absolute error (GAbs)."""

    abs_err: int

    abbreviation: ClassVar[str] = "gabs"

    @classmethod
    def compute(cls, predictions, positions, model_ids, num_models, n):
        errors = _signed_errors(predictions, positions)
        if len(errors) == 0:
            return cls(0)
        return cls(int(np.max(np.abs(errors))))

    def interval(self, prediction: int, model_id: int) -> tuple[int, int]:
        return prediction - self.abs_err, prediction + self.abs_err

    def intervals(self, predictions, model_ids):
        p = predictions.astype(np.int64)
        return p - self.abs_err, p + self.abs_err

    def size_in_bytes(self) -> int:
        return 8


@dataclass(frozen=True)
class NoBounds(ErrorBounds):
    """No stored bounds (NB, [20]).

    The search interval degenerates to the whole array; only search
    algorithms that exploit the prediction (model-biased linear and
    exponential search) remain sensible with this strategy.
    """

    n: int

    abbreviation: ClassVar[str] = "nb"
    provides_bounds: ClassVar[bool] = False

    @classmethod
    def compute(cls, predictions, positions, model_ids, num_models, n):
        return cls(n)

    def interval(self, prediction: int, model_id: int) -> tuple[int, int]:
        return 0, self.n - 1

    def intervals(self, predictions, model_ids):
        lo = np.zeros(len(predictions), dtype=np.int64)
        hi = np.full(len(predictions), self.n - 1, dtype=np.int64)
        return lo, hi

    def size_in_bytes(self) -> int:
        return 0


#: Registry mapping Table 3 abbreviations (lowercase) to classes.
BOUND_TYPES: dict[str, type[ErrorBounds]] = {
    "lind": LocalIndividualBounds,
    "labs": LocalAbsoluteBounds,
    "gind": GlobalIndividualBounds,
    "gabs": GlobalAbsoluteBounds,
    "nb": NoBounds,
}


def resolve_bound_type(spec: "str | type[ErrorBounds]") -> type[ErrorBounds]:
    """Resolve a bound strategy from an abbreviation string or class."""
    if isinstance(spec, type) and issubclass(spec, ErrorBounds):
        return spec
    key = str(spec).strip().lower()
    try:
        return BOUND_TYPES[key]
    except KeyError:
        known = ", ".join(sorted(BOUND_TYPES))
        raise ValueError(f"unknown bound type {spec!r}; known types: {known}")


def compute_bounds(
    spec: "str | type[ErrorBounds]",
    predictions: np.ndarray,
    positions: np.ndarray,
    model_ids: np.ndarray,
    num_models: int,
    n: int,
) -> ErrorBounds:
    """Compute bounds of the requested strategy; see Table 3."""
    return resolve_bound_type(spec).compute(
        predictions, positions, model_ids, num_models, n
    )
