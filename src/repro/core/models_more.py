"""Additional model types from the reference RMI implementation.

The open-source RMI of Marcus et al. [23] ships more model families
than the four the paper evaluates (Table 2): log-linear models and
distribution-CDF models (normal, log-normal).  The paper lists "more
model types" as future work (Section 4.2); this module provides the
remaining reference families so the whole reference design space is
explorable from this library.

All are monotonic, so they compose with the paper's no-copy training
optimization.

=========  ==========================================================
Abrv.      Method
=========  ==========================================================
``logl``   Log-linear regression ``f(x) = a*log(x + 1) + b``
``normal`` Scaled normal CDF ``f(x) = n * Phi((x - mu) / sigma)``
``lognorm`` Scaled log-normal CDF ``f(x) = n * Phi((ln x - mu) / sigma)``
=========  ==========================================================

The CDF models fit ``mu``/``sigma`` by the method of moments on the
(log-)keys -- exactly the cheap closed-form fit the reference uses --
and scale the result to the target range.  They shine when the data
really is (log-)normally distributed and degrade gracefully otherwise,
which is the paper's point about model/distribution fit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from .models import (
    GROUPED_FITTERS,
    MODEL_TYPES,
    SOA_MODEL_CODES,
    SOA_PARAM_COLUMNS,
    ConstantModel,
    Model,
    _segment_sums,
    register_soa_model,
)

__all__ = ["LogLinear", "NormalCdf", "LogNormalCdf"]


def _grouped_ols(
    x: np.ndarray, targets: np.ndarray, offsets: np.ndarray, code: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Grouped centered least squares on a pre-transformed regressor.

    Shared by :class:`LogLinear` (``x = log1p(keys)``); mirrors
    ``LinearRegression.fit_grouped`` in ``core/models.py``.
    """
    counts = np.diff(offsets)
    fanout = len(counts)
    y = np.asarray(targets, dtype=np.float64)
    nonempty = counts > 0
    codes = np.where(
        nonempty, code, SOA_MODEL_CODES[ConstantModel]
    ).astype(np.int8)
    params = np.zeros((fanout, SOA_PARAM_COLUMNS), dtype=np.float64)
    if not np.any(nonempty):
        return codes, params
    safe = np.maximum(counts, 1).astype(np.float64)
    mx = _segment_sums(x, offsets) / safe
    my = _segment_sums(y, offsets) / safe
    seg = np.repeat(np.arange(fanout), counts)
    dx = x - mx[seg]
    dy = y - my[seg]
    denom = _segment_sums(dx * dx, offsets)
    num = _segment_sums(dx * dy, offsets)
    with np.errstate(divide="ignore", invalid="ignore"):
        slope = np.where(denom > 0.0, num / denom, 0.0)
    intercept = my - slope * mx
    params[nonempty, 0] = slope[nonempty]
    params[nonempty, 1] = intercept[nonempty]
    return codes, params


def _grouped_moments_cdf(
    x: np.ndarray, targets: np.ndarray, offsets: np.ndarray, code: int
) -> "tuple[np.ndarray, np.ndarray]":
    """Grouped method-of-moments fit for the scaled CDF models.

    ``x`` is the (possibly log-transformed) float64 key array.  Row
    layout matches the dataclass field order: mu, sigma, scale, offset.
    """
    counts = np.diff(offsets)
    fanout = len(counts)
    y = np.asarray(targets, dtype=np.float64)
    nonempty = counts > 0
    codes = np.where(
        nonempty, code, SOA_MODEL_CODES[ConstantModel]
    ).astype(np.int8)
    params = np.zeros((fanout, SOA_PARAM_COLUMNS), dtype=np.float64)
    if not np.any(nonempty):
        return codes, params
    safe = np.maximum(counts, 1).astype(np.float64)
    mx = _segment_sums(x, offsets) / safe
    my = _segment_sums(y, offsets) / safe
    seg = np.repeat(np.arange(fanout), counts)
    dx = x - mx[seg]
    sigma = np.sqrt(_segment_sums(dx * dx, offsets) / safe)
    first = offsets[:-1]
    last = offsets[1:] - 1
    degenerate = (counts <= 1) | (sigma == 0.0)
    rows = np.zeros((fanout, SOA_PARAM_COLUMNS), dtype=np.float64)
    rows[:, 0] = mx
    rows[:, 1] = np.where(degenerate, 1.0, sigma)
    ok = nonempty & ~degenerate
    if np.any(ok):
        rows[ok, 2] = y[last[ok]] - y[first[ok]]
        rows[ok, 3] = y[first[ok]]
    deg = nonempty & degenerate
    if np.any(deg):
        rows[deg, 0] = x[first[deg]]
        rows[deg, 3] = my[deg]
    params[nonempty] = rows[nonempty]
    return codes, params

_SQRT2 = math.sqrt(2.0)


def _phi(z: np.ndarray) -> np.ndarray:
    """Standard normal CDF, vectorized without scipy.

    Abramowitz-Stegun 7.1.26 rational erf approximation,
    |error| < 1.5e-7 -- far below one position at any realistic scale.
    """
    z = np.asarray(z, dtype=np.float64)
    sign = np.sign(z)
    x = np.abs(z) / _SQRT2
    t = 1.0 / (1.0 + 0.3275911 * x)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741
                                   + t * (-1.453152027 + t * 1.061405429)))
    )
    erf = 1.0 - poly * np.exp(-x * x)
    return 0.5 * (1.0 + sign * erf)


@dataclass(frozen=True)
class LogLinear(Model):
    """Least-squares linear fit in log-key space.

    A good match for data whose *gaps* grow multiplicatively (heavy
    upper tails), where plain LR wastes its single slope on the tail.
    """

    slope: float = 0.0
    intercept: float = 0.0

    abbreviation: ClassVar[str] = "logl"
    eval_cost_units: ClassVar[float] = 3.0  # log evaluation dominates

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "LogLinear":
        n = len(keys)
        if n == 0:
            return cls(0.0, 0.0)
        x = np.log1p(np.asarray(keys, dtype=np.float64))
        y = np.asarray(targets, dtype=np.float64)
        if n == 1:
            return cls(0.0, float(y[0]))
        mx, my = x.mean(), y.mean()
        dx = x - mx
        denom = float(np.dot(dx, dx))
        if denom == 0.0:
            return cls(0.0, my)
        slope = float(np.dot(dx, y - my) / denom)
        return cls(slope, my - slope * mx)

    @classmethod
    def fit_grouped(
        cls, keys: np.ndarray, targets: np.ndarray, offsets: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        x = np.log1p(np.asarray(keys, dtype=np.float64))
        return _grouped_ols(x, targets, offsets, SOA_MODEL_CODES[cls])

    @classmethod
    def eval_soa(cls, rows: np.ndarray, keys: np.ndarray) -> np.ndarray:
        x = np.log1p(np.asarray(keys, dtype=np.float64))
        return rows[:, 0] * x + rows[:, 1]

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        x = np.log1p(np.asarray(keys, dtype=np.float64))
        return self.slope * x + self.intercept

    def size_in_bytes(self) -> int:
        return 16

    def is_monotonic(self) -> bool:
        return self.slope >= 0.0


@dataclass(frozen=True)
class NormalCdf(Model):
    """Scaled normal CDF fitted by the method of moments."""

    mu: float = 0.0
    sigma: float = 1.0
    scale: float = 0.0  # target span
    offset: float = 0.0  # target minimum

    abbreviation: ClassVar[str] = "normal"
    eval_cost_units: ClassVar[float] = 6.0  # exp + division pipeline

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "NormalCdf":
        n = len(keys)
        if n == 0:
            return cls()
        x = np.asarray(keys, dtype=np.float64)
        y = np.asarray(targets, dtype=np.float64)
        sigma = float(x.std())
        if n == 1 or sigma == 0.0:
            return cls(mu=float(x[0]), sigma=1.0, scale=0.0,
                       offset=float(y.mean()))
        span = float(y[-1] - y[0])
        return cls(mu=float(x.mean()), sigma=sigma, scale=span,
                   offset=float(y[0]))

    @classmethod
    def fit_grouped(
        cls, keys: np.ndarray, targets: np.ndarray, offsets: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        x = np.asarray(keys, dtype=np.float64)
        return _grouped_moments_cdf(x, targets, offsets, SOA_MODEL_CODES[cls])

    @classmethod
    def eval_soa(cls, rows: np.ndarray, keys: np.ndarray) -> np.ndarray:
        x = np.asarray(keys, dtype=np.float64)
        z = (x - rows[:, 0]) / rows[:, 1]
        out = rows[:, 3] + rows[:, 2] * _phi(z)
        return np.where(rows[:, 2] == 0.0, rows[:, 3], out)

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        if self.scale == 0.0:
            return np.full(len(keys), self.offset, dtype=np.float64)
        z = (np.asarray(keys, dtype=np.float64) - self.mu) / self.sigma
        return self.offset + self.scale * _phi(z)

    def size_in_bytes(self) -> int:
        return 32

    def is_monotonic(self) -> bool:
        return self.scale >= 0.0


@dataclass(frozen=True)
class LogNormalCdf(Model):
    """Scaled log-normal CDF fitted by moments of the log-keys."""

    mu: float = 0.0
    sigma: float = 1.0
    scale: float = 0.0
    offset: float = 0.0

    abbreviation: ClassVar[str] = "lognorm"
    eval_cost_units: ClassVar[float] = 7.0

    @classmethod
    def fit(cls, keys: np.ndarray, targets: np.ndarray) -> "LogNormalCdf":
        n = len(keys)
        if n == 0:
            return cls()
        x = np.log1p(np.asarray(keys, dtype=np.float64))
        y = np.asarray(targets, dtype=np.float64)
        sigma = float(x.std())
        if n == 1 or sigma == 0.0:
            return cls(mu=float(x[0]), sigma=1.0, scale=0.0,
                       offset=float(y.mean()))
        span = float(y[-1] - y[0])
        return cls(mu=float(x.mean()), sigma=sigma, scale=span,
                   offset=float(y[0]))

    @classmethod
    def fit_grouped(
        cls, keys: np.ndarray, targets: np.ndarray, offsets: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        x = np.log1p(np.asarray(keys, dtype=np.float64))
        return _grouped_moments_cdf(x, targets, offsets, SOA_MODEL_CODES[cls])

    @classmethod
    def eval_soa(cls, rows: np.ndarray, keys: np.ndarray) -> np.ndarray:
        x = np.log1p(np.asarray(keys, dtype=np.float64))
        z = (x - rows[:, 0]) / rows[:, 1]
        out = rows[:, 3] + rows[:, 2] * _phi(z)
        return np.where(rows[:, 2] == 0.0, rows[:, 3], out)

    def predict_batch(self, keys: np.ndarray) -> np.ndarray:
        if self.scale == 0.0:
            return np.full(len(keys), self.offset, dtype=np.float64)
        z = (np.log1p(np.asarray(keys, dtype=np.float64)) - self.mu) / self.sigma
        return self.offset + self.scale * _phi(z)

    def size_in_bytes(self) -> int:
        return 32

    def is_monotonic(self) -> bool:
        return self.scale >= 0.0


MODEL_TYPES["logl"] = LogLinear
MODEL_TYPES["normal"] = NormalCdf
MODEL_TYPES["lognorm"] = LogNormalCdf

# SoA codes continue past the serialization codes 0..4 of core models.
register_soa_model(LogLinear, 5)
register_soa_model(NormalCdf, 6)
register_soa_model(LogNormalCdf, 7)

GROUPED_FITTERS[LogLinear] = LogLinear.fit_grouped
GROUPED_FITTERS[NormalCdf] = NormalCdf.fit_grouped
GROUPED_FITTERS[LogNormalCdf] = LogNormalCdf.fit_grouped
