"""Invariant validation for trained RMIs.

A production index needs a way to audit itself: after deserialization,
after the underlying array changed, or simply as a debugging aid.
:func:`validate_rmi` re-verifies the properties the lookup path relies
on and returns a structured report instead of asserting, so callers can
log or surface the findings.

Checked invariants:

1. **Key order** -- the indexed array is sorted (the problem statement's
   precondition).
2. **Routing consistency** -- re-routing every key through the model
   hierarchy reproduces the training-time leaf assignment (violated
   when models were tampered with or keys were swapped out).
3. **Bound containment** -- every key's true position lies within its
   error interval (the Section 2.2 guarantee that makes bounded search
   correct).
4. **Segment contiguity** -- leaf assignments are non-decreasing over
   the sorted keys when all models are monotonic (Section 4.1's no-copy
   precondition).
5. **Lookup spot-check** -- a sample of lookups against the
   ``searchsorted`` oracle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .rmi import RMI

__all__ = ["ValidationReport", "validate_rmi"]


@dataclass
class ValidationReport:
    """Outcome of :func:`validate_rmi`."""

    ok: bool = True
    checks: dict[str, bool] = field(default_factory=dict)
    problems: list[str] = field(default_factory=list)

    def record(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks[name] = passed
        if not passed:
            self.ok = False
            self.problems.append(f"{name}: {detail}" if detail else name)

    def __str__(self) -> str:
        lines = [f"RMI validation: {'OK' if self.ok else 'FAILED'}"]
        for name, passed in self.checks.items():
            lines.append(f"  [{'x' if passed else ' '}] {name}")
        lines.extend(f"  ! {p}" for p in self.problems)
        return "\n".join(lines)


def validate_rmi(rmi: RMI, lookup_samples: int = 256) -> ValidationReport:
    """Audit a trained RMI's invariants; see the module docstring."""
    report = ValidationReport()
    keys = rmi.keys
    n = rmi.n

    sorted_ok = bool(np.all(keys[1:] >= keys[:-1])) if n > 1 else True
    report.record("keys sorted", sorted_ok)

    routed = rmi._route_batch(keys)
    trained = rmi.leaf_model_ids
    mismatches = int(np.sum(routed != trained))
    report.record(
        "routing consistent",
        mismatches == 0,
        f"{mismatches} of {n} keys route to a different leaf than at "
        "training time",
    )

    preds = rmi._predict_positions(keys, trained)
    lo, hi = rmi.bounds.intervals(preds, trained)
    positions = np.arange(n, dtype=np.int64)
    escapes = int(np.sum((positions < lo) | (positions > hi)))
    report.record(
        "bounds contain positions",
        escapes == 0,
        f"{escapes} keys fall outside their error interval",
    )

    monotone_models = all(
        m.is_monotonic() for layer in rmi.layers for m in layer
    )
    if monotone_models:
        contiguous = bool(np.all(np.diff(trained) >= 0))
        report.record(
            "segments contiguous",
            contiguous,
            "monotonic models produced a non-contiguous assignment",
        )
    else:
        report.checks["segments contiguous"] = True  # not applicable

    sample = keys[:: max(n // lookup_samples, 1)][:lookup_samples]
    got = rmi.lookup_batch(sample)
    want = np.searchsorted(keys, sample, side="left")
    wrong = int(np.sum(got != want))
    report.record(
        "lookup spot-check",
        wrong == 0,
        f"{wrong} of {len(sample)} sampled lookups disagree with the "
        "oracle",
    )
    return report
