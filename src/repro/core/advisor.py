"""The paper's Section 9.2 guideline as an executable advisor.

The paper closes with "a clear guideline for database architects when
to use which learned index and when to use a traditional index".  This
module turns that guideline into code: given the workload's actual
requirements and a sample of the data, :func:`recommend_index` ranks
the evaluated index families with the paper's own reasoning attached.

The decision inputs mirror the guideline's clauses:

* **updates** -- RMIs, RadixSpline, Hist-Tree and our read-only tries
  drop out when inserts are required (Table 1 / Section 9.2).
* **duplicates** -- tries (ART, Hist-Tree) drop out (Section 8.1).
* **outliers / smoothness** -- measured on the data sample: fb-like
  outliers demote RMIs ("RMI offers the best lookup performance on
  smooth CDFs"); PGM is promoted as "the most robust against data
  distributions".
* **priorities** -- lookup speed vs build time vs memory, scored with
  the guideline's explicit statements ("Hist-Tree ... if lookup
  performance is the main priority and both a large index size and
  comparably high build times are acceptable", "RadixSpline offers the
  best balance between build time and lookup time", "ALEX is the
  fastest in terms of build time", "A sparsely populated ART ... very
  robust ... very low build times").

The result is advisory and explainable, not auto-tuned: each
recommendation carries the sentences of reasoning that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.cdf import has_duplicates
from .robust import detect_outliers

__all__ = [
    "WorkloadRequirements",
    "Recommendation",
    "eligible_families",
    "recommend_index",
]


@dataclass(frozen=True)
class WorkloadRequirements:
    """What the deployment actually needs.

    Priorities are weights in [0, 1]; they need not sum to one.
    """

    needs_updates: bool = False
    lookup_priority: float = 1.0
    build_priority: float = 0.2
    memory_priority: float = 0.2


@dataclass
class Recommendation:
    """One ranked index suggestion with its reasoning."""

    index: str
    score: float
    reasons: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        lines = [f"{self.index} (score {self.score:.2f})"]
        lines.extend(f"  - {r}" for r in self.reasons)
        return "\n".join(lines)


@dataclass(frozen=True)
class _Profile:
    """Per-index scoring profile distilled from Section 9.2 / Table 1."""

    lookup: float  # lookup speed on favourable data (0..1)
    build: float  # build speed (0..1)
    memory: float  # memory economy (0..1)
    updates: bool
    handles_duplicates: bool
    needs_smooth_cdf: bool  # heavily favoured by smooth data
    robust_to_distribution: bool
    blurb: str


_PROFILES: dict[str, _Profile] = {
    "rmi": _Profile(
        lookup=1.0, build=0.35, memory=0.9, updates=False,
        handles_duplicates=True, needs_smooth_cdf=True,
        robust_to_distribution=False,
        blurb="RMI offers the best lookup performance on smooth CDFs "
              "(Section 9.2)",
    ),
    "pgm-index": _Profile(
        lookup=0.8, build=0.3, memory=1.0, updates=True,
        handles_duplicates=True, needs_smooth_cdf=False,
        robust_to_distribution=True,
        blurb="PGM-index is the most robust against data distributions "
              "(Section 9.2); the dynamic variant supports updates",
    ),
    "radix-spline": _Profile(
        lookup=0.8, build=0.6, memory=0.8, updates=False,
        handles_duplicates=True, needs_smooth_cdf=True,
        robust_to_distribution=False,
        blurb="RadixSpline offers the best balance between build time "
              "and lookup time (Section 9.2)",
    ),
    "alex": _Profile(
        lookup=0.6, build=0.9, memory=0.3, updates=True,
        handles_duplicates=False, needs_smooth_cdf=False,
        robust_to_distribution=True,
        blurb="ALEX is the fastest learned index to build and supports "
              "inserts natively (Section 9.2 / Table 1)",
    ),
    "hist-tree": _Profile(
        lookup=0.95, build=0.5, memory=0.2, updates=False,
        handles_duplicates=False, needs_smooth_cdf=False,
        robust_to_distribution=True,
        blurb="Hist-Tree wins when lookup performance is the main "
              "priority and a large index plus high build times are "
              "acceptable (Section 9.2)",
    ),
    "art": _Profile(
        lookup=0.55, build=0.95, memory=0.15, updates=True,
        handles_duplicates=False, needs_smooth_cdf=False,
        robust_to_distribution=True,
        blurb="a sparsely populated ART is very robust against data "
              "distributions and offers very low build times "
              "(Section 9.2)",
    ),
    "b-tree": _Profile(
        lookup=0.35, build=1.0, memory=0.25, updates=True,
        handles_duplicates=True, needs_smooth_cdf=False,
        robust_to_distribution=True,
        blurb="the B-tree makes no assumptions about the data; its "
              "performance is distribution-independent (Section 8.1)",
    ),
    "binary-search": _Profile(
        lookup=0.2, build=1.0, memory=1.0, updates=False,
        handles_duplicates=True, needs_smooth_cdf=False,
        robust_to_distribution=True,
        blurb="no index at all: zero memory and build cost; the "
              "baseline every index must justify itself against",
    ),
}


def _data_traits(keys: np.ndarray) -> tuple[bool, bool]:
    """(has extreme outliers, has duplicate keys) of the sample."""
    keys = np.asarray(keys, dtype=np.uint64)
    outliers = detect_outliers(keys).num_outliers > 0 if len(keys) >= 3 else False
    return outliers, has_duplicates(keys)


def _exclusion_reason(
    p: _Profile, req: WorkloadRequirements, duplicates: bool
) -> str | None:
    """The guideline clause that rules this family out, or ``None``."""
    if req.needs_updates and not p.updates:
        return ("excluded: no update support (Table 1) but updates are "
                "required")
    if duplicates and not p.handles_duplicates:
        return ("excluded: cannot represent duplicate keys (the paper's "
                "wiki observation, Section 8.1)")
    return None


def eligible_families(
    requirements: WorkloadRequirements | None = None,
    keys: np.ndarray | None = None,
) -> dict[str, list[str]]:
    """The families the guideline does *not* rule out, with reasons.

    The machine-usable form of the advisor: a mapping from index-family
    name to the explanatory sentences that apply to it (its Section 9.2
    blurb plus any data-trait caveats).  Hard exclusions (updates
    required, duplicate keys) are simply absent from the mapping --
    callers such as the autotune planner enumerate candidates directly
    from the keys.  ``keys`` is optional; without a sample only the
    requirement-driven exclusions apply.
    """
    req = requirements or WorkloadRequirements()
    if keys is None:
        outliers, duplicates = False, False
    else:
        outliers, duplicates = _data_traits(keys)

    eligible: dict[str, list[str]] = {}
    for name, p in _PROFILES.items():
        if _exclusion_reason(p, req, duplicates) is not None:
            continue
        reasons = [p.blurb]
        if outliers and p.needs_smooth_cdf:
            reasons.append("caveat: the data has fb-like outliers; "
                           "this index needs a smooth CDF (Section 6.1)")
        elif outliers and p.robust_to_distribution:
            reasons.append("unaffected by the detected outliers "
                           "(distribution-robust)")
        eligible[name] = reasons
    return eligible


def recommend_index(
    keys: np.ndarray,
    requirements: WorkloadRequirements | None = None,
    top: int = 3,
) -> list[Recommendation]:
    """Rank index families for this data and these requirements.

    ``keys`` may be a sample; only distributional traits are read.
    Returns the ``top`` recommendations, best first, each with the
    guideline reasoning that produced its score.
    """
    req = requirements or WorkloadRequirements()
    outliers, duplicates = _data_traits(keys)

    results: list[Recommendation] = []
    for name, p in _PROFILES.items():
        reasons = [p.blurb]
        excluded = _exclusion_reason(p, req, duplicates)
        if excluded is not None:
            reasons.append(excluded)
            results.append(Recommendation(name, float("-inf"), reasons))
            continue

        lookup = p.lookup
        if outliers and p.needs_smooth_cdf:
            lookup *= 0.3
            reasons.append("demoted: the data has fb-like outliers; "
                           "this index needs a smooth CDF (Section 6.1)")
        elif outliers and p.robust_to_distribution:
            reasons.append("unaffected by the detected outliers "
                           "(distribution-robust)")
        score = (
            req.lookup_priority * lookup
            + req.build_priority * p.build
            + req.memory_priority * p.memory
        )
        results.append(Recommendation(name, round(score, 4), reasons))

    ranked = sorted(results, key=lambda r: r.score, reverse=True)
    return ranked[:top]
