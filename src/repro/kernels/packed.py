"""Flat, kernel-ready packing of a trained RMI.

The compiled backends (:mod:`repro.kernels.numba_backend`,
:mod:`repro.kernels.cext_backend`) cannot walk Python objects, so a
trained :class:`~repro.core.rmi.RMI` is flattened once into a
:class:`PackedRMI`: every layer's SoA ``(codes, params)`` arrays
concatenated into one table with per-layer offsets, the Equation-3
routing scales precomputed per layer, and the error bounds normalized
to one of three shapes (none / per-model / global).  The packing is a
*view-level* transformation -- parameter values are copied verbatim, so
any kernel that replays the reference arithmetic on the packed arrays
produces bit-identical predictions.

Packing fails soft (:func:`pack_rmi` returns ``None``) whenever the RMI
uses a representation the kernels do not understand: object-mode layers
(``grouped_fit=False`` reference builds, unregistered model types),
model codes outside the core five families, or a custom
:class:`~repro.core.bounds.ErrorBounds` subclass.  Callers fall back to
the staged NumPy path in that case, so correctness never depends on
packability.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PackedRMI", "pack_rmi", "PACKABLE_MODEL_CODES"]

#: Model-family codes the compiled kernels can evaluate: const, LR, LS,
#: CS, RX -- the five SoA codes shared with ``core/serialize.py``.
#: Extension families (LogLinear etc.) fall back to the NumPy path.
PACKABLE_MODEL_CODES = frozenset(range(5))

#: Bounds shapes understood by the kernels.
BOUNDS_NONE = 0       # no stored bounds: search the whole array
BOUNDS_PER_MODEL = 1  # blo/bhi indexed by leaf model id
BOUNDS_GLOBAL = 2     # blo/bhi are length-1 arrays


@dataclass(frozen=True)
class PackedRMI:
    """One RMI as flat arrays, ready for a compiled lookup kernel.

    ``codes``/``params`` are all layers' SoA tables concatenated in
    layer order; layer ``d`` occupies rows ``offsets[d]:offsets[d+1]``.
    ``scales[d]`` is the Equation-3 factor ``layer_sizes[d+1] / n``
    applied when the RMI was *not* trained on pre-scaled model indexes
    (``scaled`` false).  ``bkind``/``blo``/``bhi`` normalize all five
    Table-3 bound strategies: signed interval offsets added to the
    clamped prediction, indexed per leaf model (``BOUNDS_PER_MODEL``)
    or broadcast from row 0 (``BOUNDS_GLOBAL``).
    """

    #: Dispatch tag consumed by ``KernelBackend.lookup``/``serve``.
    packed_kind = "rmi"

    codes: np.ndarray    # (total_models,) int8
    params: np.ndarray   # (total_models, 6) float64, C-contiguous
    offsets: np.ndarray  # (num_layers + 1,) int64
    scales: np.ndarray   # (num_layers - 1,) float64
    scaled: bool         # train_on_model_index
    n: int               # number of indexed keys
    bkind: int           # BOUNDS_NONE / BOUNDS_PER_MODEL / BOUNDS_GLOBAL
    blo: np.ndarray      # (num_leaves,) or (1,) int64 signed lo offsets
    bhi: np.ndarray      # (num_leaves,) or (1,) int64 signed hi offsets

    @property
    def num_layers(self) -> int:
        return len(self.offsets) - 1


def _pack_bounds(bounds, num_leaves: int):
    """Normalize an ErrorBounds instance to ``(bkind, blo, bhi)``.

    Returns ``None`` for unknown subclasses (custom bounds fall back to
    the NumPy path, whose ``intervals`` contract they implement).
    """
    from ..core.bounds import (
        GlobalAbsoluteBounds,
        GlobalIndividualBounds,
        LocalAbsoluteBounds,
        LocalIndividualBounds,
        NoBounds,
    )

    one = np.zeros(1, dtype=np.int64)
    if type(bounds) is NoBounds:
        return BOUNDS_NONE, one, one
    if type(bounds) is LocalIndividualBounds:
        return (
            BOUNDS_PER_MODEL,
            np.ascontiguousarray(bounds.min_err, dtype=np.int64),
            np.ascontiguousarray(bounds.max_err, dtype=np.int64),
        )
    if type(bounds) is LocalAbsoluteBounds:
        abs_err = np.ascontiguousarray(bounds.abs_err, dtype=np.int64)
        return BOUNDS_PER_MODEL, -abs_err, abs_err
    if type(bounds) is GlobalIndividualBounds:
        return (
            BOUNDS_GLOBAL,
            np.asarray([bounds.min_err], dtype=np.int64),
            np.asarray([bounds.max_err], dtype=np.int64),
        )
    if type(bounds) is GlobalAbsoluteBounds:
        e = int(bounds.abs_err)
        return (
            BOUNDS_GLOBAL,
            np.asarray([-e], dtype=np.int64),
            np.asarray([e], dtype=np.int64),
        )
    return None


def pack_rmi(rmi) -> "PackedRMI | None":
    """Flatten ``rmi`` into a :class:`PackedRMI`, or ``None``.

    ``None`` means "not kernel-compatible" -- the caller keeps using the
    staged NumPy batch path.  The result aliases the layer parameter
    arrays where possible; treat it as immutable (``RMI`` re-packs when
    a layer or the bounds object changes).
    """
    layer_codes = []
    layer_params = []
    for layer in rmi.layers:
        codes = getattr(layer, "codes", None)
        params = getattr(layer, "params", None)
        if codes is None or params is None:
            return None  # object-mode layer (reference build / extension)
        if len(codes) and not np.isin(
            codes, np.asarray(sorted(PACKABLE_MODEL_CODES), dtype=codes.dtype)
        ).all():
            return None  # model family outside the compiled set
        layer_codes.append(np.ascontiguousarray(codes, dtype=np.int8))
        layer_params.append(np.ascontiguousarray(params, dtype=np.float64))

    packed_bounds = _pack_bounds(rmi.bounds, rmi.layer_sizes[-1])
    if packed_bounds is None:
        return None
    bkind, blo, bhi = packed_bounds

    fanouts = [len(c) for c in layer_codes]
    offsets = np.zeros(len(fanouts) + 1, dtype=np.int64)
    np.cumsum(fanouts, out=offsets[1:])
    n = int(rmi.n)
    # Equation 3's scale factor, computed exactly as _assignments does
    # (one Python float division per layer) so kernels multiplying by
    # ``scales[d]`` reproduce the NumPy routing bit for bit.
    scales = np.asarray(
        [fanouts[d + 1] / max(n, 1) for d in range(len(fanouts) - 1)],
        dtype=np.float64,
    )
    return PackedRMI(
        codes=np.concatenate(layer_codes) if layer_codes else
        np.zeros(0, dtype=np.int8),
        params=np.concatenate(layer_params) if layer_params else
        np.zeros((0, 6), dtype=np.float64),
        offsets=offsets,
        scales=scales,
        scaled=bool(rmi.train_on_model_index),
        n=n,
        bkind=bkind,
        blo=blo,
        bhi=bhi,
    )
