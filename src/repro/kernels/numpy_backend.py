"""Pure-NumPy kernel backend: the reference and universal fallback.

``lower_bound_window`` delegates to the staged implementation in
:mod:`repro.core.search`; the ``rmi_*`` kernels replay the exact
arithmetic of :class:`repro.core.rmi.RMI`'s batch path over the packed
arrays (same operations, same order), so their outputs are bit-identical
to both the staged path and the compiled backends.  This backend is
always available, is the baseline leg of ``python -m repro.bench
kernels``, and doubles as the executable specification the compiled
backends are conformance-tested against.
"""

from __future__ import annotations

import numpy as np

from .base import KernelBackend
from .packed import BOUNDS_NONE, BOUNDS_PER_MODEL, PackedRMI

__all__ = ["NumpyBackend"]


def _eval_rows(
    codes: np.ndarray, rows: np.ndarray, queries: np.ndarray
) -> np.ndarray:
    """Per-key model evaluation, one ``eval_soa`` call per family.

    Mirrors ``LayerTable.predict_routed``'s SoA path on pre-gathered
    rows; bit-identical because the per-element arithmetic is the same.
    """
    from ..core.models import SOA_CODE_MODELS

    present = np.unique(codes)
    if len(present) == 1:
        return SOA_CODE_MODELS[int(present[0])].eval_soa(rows, queries)
    out = np.empty(len(queries), dtype=np.float64)
    for code in present:
        mask = codes == code
        out[mask] = SOA_CODE_MODELS[int(code)].eval_soa(
            rows[mask], queries[mask]
        )
    return out


class NumpyBackend(KernelBackend):
    """Staged NumPy kernels over packed arrays (always available)."""

    name = "numpy"
    compiled = False

    # -- bounded search --------------------------------------------------

    def lower_bound_window(self, keys, queries, lo, hi):
        from ..core.search import _batch_lower_bound_window_numpy

        return _batch_lower_bound_window_numpy(keys, queries, lo, hi)

    # -- fused RMI path --------------------------------------------------

    def _route(self, packed: PackedRMI, queries: np.ndarray) -> np.ndarray:
        """Equation 3 over the packed layers (cf. ``RMI._route_batch``)."""
        assign = np.zeros(len(queries), dtype=np.int64)
        offsets = packed.offsets
        for depth in range(packed.num_layers - 1):
            rows_idx = offsets[depth] + assign
            preds = _eval_rows(
                packed.codes[rows_idx], packed.params[rows_idx], queries
            )
            next_fanout = int(offsets[depth + 2] - offsets[depth + 1])
            est = preds if packed.scaled else preds * packed.scales[depth]
            est = np.clip(np.nan_to_num(est), 0.0, float(next_fanout - 1))
            assign = np.floor(est).astype(np.int64)
        return assign

    def rmi_predict(self, packed: PackedRMI, queries: np.ndarray):
        queries = np.asarray(queries, dtype=np.uint64)
        model_ids = self._route(packed, queries)
        rows_idx = packed.offsets[-2] + model_ids
        est = _eval_rows(
            packed.codes[rows_idx], packed.params[rows_idx], queries
        )
        est = np.clip(np.nan_to_num(est), 0.0, float(packed.n - 1))
        return model_ids, est.astype(np.int64)

    def _intervals(self, packed: PackedRMI, positions, model_ids):
        n = packed.n
        if packed.bkind == BOUNDS_NONE:
            lo = np.zeros(len(positions), dtype=np.int64)
            hi = np.full(len(positions), n - 1, dtype=np.int64)
            return lo, hi
        if packed.bkind == BOUNDS_PER_MODEL:
            lo = positions + packed.blo[model_ids]
            hi = positions + packed.bhi[model_ids]
        else:  # BOUNDS_GLOBAL
            lo = positions + packed.blo[0]
            hi = positions + packed.bhi[0]
        return np.clip(lo, 0, n - 1), np.clip(hi, 0, n - 1)

    def rmi_lookup(self, packed: PackedRMI, keys, queries):
        queries = np.asarray(queries, dtype=np.uint64)
        model_ids, positions = self.rmi_predict(packed, queries)
        lo, hi = self._intervals(packed, positions, model_ids)
        return self.lower_bound_window(keys, queries, lo, hi)

    def rmi_serve(self, packed: PackedRMI, keys, point_queries,
                  range_lows, range_highs):
        if len(point_queries):
            positions = self.rmi_lookup(packed, keys, point_queries)
        else:
            positions = np.empty(0, dtype=np.int64)
        if len(range_lows):
            starts = self.rmi_lookup(packed, keys, range_lows)
            counts = self.rmi_lookup(packed, keys, range_highs) - starts
        else:
            starts = np.empty(0, dtype=np.int64)
            counts = np.empty(0, dtype=np.int64)
        return positions, starts, counts
