"""Pure-NumPy kernel backend: the reference and universal fallback.

``lower_bound_window`` delegates to the staged implementation in
:mod:`repro.core.search`; the ``rmi_*`` kernels replay the exact
arithmetic of :class:`repro.core.rmi.RMI`'s batch path over the packed
arrays, and the ``pla_*``/``tree_*`` kernels replay the staged
``lookup_batch`` of the corresponding baselines (same operations, same
order), so their outputs are bit-identical to both the staged paths and
the compiled backends.  This backend is always available, is the
baseline leg of ``python -m repro.bench kernels``, and doubles as the
executable specification the compiled backends are conformance-tested
against.
"""

from __future__ import annotations

import numpy as np

from .base import KernelBackend
from .packed import BOUNDS_NONE, BOUNDS_PER_MODEL, PackedRMI
from .packed_pla import PLA_DESCEND, PLA_SEGMENT, PackedPLA
from .packed_tree import TREE_SPARSE, PackedTree

__all__ = ["NumpyBackend"]


def _eval_rows(
    codes: np.ndarray, rows: np.ndarray, queries: np.ndarray
) -> np.ndarray:
    """Per-key model evaluation, one ``eval_soa`` call per family.

    Mirrors ``LayerTable.predict_routed``'s SoA path on pre-gathered
    rows; bit-identical because the per-element arithmetic is the same.
    """
    from ..core.models import SOA_CODE_MODELS

    present = np.unique(codes)
    if len(present) == 1:
        return SOA_CODE_MODELS[int(present[0])].eval_soa(rows, queries)
    out = np.empty(len(queries), dtype=np.float64)
    for code in present:
        mask = codes == code
        out[mask] = SOA_CODE_MODELS[int(code)].eval_soa(
            rows[mask], queries[mask]
        )
    return out


class NumpyBackend(KernelBackend):
    """Staged NumPy kernels over packed arrays (always available)."""

    name = "numpy"
    compiled = False

    # -- bounded search --------------------------------------------------

    def lower_bound_window(self, keys, queries, lo, hi):
        from ..core.search import _batch_lower_bound_window_numpy

        return _batch_lower_bound_window_numpy(keys, queries, lo, hi)

    # -- fused RMI path --------------------------------------------------

    def _route(self, packed: PackedRMI, queries: np.ndarray) -> np.ndarray:
        """Equation 3 over the packed layers (cf. ``RMI._route_batch``)."""
        assign = np.zeros(len(queries), dtype=np.int64)
        offsets = packed.offsets
        for depth in range(packed.num_layers - 1):
            rows_idx = offsets[depth] + assign
            preds = _eval_rows(
                packed.codes[rows_idx], packed.params[rows_idx], queries
            )
            next_fanout = int(offsets[depth + 2] - offsets[depth + 1])
            est = preds if packed.scaled else preds * packed.scales[depth]
            est = np.clip(np.nan_to_num(est), 0.0, float(next_fanout - 1))
            assign = np.floor(est).astype(np.int64)
        return assign

    def rmi_predict(self, packed: PackedRMI, queries: np.ndarray):
        queries = np.asarray(queries, dtype=np.uint64)
        model_ids = self._route(packed, queries)
        rows_idx = packed.offsets[-2] + model_ids
        est = _eval_rows(
            packed.codes[rows_idx], packed.params[rows_idx], queries
        )
        est = np.clip(np.nan_to_num(est), 0.0, float(packed.n - 1))
        return model_ids, est.astype(np.int64)

    def _intervals(self, packed: PackedRMI, positions, model_ids):
        n = packed.n
        if packed.bkind == BOUNDS_NONE:
            lo = np.zeros(len(positions), dtype=np.int64)
            hi = np.full(len(positions), n - 1, dtype=np.int64)
            return lo, hi
        if packed.bkind == BOUNDS_PER_MODEL:
            lo = positions + packed.blo[model_ids]
            hi = positions + packed.bhi[model_ids]
        else:  # BOUNDS_GLOBAL
            lo = positions + packed.blo[0]
            hi = positions + packed.bhi[0]
        return np.clip(lo, 0, n - 1), np.clip(hi, 0, n - 1)

    def rmi_lookup(self, packed: PackedRMI, keys, queries):
        queries = np.asarray(queries, dtype=np.uint64)
        model_ids, positions = self.rmi_predict(packed, queries)
        lo, hi = self._intervals(packed, positions, model_ids)
        return self.lower_bound_window(keys, queries, lo, hi)

    def _fused_serve(self, lookup, packed, keys, point_queries,
                     range_lows, range_highs):
        """Serving unit shared by all families: point + range lookups."""
        if len(point_queries):
            positions = lookup(packed, keys, point_queries)
        else:
            positions = np.empty(0, dtype=np.int64)
        if len(range_lows):
            starts = lookup(packed, keys, range_lows)
            counts = lookup(packed, keys, range_highs) - starts
        else:
            starts = np.empty(0, dtype=np.int64)
            counts = np.empty(0, dtype=np.int64)
        return positions, starts, counts

    def rmi_serve(self, packed: PackedRMI, keys, point_queries,
                  range_lows, range_highs):
        return self._fused_serve(self.rmi_lookup, packed, keys,
                                 point_queries, range_lows, range_highs)

    # -- fused PLA path --------------------------------------------------

    def _pla_window(self, packed: PackedPLA, queries):
        """Replay a PLA baseline's staged routing/evaluation.

        Returns ``(queries, lo, hi)`` -- the exact data window the
        staged ``lookup_batch`` hands to ``batch_lower_bound_window``.
        """
        q = np.asarray(queries, dtype=np.uint64)
        qf = q.astype(np.float64)
        off = packed.offsets
        n = packed.n
        if packed.kind == PLA_DESCEND:
            from ..core.search import batch_binary_search

            # PGM-style descent (cf. PGMIndex.lookup_batch): correct the
            # predicted next-level segment inside a ±eps_internal window,
            # then take the predecessor on exact first-key misses.
            seg = np.zeros(len(q), dtype=np.int64)
            for depth in range(packed.num_levels - 1, 0, -1):
                lk = packed.seg_keys[off[depth]:off[depth + 1]]
                ls = packed.slopes[off[depth]:off[depth + 1]]
                lv = packed.icepts[off[depth]:off[depth + 1]]
                bk = packed.seg_keys[off[depth - 1]:off[depth]]
                pred = lv[seg] + ls[seg] * (qf - lk[seg].astype(np.float64))
                m = len(bk)
                center = np.clip(
                    np.nan_to_num(pred), 0, m - 1
                ).astype(np.int64)
                lo = np.maximum(center - packed.eps_internal, 0)
                hi = np.minimum(center + packed.eps_internal, m - 1)
                lb = batch_binary_search(bk, q, lo, hi)
                exact = (lb <= hi) & (bk[np.clip(lb, 0, m - 1)] == q)
                seg = np.clip(np.where(exact, lb, lb - 1), 0, m - 1)
            bk = packed.seg_keys[off[0]:off[1]]
            bs = packed.slopes[off[0]:off[1]]
            bv = packed.icepts[off[0]:off[1]]
            pred = bv[seg] + bs[seg] * (qf - bk[seg].astype(np.float64))
            center = np.clip(np.nan_to_num(pred), 0, n - 1).astype(np.int64)
            lo = np.maximum(center - packed.eps, 0)
            hi = np.minimum(center + packed.eps, n - 1)
            return q, lo, hi
        if packed.kind == PLA_SEGMENT:
            # FITing-Tree: predecessor segment + anchored evaluation.
            fk = packed.seg_keys
            seg = np.searchsorted(fk, q, side="right") - 1
            before = seg < 0
            seg = np.clip(seg, 0, len(fk) - 1)
            estimate = packed.icepts[seg] + packed.slopes[seg] * (
                qf - fk[seg].astype(np.float64)
            )
            center = np.clip(
                np.nan_to_num(estimate), 0, n - 1
            ).astype(np.int64)
            lo = np.maximum(center - packed.eps, 0)
            hi = np.minimum(center + packed.eps, n - 1)
            lo[before] = 0
            hi[before] = 0
            return q, lo, hi
        # PLA_SPLINE (RadixSpline): interpolate between bracketing knots.
        sx = packed.seg_keys
        sy = packed.icepts
        idx = np.searchsorted(sx, q, side="right")
        left = np.clip(idx - 1, 0, len(sx) - 1)
        right = np.clip(idx, 0, len(sx) - 1)
        x0 = sx[left].astype(np.float64)
        x1 = sx[right].astype(np.float64)
        y0 = sy[left]
        y1 = sy[right]
        dx = x1 - x0
        frac = np.divide(qf - x0, dx, out=np.zeros(len(q)), where=dx > 0)
        center = np.clip(y0 + (y1 - y0) * frac, 0, n - 1).astype(np.int64)
        lo = np.maximum(center - packed.eps, 0)
        hi = np.minimum(center + packed.eps, n - 1)
        return q, lo, hi

    def pla_lookup(self, packed: PackedPLA, keys, queries):
        q, lo, hi = self._pla_window(packed, queries)
        return self.lower_bound_window(keys, q, lo, hi)

    def pla_serve(self, packed: PackedPLA, keys, point_queries,
                  range_lows, range_highs):
        return self._fused_serve(self.pla_lookup, packed, keys,
                                 point_queries, range_lows, range_highs)

    # -- fused tree path -------------------------------------------------

    def _tree_window(self, packed: PackedTree, queries):
        """Replay a tree baseline's staged descent to data windows."""
        q = np.asarray(queries, dtype=np.uint64)
        n = packed.n
        if packed.kind == TREE_SPARSE:
            # Sparse B+-tree directory (cf. BTreeIndex.lookup_batch).
            positions = packed.positions
            m = len(positions)
            entry = np.searchsorted(packed.entry_keys, q, side="right") - 1
            found = entry >= 0
            safe = np.clip(entry, 0, m - 1)
            lo = np.where(found, positions[safe], 0)
            nxt = safe + 1
            has_next = nxt < m
            hi = np.where(
                has_next, positions[np.clip(nxt, 0, m - 1)], n - 1
            )
            hi = np.where(found, hi, int(positions[0]))
            return q, lo, hi
        # TREE_HIST: grouped bin descent over the breadth-first arrays
        # (cf. HistTree.lookup_batch -- same grouping, same windows).
        nb = packed.num_bins
        lo = np.zeros(len(q), dtype=np.int64)
        hi = np.zeros(len(q), dtype=np.int64)
        above = q >= np.uint64(packed.min_key)
        start = np.flatnonzero(above)
        stack = [(0, start, q[start] - np.uint64(packed.min_key))]
        while stack:
            node, idx, offs = stack.pop()
            raw = (offs - packed.node_lo[node]) >> np.uint64(
                packed.node_shift[node]
            )
            over = raw >= np.uint64(nb)
            if over.any():
                lo[idx[over]] = n - 1
                hi[idx[over]] = n - 1
                keep = ~over
                idx, offs, raw = idx[keep], offs[keep], raw[keep]
            bins = raw.astype(np.int64)
            if not len(idx):
                continue
            children = packed.node_child[node * nb:(node + 1) * nb]
            has_child = children[bins] >= 0
            if has_child.any():
                for b in np.unique(bins[has_child]):
                    mask = bins == b
                    stack.append((int(children[b]), idx[mask], offs[mask]))
                term = ~has_child
                idx, bins = idx[term], bins[term]
            if not len(idx):
                continue
            pref = packed.node_pref[node * (nb + 1):(node + 1) * (nb + 1)]
            base = packed.node_base[node]
            hi[idx] = np.minimum(base + pref[bins + 1], n - 1)
            lo[idx] = np.minimum(base + pref[bins], n - 1)
        return q, lo, hi

    def tree_lookup(self, packed: PackedTree, keys, queries):
        q, lo, hi = self._tree_window(packed, queries)
        return self.lower_bound_window(keys, q, lo, hi)

    def tree_serve(self, packed: PackedTree, keys, point_queries,
                   range_lows, range_highs):
        return self._fused_serve(self.tree_lookup, packed, keys,
                                 point_queries, range_lows, range_highs)
