"""Flat, kernel-ready packing of piecewise-linear-approximation indexes.

The PLA family -- PGM-index, CompressedPGM, RadixSpline, FITing-Tree --
shares one evaluation shape: route a query to a segment (or spline
knot), evaluate one linear model, search a ±eps window around the
estimate.  :class:`PackedPLA` flattens that shape into contiguous SoA
arrays the compiled backends (:mod:`repro.kernels.numba_backend`,
:mod:`repro.kernels.cext_backend`) can walk without touching Python
objects: all levels' segment first-keys / slopes / intercepts
concatenated with per-level offsets (bottom level first), plus the two
window radii.

Three routing/evaluation kinds cover the four indexes:

``PLA_DESCEND``
    PGM-style multi-level descent: start at the (single-segment) top
    level, predict the next level's segment, correct it with a bounded
    search in a ±eps_internal window, repeat; the bottom level is an
    anchored evaluation ``icept + slope * (q - first_key)`` with a ±eps
    data window.  Covers ``PGMIndex`` and ``CompressedPGMIndex`` (which
    packs its *effective* widened eps).
``PLA_SEGMENT``
    Single-level predecessor routing (``searchsorted(..., "right") - 1``
    over the segment first-keys) + anchored evaluation; queries before
    the first segment get the ``[0, 0]`` window.  Covers ``FITingTree``.
``PLA_SPLINE``
    Single-level upper-bound knot location + linear interpolation
    between the bracketing knots.  Covers ``RadixSpline`` (whose batch
    path searches the spline array directly; the radix table is a
    scalar-path accelerator).

Like :func:`repro.kernels.packed.pack_rmi`, packing copies parameter
values verbatim -- every backend replays the exact staged arithmetic on
these arrays, so windows (and therefore the per-index cost profile) are
bit-identical to the staged NumPy batch path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PackedPLA",
    "PLA_DESCEND",
    "PLA_SEGMENT",
    "PLA_SPLINE",
    "pack_pla_levels",
]

#: Routing/evaluation kinds (see module docstring).
PLA_DESCEND = 0
PLA_SEGMENT = 1
PLA_SPLINE = 2

_KINDS = (PLA_DESCEND, PLA_SEGMENT, PLA_SPLINE)


@dataclass(frozen=True)
class PackedPLA:
    """One PLA index as flat arrays, ready for a compiled lookup kernel.

    Level ``d`` occupies rows ``offsets[d]:offsets[d+1]`` of
    ``seg_keys``/``slopes``/``icepts``; level 0 is the bottom (data)
    level, the last level is the root.  ``eps`` is the bottom data
    window radius, ``eps_internal`` the upper-level segment window
    radius (unused for the single-level kinds).  For ``PLA_SPLINE``
    the slopes array is all-zero: evaluation interpolates between the
    bracketing ``(seg_keys, icepts)`` knots instead.
    """

    #: Dispatch tag consumed by ``KernelBackend.lookup``/``serve``.
    packed_kind = "pla"

    family: str          # index name, e.g. "pgm-index" (reporting)
    kind: int            # PLA_DESCEND / PLA_SEGMENT / PLA_SPLINE
    seg_keys: np.ndarray  # (total_segments,) uint64
    slopes: np.ndarray   # (total_segments,) float64
    icepts: np.ndarray   # (total_segments,) float64
    offsets: np.ndarray  # (num_levels + 1,) int64, level 0 = bottom
    eps: int             # bottom-level data window radius
    eps_internal: int    # upper-level segment window radius
    n: int               # number of indexed keys

    @property
    def num_levels(self) -> int:
        return len(self.offsets) - 1

    @property
    def num_segments(self) -> int:
        return len(self.seg_keys)


def pack_pla_levels(
    family: str,
    kind: int,
    levels: "list[tuple[np.ndarray, np.ndarray, np.ndarray]]",
    eps: int,
    n: int,
    eps_internal: int = 0,
) -> "PackedPLA | None":
    """Flatten per-level ``(first_keys, slopes, icepts)`` triples.

    ``levels`` is ordered bottom (data) level first, root last --
    matching ``PGMIndex.levels``.  Returns ``None`` (soft fallback to
    the staged path, mirroring ``pack_rmi``'s contract) when the shape
    is not kernel-compatible: no levels, an empty level, a multi-level
    stack for a single-level kind, or a multi-segment root.
    """
    if kind not in _KINDS or not levels or eps < 0 or n < 1:
        return None
    if kind != PLA_DESCEND and len(levels) != 1:
        return None
    seg_keys, slopes, icepts, sizes = [], [], [], []
    for level_keys, level_slopes, level_icepts in levels:
        size = len(level_keys)
        if size == 0 or len(level_slopes) != size or len(level_icepts) != size:
            return None
        seg_keys.append(np.ascontiguousarray(level_keys, dtype=np.uint64))
        slopes.append(np.ascontiguousarray(level_slopes, dtype=np.float64))
        icepts.append(np.ascontiguousarray(level_icepts, dtype=np.float64))
        sizes.append(size)
    if kind == PLA_DESCEND and sizes[-1] != 1:
        return None  # descent starts from a single root segment
    offsets = np.zeros(len(sizes) + 1, dtype=np.int64)
    np.cumsum(sizes, out=offsets[1:])
    return PackedPLA(
        family=str(family),
        kind=int(kind),
        seg_keys=np.concatenate(seg_keys),
        slopes=np.concatenate(slopes),
        icepts=np.concatenate(icepts),
        offsets=offsets,
        eps=int(eps),
        eps_internal=int(eps_internal),
        n=int(n),
    )
