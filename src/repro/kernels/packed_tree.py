"""Flat, kernel-ready packing of the tree baselines.

Two tree shapes cover the Table-5 tree indexes:

``TREE_SPARSE``
    The sparse B+-tree (:class:`~repro.baselines.btree.BTreeIndex`).
    Bulk loading packs the sampled ``(key, position)`` entries into
    leaves in order, so the leaf level as a whole *is* the sorted
    sampled-key array -- the packed form is exactly that directory:
    ``entry_keys`` (every ``sparsity``-th key) and ``positions`` (their
    array slots).  A lookup is a predecessor search over ``entry_keys``
    and a window spanning the entry's gap.
``TREE_HIST``
    The compact Hist-Tree (:class:`~repro.baselines.hist_tree.HistTree`).
    Nodes are flattened breadth-first into parallel arrays: per node its
    covered-range start in offset space (``node_lo``), bin shift
    (``node_shift``), array base position (``node_base``), prefix-summed
    bin counts (``node_pref``, ``num_bins + 1`` entries per node so a
    terminal bin's window is two adjacent loads), and per-bin child
    indexes (``node_child``, ``-1`` marks a terminal bin).  A lookup is
    the scalar shift-descent of ``HistTree.search_bounds`` over these
    arrays -- no Python objects, no dict probes.

As with every packed form in this package, values are copied verbatim
from the built index and all backends replay the staged arithmetic, so
windows and final positions are bit-identical to the staged batch path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "PackedTree",
    "TREE_SPARSE",
    "TREE_HIST",
    "pack_sparse_directory",
    "pack_hist_nodes",
]

#: Tree shapes (see module docstring).
TREE_SPARSE = 0
TREE_HIST = 1

_EMPTY_U64 = np.zeros(0, dtype=np.uint64)
_EMPTY_I64 = np.zeros(0, dtype=np.int64)


@dataclass(frozen=True)
class PackedTree:
    """One tree index as flat arrays, ready for a compiled lookup kernel.

    Exactly one of the two field groups is populated, selected by
    ``kind``; the other group holds empty arrays (never indexed by the
    kernels for that kind).
    """

    #: Dispatch tag consumed by ``KernelBackend.lookup``/``serve``.
    packed_kind = "tree"

    family: str            # index name, e.g. "b-tree" (reporting)
    kind: int              # TREE_SPARSE / TREE_HIST
    n: int                 # number of indexed keys

    # -- TREE_SPARSE: sampled-key directory ------------------------------
    entry_keys: np.ndarray  # (num_entries,) uint64, sorted
    positions: np.ndarray   # (num_entries,) int64 array slots

    # -- TREE_HIST: breadth-first node arrays ----------------------------
    node_lo: np.ndarray     # (num_nodes,) uint64 range start, offset space
    node_shift: np.ndarray  # (num_nodes,) int64 bin width is 2**shift
    node_base: np.ndarray   # (num_nodes,) int64 first key's array position
    node_pref: np.ndarray   # (num_nodes * (num_bins+1),) int64 prefix counts
    node_child: np.ndarray  # (num_nodes * num_bins,) int64, -1 = terminal
    num_bins: int           # bins per node (power of two)
    min_key: int            # smallest indexed key (offset-space origin)

    @property
    def num_entries(self) -> int:
        return len(self.entry_keys)

    @property
    def num_nodes(self) -> int:
        return len(self.node_lo)


def pack_sparse_directory(
    family: str, entry_keys: np.ndarray, positions: np.ndarray, n: int
) -> "PackedTree | None":
    """Pack a sparse B+-tree's sampled-key directory.

    Returns ``None`` (soft fallback, mirroring ``pack_rmi``) when the
    directory is empty or the arrays disagree in length.
    """
    entry_keys = np.ascontiguousarray(entry_keys, dtype=np.uint64)
    positions = np.ascontiguousarray(positions, dtype=np.int64)
    if len(entry_keys) == 0 or len(entry_keys) != len(positions) or n < 1:
        return None
    return PackedTree(
        family=str(family),
        kind=TREE_SPARSE,
        n=int(n),
        entry_keys=entry_keys,
        positions=positions,
        node_lo=_EMPTY_U64,
        node_shift=_EMPTY_I64,
        node_base=_EMPTY_I64,
        node_pref=_EMPTY_I64,
        node_child=_EMPTY_I64,
        num_bins=0,
        min_key=0,
    )


def pack_hist_nodes(
    family: str, root, num_bins: int, min_key: int, n: int
) -> "PackedTree | None":
    """Flatten a Hist-Tree node graph breadth-first.

    ``root`` is duck-typed on the ``_Node`` shape (``lo_key``, ``shift``,
    ``counts``, ``base``, ``children`` dict keyed by bin index), so this
    module needs no import from :mod:`repro.baselines`.  Returns
    ``None`` when a node's count array does not match ``num_bins``.
    """
    if num_bins < 2 or n < 1 or root is None:
        return None
    order = [root]
    index_of = {id(root): 0}
    for node in order:  # grows while iterating: breadth-first append
        for child in node.children.values():
            index_of[id(child)] = len(order)
            order.append(child)
    num_nodes = len(order)
    node_lo = np.zeros(num_nodes, dtype=np.uint64)
    node_shift = np.zeros(num_nodes, dtype=np.int64)
    node_base = np.zeros(num_nodes, dtype=np.int64)
    node_pref = np.zeros(num_nodes * (num_bins + 1), dtype=np.int64)
    node_child = np.full(num_nodes * num_bins, -1, dtype=np.int64)
    for i, node in enumerate(order):
        counts = np.asarray(node.counts, dtype=np.int64)
        if len(counts) != num_bins:
            return None
        node_lo[i] = np.uint64(node.lo_key)
        node_shift[i] = int(node.shift)
        node_base[i] = int(node.base)
        pref = node_pref[i * (num_bins + 1):(i + 1) * (num_bins + 1)]
        np.cumsum(counts, out=pref[1:])
        for b, child in node.children.items():
            node_child[i * num_bins + int(b)] = index_of[id(child)]
    return PackedTree(
        family=str(family),
        kind=TREE_HIST,
        n=int(n),
        entry_keys=_EMPTY_U64,
        positions=_EMPTY_I64,
        node_lo=node_lo,
        node_shift=node_shift,
        node_base=node_base,
        node_pref=node_pref,
        node_child=node_child,
        num_bins=int(num_bins),
        min_key=int(min_key),
    )
