"""Pluggable compiled kernels for the lookup hot path (ROADMAP item 4).

Three backends implement the same :class:`~repro.kernels.base.KernelBackend`
interface over the flat :class:`~repro.kernels.packed.PackedRMI` arrays:

``numpy``
    The staged NumPy reference -- always available, the fallback and
    the benchmark baseline.
``numba``
    ``@njit(cache=True)`` JIT kernels; absent unless numba is
    installed (tier-1 CI proves the repo works without it).
``cext``
    A small C library compiled on demand with the system C compiler
    and called through ctypes; absent when no compiler is available.

Selection precedence, resolved by :func:`get_backend`:

1. an explicit ``spec`` argument (``RMIConfig.kernels``,
   ``IndexServer(kernels=...)``, ``RMI(kernels=...)``);
2. a process-wide default installed by :func:`set_default_backend` or
   the :func:`use_backend` context manager;
3. the ``REPRO_KERNELS`` environment variable;
4. auto-detection: the first loadable of ``numba``, ``cext``,
   ``numpy``.

Every resolution failure on the *auto* path degrades silently to the
next candidate (the repo must import and serve with neither numba nor
a compiler present); an explicitly requested backend that cannot load
raises instead -- a user who pinned ``REPRO_KERNELS=numba`` wants to
know it is missing, not silently measure NumPy.

All backends return bit-identical positions; see ``tests/test_kernels.py``
and the backend-parametrized conformance legs.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator

from .base import KernelBackend
from .packed import PackedRMI, pack_rmi
from .packed_pla import (
    PLA_DESCEND,
    PLA_SEGMENT,
    PLA_SPLINE,
    PackedPLA,
    pack_pla_levels,
)
from .packed_tree import (
    TREE_HIST,
    TREE_SPARSE,
    PackedTree,
    pack_hist_nodes,
    pack_sparse_directory,
)

__all__ = [
    "KernelBackend",
    "PackedRMI",
    "pack_rmi",
    "PackedPLA",
    "PLA_DESCEND",
    "PLA_SEGMENT",
    "PLA_SPLINE",
    "pack_pla_levels",
    "PackedTree",
    "TREE_SPARSE",
    "TREE_HIST",
    "pack_sparse_directory",
    "pack_hist_nodes",
    "KNOWN_BACKENDS",
    "get_backend",
    "set_default_backend",
    "use_backend",
    "available_backends",
    "backend_available",
]

#: Environment variable consulted when no explicit spec or process
#: default is set.
ENV_VAR = "REPRO_KERNELS"

#: Registry names in auto-detection preference order (fastest first).
KNOWN_BACKENDS = ("numba", "cext", "numpy")


def _load_numpy() -> KernelBackend:
    from .numpy_backend import NumpyBackend

    return NumpyBackend()


def _load_numba() -> KernelBackend:
    from . import numba_backend

    return numba_backend.load()


def _load_cext() -> KernelBackend:
    from . import cext_backend

    return cext_backend.load()


_LOADERS: "dict[str, Callable[[], KernelBackend]]" = {
    "numpy": _load_numpy,
    "numba": _load_numba,
    "cext": _load_cext,
}

#: Loaded singletons; a name maps to False after a failed load so the
#: (possibly expensive) failure is not retried every lookup.
_instances: "dict[str, KernelBackend | bool]" = {}

#: Process-wide default installed via set_default_backend/use_backend.
_default: "KernelBackend | None" = None


def _load(name: str) -> "KernelBackend | None":
    cached = _instances.get(name)
    if cached is not None:
        return cached if isinstance(cached, KernelBackend) else None
    try:
        backend = _LOADERS[name]()
    except Exception:
        _instances[name] = False
        return None
    _instances[name] = backend
    return backend


def get_backend(spec: "str | KernelBackend | None" = None) -> KernelBackend:
    """Resolve a kernel backend (see module docstring for precedence).

    ``spec`` may be a registry name, ``"auto"``, an already-built
    :class:`KernelBackend` (returned as-is), or ``None`` to follow the
    process default / environment / auto-detection chain.  Unknown
    names and explicitly requested backends that fail to load raise
    ``ValueError`` / ``RuntimeError``; auto-detection never raises.
    """
    if isinstance(spec, KernelBackend):
        return spec
    if spec is None:
        if _default is not None:
            return _default
        spec = os.environ.get(ENV_VAR) or "auto"
    name = str(spec).strip().lower()
    if name == "auto":
        for candidate in KNOWN_BACKENDS:
            backend = _load(candidate)
            if backend is not None:
                return backend
        raise RuntimeError("no kernel backend loadable (not even numpy)")
    if name not in _LOADERS:
        known = ", ".join(sorted(_LOADERS) + ["auto"])
        raise ValueError(f"unknown kernel backend {spec!r}; known: {known}")
    backend = _load(name)
    if backend is None:
        raise RuntimeError(
            f"kernel backend {name!r} is not available in this environment"
        )
    return backend


def set_default_backend(
    spec: "str | KernelBackend | None",
) -> "KernelBackend | None":
    """Install the process-wide default backend; ``None`` clears it.

    Returns the installed backend (resolving string specs eagerly so
    misconfiguration surfaces at setup time, not mid-request).
    """
    global _default
    _default = None if spec is None else get_backend(spec)
    return _default


@contextmanager
def use_backend(spec: "str | KernelBackend") -> Iterator[KernelBackend]:
    """Temporarily install ``spec`` as the process default (tests)."""
    global _default
    previous = _default
    backend = get_backend(spec)
    _default = backend
    try:
        yield backend
    finally:
        _default = previous


def backend_available(name: str) -> bool:
    """True when ``name`` loads in this environment (result cached)."""
    if name not in _LOADERS:
        return False
    return _load(name) is not None


def available_backends() -> "list[str]":
    """Names of all loadable backends, preference order first."""
    return [name for name in KNOWN_BACKENDS if backend_available(name)]
