"""Numba ``@njit`` kernel backend (optional dependency).

Importing this module raises :class:`NumbaUnavailable` when numba is
not installed -- the registry treats that as "backend absent" and the
repo keeps working on the NumPy fallback (tier-1 CI runs numba-free on
purpose; the dedicated ``kernels`` CI job installs numba and runs the
gated legs).

The jitted functions are line-for-line ports of the C kernels in
:mod:`repro.kernels.cext_backend` (same evaluation order, no fastmath,
so no FMA contraction) and therefore bit-identical to the staged NumPy
reference.  ``cache=True`` persists compiled machine code next to the
package, so a warmed CI cache or a second process skips JIT entirely;
``nogil=True`` lets the serving executor overlap kernel execution with
the event loop.  First-call compilation is expensive (seconds), which
is exactly why :meth:`NumbaBackend.warmup` exists and is invoked by
``IndexServer`` before traffic.
"""

from __future__ import annotations

import numpy as np

from .base import KernelBackend
from .packed import PackedRMI
from .packed_pla import PLA_DESCEND, PLA_SEGMENT, PLA_SPLINE, PackedPLA
from .packed_tree import PackedTree, pack_hist_nodes, pack_sparse_directory

__all__ = ["NumbaBackend", "NumbaUnavailable", "load"]


class NumbaUnavailable(RuntimeError):
    """numba is not importable in this environment."""


try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit
except ImportError:  # pragma: no cover
    njit = None


def load() -> "NumbaBackend":
    if njit is None:
        raise NumbaUnavailable("numba is not installed")
    return NumbaBackend()


if njit is not None:  # pragma: no cover - compiled only with numba

    @njit(cache=True, nogil=True)
    def _lower_bound(keys, left, right, q):
        while left < right:
            mid = (left + right) >> 1
            if keys[mid] < q:
                left = mid + 1
            else:
                right = mid
        return left

    @njit(cache=True, nogil=True)
    def _lb_window(keys, n, q, lo, hi):
        r = _lower_bound(keys, lo, hi + 1, q)
        if r == lo and lo > 0 and keys[lo - 1] >= q:
            r = _lower_bound(keys, 0, lo, q)
        elif r == hi + 1 and hi + 1 < n:
            r = _lower_bound(keys, hi + 1, n, q)
        return r

    @njit(cache=True, nogil=True)
    def _eval_model(code, params, row, q):
        # Row layouts match core/models.py's SoA registry; operation
        # order matches each family's eval_soa for bit-identity.
        if code == 0:
            return params[row, 0]
        if code == 1 or code == 2:
            return params[row, 0] * np.float64(q) + params[row, 1]
        if code == 3:
            t = (np.float64(q) - params[row, 4]) * params[row, 5]
            return ((params[row, 0] * t + params[row, 1]) * t
                    + params[row, 2]) * t + params[row, 3]
        if code == 4:
            rs = params[row, 1]
            if rs >= 64.0:
                return 0.0
            ls = np.uint64(params[row, 0])
            if ls >= np.uint64(64):
                return 0.0  # unreachable by construction
            return np.float64((q << ls) >> np.uint64(rs))
        return 0.0

    @njit(cache=True, nogil=True)
    def _route_leaf(codes, params, offsets, num_layers, scales,
                    scaled, q):
        j = np.int64(0)
        for d in range(num_layers - 1):
            row = offsets[d] + j
            pred = _eval_model(codes[row], params, row, q)
            est = pred if scaled else pred * scales[d]
            if np.isnan(est) or est < 0.0:
                est = 0.0
            cap = np.float64(offsets[d + 2] - offsets[d + 1] - 1)
            if est > cap:
                est = cap
            j = np.int64(np.floor(est))
        return j

    @njit(cache=True, nogil=True)
    def _predict_pos(codes, params, offsets, num_layers, n, leaf, q):
        row = offsets[num_layers - 1] + leaf
        est = _eval_model(codes[row], params, row, q)
        if np.isnan(est) or est < 0.0:
            est = 0.0
        cap = np.float64(n - 1)
        if est > cap:
            est = cap
        return np.int64(est)  # truncating cast == astype(int64) here

    @njit(cache=True, nogil=True)
    def _lookup_one(keys, n, codes, params, offsets, num_layers,
                    scales, scaled, bkind, blo, bhi, q):
        leaf = _route_leaf(codes, params, offsets, num_layers,
                           scales, scaled, q)
        pos = _predict_pos(codes, params, offsets, num_layers,
                           n, leaf, q)
        if bkind == 0:
            lo = np.int64(0)
            hi = n - 1
        elif bkind == 1:
            lo = pos + blo[leaf]
            hi = pos + bhi[leaf]
        else:
            lo = pos + blo[0]
            hi = pos + bhi[0]
        if lo < 0:
            lo = 0
        elif lo > n - 1:
            lo = n - 1
        if hi < 0:
            hi = 0
        elif hi > n - 1:
            hi = n - 1
        return _lb_window(keys, n, q, lo, hi)

    @njit(cache=True, nogil=True)
    def _k_lower_bound_window(keys, queries, lo, hi):
        n = np.int64(len(keys))
        out = np.empty(len(queries), dtype=np.int64)
        for i in range(len(queries)):
            l = lo[i]
            h = hi[i]
            if l < 0:
                l = 0
            elif l > n - 1:
                l = n - 1
            if h < 0:
                h = 0
            elif h > n - 1:
                h = n - 1
            out[i] = _lb_window(keys, n, queries[i], l, h)
        return out

    @njit(cache=True, nogil=True)
    def _k_rmi_predict(codes, params, offsets, num_layers, scales,
                       scaled, n, queries):
        m = len(queries)
        ids = np.empty(m, dtype=np.int64)
        pos = np.empty(m, dtype=np.int64)
        for i in range(m):
            leaf = _route_leaf(codes, params, offsets, num_layers,
                               scales, scaled, queries[i])
            ids[i] = leaf
            pos[i] = _predict_pos(codes, params, offsets, num_layers,
                                  n, leaf, queries[i])
        return ids, pos

    @njit(cache=True, nogil=True)
    def _k_rmi_lookup(keys, n, codes, params, offsets, num_layers,
                      scales, scaled, bkind, blo, bhi, queries):
        out = np.empty(len(queries), dtype=np.int64)
        for i in range(len(queries)):
            out[i] = _lookup_one(keys, n, codes, params, offsets,
                                 num_layers, scales, scaled, bkind,
                                 blo, bhi, queries[i])
        return out

    @njit(cache=True, nogil=True)
    def _k_rmi_serve(keys, n, codes, params, offsets, num_layers,
                     scales, scaled, bkind, blo, bhi,
                     points, lows, highs):
        positions = np.empty(len(points), dtype=np.int64)
        starts = np.empty(len(lows), dtype=np.int64)
        counts = np.empty(len(lows), dtype=np.int64)
        for i in range(len(points)):
            positions[i] = _lookup_one(keys, n, codes, params, offsets,
                                       num_layers, scales, scaled,
                                       bkind, blo, bhi, points[i])
        for i in range(len(lows)):
            starts[i] = _lookup_one(keys, n, codes, params, offsets,
                                    num_layers, scales, scaled,
                                    bkind, blo, bhi, lows[i])
        for i in range(len(lows)):
            counts[i] = _lookup_one(keys, n, codes, params, offsets,
                                    num_layers, scales, scaled,
                                    bkind, blo, bhi, highs[i]) - starts[i]
        return positions, starts, counts

    @njit(cache=True, nogil=True)
    def _upper_bound(keys, left, right, q):
        while left < right:
            mid = (left + right) >> 1
            if keys[mid] <= q:
                left = mid + 1
            else:
                right = mid
        return left

    @njit(cache=True, nogil=True)
    def _pla_window_one(seg_keys, slopes, icepts, offsets, num_levels,
                        kind, eps, eps_internal, n, q):
        # Port of cext_backend's pla_window_one; see its comments for
        # the per-kind staged-arithmetic correspondence.
        qf = np.float64(q)
        if kind == 0:  # PLA_DESCEND
            seg = np.int64(0)
            for depth in range(num_levels - 1, 0, -1):
                row = offsets[depth] + seg
                bl = offsets[depth - 1]
                msz = offsets[depth] - bl
                pred = icepts[row] + slopes[row] * (
                    qf - np.float64(seg_keys[row])
                )
                if np.isnan(pred) or pred < 0.0:
                    pred = 0.0
                cap = np.float64(msz - 1)
                if pred > cap:
                    pred = cap
                center = np.int64(pred)
                slo = center - eps_internal
                if slo < 0:
                    slo = np.int64(0)
                shi = center + eps_internal
                if shi > msz - 1:
                    shi = msz - 1
                lb = _lower_bound(seg_keys, bl + slo, bl + shi + 1, q) - bl
                cl = lb if lb <= msz - 1 else msz - 1
                exact = lb <= shi and seg_keys[bl + cl] == q
                seg = lb if exact else lb - 1
                if seg < 0:
                    seg = np.int64(0)
                elif seg > msz - 1:
                    seg = msz - 1
            row = offsets[0] + seg
            pred = icepts[row] + slopes[row] * (
                qf - np.float64(seg_keys[row])
            )
            if np.isnan(pred) or pred < 0.0:
                pred = 0.0
            cap = np.float64(n - 1)
            if pred > cap:
                pred = cap
            center = np.int64(pred)
            lo = center - eps
            if lo < 0:
                lo = np.int64(0)
            hi = center + eps
            if hi > n - 1:
                hi = n - 1
            return lo, hi
        if kind == 1:  # PLA_SEGMENT
            nseg = offsets[1]
            idx = _upper_bound(seg_keys, np.int64(0), nseg, q) - 1
            seg = idx
            if seg < 0:
                seg = np.int64(0)
            elif seg > nseg - 1:
                seg = nseg - 1
            pred = icepts[seg] + slopes[seg] * (
                qf - np.float64(seg_keys[seg])
            )
            if np.isnan(pred) or pred < 0.0:
                pred = 0.0
            cap = np.float64(n - 1)
            if pred > cap:
                pred = cap
            center = np.int64(pred)
            lo = center - eps
            if lo < 0:
                lo = np.int64(0)
            hi = center + eps
            if hi > n - 1:
                hi = n - 1
            if idx < 0:  # query precedes every segment
                lo = np.int64(0)
                hi = np.int64(0)
            return lo, hi
        # PLA_SPLINE
        mkn = offsets[1]
        idx = _upper_bound(seg_keys, np.int64(0), mkn, q)
        left = idx - 1
        if left < 0:
            left = np.int64(0)
        elif left > mkn - 1:
            left = mkn - 1
        right = idx
        if right > mkn - 1:
            right = mkn - 1
        x0 = np.float64(seg_keys[left])
        x1 = np.float64(seg_keys[right])
        dx = x1 - x0
        frac = (qf - x0) / dx if dx > 0.0 else 0.0
        pred = icepts[left] + (icepts[right] - icepts[left]) * frac
        if pred < 0.0:
            pred = 0.0
        cap = np.float64(n - 1)
        if pred > cap:
            pred = cap
        center = np.int64(pred)
        lo = center - eps
        if lo < 0:
            lo = np.int64(0)
        hi = center + eps
        if hi > n - 1:
            hi = n - 1
        return lo, hi

    @njit(cache=True, nogil=True)
    def _tree_window_one(kind, entry_keys, positions, node_lo, node_shift,
                         node_base, node_pref, node_child, num_bins,
                         min_key, n, q):
        # Port of cext_backend's tree_window_one.
        if kind == 0:  # TREE_SPARSE
            m = np.int64(len(entry_keys))
            entry = _upper_bound(entry_keys, np.int64(0), m, q) - 1
            safe = entry if entry >= 0 else np.int64(0)
            lo = positions[safe] if entry >= 0 else np.int64(0)
            hi = positions[safe + 1] if safe + 1 < m else n - 1
            if entry < 0:
                hi = positions[0]
            return lo, hi
        # TREE_HIST
        lo = np.int64(0)
        hi = np.int64(0)
        if q >= min_key:
            off = q - min_key
            node = np.int64(0)
            while True:
                raw = (off - node_lo[node]) >> np.uint64(node_shift[node])
                if raw >= np.uint64(num_bins):
                    lo = n - 1
                    hi = n - 1
                    break
                b = np.int64(raw)
                child = node_child[node * num_bins + b]
                if child >= 0:
                    node = child
                    continue
                pbase = node * (num_bins + 1)
                tlo = node_base[node] + node_pref[pbase + b]
                thi = node_base[node] + node_pref[pbase + b + 1]
                lo = tlo if tlo < n - 1 else n - 1
                hi = thi if thi < n - 1 else n - 1
                break
        return lo, hi

    @njit(cache=True, nogil=True)
    def _k_pla_lookup(keys, n, seg_keys, slopes, icepts, offsets,
                      num_levels, kind, eps, eps_internal, queries):
        out = np.empty(len(queries), dtype=np.int64)
        for i in range(len(queries)):
            lo, hi = _pla_window_one(seg_keys, slopes, icepts, offsets,
                                     num_levels, kind, eps, eps_internal,
                                     n, queries[i])
            out[i] = _lb_window(keys, n, queries[i], lo, hi)
        return out

    @njit(cache=True, nogil=True)
    def _k_pla_serve(keys, n, seg_keys, slopes, icepts, offsets,
                     num_levels, kind, eps, eps_internal,
                     points, lows, highs):
        positions = _k_pla_lookup(keys, n, seg_keys, slopes, icepts,
                                  offsets, num_levels, kind, eps,
                                  eps_internal, points)
        starts = _k_pla_lookup(keys, n, seg_keys, slopes, icepts,
                               offsets, num_levels, kind, eps,
                               eps_internal, lows)
        counts = _k_pla_lookup(keys, n, seg_keys, slopes, icepts,
                               offsets, num_levels, kind, eps,
                               eps_internal, highs)
        for i in range(len(counts)):
            counts[i] -= starts[i]
        return positions, starts, counts

    @njit(cache=True, nogil=True)
    def _k_tree_lookup(keys, n, kind, entry_keys, positions, node_lo,
                       node_shift, node_base, node_pref, node_child,
                       num_bins, min_key, queries):
        out = np.empty(len(queries), dtype=np.int64)
        for i in range(len(queries)):
            lo, hi = _tree_window_one(kind, entry_keys, positions,
                                      node_lo, node_shift, node_base,
                                      node_pref, node_child, num_bins,
                                      min_key, n, queries[i])
            out[i] = _lb_window(keys, n, queries[i], lo, hi)
        return out

    @njit(cache=True, nogil=True)
    def _k_tree_serve(keys, n, kind, entry_keys, positions, node_lo,
                      node_shift, node_base, node_pref, node_child,
                      num_bins, min_key, points, lows, highs):
        pos = _k_tree_lookup(keys, n, kind, entry_keys, positions,
                             node_lo, node_shift, node_base, node_pref,
                             node_child, num_bins, min_key, points)
        starts = _k_tree_lookup(keys, n, kind, entry_keys, positions,
                                node_lo, node_shift, node_base,
                                node_pref, node_child, num_bins,
                                min_key, lows)
        counts = _k_tree_lookup(keys, n, kind, entry_keys, positions,
                                node_lo, node_shift, node_base,
                                node_pref, node_child, num_bins,
                                min_key, highs)
        for i in range(len(counts)):
            counts[i] -= starts[i]
        return pos, starts, counts


def _packed_args(packed: PackedRMI):
    return (
        packed.codes, packed.params, packed.offsets,
        np.int64(packed.num_layers), packed.scales,
        packed.scaled, np.int32(packed.bkind),
        packed.blo, packed.bhi,
    )


def _pla_args(packed: PackedPLA):
    return (
        packed.seg_keys, packed.slopes, packed.icepts, packed.offsets,
        np.int64(packed.num_levels), np.int32(packed.kind),
        np.int64(packed.eps), np.int64(packed.eps_internal),
    )


def _tree_args(packed: PackedTree):
    return (
        np.int32(packed.kind), packed.entry_keys, packed.positions,
        packed.node_lo, packed.node_shift, packed.node_base,
        packed.node_pref, packed.node_child, np.int64(packed.num_bins),
        np.uint64(packed.min_key),
    )


class NumbaBackend(KernelBackend):  # pragma: no cover - needs numba
    """JIT-compiled kernels; see module docstring for caching/warm-up."""

    name = "numba"
    compiled = True

    def lower_bound_window(self, keys, queries, lo, hi):
        return _k_lower_bound_window(
            np.ascontiguousarray(keys, dtype=np.uint64),
            np.ascontiguousarray(queries, dtype=np.uint64),
            np.ascontiguousarray(lo, dtype=np.int64),
            np.ascontiguousarray(hi, dtype=np.int64),
        )

    def rmi_predict(self, packed: PackedRMI, queries):
        return _k_rmi_predict(
            packed.codes, packed.params, packed.offsets,
            np.int64(packed.num_layers), packed.scales,
            packed.scaled, np.int64(packed.n),
            np.ascontiguousarray(queries, dtype=np.uint64),
        )

    def rmi_lookup(self, packed: PackedRMI, keys, queries):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        return _k_rmi_lookup(
            keys, np.int64(len(keys)), *_packed_args(packed),
            np.ascontiguousarray(queries, dtype=np.uint64),
        )

    def rmi_serve(self, packed: PackedRMI, keys, point_queries,
                  range_lows, range_highs):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        return _k_rmi_serve(
            keys, np.int64(len(keys)), *_packed_args(packed),
            np.ascontiguousarray(point_queries, dtype=np.uint64),
            np.ascontiguousarray(range_lows, dtype=np.uint64),
            np.ascontiguousarray(range_highs, dtype=np.uint64),
        )

    def pla_lookup(self, packed: PackedPLA, keys, queries):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        return _k_pla_lookup(
            keys, np.int64(len(keys)), *_pla_args(packed),
            np.ascontiguousarray(queries, dtype=np.uint64),
        )

    def pla_serve(self, packed: PackedPLA, keys, point_queries,
                  range_lows, range_highs):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        return _k_pla_serve(
            keys, np.int64(len(keys)), *_pla_args(packed),
            np.ascontiguousarray(point_queries, dtype=np.uint64),
            np.ascontiguousarray(range_lows, dtype=np.uint64),
            np.ascontiguousarray(range_highs, dtype=np.uint64),
        )

    def tree_lookup(self, packed: PackedTree, keys, queries):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        return _k_tree_lookup(
            keys, np.int64(len(keys)), *_tree_args(packed),
            np.ascontiguousarray(queries, dtype=np.uint64),
        )

    def tree_serve(self, packed: PackedTree, keys, point_queries,
                   range_lows, range_highs):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        return _k_tree_serve(
            keys, np.int64(len(keys)), *_tree_args(packed),
            np.ascontiguousarray(point_queries, dtype=np.uint64),
            np.ascontiguousarray(range_lows, dtype=np.uint64),
            np.ascontiguousarray(range_highs, dtype=np.uint64),
        )

    def warmup(self) -> None:
        """Trigger (or load from cache) every kernel's compilation."""
        keys = np.arange(4, dtype=np.uint64)
        queries = np.asarray([1, 3], dtype=np.uint64)
        win = np.asarray([0, 0], dtype=np.int64)
        top = np.asarray([3, 3], dtype=np.int64)
        self.lower_bound_window(keys, queries, win, top)
        packed = PackedRMI(
            codes=np.asarray([2, 2], dtype=np.int8),
            params=np.asarray(
                [[1.0, 0.0, 0, 0, 0, 0], [1.0, 0.0, 0, 0, 0, 0]],
                dtype=np.float64,
            ),
            offsets=np.asarray([0, 1, 2], dtype=np.int64),
            scales=np.asarray([2.0 / 4.0], dtype=np.float64),
            scaled=False,
            n=4,
            bkind=2,
            blo=np.asarray([-1], dtype=np.int64),
            bhi=np.asarray([1], dtype=np.int64),
        )
        self.rmi_predict(packed, queries)
        self.rmi_lookup(packed, keys, queries)
        self.rmi_serve(packed, keys, queries, queries, queries)
        # Every PLA kind (kind is a runtime value, one compilation
        # covers all three, but exercise each branch anyway).
        for kind, nlev in ((PLA_DESCEND, 2), (PLA_SEGMENT, 1),
                           (PLA_SPLINE, 1)):
            sizes = [2, 1] if kind == PLA_DESCEND else [1]
            total = sum(sizes)
            offs = np.zeros(nlev + 1, dtype=np.int64)
            np.cumsum(sizes, out=offs[1:])
            pla = PackedPLA(
                family="warmup", kind=kind,
                seg_keys=np.zeros(total, dtype=np.uint64),
                slopes=np.zeros(total, dtype=np.float64) if
                kind == PLA_SPLINE else np.ones(total, dtype=np.float64),
                icepts=np.zeros(total, dtype=np.float64),
                offsets=offs, eps=1, eps_internal=1, n=4,
            )
            self.pla_lookup(pla, keys, queries)
            self.pla_serve(pla, keys, queries, queries, queries)
        sparse = pack_sparse_directory(
            "warmup", keys[::2], np.asarray([0, 2], dtype=np.int64), 4
        )
        self.tree_lookup(sparse, keys, queries)
        self.tree_serve(sparse, keys, queries, queries, queries)

        class _Node:
            lo_key = 0
            shift = 1
            base = 0
            counts = np.asarray([2, 2], dtype=np.int64)
            children: "dict[int, object]" = {}

        hist = pack_hist_nodes("warmup", _Node(), 2, 0, 4)
        self.tree_lookup(hist, keys, queries)
        self.tree_serve(hist, keys, queries, queries, queries)
