"""Abstract interface every kernel backend implements.

A backend provides the hot kernels of the lookup path over flat arrays
(see :mod:`repro.kernels.packed`, :mod:`repro.kernels.packed_pla`,
:mod:`repro.kernels.packed_tree`):

``lower_bound_window``
    Window-restricted batch lower bound with interval-escape repair --
    the shared completion step of *every* index's batch lookup
    (``core/search.batch_lower_bound_window`` dispatches here).
``delta_correct``
    The writable tier's merged-lookup completion: full-range lower
    bound over the sorted delta buffer plus a per-rank position
    correction gather, fused into one pass
    (``repro.writable.index._View.lookup`` dispatches here).
``rmi_predict`` / ``rmi_lookup`` / ``rmi_serve``
    The RMI-specific fused paths: Equation-3 routing + Equation-4 leaf
    prediction, the full predict→bounds→bounded-search lookup, and the
    serving-layer point+range unit chaining three lookups in one call.
``pla_lookup`` / ``pla_serve``
    The same fused shapes over a :class:`~repro.kernels.packed_pla.PackedPLA`
    (PGM descent, FITing-Tree segment routing, RadixSpline knot
    interpolation).
``tree_lookup`` / ``tree_serve``
    Fused descent over a :class:`~repro.kernels.packed_tree.PackedTree`
    (sparse B+-tree directory, Hist-Tree bin descent).

:meth:`KernelBackend.lookup` / :meth:`KernelBackend.serve` dispatch a
packed structure of any family to the right kernel via its
``packed_kind`` tag, so the baselines' kernel hand-off is one generic
call site (``OrderedIndex._kernel_state``).

Contract: every backend returns **bit-identical positions** to the
staged NumPy reference on the same inputs -- the conformance suite
(`tests/test_conformance.py`, `tests/test_kernels.py`) pins this per
backend.  Inputs follow the repo-wide conventions: ``keys``/``queries``
are ``uint64``, windows are inclusive ``int64`` bounds already clamped
to ``[0, n-1]``, results are ``int64`` lower-bound positions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KernelBackend", "PACKED_DISPATCH"]

#: ``packed_kind`` tag -> (lookup method, serve method) names.
PACKED_DISPATCH = {
    "rmi": ("rmi_lookup", "rmi_serve"),
    "pla": ("pla_lookup", "pla_serve"),
    "tree": ("tree_lookup", "tree_serve"),
}


class KernelBackend:
    """One implementation of the hot lookup kernels."""

    #: Registry name (``"numpy"``, ``"numba"``, ``"cext"``).
    name: str = "?"
    #: True when the kernels run as machine code outside the NumPy
    #: staged path.  ``RMI`` only diverts to ``rmi_*`` for compiled
    #: backends; the NumPy backend's packed implementations exist for
    #: conformance testing and as the benchmark baseline.
    compiled: bool = False

    def lower_bound_window(
        self,
        keys: np.ndarray,
        queries: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
    ) -> np.ndarray:
        """Batch lower bound inside inclusive ``[lo, hi]`` windows."""
        raise NotImplementedError

    def delta_correct(
        self,
        delta_keys: np.ndarray,
        corr: np.ndarray,
        base_positions: np.ndarray,
        queries: np.ndarray,
    ) -> np.ndarray:
        """Merged-lookup completion for the writable tier's dirty reads.

        ``out[i] = base_positions[i] + corr[rank]`` where ``rank`` is
        the full-range lower bound of ``queries[i]`` in the sorted,
        per-key-unique ``delta_keys`` (``corr`` has ``len(delta_keys)
        + 1`` entries).  This staged form is the reference every
        backend must match bit-for-bit; the C backend overrides it
        with a fused single-pass kernel
        (:meth:`CExtBackend.delta_correct`).
        """
        idx = np.searchsorted(
            np.ascontiguousarray(delta_keys, dtype=np.uint64),
            np.ascontiguousarray(queries, dtype=np.uint64),
            side="left",
        )
        return np.asarray(base_positions, dtype=np.int64) + \
            np.asarray(corr, dtype=np.int64)[idx]

    def rmi_predict(
        self, packed, queries: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Fused routing + leaf prediction: ``(model_ids, positions)``."""
        raise NotImplementedError

    def rmi_lookup(
        self, packed, keys: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        """Full fused lookup: route→predict→bounds→bounded search."""
        raise NotImplementedError

    def rmi_serve(
        self,
        packed,
        keys: np.ndarray,
        point_queries: np.ndarray,
        range_lows: np.ndarray,
        range_highs: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Fused serving unit: ``(positions, range_starts, range_counts)``."""
        raise NotImplementedError

    def pla_lookup(
        self, packed, keys: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        """Fused PLA lookup: route→evaluate→window→bounded search."""
        raise NotImplementedError

    def pla_serve(
        self,
        packed,
        keys: np.ndarray,
        point_queries: np.ndarray,
        range_lows: np.ndarray,
        range_highs: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Fused PLA serving unit: ``(positions, starts, counts)``."""
        raise NotImplementedError

    def tree_lookup(
        self, packed, keys: np.ndarray, queries: np.ndarray
    ) -> np.ndarray:
        """Fused tree lookup: descend→window→bounded search."""
        raise NotImplementedError

    def tree_serve(
        self,
        packed,
        keys: np.ndarray,
        point_queries: np.ndarray,
        range_lows: np.ndarray,
        range_highs: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Fused tree serving unit: ``(positions, starts, counts)``."""
        raise NotImplementedError

    # -- generic dispatch ------------------------------------------------

    def lookup(self, packed, keys: np.ndarray,
               queries: np.ndarray) -> np.ndarray:
        """Fused lookup for any packed family (``packed_kind`` dispatch)."""
        method = PACKED_DISPATCH[packed.packed_kind][0]
        return getattr(self, method)(packed, keys, queries)

    def serve(
        self,
        packed,
        keys: np.ndarray,
        point_queries: np.ndarray,
        range_lows: np.ndarray,
        range_highs: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """Fused serving unit for any packed family."""
        method = PACKED_DISPATCH[packed.packed_kind][1]
        return getattr(self, method)(
            packed, keys, point_queries, range_lows, range_highs
        )

    def warmup(self) -> None:
        """Force compilation/loading now, off the serving hot path.

        Idempotent and cheap when already warm.  ``IndexServer`` calls
        this at start and after a hot swap so JIT compilation never
        lands inside a live request's deadline.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "compiled" if self.compiled else "interpreted"
        return f"<KernelBackend {self.name} ({kind})>"
