"""Compiled C backend: gcc-built shared library loaded via ctypes.

ROADMAP item 4 allows "numba njit or a small C extension"; this is the
small C extension.  The kernel source below is compiled once per source
revision (output keyed by a SHA-256 of source + flags, so upgrades
never load a stale library) with ``-O3 -ffp-contract=off`` -- contract
*off* matters: GCC's default of fused multiply-adds in ``-std=gnu``
mode would change last-ulp results of the polynomial evaluations and
break the bit-identical contract with the NumPy reference.  No
setuptools, no Python.h: the library is plain C called through
``ctypes``, so building needs nothing beyond a C compiler.

The C functions replay exactly the arithmetic of the staged NumPy path
(see the comments in the source); positions are additionally guaranteed
equal by construction because the window search plus escape repair
always lands on the global ``searchsorted`` answer.

Availability: :func:`load` raises :class:`CExtUnavailable` when no C
compiler is present or compilation fails; the registry treats that as
"backend absent" and falls back.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import time
from pathlib import Path

import numpy as np
from numpy.ctypeslib import ndpointer

from .base import KernelBackend
from .packed import PackedRMI
from .packed_pla import PackedPLA
from .packed_tree import PackedTree

__all__ = ["CExtBackend", "CExtUnavailable", "load"]


class CExtUnavailable(RuntimeError):
    """No C compiler, or the kernel library failed to build/load."""


_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* Lower bound (numpy.searchsorted side="left") on the half-open range
 * [left, right). */
static int64_t lower_bound(const uint64_t *keys, int64_t left,
                           int64_t right, uint64_t q) {
    while (left < right) {
        int64_t mid = (int64_t)(((uint64_t)left + (uint64_t)right) >> 1);
        /* Mask-select halving step: the comparison outcome is a coin
         * flip on real keys, so a branch here mispredicts roughly
         * every other probe and the flush costs more than the probe.
         * Compilers re-branch ternaries, hence the explicit masks --
         * pure ALU selects, nothing to predict, same values as the
         * branchy form bit for bit. */
        int64_t m = -(int64_t)(keys[mid] < q);
        left = (m & (mid + 1)) | (~m & left);
        right = (m & right) | (~m & mid);
    }
    return left;
}

/* Upper bound (numpy.searchsorted side="right") on the half-open range
 * [left, right). */
static int64_t upper_bound(const uint64_t *keys, int64_t left,
                           int64_t right, uint64_t q) {
    while (left < right) {
        int64_t mid = (int64_t)(((uint64_t)left + (uint64_t)right) >> 1);
        int64_t m = -(int64_t)(keys[mid] <= q);
        left = (m & (mid + 1)) | (~m & left);
        right = (m & right) | (~m & mid);
    }
    return left;
}

/* Queries per block: the per-lane window state must stay L1-resident
 * alongside the touched key lines, and a block is the unit of
 * prefetch pipelining (phase k computes addresses and prefetches for
 * phase k+1 across the whole block, so by the time a line is probed
 * its miss has already been in flight for ~BLOCK iterations). */
#define BLOCK 256

#if defined(__GNUC__) || defined(__clang__)
#define PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define PREFETCH(addr)
#endif

/* Branchy lower bound: computes the same values as lower_bound(), but
 * with a real conditional branch per probe.  On windows whose answer
 * sits at a *predictable* offset -- a well-fitted RMI's labs windows,
 * where the prediction error is usually 0 or 1, so every query walks
 * the same probe path -- the branch predictor learns that path and the
 * core speculates ahead through the whole chain of loads, which the
 * mask-select form (a serial load->ALU->address dependence) cannot do.
 * When probe outcomes are coin flips this is ~3x *slower* than the
 * mask-select breadth-first sweep; lb_block picks per block. */
static int64_t lower_bound_spec(const uint64_t *keys, int64_t left,
                                int64_t right, uint64_t q) {
    while (left < right) {
        int64_t mid = (int64_t)(((uint64_t)left + (uint64_t)right) >> 1);
        if (keys[mid] < q) left = mid + 1;
        else right = mid;
    }
    return left;
}

/* Windows at or under this width with no uniform-offset hint take the
 * speculative depth-first path: tight windows come from models whose
 * predictions are usually exact, which is exactly when the branch
 * predictor wins.  Wide windows mean spread-out errors, i.e. coin-flip
 * probes, where the mask-select sweep is ~3x faster. */
#define TIGHT_MAX_WIDTH 32

/* One window-restricted lower bound with interval-escape repair: the
 * compiled twin of core/search.batch_lower_bound_window for a single
 * query.  The repair searches are restricted to [0, lo) / [hi+1, n),
 * which provably equals the unrestricted searchsorted the NumPy path
 * uses: a left escape implies the global answer is < lo, a right
 * escape implies it is >= hi+1.  Escapes stay scalar, and they use the
 * *branchy* search even though their probe outcomes are coin flips: a
 * repair is one lone serial descent over a huge range (cold loads,
 * ~log2(n) levels), with no sibling lanes to overlap against, so
 * speculative execution down the mispredicted-but-prefetching branch
 * path is the only latency hiding available -- the mask-select form
 * serializes the whole chain of cache misses and loses ~10ns/lookup
 * overall once even ~10% of queries escape (absent keys overshooting
 * labs bounds).  Search and repair fuse into one register-resident
 * pass per lane -- splitting them into separate block loops measurably
 * loses ~10ns/lookup to the extra loads and stores. */
static inline int64_t lb_window_one(const uint64_t *keys, int64_t n,
                                    uint64_t q, int64_t lo, int64_t hi) {
    int64_t res = lower_bound_spec(keys, lo, hi + 1, q);
    if (res == lo && lo > 0 && keys[lo - 1] >= q) {
        res = lower_bound_spec(keys, 0, lo, q);
    } else if (res == hi + 1 && hi + 1 < n) {
        res = lower_bound_spec(keys, hi + 1, n, q);
    }
    return res;
}

/* Window search over one block, two strategies sharing one contract:
 * per lane the arithmetic is exactly lower_bound()'s -- same midpoint
 * expression, same comparison, same selected values -- so the
 * converged position, and the escape repair applied to it, are
 * bit-identical to the staged NumPy path whichever strategy runs.
 *
 * The default strategy is breadth-first and branch-free: all lanes
 * advance one mask-select halving step per sweep, so there is no
 * data-dependent branch to flush and within a sweep the probes of
 * different lanes are independent loads the out-of-order core overlaps
 * freely.  That wins whenever the answer sits at an unpredictable
 * offset in its window (``uniform`` hint: +/-eps PLA windows, tree
 * node gaps).  Blocks of tight windows without the hint take the
 * speculative depth-first path instead -- see lower_bound_spec. */
static void lb_block(const uint64_t *keys, int64_t n, const uint64_t *q,
                     const int64_t *lo, const int64_t *hi, int64_t c,
                     int64_t *out, int uniform) {
    if (!uniform) {
        int64_t maxw = 0;
        for (int64_t i = 0; i < c; i++) {
            int64_t w = hi[i] - lo[i] + 1;
            maxw = w > maxw ? w : maxw;
        }
        if (maxw <= TIGHT_MAX_WIDTH) {
            for (int64_t i = 0; i < c; i++) {
                PREFETCH(keys +
                         (int64_t)(((uint64_t)lo[i] + (uint64_t)hi[i] + 1)
                                   >> 1));
            }
            for (int64_t i = 0; i < c; i++) {
                out[i] = lb_window_one(keys, n, q[i], lo[i], hi[i]);
            }
            return;
        }
    }
    int64_t left[BLOCK], right[BLOCK];
    int active = 0;
    for (int64_t i = 0; i < c; i++) {
        left[i] = lo[i];
        right[i] = hi[i] + 1;
        active |= (left[i] < right[i]);
    }
    while (active) {
        active = 0;
        for (int64_t i = 0; i < c; i++) {
            int64_t l = left[i], r = right[i];
            if (l >= r) continue;  /* converged lanes: cheap skip */
            int64_t mid = (int64_t)(((uint64_t)l + (uint64_t)r) >> 1);
            int64_t m = -(int64_t)(keys[mid] < q[i]);
            left[i] = (m & (mid + 1)) | (~m & l);
            right[i] = (m & r) | (~m & mid);
            active |= (left[i] < right[i]);
        }
    }
    /* Escape repair for the breadth-first strategy (see lb_window_one
     * for the contract, the proof, and why repairs are branchy). */
    for (int64_t i = 0; i < c; i++) {
        int64_t res = left[i];
        if (res == lo[i] && lo[i] > 0 && keys[lo[i] - 1] >= q[i]) {
            res = lower_bound_spec(keys, 0, lo[i], q[i]);
        } else if (res == hi[i] + 1 && hi[i] + 1 < n) {
            res = lower_bound_spec(keys, hi[i] + 1, n, q[i]);
        }
        out[i] = res;
    }
}

/* One model evaluation; codes and row layout match core/models.py's SoA
 * registry (serialize.py's on-disk codes).  Formulas are copied from
 * each family's eval_soa, same operation order for bit-identity. */
static double eval_model(int8_t code, const double *p, uint64_t q) {
    switch (code) {
    case 0:  /* ConstantModel */
        return p[0];
    case 1:  /* LinearRegression */
    case 2:  /* LinearSpline */
        return p[0] * (double)q + p[1];
    case 3: {  /* CubicSpline (normalized Horner form) */
        double t = ((double)q - p[4]) * p[5];
        return ((p[0] * t + p[1]) * t + p[2]) * t + p[3];
    }
    case 4: {  /* Radix: (x << a) >> b; rs >= 64 means "predict 0" */
        double rs = p[1];
        if (rs >= 64.0) return 0.0;
        uint64_t ls = (uint64_t)p[0];
        if (ls >= 64) return 0.0;  /* unreachable by construction */
        return (double)((q << ls) >> (uint64_t)rs);
    }
    }
    return 0.0;
}

/* Equation 3: route one query through the inner layers.  Matches
 * RMI._assignments: scale (unless trained on model indexes), nan -> 0,
 * clamp to [0, fanout-1] in float space, floor, cast. */
static int64_t route_leaf(const int8_t *codes, const double *params,
                          const int64_t *offsets, int64_t num_layers,
                          const double *scales, int32_t scaled,
                          uint64_t q) {
    int64_t j = 0;
    for (int64_t d = 0; d + 1 < num_layers; d++) {
        int64_t row = offsets[d] + j;
        double pred = eval_model(codes[row], params + row * 6, q);
        double est = scaled ? pred : pred * scales[d];
        if (isnan(est) || est < 0.0) est = 0.0;
        double cap = (double)(offsets[d + 2] - offsets[d + 1] - 1);
        if (est > cap) est = cap;
        j = (int64_t)floor(est);
    }
    return j;
}

/* Equation 4: leaf position estimate, clamped to [0, n-1] (truncating
 * cast == astype(int64) for non-negative values). */
static int64_t predict_pos(const int8_t *codes, const double *params,
                           const int64_t *offsets, int64_t num_layers,
                           int64_t n, int64_t leaf, uint64_t q) {
    int64_t row = offsets[num_layers - 1] + leaf;
    double est = eval_model(codes[row], params + row * 6, q);
    if (isnan(est) || est < 0.0) est = 0.0;
    double cap = (double)(n - 1);
    if (est > cap) est = cap;
    return (int64_t)est;
}

/* Fused lookup over a query batch, in three block-wide phases so every
 * random access is prefetched one phase (~BLOCK queries) before it is
 * consumed: (1) route through the inner layers -- root params are hot,
 * the landing leaf's param row and error-bound rows are only now
 * known, so prefetch them; (2) predict + window arithmetic on those
 * now-resident rows, prefetching each window's first probe line;
 * (3) the breadth-first block search on the already-in-flight lines.
 * bkind: 0 none, 1 per-model, 2 global (blo/bhi row 0). */
static void lookup_batch(const uint64_t *keys, int64_t n,
                         const int8_t *codes, const double *params,
                         const int64_t *offsets, int64_t num_layers,
                         const double *scales, int32_t scaled,
                         int32_t bkind, const int64_t *blo,
                         const int64_t *bhi,
                         const uint64_t *queries, int64_t m,
                         int64_t *out) {
    int64_t leaf_a[BLOCK], wlo[BLOCK], whi[BLOCK];
    int64_t leaf_off = offsets[num_layers - 1];
    for (int64_t b = 0; b < m; b += BLOCK) {
        int64_t c = m - b < BLOCK ? m - b : BLOCK;
        for (int64_t i = 0; i < c; i++) {
            int64_t leaf = route_leaf(codes, params, offsets,
                                      num_layers, scales, scaled,
                                      queries[b + i]);
            leaf_a[i] = leaf;
            PREFETCH(params + (leaf_off + leaf) * 6);
            if (bkind == 1) {
                PREFETCH(blo + leaf);
                PREFETCH(bhi + leaf);
            }
        }
        for (int64_t i = 0; i < c; i++) {
            uint64_t q = queries[b + i];
            int64_t leaf = leaf_a[i];
            int64_t pos = predict_pos(codes, params, offsets,
                                      num_layers, n, leaf, q);
            int64_t lo, hi;
            if (bkind == 0) {
                lo = 0; hi = n - 1;
            } else if (bkind == 1) {
                lo = pos + blo[leaf]; hi = pos + bhi[leaf];
            } else {
                lo = pos + blo[0]; hi = pos + bhi[0];
            }
            if (lo < 0) lo = 0; else if (lo > n - 1) lo = n - 1;
            if (hi < 0) hi = 0; else if (hi > n - 1) hi = n - 1;
            wlo[i] = lo; whi[i] = hi;
        }
        lb_block(keys, n, queries + b, wlo, whi, c, out + b, 0);
    }
}

/* One PLA query's data window, replaying the staged lookup_batch
 * arithmetic of the matching baseline.  kind: 0 PGM-style multi-level
 * descent (PGMIndex / CompressedPGM), 1 predecessor segment routing
 * (FITing-Tree), 2 spline-knot interpolation (RadixSpline).  The float
 * pipeline copies each baseline's operation order exactly; "nan or
 * negative -> 0, over cap -> cap" is np.clip(np.nan_to_num(x), 0, cap)
 * for the kinds that apply it (the spline path, like its staged twin,
 * clips without a nan_to_num -- spline interpolation over finite knots
 * cannot produce one). */
static void pla_window_one(const uint64_t *seg_keys, const double *slopes,
                           const double *icepts, const int64_t *offsets,
                           int64_t num_levels, int32_t kind,
                           int64_t eps, int64_t eps_internal, int64_t n,
                           uint64_t q, int64_t *wlo, int64_t *whi) {
    double qf = (double)q;
    int64_t lo, hi;
    if (kind == 0) {  /* PLA_DESCEND */
        int64_t seg = 0;
        for (int64_t depth = num_levels - 1; depth > 0; depth--) {
            int64_t row = offsets[depth] + seg;
            int64_t bl = offsets[depth - 1];
            int64_t msz = offsets[depth] - bl;
            double pred = icepts[row] +
                slopes[row] * (qf - (double)seg_keys[row]);
            if (isnan(pred) || pred < 0.0) pred = 0.0;
            double cap = (double)(msz - 1);
            if (pred > cap) pred = cap;
            int64_t center = (int64_t)pred;
            int64_t slo = center - eps_internal;
            if (slo < 0) slo = 0;
            int64_t shi = center + eps_internal;
            if (shi > msz - 1) shi = msz - 1;
            int64_t lb = lower_bound(seg_keys + bl, slo, shi + 1, q);
            /* Predecessor semantics: the segment whose first key <= q. */
            int64_t cl = lb > msz - 1 ? msz - 1 : lb;
            int exact = lb <= shi && seg_keys[bl + cl] == q;
            seg = exact ? lb : lb - 1;
            if (seg < 0) seg = 0;
            else if (seg > msz - 1) seg = msz - 1;
        }
        int64_t row = offsets[0] + seg;
        double pred = icepts[row] +
            slopes[row] * (qf - (double)seg_keys[row]);
        if (isnan(pred) || pred < 0.0) pred = 0.0;
        double cap = (double)(n - 1);
        if (pred > cap) pred = cap;
        int64_t center = (int64_t)pred;
        lo = center - eps;
        if (lo < 0) lo = 0;
        hi = center + eps;
        if (hi > n - 1) hi = n - 1;
    } else if (kind == 1) {  /* PLA_SEGMENT */
        int64_t nseg = offsets[1];
        int64_t idx = upper_bound(seg_keys, 0, nseg, q) - 1;
        int64_t seg = idx;
        if (seg < 0) seg = 0;
        else if (seg > nseg - 1) seg = nseg - 1;
        double pred = icepts[seg] +
            slopes[seg] * (qf - (double)seg_keys[seg]);
        if (isnan(pred) || pred < 0.0) pred = 0.0;
        double cap = (double)(n - 1);
        if (pred > cap) pred = cap;
        int64_t center = (int64_t)pred;
        lo = center - eps;
        if (lo < 0) lo = 0;
        hi = center + eps;
        if (hi > n - 1) hi = n - 1;
        if (idx < 0) {  /* query precedes every segment */
            lo = 0;
            hi = 0;
        }
    } else {  /* PLA_SPLINE */
        int64_t mkn = offsets[1];
        int64_t idx = upper_bound(seg_keys, 0, mkn, q);
        int64_t left = idx - 1;
        if (left < 0) left = 0;
        else if (left > mkn - 1) left = mkn - 1;
        int64_t right = idx;
        if (right > mkn - 1) right = mkn - 1;
        double x0 = (double)seg_keys[left];
        double x1 = (double)seg_keys[right];
        double dx = x1 - x0;
        double frac = dx > 0.0 ? (qf - x0) / dx : 0.0;
        double pred = icepts[left] + (icepts[right] - icepts[left]) * frac;
        if (pred < 0.0) pred = 0.0;
        double cap = (double)(n - 1);
        if (pred > cap) pred = cap;
        int64_t center = (int64_t)pred;
        lo = center - eps;
        if (lo < 0) lo = 0;
        hi = center + eps;
        if (hi > n - 1) hi = n - 1;
    }
    *wlo = lo;
    *whi = hi;
}

/* One tree query's data window.  kind: 0 sparse B+-tree directory
 * (predecessor over the sampled keys, window spans the entry's gap),
 * 1 Hist-Tree shift-descent over the breadth-first node arrays --
 * both replay the staged lookup_batch windows exactly (the grouped
 * NumPy descent computes the same per-query function). */
static void tree_window_one(int64_t n, int32_t kind,
                            const uint64_t *entry_keys,
                            const int64_t *positions, int64_t num_entries,
                            const uint64_t *node_lo,
                            const int64_t *node_shift,
                            const int64_t *node_base,
                            const int64_t *node_pref,
                            const int64_t *node_child,
                            int64_t num_bins, uint64_t min_key,
                            uint64_t q, int64_t *wlo, int64_t *whi) {
    int64_t lo, hi;
    if (kind == 0) {  /* TREE_SPARSE */
        int64_t entry = upper_bound(entry_keys, 0, num_entries, q) - 1;
        int64_t safe = entry < 0 ? 0 : entry;
        lo = entry >= 0 ? positions[safe] : 0;
        hi = safe + 1 < num_entries ? positions[safe + 1] : n - 1;
        if (entry < 0) hi = positions[0];
    } else {  /* TREE_HIST */
        lo = 0;
        hi = 0;  /* queries below the key space keep the [0, 0] window */
        if (q >= min_key) {
            uint64_t off = q - min_key;
            int64_t node = 0;
            for (;;) {
                uint64_t raw = (off - node_lo[node]) >>
                    (uint64_t)node_shift[node];
                if (raw >= (uint64_t)num_bins) {
                    /* Beyond the covered range: answer is at the end. */
                    lo = n - 1;
                    hi = n - 1;
                    break;
                }
                int64_t b = (int64_t)raw;
                int64_t child = node_child[node * num_bins + b];
                if (child >= 0) {
                    node = child;
                    continue;
                }
                const int64_t *pref = node_pref + node * (num_bins + 1);
                int64_t tlo = node_base[node] + pref[b];
                int64_t thi = node_base[node] + pref[b + 1];
                lo = tlo < n - 1 ? tlo : n - 1;
                hi = thi < n - 1 ? thi : n - 1;
                break;
            }
        }
    }
    *wlo = lo;
    *whi = hi;
}

/* Fused PLA lookup over a query batch: block phase 1 computes every
 * lane's window (segment tables are small and stay hot); phase 2 is
 * the breadth-first block search, which issues and overlaps the data
 * probes itself. */
static void pla_batch(const uint64_t *keys, int64_t n,
                      const uint64_t *seg_keys, const double *slopes,
                      const double *icepts, const int64_t *offsets,
                      int64_t num_levels, int32_t kind,
                      int64_t eps, int64_t eps_internal,
                      const uint64_t *queries, int64_t m, int64_t *out) {
    int64_t wlo[BLOCK], whi[BLOCK];
    for (int64_t b = 0; b < m; b += BLOCK) {
        int64_t c = m - b < BLOCK ? m - b : BLOCK;
        for (int64_t i = 0; i < c; i++) {
            pla_window_one(seg_keys, slopes, icepts, offsets, num_levels,
                           kind, eps, eps_internal, n, queries[b + i],
                           &wlo[i], &whi[i]);
        }
        lb_block(keys, n, queries + b, wlo, whi, c, out + b, 1);
    }
}

/* Fused tree lookup over a query batch, same two-phase block shape. */
static void tree_batch(const uint64_t *keys, int64_t n, int32_t kind,
                       const uint64_t *entry_keys,
                       const int64_t *positions, int64_t num_entries,
                       const uint64_t *node_lo, const int64_t *node_shift,
                       const int64_t *node_base, const int64_t *node_pref,
                       const int64_t *node_child, int64_t num_bins,
                       uint64_t min_key,
                       const uint64_t *queries, int64_t m, int64_t *out) {
    int64_t wlo[BLOCK], whi[BLOCK];
    for (int64_t b = 0; b < m; b += BLOCK) {
        int64_t c = m - b < BLOCK ? m - b : BLOCK;
        for (int64_t i = 0; i < c; i++) {
            tree_window_one(n, kind, entry_keys, positions, num_entries,
                            node_lo, node_shift, node_base, node_pref,
                            node_child, num_bins, min_key, queries[b + i],
                            &wlo[i], &whi[i]);
        }
        lb_block(keys, n, queries + b, wlo, whi, c, out + b, 1);
    }
}

void repro_lower_bound_window(const uint64_t *keys, int64_t n,
                              const uint64_t *queries, int64_t m,
                              const int64_t *lo, const int64_t *hi,
                              int64_t *out) {
    for (int64_t b = 0; b < m; b += BLOCK) {
        int64_t c = m - b < BLOCK ? m - b : BLOCK;
        lb_block(keys, n, queries + b, lo + b, hi + b, c, out + b, 0);
    }
}

/* Writable-tier merged lookup completion: rank every query in the
 * sorted delta key array (full-range lower bound, so lb_block's
 * escape repair can never trigger) and add the per-rank position
 * correction to the caller-supplied base answer.  One block-resident
 * pass replaces the staged path's three (searchsorted, gather, add);
 * the delta rank probes hit unpredictable offsets, so the block takes
 * the breadth-first mask-select strategy (uniform=1). */
void repro_delta_correct(const uint64_t *delta_keys, int64_t dn,
                         const int64_t *corr,
                         const int64_t *base_pos,
                         const uint64_t *queries, int64_t m,
                         int64_t *out) {
    int64_t lo[BLOCK], hi[BLOCK], idx[BLOCK];
    for (int64_t i = 0; i < BLOCK; i++) {
        lo[i] = 0;
        hi[i] = dn - 1;
    }
    for (int64_t b = 0; b < m; b += BLOCK) {
        int64_t c = m - b < BLOCK ? m - b : BLOCK;
        lb_block(delta_keys, dn, queries + b, lo, hi, c, idx, 1);
        for (int64_t i = 0; i < c; i++) {
            out[b + i] = base_pos[b + i] + corr[idx[i]];
        }
    }
}

void repro_rmi_predict(const int8_t *codes, const double *params,
                       const int64_t *offsets, int64_t num_layers,
                       const double *scales, int32_t scaled, int64_t n,
                       const uint64_t *queries, int64_t m,
                       int64_t *ids_out, int64_t *pos_out) {
    for (int64_t i = 0; i < m; i++) {
        int64_t leaf = route_leaf(codes, params, offsets, num_layers,
                                  scales, scaled, queries[i]);
        ids_out[i] = leaf;
        pos_out[i] = predict_pos(codes, params, offsets, num_layers,
                                 n, leaf, queries[i]);
    }
}

void repro_rmi_lookup(const uint64_t *keys, int64_t n,
                      const int8_t *codes, const double *params,
                      const int64_t *offsets, int64_t num_layers,
                      const double *scales, int32_t scaled,
                      int32_t bkind, const int64_t *blo,
                      const int64_t *bhi,
                      const uint64_t *queries, int64_t m, int64_t *out) {
    lookup_batch(keys, n, codes, params, offsets, num_layers, scales,
                 scaled, bkind, blo, bhi, queries, m, out);
}

/* Fused serving unit: point positions, range starts, range counts in
 * one call -- three lookup passes without ever returning to Python. */
void repro_rmi_serve(const uint64_t *keys, int64_t n,
                     const int8_t *codes, const double *params,
                     const int64_t *offsets, int64_t num_layers,
                     const double *scales, int32_t scaled,
                     int32_t bkind, const int64_t *blo,
                     const int64_t *bhi,
                     const uint64_t *points, int64_t mp,
                     const uint64_t *lows, const uint64_t *highs,
                     int64_t mr,
                     int64_t *pos_out, int64_t *start_out,
                     int64_t *count_out) {
    lookup_batch(keys, n, codes, params, offsets, num_layers, scales,
                 scaled, bkind, blo, bhi, points, mp, pos_out);
    lookup_batch(keys, n, codes, params, offsets, num_layers, scales,
                 scaled, bkind, blo, bhi, lows, mr, start_out);
    lookup_batch(keys, n, codes, params, offsets, num_layers, scales,
                 scaled, bkind, blo, bhi, highs, mr, count_out);
    for (int64_t i = 0; i < mr; i++) {
        count_out[i] -= start_out[i];
    }
}

void repro_pla_lookup(const uint64_t *keys, int64_t n,
                      const uint64_t *seg_keys, const double *slopes,
                      const double *icepts, const int64_t *offsets,
                      int64_t num_levels, int32_t kind,
                      int64_t eps, int64_t eps_internal,
                      const uint64_t *queries, int64_t m, int64_t *out) {
    pla_batch(keys, n, seg_keys, slopes, icepts, offsets, num_levels,
              kind, eps, eps_internal, queries, m, out);
}

void repro_pla_serve(const uint64_t *keys, int64_t n,
                     const uint64_t *seg_keys, const double *slopes,
                     const double *icepts, const int64_t *offsets,
                     int64_t num_levels, int32_t kind,
                     int64_t eps, int64_t eps_internal,
                     const uint64_t *points, int64_t mp,
                     const uint64_t *lows, const uint64_t *highs,
                     int64_t mr,
                     int64_t *pos_out, int64_t *start_out,
                     int64_t *count_out) {
    pla_batch(keys, n, seg_keys, slopes, icepts, offsets, num_levels,
              kind, eps, eps_internal, points, mp, pos_out);
    pla_batch(keys, n, seg_keys, slopes, icepts, offsets, num_levels,
              kind, eps, eps_internal, lows, mr, start_out);
    pla_batch(keys, n, seg_keys, slopes, icepts, offsets, num_levels,
              kind, eps, eps_internal, highs, mr, count_out);
    for (int64_t i = 0; i < mr; i++) {
        count_out[i] -= start_out[i];
    }
}

void repro_tree_lookup(const uint64_t *keys, int64_t n, int32_t kind,
                       const uint64_t *entry_keys,
                       const int64_t *positions, int64_t num_entries,
                       const uint64_t *node_lo, const int64_t *node_shift,
                       const int64_t *node_base, const int64_t *node_pref,
                       const int64_t *node_child, int64_t num_bins,
                       uint64_t min_key,
                       const uint64_t *queries, int64_t m, int64_t *out) {
    tree_batch(keys, n, kind, entry_keys, positions, num_entries,
               node_lo, node_shift, node_base, node_pref, node_child,
               num_bins, min_key, queries, m, out);
}

void repro_tree_serve(const uint64_t *keys, int64_t n, int32_t kind,
                      const uint64_t *entry_keys,
                      const int64_t *positions, int64_t num_entries,
                      const uint64_t *node_lo, const int64_t *node_shift,
                      const int64_t *node_base, const int64_t *node_pref,
                      const int64_t *node_child, int64_t num_bins,
                      uint64_t min_key,
                      const uint64_t *points, int64_t mp,
                      const uint64_t *lows, const uint64_t *highs,
                      int64_t mr,
                      int64_t *pos_out, int64_t *start_out,
                      int64_t *count_out) {
    tree_batch(keys, n, kind, entry_keys, positions, num_entries,
               node_lo, node_shift, node_base, node_pref, node_child,
               num_bins, min_key, points, mp, pos_out);
    tree_batch(keys, n, kind, entry_keys, positions, num_entries,
               node_lo, node_shift, node_base, node_pref, node_child,
               num_bins, min_key, lows, mr, start_out);
    tree_batch(keys, n, kind, entry_keys, positions, num_entries,
               node_lo, node_shift, node_base, node_pref, node_child,
               num_bins, min_key, highs, mr, count_out);
    for (int64_t i = 0; i < mr; i++) {
        count_out[i] -= start_out[i];
    }
}
"""

#: Contract OFF is load-bearing for bit-identity (see module docstring).
_CFLAGS = ("-O3", "-ffp-contract=off", "-fno-math-errno",
           "-shared", "-fPIC")


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNELS_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-kernels"


def _source_digest() -> str:
    """Digest keying the build cache: any source/flag change rekeys."""
    return hashlib.sha256(
        (_C_SOURCE + "\0" + " ".join(_CFLAGS)).encode()
    ).hexdigest()[:16]


def _cache_entries(cache: Path):
    """The ``(path, digest)`` pairs of build-cache artifacts on disk."""
    if not cache.is_dir():
        return
    for path in sorted(cache.glob("repro_kernels_*")):
        if path.suffix in (".so", ".c"):
            yield path, path.stem.rsplit("_", 1)[-1]


def build_cache_stats() -> dict:
    """Inventory of the on-demand ``.so`` build cache.

    Surfaced by ``python -m repro.bench cache stats`` alongside the
    artifact store: the compiled-kernel artifacts live outside that
    store (they are keyed by source digest, not by fingerprint), so
    this is how they become visible and collectable.
    """
    cache = _cache_dir()
    current = _source_digest()
    entries = []
    for path, digest in _cache_entries(cache):
        entries.append({
            "file": path.name,
            "digest": digest,
            "bytes": path.stat().st_size,
            "current": digest == current,
        })
    return {
        "dir": str(cache),
        "current_digest": current,
        "entries": entries,
        "bytes": sum(e["bytes"] for e in entries),
        "stale": sum(1 for e in entries if not e["current"]),
    }


def build_cache_gc(max_age_days: "float | None" = None,
                   drop_all: bool = False) -> dict:
    """Collect the ``.so`` build cache: stale digests always, the
    current build on request.

    Artifacts whose source digest no longer matches the in-tree kernel
    source are dead (nothing will ever load them again) and are always
    removed.  ``drop_all`` / ``max_age_days`` additionally drop the
    current build, which is harmless: the next backend load recompiles
    it.  Returns ``{"removed": ..., "kept": ...}`` like the artifact
    store's gc.
    """
    cache = _cache_dir()
    current = _source_digest()
    removed = kept = 0
    now = time.time()
    for path, digest in _cache_entries(cache):
        stale = drop_all or digest != current
        if not stale and max_age_days is not None:
            stale = now - path.stat().st_mtime > max_age_days * 86_400
        if stale:
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent collector
                kept += 1
        else:
            kept += 1
    return {"removed": removed, "kept": kept}


def _build_library() -> Path:
    """Compile the kernel source, keyed by source+flags digest."""
    cc = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if cc is None:
        raise CExtUnavailable("no C compiler (cc/gcc) on PATH")
    digest = _source_digest()
    cache = _cache_dir()
    lib_path = cache / f"repro_kernels_{digest}.so"
    if lib_path.exists():
        return lib_path
    cache.mkdir(parents=True, exist_ok=True)
    src_path = cache / f"repro_kernels_{digest}.c"
    src_path.write_text(_C_SOURCE)
    # Build to a temp name, then atomically publish: concurrent builders
    # (e.g. a process pool warming up) race harmlessly.
    fd, tmp_name = tempfile.mkstemp(suffix=".so", dir=cache)
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, *_CFLAGS, str(src_path), "-o", tmp_name, "-lm"],
            capture_output=True, text=True, timeout=120,
        )
        if proc.returncode != 0:
            raise CExtUnavailable(
                f"kernel compilation failed:\n{proc.stderr.strip()}"
            )
        os.replace(tmp_name, lib_path)
    except (OSError, subprocess.SubprocessError) as exc:
        raise CExtUnavailable(f"kernel compilation failed: {exc}") from exc
    finally:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
    return lib_path


_u64 = ndpointer(np.uint64, flags="C_CONTIGUOUS")
_i64 = ndpointer(np.int64, flags="C_CONTIGUOUS")
_i8 = ndpointer(np.int8, flags="C_CONTIGUOUS")
_f64 = ndpointer(np.float64, flags="C_CONTIGUOUS")
_c_i64 = ctypes.c_int64
_c_i32 = ctypes.c_int32
_c_u64 = ctypes.c_uint64

#: The (seg_keys, slopes, icepts, offsets, num_levels, kind, eps,
#: eps_internal) argument run shared by the pla entry points.
_PLA_ARGS = [_u64, _f64, _f64, _i64, _c_i64, _c_i32, _c_i64, _c_i64]

#: The (kind, entry_keys, positions, num_entries, node_lo, node_shift,
#: node_base, node_pref, node_child, num_bins, min_key) run shared by
#: the tree entry points.
_TREE_ARGS = [_c_i32, _u64, _i64, _c_i64, _u64, _i64, _i64, _i64,
              _i64, _c_i64, _c_u64]

#: (name, argtypes) for every exported kernel.
_SIGNATURES = {
    "repro_lower_bound_window":
        [_u64, _c_i64, _u64, _c_i64, _i64, _i64, _i64],
    "repro_delta_correct":
        [_u64, _c_i64, _i64, _i64, _u64, _c_i64, _i64],
    "repro_rmi_predict":
        [_i8, _f64, _i64, _c_i64, _f64, _c_i32, _c_i64,
         _u64, _c_i64, _i64, _i64],
    "repro_rmi_lookup":
        [_u64, _c_i64, _i8, _f64, _i64, _c_i64, _f64, _c_i32,
         _c_i32, _i64, _i64, _u64, _c_i64, _i64],
    "repro_rmi_serve":
        [_u64, _c_i64, _i8, _f64, _i64, _c_i64, _f64, _c_i32,
         _c_i32, _i64, _i64, _u64, _c_i64, _u64, _u64, _c_i64,
         _i64, _i64, _i64],
    "repro_pla_lookup":
        [_u64, _c_i64, *_PLA_ARGS, _u64, _c_i64, _i64],
    "repro_pla_serve":
        [_u64, _c_i64, *_PLA_ARGS, _u64, _c_i64, _u64, _u64, _c_i64,
         _i64, _i64, _i64],
    "repro_tree_lookup":
        [_u64, _c_i64, *_TREE_ARGS, _u64, _c_i64, _i64],
    "repro_tree_serve":
        [_u64, _c_i64, *_TREE_ARGS, _u64, _c_i64, _u64, _u64, _c_i64,
         _i64, _i64, _i64],
}


def load() -> "CExtBackend":
    """Build (if needed) and load the C kernels; raises CExtUnavailable."""
    lib_path = _build_library()
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError as exc:
        raise CExtUnavailable(f"cannot load {lib_path}: {exc}") from exc
    for fname, argtypes in _SIGNATURES.items():
        try:
            fn = getattr(lib, fname)
        except AttributeError as exc:
            raise CExtUnavailable(f"{lib_path} lacks {fname}") from exc
        fn.argtypes = argtypes
        fn.restype = None
    return CExtBackend(lib)


def _packed_args(packed: PackedRMI):
    return (
        packed.codes, packed.params, packed.offsets,
        packed.num_layers, packed.scales,
        1 if packed.scaled else 0, packed.bkind,
        packed.blo, packed.bhi,
    )


def _pla_args(packed: PackedPLA):
    return (
        packed.seg_keys, packed.slopes, packed.icepts, packed.offsets,
        packed.num_levels, packed.kind, packed.eps, packed.eps_internal,
    )


def _tree_args(packed: PackedTree):
    return (
        packed.kind, packed.entry_keys, packed.positions,
        packed.num_entries, packed.node_lo, packed.node_shift,
        packed.node_base, packed.node_pref, packed.node_child,
        packed.num_bins, packed.min_key,
    )


class CExtBackend(KernelBackend):
    """ctypes wrapper over the gcc-compiled kernel library."""

    name = "cext"
    compiled = True

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib

    def lower_bound_window(self, keys, queries, lo, hi):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        queries = np.ascontiguousarray(queries, dtype=np.uint64)
        n = len(keys)
        # Same clamp every in-repo caller already applies; defensive
        # here because the C loop indexes without probe clipping.
        lo = np.clip(np.ascontiguousarray(lo, dtype=np.int64), 0, n - 1)
        hi = np.clip(np.ascontiguousarray(hi, dtype=np.int64), 0, n - 1)
        out = np.empty(len(queries), dtype=np.int64)
        self._lib.repro_lower_bound_window(
            keys, n, queries, len(queries), lo, hi, out
        )
        return out

    def delta_correct(self, delta_keys, corr, base_positions, queries):
        delta_keys = np.ascontiguousarray(delta_keys, dtype=np.uint64)
        corr = np.ascontiguousarray(corr, dtype=np.int64)
        base_positions = np.ascontiguousarray(base_positions,
                                              dtype=np.int64)
        queries = np.ascontiguousarray(queries, dtype=np.uint64)
        if not len(delta_keys):
            return base_positions + corr[0]
        out = np.empty(len(queries), dtype=np.int64)
        self._lib.repro_delta_correct(
            delta_keys, len(delta_keys), corr, base_positions,
            queries, len(queries), out,
        )
        return out

    def rmi_predict(self, packed: PackedRMI, queries):
        queries = np.ascontiguousarray(queries, dtype=np.uint64)
        m = len(queries)
        ids = np.empty(m, dtype=np.int64)
        pos = np.empty(m, dtype=np.int64)
        self._lib.repro_rmi_predict(
            packed.codes, packed.params, packed.offsets,
            packed.num_layers, packed.scales,
            1 if packed.scaled else 0, packed.n,
            queries, m, ids, pos,
        )
        return ids, pos

    def rmi_lookup(self, packed: PackedRMI, keys, queries):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        queries = np.ascontiguousarray(queries, dtype=np.uint64)
        out = np.empty(len(queries), dtype=np.int64)
        self._lib.repro_rmi_lookup(
            keys, len(keys), *_packed_args(packed),
            queries, len(queries), out,
        )
        return out

    def rmi_serve(self, packed: PackedRMI, keys, point_queries,
                  range_lows, range_highs):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        points = np.ascontiguousarray(point_queries, dtype=np.uint64)
        lows = np.ascontiguousarray(range_lows, dtype=np.uint64)
        highs = np.ascontiguousarray(range_highs, dtype=np.uint64)
        positions = np.empty(len(points), dtype=np.int64)
        starts = np.empty(len(lows), dtype=np.int64)
        counts = np.empty(len(lows), dtype=np.int64)
        self._lib.repro_rmi_serve(
            keys, len(keys), *_packed_args(packed),
            points, len(points), lows, highs, len(lows),
            positions, starts, counts,
        )
        return positions, starts, counts

    def pla_lookup(self, packed: PackedPLA, keys, queries):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        queries = np.ascontiguousarray(queries, dtype=np.uint64)
        out = np.empty(len(queries), dtype=np.int64)
        self._lib.repro_pla_lookup(
            keys, len(keys), *_pla_args(packed),
            queries, len(queries), out,
        )
        return out

    def pla_serve(self, packed: PackedPLA, keys, point_queries,
                  range_lows, range_highs):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        points = np.ascontiguousarray(point_queries, dtype=np.uint64)
        lows = np.ascontiguousarray(range_lows, dtype=np.uint64)
        highs = np.ascontiguousarray(range_highs, dtype=np.uint64)
        positions = np.empty(len(points), dtype=np.int64)
        starts = np.empty(len(lows), dtype=np.int64)
        counts = np.empty(len(lows), dtype=np.int64)
        self._lib.repro_pla_serve(
            keys, len(keys), *_pla_args(packed),
            points, len(points), lows, highs, len(lows),
            positions, starts, counts,
        )
        return positions, starts, counts

    def tree_lookup(self, packed: PackedTree, keys, queries):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        queries = np.ascontiguousarray(queries, dtype=np.uint64)
        out = np.empty(len(queries), dtype=np.int64)
        self._lib.repro_tree_lookup(
            keys, len(keys), *_tree_args(packed),
            queries, len(queries), out,
        )
        return out

    def tree_serve(self, packed: PackedTree, keys, point_queries,
                   range_lows, range_highs):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        points = np.ascontiguousarray(point_queries, dtype=np.uint64)
        lows = np.ascontiguousarray(range_lows, dtype=np.uint64)
        highs = np.ascontiguousarray(range_highs, dtype=np.uint64)
        positions = np.empty(len(points), dtype=np.int64)
        starts = np.empty(len(lows), dtype=np.int64)
        counts = np.empty(len(lows), dtype=np.int64)
        self._lib.repro_tree_serve(
            keys, len(keys), *_tree_args(packed),
            points, len(points), lows, highs, len(lows),
            positions, starts, counts,
        )
        return positions, starts, counts

    def warmup(self) -> None:
        """The library is ahead-of-time compiled; loading was the warm-up."""
