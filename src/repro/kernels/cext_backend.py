"""Compiled C backend: gcc-built shared library loaded via ctypes.

ROADMAP item 4 allows "numba njit or a small C extension"; this is the
small C extension.  The kernel source below is compiled once per source
revision (output keyed by a SHA-256 of source + flags, so upgrades
never load a stale library) with ``-O3 -ffp-contract=off`` -- contract
*off* matters: GCC's default of fused multiply-adds in ``-std=gnu``
mode would change last-ulp results of the polynomial evaluations and
break the bit-identical contract with the NumPy reference.  No
setuptools, no Python.h: the library is plain C called through
``ctypes``, so building needs nothing beyond a C compiler.

The C functions replay exactly the arithmetic of the staged NumPy path
(see the comments in the source); positions are additionally guaranteed
equal by construction because the window search plus escape repair
always lands on the global ``searchsorted`` answer.

Availability: :func:`load` raises :class:`CExtUnavailable` when no C
compiler is present or compilation fails; the registry treats that as
"backend absent" and falls back.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np
from numpy.ctypeslib import ndpointer

from .base import KernelBackend
from .packed import PackedRMI

__all__ = ["CExtBackend", "CExtUnavailable", "load"]


class CExtUnavailable(RuntimeError):
    """No C compiler, or the kernel library failed to build/load."""


_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* Lower bound (numpy.searchsorted side="left") on the half-open range
 * [left, right). */
static int64_t lower_bound(const uint64_t *keys, int64_t left,
                           int64_t right, uint64_t q) {
    while (left < right) {
        int64_t mid = (int64_t)(((uint64_t)left + (uint64_t)right) >> 1);
        if (keys[mid] < q) left = mid + 1;
        else right = mid;
    }
    return left;
}

/* Queries per block: the per-lane window state must stay L1-resident
 * alongside the touched key lines, and a block is the unit of
 * prefetch pipelining (phase k computes addresses and prefetches for
 * phase k+1 across the whole block, so by the time a line is probed
 * its miss has already been in flight for ~BLOCK iterations). */
#define BLOCK 256

#if defined(__GNUC__) || defined(__clang__)
#define PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define PREFETCH(addr)
#endif

/* One window-restricted lower bound with interval-escape repair: the
 * compiled twin of core/search.batch_lower_bound_window for a single
 * query.  lo/hi are inclusive and already clamped to [0, n-1].
 *
 * The repair searches are restricted to [0, lo) / [hi+1, n), which
 * provably equals the unrestricted searchsorted the NumPy path uses:
 * a left escape implies the global answer is < lo, a right escape
 * implies it is >= hi+1.  Escapes are rare, so they stay scalar. */
static inline int64_t lb_window_one(const uint64_t *keys, int64_t n,
                                    uint64_t q, int64_t lo, int64_t hi) {
    int64_t res = lower_bound(keys, lo, hi + 1, q);
    if (res == lo && lo > 0 && keys[lo - 1] >= q) {
        res = lower_bound(keys, 0, lo, q);
    } else if (res == hi + 1 && hi + 1 < n) {
        res = lower_bound(keys, hi + 1, n, q);
    }
    return res;
}

/* Window search over one block.  The first probe of every lane is
 * prefetched one full block ahead of the searches, so the initial
 * (and usually only distinct) cache line of each window is in flight
 * while other lanes compute; the remaining probes of a lane land in
 * the same or adjacent lines for the small windows a fitted RMI
 * produces.  Per lane the arithmetic is exactly lower_bound()'s, so
 * results are bit-identical to the staged NumPy path. */
static void lb_block(const uint64_t *keys, int64_t n, const uint64_t *q,
                     const int64_t *lo, const int64_t *hi, int64_t c,
                     int64_t *out) {
    for (int64_t i = 0; i < c; i++) {
        PREFETCH(keys + (int64_t)(((uint64_t)lo[i] + (uint64_t)hi[i] + 1) >> 1));
    }
    for (int64_t i = 0; i < c; i++) {
        out[i] = lb_window_one(keys, n, q[i], lo[i], hi[i]);
    }
}

/* One model evaluation; codes and row layout match core/models.py's SoA
 * registry (serialize.py's on-disk codes).  Formulas are copied from
 * each family's eval_soa, same operation order for bit-identity. */
static double eval_model(int8_t code, const double *p, uint64_t q) {
    switch (code) {
    case 0:  /* ConstantModel */
        return p[0];
    case 1:  /* LinearRegression */
    case 2:  /* LinearSpline */
        return p[0] * (double)q + p[1];
    case 3: {  /* CubicSpline (normalized Horner form) */
        double t = ((double)q - p[4]) * p[5];
        return ((p[0] * t + p[1]) * t + p[2]) * t + p[3];
    }
    case 4: {  /* Radix: (x << a) >> b; rs >= 64 means "predict 0" */
        double rs = p[1];
        if (rs >= 64.0) return 0.0;
        uint64_t ls = (uint64_t)p[0];
        if (ls >= 64) return 0.0;  /* unreachable by construction */
        return (double)((q << ls) >> (uint64_t)rs);
    }
    }
    return 0.0;
}

/* Equation 3: route one query through the inner layers.  Matches
 * RMI._assignments: scale (unless trained on model indexes), nan -> 0,
 * clamp to [0, fanout-1] in float space, floor, cast. */
static int64_t route_leaf(const int8_t *codes, const double *params,
                          const int64_t *offsets, int64_t num_layers,
                          const double *scales, int32_t scaled,
                          uint64_t q) {
    int64_t j = 0;
    for (int64_t d = 0; d + 1 < num_layers; d++) {
        int64_t row = offsets[d] + j;
        double pred = eval_model(codes[row], params + row * 6, q);
        double est = scaled ? pred : pred * scales[d];
        if (isnan(est) || est < 0.0) est = 0.0;
        double cap = (double)(offsets[d + 2] - offsets[d + 1] - 1);
        if (est > cap) est = cap;
        j = (int64_t)floor(est);
    }
    return j;
}

/* Equation 4: leaf position estimate, clamped to [0, n-1] (truncating
 * cast == astype(int64) for non-negative values). */
static int64_t predict_pos(const int8_t *codes, const double *params,
                           const int64_t *offsets, int64_t num_layers,
                           int64_t n, int64_t leaf, uint64_t q) {
    int64_t row = offsets[num_layers - 1] + leaf;
    double est = eval_model(codes[row], params + row * 6, q);
    if (isnan(est) || est < 0.0) est = 0.0;
    double cap = (double)(n - 1);
    if (est > cap) est = cap;
    return (int64_t)est;
}

/* Fused lookup over a query batch, in three block-wide phases so every
 * random access is prefetched one phase (~BLOCK queries) before it is
 * consumed: (1) route through the inner layers -- root params are hot,
 * the landing leaf's param row and error-bound rows are only now
 * known, so prefetch them; (2) predict + window arithmetic on those
 * now-resident rows, prefetching each window's first probe line;
 * (3) the window search itself.  bkind: 0 none, 1 per-model, 2 global
 * (blo/bhi row 0). */
static void lookup_batch(const uint64_t *keys, int64_t n,
                         const int8_t *codes, const double *params,
                         const int64_t *offsets, int64_t num_layers,
                         const double *scales, int32_t scaled,
                         int32_t bkind, const int64_t *blo,
                         const int64_t *bhi,
                         const uint64_t *queries, int64_t m,
                         int64_t *out) {
    int64_t leaf_a[BLOCK], wlo[BLOCK], whi[BLOCK];
    int64_t leaf_off = offsets[num_layers - 1];
    for (int64_t b = 0; b < m; b += BLOCK) {
        int64_t c = m - b < BLOCK ? m - b : BLOCK;
        for (int64_t i = 0; i < c; i++) {
            int64_t leaf = route_leaf(codes, params, offsets,
                                      num_layers, scales, scaled,
                                      queries[b + i]);
            leaf_a[i] = leaf;
            PREFETCH(params + (leaf_off + leaf) * 6);
            if (bkind == 1) {
                PREFETCH(blo + leaf);
                PREFETCH(bhi + leaf);
            }
        }
        for (int64_t i = 0; i < c; i++) {
            uint64_t q = queries[b + i];
            int64_t leaf = leaf_a[i];
            int64_t pos = predict_pos(codes, params, offsets,
                                      num_layers, n, leaf, q);
            int64_t lo, hi;
            if (bkind == 0) {
                lo = 0; hi = n - 1;
            } else if (bkind == 1) {
                lo = pos + blo[leaf]; hi = pos + bhi[leaf];
            } else {
                lo = pos + blo[0]; hi = pos + bhi[0];
            }
            if (lo < 0) lo = 0; else if (lo > n - 1) lo = n - 1;
            if (hi < 0) hi = 0; else if (hi > n - 1) hi = n - 1;
            wlo[i] = lo; whi[i] = hi;
            PREFETCH(keys + (int64_t)(((uint64_t)lo + (uint64_t)hi + 1) >> 1));
        }
        for (int64_t i = 0; i < c; i++) {
            out[b + i] = lb_window_one(keys, n, queries[b + i],
                                       wlo[i], whi[i]);
        }
    }
}

void repro_lower_bound_window(const uint64_t *keys, int64_t n,
                              const uint64_t *queries, int64_t m,
                              const int64_t *lo, const int64_t *hi,
                              int64_t *out) {
    for (int64_t b = 0; b < m; b += BLOCK) {
        int64_t c = m - b < BLOCK ? m - b : BLOCK;
        lb_block(keys, n, queries + b, lo + b, hi + b, c, out + b);
    }
}

void repro_rmi_predict(const int8_t *codes, const double *params,
                       const int64_t *offsets, int64_t num_layers,
                       const double *scales, int32_t scaled, int64_t n,
                       const uint64_t *queries, int64_t m,
                       int64_t *ids_out, int64_t *pos_out) {
    for (int64_t i = 0; i < m; i++) {
        int64_t leaf = route_leaf(codes, params, offsets, num_layers,
                                  scales, scaled, queries[i]);
        ids_out[i] = leaf;
        pos_out[i] = predict_pos(codes, params, offsets, num_layers,
                                 n, leaf, queries[i]);
    }
}

void repro_rmi_lookup(const uint64_t *keys, int64_t n,
                      const int8_t *codes, const double *params,
                      const int64_t *offsets, int64_t num_layers,
                      const double *scales, int32_t scaled,
                      int32_t bkind, const int64_t *blo,
                      const int64_t *bhi,
                      const uint64_t *queries, int64_t m, int64_t *out) {
    lookup_batch(keys, n, codes, params, offsets, num_layers, scales,
                 scaled, bkind, blo, bhi, queries, m, out);
}

/* Fused serving unit: point positions, range starts, range counts in
 * one call -- three lookup passes without ever returning to Python. */
void repro_rmi_serve(const uint64_t *keys, int64_t n,
                     const int8_t *codes, const double *params,
                     const int64_t *offsets, int64_t num_layers,
                     const double *scales, int32_t scaled,
                     int32_t bkind, const int64_t *blo,
                     const int64_t *bhi,
                     const uint64_t *points, int64_t mp,
                     const uint64_t *lows, const uint64_t *highs,
                     int64_t mr,
                     int64_t *pos_out, int64_t *start_out,
                     int64_t *count_out) {
    lookup_batch(keys, n, codes, params, offsets, num_layers, scales,
                 scaled, bkind, blo, bhi, points, mp, pos_out);
    lookup_batch(keys, n, codes, params, offsets, num_layers, scales,
                 scaled, bkind, blo, bhi, lows, mr, start_out);
    lookup_batch(keys, n, codes, params, offsets, num_layers, scales,
                 scaled, bkind, blo, bhi, highs, mr, count_out);
    for (int64_t i = 0; i < mr; i++) {
        count_out[i] -= start_out[i];
    }
}
"""

#: Contract OFF is load-bearing for bit-identity (see module docstring).
_CFLAGS = ("-O3", "-ffp-contract=off", "-fno-math-errno",
           "-shared", "-fPIC")


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNELS_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-kernels"


def _build_library() -> Path:
    """Compile the kernel source, keyed by source+flags digest."""
    cc = os.environ.get("CC") or shutil.which("cc") or shutil.which("gcc")
    if cc is None:
        raise CExtUnavailable("no C compiler (cc/gcc) on PATH")
    digest = hashlib.sha256(
        (_C_SOURCE + "\0" + " ".join(_CFLAGS)).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = cache / f"repro_kernels_{digest}.so"
    if lib_path.exists():
        return lib_path
    cache.mkdir(parents=True, exist_ok=True)
    src_path = cache / f"repro_kernels_{digest}.c"
    src_path.write_text(_C_SOURCE)
    # Build to a temp name, then atomically publish: concurrent builders
    # (e.g. a process pool warming up) race harmlessly.
    fd, tmp_name = tempfile.mkstemp(suffix=".so", dir=cache)
    os.close(fd)
    try:
        proc = subprocess.run(
            [cc, *_CFLAGS, str(src_path), "-o", tmp_name, "-lm"],
            capture_output=True, text=True, timeout=120,
        )
        if proc.returncode != 0:
            raise CExtUnavailable(
                f"kernel compilation failed:\n{proc.stderr.strip()}"
            )
        os.replace(tmp_name, lib_path)
    except (OSError, subprocess.SubprocessError) as exc:
        raise CExtUnavailable(f"kernel compilation failed: {exc}") from exc
    finally:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
    return lib_path


_u64 = ndpointer(np.uint64, flags="C_CONTIGUOUS")
_i64 = ndpointer(np.int64, flags="C_CONTIGUOUS")
_i8 = ndpointer(np.int8, flags="C_CONTIGUOUS")
_f64 = ndpointer(np.float64, flags="C_CONTIGUOUS")
_c_i64 = ctypes.c_int64
_c_i32 = ctypes.c_int32

#: (name, argtypes) for every exported kernel.
_SIGNATURES = {
    "repro_lower_bound_window":
        [_u64, _c_i64, _u64, _c_i64, _i64, _i64, _i64],
    "repro_rmi_predict":
        [_i8, _f64, _i64, _c_i64, _f64, _c_i32, _c_i64,
         _u64, _c_i64, _i64, _i64],
    "repro_rmi_lookup":
        [_u64, _c_i64, _i8, _f64, _i64, _c_i64, _f64, _c_i32,
         _c_i32, _i64, _i64, _u64, _c_i64, _i64],
    "repro_rmi_serve":
        [_u64, _c_i64, _i8, _f64, _i64, _c_i64, _f64, _c_i32,
         _c_i32, _i64, _i64, _u64, _c_i64, _u64, _u64, _c_i64,
         _i64, _i64, _i64],
}


def load() -> "CExtBackend":
    """Build (if needed) and load the C kernels; raises CExtUnavailable."""
    lib_path = _build_library()
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError as exc:
        raise CExtUnavailable(f"cannot load {lib_path}: {exc}") from exc
    for fname, argtypes in _SIGNATURES.items():
        try:
            fn = getattr(lib, fname)
        except AttributeError as exc:
            raise CExtUnavailable(f"{lib_path} lacks {fname}") from exc
        fn.argtypes = argtypes
        fn.restype = None
    return CExtBackend(lib)


def _packed_args(packed: PackedRMI):
    return (
        packed.codes, packed.params, packed.offsets,
        packed.num_layers, packed.scales,
        1 if packed.scaled else 0, packed.bkind,
        packed.blo, packed.bhi,
    )


class CExtBackend(KernelBackend):
    """ctypes wrapper over the gcc-compiled kernel library."""

    name = "cext"
    compiled = True

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib

    def lower_bound_window(self, keys, queries, lo, hi):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        queries = np.ascontiguousarray(queries, dtype=np.uint64)
        n = len(keys)
        # Same clamp every in-repo caller already applies; defensive
        # here because the C loop indexes without probe clipping.
        lo = np.clip(np.ascontiguousarray(lo, dtype=np.int64), 0, n - 1)
        hi = np.clip(np.ascontiguousarray(hi, dtype=np.int64), 0, n - 1)
        out = np.empty(len(queries), dtype=np.int64)
        self._lib.repro_lower_bound_window(
            keys, n, queries, len(queries), lo, hi, out
        )
        return out

    def rmi_predict(self, packed: PackedRMI, queries):
        queries = np.ascontiguousarray(queries, dtype=np.uint64)
        m = len(queries)
        ids = np.empty(m, dtype=np.int64)
        pos = np.empty(m, dtype=np.int64)
        self._lib.repro_rmi_predict(
            packed.codes, packed.params, packed.offsets,
            packed.num_layers, packed.scales,
            1 if packed.scaled else 0, packed.n,
            queries, m, ids, pos,
        )
        return ids, pos

    def rmi_lookup(self, packed: PackedRMI, keys, queries):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        queries = np.ascontiguousarray(queries, dtype=np.uint64)
        out = np.empty(len(queries), dtype=np.int64)
        self._lib.repro_rmi_lookup(
            keys, len(keys), *_packed_args(packed),
            queries, len(queries), out,
        )
        return out

    def rmi_serve(self, packed: PackedRMI, keys, point_queries,
                  range_lows, range_highs):
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        points = np.ascontiguousarray(point_queries, dtype=np.uint64)
        lows = np.ascontiguousarray(range_lows, dtype=np.uint64)
        highs = np.ascontiguousarray(range_highs, dtype=np.uint64)
        positions = np.empty(len(points), dtype=np.int64)
        starts = np.empty(len(lows), dtype=np.int64)
        counts = np.empty(len(lows), dtype=np.int64)
        self._lib.repro_rmi_serve(
            keys, len(keys), *_packed_args(packed),
            points, len(points), lows, highs, len(lows),
            positions, starts, counts,
        )
        return positions, starts, counts

    def warmup(self) -> None:
        """The library is ahead-of-time compiled; loading was the warm-up."""
