"""The writable index tier: delta buffer + background rebuild + swap.

The paper evaluates RMIs as static structures; this package makes the
whole serving stack read-write (ROADMAP item 2) without changing any
index's build or lookup code:

* :mod:`repro.writable.delta` -- a sorted, per-key-unique write buffer
  with newest-wins upsert semantics, sequence-number watermarks, and
  per-entry age stamps (the staleness metric's raw material);
* :mod:`repro.writable.index` -- :class:`WritableIndex`, wrapping any
  :class:`~repro.baselines.interfaces.OrderedIndex` behind the same
  batch contract (``lookup_batch`` / ``range_query_batch`` /
  ``serve_batch``), merging base and delta in three vectorized passes
  and publishing all state through one atomic view reference;
* :mod:`repro.writable.rebuild` -- the background rebuild loop:
  merge-sort the delta into the base, rebuild through the grouped-fit
  fast path and the artifact cache, hot-swap through the server's
  existing ``swap_index`` protocol.

The mixed read/write workload generator and loadgen driver live in
:mod:`repro.workload.generator` / :mod:`repro.serve.loadgen`; the gated
benchmark is ``python -m repro.bench updates`` (``BENCH_updates.json``).
"""

from .delta import OP_INSERT, OP_TOMBSTONE, DeltaState, empty_delta
from .index import RebuildTicket, WritableIndex
from .rebuild import (
    RebuildDaemon,
    WritableFactory,
    default_base_factory,
    rebuilt_base_for,
)

__all__ = [
    "OP_INSERT",
    "OP_TOMBSTONE",
    "DeltaState",
    "empty_delta",
    "RebuildTicket",
    "WritableIndex",
    "RebuildDaemon",
    "WritableFactory",
    "default_base_factory",
    "rebuilt_base_for",
]
