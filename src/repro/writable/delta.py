"""The sorted delta buffer of the writable index tier.

An LSM-style *upsert* front (Dynamic PGM, PAPERS.md; ALEX's in-place
gapped array is the other classic answer): every write lands as one
entry in a sorted, per-key-unique buffer that shadows the immutable
base index until a background rebuild folds it in.  Two operations,
matching :mod:`repro.baselines.dynamic_pgm`'s flags:

* ``OP_INSERT`` (1) -- the key is live with **exactly one** copy,
* ``OP_TOMBSTONE`` (0) -- the key is absent (every base duplicate of
  the key is shadowed).

Newest-wins per key: a later write to the same key replaces the older
delta entry.  The exactly-one-copy insert rule is what keeps answers
*rebuild-timing independent*: the live multiplicity of a key is a pure
function of the base multiset and the newest delta op for that key, so
a query returns the same position whether or not a background rebuild
has compacted the delta in between -- the property the mixed
read/write oracle validation relies on.

Each entry additionally carries

* ``seq`` -- a writer-assigned monotone sequence number, used by the
  rebuild watermark protocol (:meth:`DeltaState.compacted` drops only
  entries the rebuild snapshot already folded in, so writes that raced
  the rebuild survive), and
* ``born`` -- the wall-clock time of the *oldest* surviving write to
  the key, feeding the staleness-bound metric (max age of unmerged
  delta).

:class:`DeltaState` is immutable by convention: writers derive a new
state with :meth:`merged_with` / :meth:`compacted` and publish it with
one reference assignment, so concurrent readers always see a coherent
buffer without locks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["OP_INSERT", "OP_TOMBSTONE", "DeltaState", "empty_delta"]

#: Operation flags (int8), matching ``dynamic_pgm``'s run entries.
OP_INSERT = np.int8(1)
OP_TOMBSTONE = np.int8(0)

_EMPTY_U64 = np.empty(0, dtype=np.uint64)
_EMPTY_I8 = np.empty(0, dtype=np.int8)
_EMPTY_I64 = np.empty(0, dtype=np.int64)
_EMPTY_F64 = np.empty(0, dtype=np.float64)


class DeltaState:
    """One immutable snapshot of the delta buffer (sorted, per-key unique)."""

    __slots__ = ("keys", "ops", "seqs", "born", "_insert_keys",
                 "_insert_cum")

    def __init__(self, keys: np.ndarray, ops: np.ndarray,
                 seqs: np.ndarray, born: np.ndarray) -> None:
        self.keys = keys
        self.ops = ops
        self.seqs = seqs
        self.born = born
        self._insert_keys: "np.ndarray | None" = None
        self._insert_cum: "np.ndarray | None" = None

    def __len__(self) -> int:
        return len(self.keys)

    @property
    def insert_keys(self) -> np.ndarray:
        """Delta keys whose newest op is an insert (sorted).

        Cached: the state is immutable and the merged lookup path
        touches this on every batch.
        """
        cached = self._insert_keys
        if cached is None:
            cached = self.keys[self.ops == OP_INSERT]
            self._insert_keys = cached
        return cached

    @property
    def insert_cum(self) -> np.ndarray:
        """Prefix counts of insert entries: ``insert_cum[i]`` is the
        number of live (insert-op) delta keys among the first ``i``
        delta keys.  Lets the merged lookup reuse its single
        ``searchsorted`` over the delta keys for both corrections
        instead of searching the insert subset separately.
        """
        cached = self._insert_cum
        if cached is None:
            cached = np.concatenate([
                np.zeros(1, dtype=np.int64),
                np.cumsum(self.ops == OP_INSERT, dtype=np.int64),
            ])
            self._insert_cum = cached
        return cached

    @property
    def watermark(self) -> int:
        """Highest sequence number in this snapshot (-1 when empty).

        Writers allocate strictly increasing sequence numbers, so any
        entry applied *after* this snapshot was captured carries a seq
        above the watermark -- :meth:`compacted` keeps exactly those.
        """
        return int(self.seqs.max()) if len(self.seqs) else -1

    @property
    def oldest_born(self) -> float:
        """Wall-clock time of the oldest unmerged write (inf when empty)."""
        return float(self.born.min()) if len(self.born) else float("inf")

    def merged_with(self, keys: np.ndarray, ops: np.ndarray,
                    seq_start: int, now: float) -> "DeltaState":
        """A new state with one write batch folded in (newest wins).

        Within the batch the *last* op per key wins (the batch is an
        ordered write stream); against the existing buffer the batch
        wins.  A re-written key keeps its oldest ``born`` -- the entry
        has been unmerged since the first write -- and takes the new
        ``seq``, so a post-rebuild compaction never drops a write that
        arrived after the rebuild snapshot.
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        ops = np.ascontiguousarray(ops, dtype=np.int8)
        if len(keys) != len(ops):
            raise ValueError("write batch needs one op per key")
        if len(keys) == 0:
            return self
        if not np.all((ops == OP_INSERT) | (ops == OP_TOMBSTONE)):
            raise ValueError("ops must be OP_INSERT (1) or OP_TOMBSTONE (0)")
        # In-batch dedup, last-wins: a stable key sort keeps equal keys
        # in stream order, so the last row of each equal-key group is
        # the newest write to that key.
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        last = np.empty(len(keys), dtype=bool)
        last[:-1] = sorted_keys[1:] != sorted_keys[:-1]
        last[-1] = True
        sel = order[last]  # last occurrence per key, ascending key order
        batch_keys = keys[sel]
        batch_ops = ops[sel]
        batch_seqs = np.int64(seq_start) + sel.astype(np.int64)
        batch_born = np.full(len(sel), float(now), dtype=np.float64)
        if not len(self.keys):
            return DeltaState(batch_keys, batch_ops, batch_seqs, batch_born)
        # Merge with the existing buffer: batch entries replace older
        # entries for the same key but inherit their older born stamp.
        pos = np.searchsorted(self.keys, batch_keys, side="left")
        clipped = np.minimum(pos, len(self.keys) - 1)
        hit = self.keys[clipped] == batch_keys
        batch_born[hit] = np.minimum(batch_born[hit], self.born[pos[hit]])
        keep = np.ones(len(self.keys), dtype=bool)
        keep[pos[hit]] = False
        merged_keys = np.concatenate([self.keys[keep], batch_keys])
        merged_ops = np.concatenate([self.ops[keep], batch_ops])
        merged_seqs = np.concatenate([self.seqs[keep], batch_seqs])
        merged_born = np.concatenate([self.born[keep], batch_born])
        order = np.argsort(merged_keys, kind="stable")
        return DeltaState(
            np.ascontiguousarray(merged_keys[order]),
            np.ascontiguousarray(merged_ops[order]),
            np.ascontiguousarray(merged_seqs[order]),
            np.ascontiguousarray(merged_born[order]),
        )

    def compacted(self, watermark: int) -> "DeltaState":
        """Entries newer than ``watermark`` (the post-rebuild buffer).

        A rebuild snapshots ``(live keys, watermark)``; everything at or
        below the watermark is folded into the new base and dropped
        here, while writes that raced the rebuild (seq above the
        watermark) keep shadowing the new base.
        """
        keep = self.seqs > np.int64(watermark)
        if keep.all():
            return self
        return DeltaState(
            np.ascontiguousarray(self.keys[keep]),
            np.ascontiguousarray(self.ops[keep]),
            np.ascontiguousarray(self.seqs[keep]),
            np.ascontiguousarray(self.born[keep]),
        )

    def nbytes(self) -> int:
        return int(self.keys.nbytes + self.ops.nbytes
                   + self.seqs.nbytes + self.born.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<DeltaState {len(self)} entries, "
                f"watermark={self.watermark}>")


def empty_delta() -> DeltaState:
    """The empty buffer every :class:`WritableIndex` starts from."""
    return DeltaState(_EMPTY_U64, _EMPTY_I8, _EMPTY_I64, _EMPTY_F64)
