"""Background rebuild: merge-sorted base construction + hot-swap.

The rebuild loop is what keeps the writable tier fast under sustained
writes: the delta buffer answers correctly at any size, but every
dirty lookup pays the three-pass merge arithmetic, and the base
index's compiled kernels are bypassed until the delta drains.  PR 2's
grouped closed-form fits (44x at 1M keys) are what make *continuous*
rebuilding affordable -- the default factory below rebuilds through
exactly that fast path (``RMIConfig.grouped_fit`` defaults on), and
through the artifact cache when one is active, so a rebuild over keys
this process (or a previous run) already built is a snapshot restore.

:class:`RebuildDaemon` runs the loop on the server's event loop:
snapshot (:meth:`~repro.writable.index.WritableIndex.begin_rebuild`),
build in a worker thread (NumPy releases the GIL, so serving
continues), publish (:meth:`finish_rebuild`), then notify the
:class:`~repro.serve.server.IndexServer` through ``swap_index`` -- the
swap counter, kernel warm-up, and the staleness gauge reset all ride
the server's existing hot-swap protocol.
"""

from __future__ import annotations

import asyncio
import hashlib
import logging
from typing import Any, Callable

import numpy as np

__all__ = ["default_base_factory", "rebuilt_base_for", "RebuildDaemon",
           "WritableFactory"]

log = logging.getLogger("repro.writable")


def rebuilt_base_for(base: Any, live_keys: np.ndarray) -> Any:
    """Build (or cache-restore) a same-type base over ``live_keys``.

    The writable tier's rebuild inputs are ad-hoc merged key arrays, so
    unlike :func:`repro.cache.index_for` (keyed by dataset coordinates)
    the cache address here is the SHA-256 of the key bytes themselves
    plus the base class name -- content-addressed like every other
    artifact.  Without an active cache this is a plain same-type build,
    which for ``RMIAsIndex`` takes the grouped-fit fast path.
    """
    from .. import cache as artifact_cache
    from ..cache.fingerprint import index_fingerprint

    live_keys = np.ascontiguousarray(live_keys, dtype=np.uint64)
    cls = type(base)
    store = artifact_cache.active_cache()
    if store is None:
        return cls(live_keys)
    digest = hashlib.sha256(live_keys.tobytes()).hexdigest()
    fp = index_fingerprint(digest, cls.__name__, {"rebuild": "writable"})
    path = store.get("indexes", fp)
    if path is not None:
        try:
            with np.load(path, allow_pickle=False) as data:
                state = {k: data[k] for k in data.files}
            return cls.restore_state(live_keys, state)
        except Exception:
            store.discard("indexes", fp)
    index = cls(live_keys)
    try:
        state = index.snapshot_state()
        store.put("indexes", fp, lambda tmp: _savez(tmp, state))
    except Exception:
        pass  # not snapshottable: rebuilt on every miss
    return index


def _savez(tmp, arrays: "dict[str, np.ndarray]") -> None:
    with open(tmp, "wb") as f:
        np.savez(f, **arrays)


def default_base_factory(base: Any) -> "Callable[[np.ndarray], Any]":
    """The factory :meth:`WritableIndex.rebuild` uses when given none."""
    return lambda live_keys: rebuilt_base_for(base, live_keys)


class WritableFactory:
    """Picklable ``factory(keys)`` building a writable shard index.

    Cluster worker specs cross a process boundary, so a closure cannot
    carry the wrap-in-``WritableIndex`` step; this class can.  Pass as
    ``Cluster(index_factory=WritableFactory("rmi"))`` to make every
    shard accept the ``write`` and ``"@rebuild"`` messages.
    """

    def __init__(self, index_type: str = "binary-search") -> None:
        from ..baselines import INDEX_TYPES

        if index_type not in INDEX_TYPES:
            raise KeyError(f"unknown index type {index_type!r}")
        self.index_type = index_type

    def __call__(self, keys: np.ndarray) -> Any:
        from ..baselines import INDEX_TYPES
        from .index import WritableIndex

        return WritableIndex(INDEX_TYPES[self.index_type](keys))


class RebuildDaemon:
    """Periodic background rebuild of one served ``WritableIndex``.

    Every ``interval_s`` the daemon checks the delta; once it holds at
    least ``min_delta`` entries, a rebuild runs in a worker thread and
    the result is swapped in.  With a ``server`` attached the swap goes
    through ``IndexServer.swap_index`` (same object, new base), which
    warms the new base's kernels, bumps the swap counter, and resets
    the staleness gauge.  ``rebuild_now`` forces one cycle -- the
    cluster's ``"@rebuild"`` shard swap and the tests use it.
    """

    def __init__(
        self,
        windex: Any,
        *,
        server: Any = None,
        interval_s: float = 0.05,
        min_delta: int = 1,
        factory: "Callable[[np.ndarray], Any] | None" = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if min_delta < 1:
            raise ValueError("min_delta must be >= 1")
        self.windex = windex
        self.server = server
        self.interval_s = float(interval_s)
        self.min_delta = int(min_delta)
        self.factory = factory
        self.rebuilds = 0
        self.skipped = 0
        self._task: "asyncio.Task | None" = None
        self._rebuilding = False

    @property
    def running(self) -> bool:
        return self._task is not None and not self._task.done()

    async def start(self) -> "RebuildDaemon":
        if self.running:
            raise RuntimeError("rebuild daemon is already running")
        self._task = asyncio.create_task(self._loop(),
                                         name="repro-writable-rebuild")
        return self

    async def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None

    async def __aenter__(self) -> "RebuildDaemon":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    async def _loop(self) -> None:
        while True:
            await asyncio.sleep(self.interval_s)
            try:
                await self.rebuild_now()
            except asyncio.CancelledError:
                raise
            except Exception:
                log.exception("background rebuild failed; will retry")

    async def rebuild_now(self, *, force: bool = False) -> bool:
        """One rebuild cycle; returns whether a swap was published.

        ``force=True`` ignores the ``min_delta`` trigger (any non-empty
        delta rebuilds) -- the drain path of benchmarks and tests that
        want a fully compacted final state regardless of batch sizing.
        """
        if self._rebuilding:
            return False  # a forced cycle raced the periodic one
        windex = self.windex
        if windex.delta_len < (1 if force else self.min_delta):
            return False
        ticket = windex.begin_rebuild()
        if not len(ticket.live_keys):
            self.skipped += 1
            return False  # everything deleted: nothing to build over
        factory = self.factory
        if factory is None:
            factory = default_base_factory(ticket.base)
        self._rebuilding = True
        try:
            new_base = await asyncio.to_thread(factory, ticket.live_keys)
            windex.finish_rebuild(new_base, ticket.watermark)
        finally:
            self._rebuilding = False
        self.rebuilds += 1
        if self.server is not None:
            # Re-swapping the same wrapper rides the server's hot-swap
            # protocol: kernel warm-up for the new base, swap counter,
            # staleness gauge reset.
            self.server.swap_index(windex)
        log.debug("rebuild %d: %d live keys, delta now %d",
                  self.rebuilds, len(ticket.live_keys), windex.delta_len)
        return True
