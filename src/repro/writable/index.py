"""``WritableIndex``: a read-write front over any ``OrderedIndex``.

The repo's indexes (Table 5 of the paper, plus the RMI itself) are
static structures over an immutable sorted array.  This wrapper makes
any of them writable without touching their build or lookup code: an
immutable *base* index plus a sorted delta buffer
(:class:`~repro.writable.delta.DeltaState`), merged newest-wins at
query time, with a rebuild protocol that folds the delta into a fresh
base and atomically swaps it in under live traffic.

**Semantics** (set-like upsert, rebuild-timing independent):

* ``insert(k)`` -- ``k`` is live with exactly one copy (idempotent),
* ``delete(k)`` -- ``k`` is absent (all base duplicates shadowed),
* lookups answer ``np.searchsorted(live_keys, q, "left")`` where
  ``live_keys`` is the base multiset with every delta key's
  multiplicity overridden (1 for insert, 0 for tombstone).

**Merged lookup arithmetic.**  A lower-bound query never materializes
the live array.  With ``dk`` the delta keys, ``shadowed[i]`` the base
multiplicity of ``dk[i]``, and ``ins`` the delta insert keys::

    pos(q) = base.lookup(q)
           - cumsum(shadowed)[searchsorted(dk, q)]   # shadowed base keys < q
           + searchsorted(ins, q)                    # delta-live keys < q

Three vectorized passes on top of the base index's own batch engine
(which keeps its compiled kernels), independent of delta size.

**Concurrency.**  All queryable state lives in one immutable
:class:`_View` (base + delta + lazily derived adjustment arrays)
published by a single reference assignment -- atomic under CPython.
Readers capture the view once per call and never lock; writers and the
rebuild-finish path serialize on a mutex.  This is the same
capture-at-dispatch discipline :class:`~repro.serve.server.IndexServer`
uses for hot swaps, extended inside the index.

**Rebuild protocol** (:meth:`begin_rebuild` / :meth:`finish_rebuild`):
the rebuild snapshots ``(live keys, watermark)``, builds a new base
off-thread (through the grouped-fit fast path for RMIs and the
artifact cache when active -- see :mod:`repro.writable.rebuild`), and
the finish step compacts the delta down to writes newer than the
watermark and publishes the new view.  Writes racing the rebuild are
never lost, and queries are answered identically before, during, and
after the swap.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..baselines.interfaces import OrderedIndex, SearchBounds
from .delta import OP_INSERT, OP_TOMBSTONE, DeltaState, empty_delta

__all__ = ["WritableIndex", "RebuildTicket"]

_EMPTY_I64 = np.empty(0, dtype=np.int64)


class _View:
    """One immutable (base, delta) snapshot plus derived query state.

    Derived arrays are computed lazily and cached on the view itself;
    a view is only ever mutated by filling these caches (idempotent --
    two racing readers compute the same arrays), never by changing
    ``base`` or ``delta``.
    """

    __slots__ = ("base", "delta", "_shadow_cum", "_corr", "_live")

    def __init__(self, base: Any, delta: DeltaState) -> None:
        self.base = base
        self.delta = delta
        self._shadow_cum: "np.ndarray | None" = None
        self._corr: "np.ndarray | None" = None
        self._live: "np.ndarray | None" = None

    # -- derived adjustment arrays ---------------------------------------

    def shadow_cum(self) -> np.ndarray:
        """Prefix sums of the base multiplicity of each delta key.

        ``shadow_cum()[i]`` is the number of base array entries whose
        key is one of the first ``i`` delta keys -- every such entry is
        shadowed (delta ops override the key's multiplicity entirely).
        """
        cum = self._shadow_cum
        if cum is None:
            base_keys = self.base.keys
            dk = self.delta.keys
            lo = np.searchsorted(base_keys, dk, side="left")
            hi = np.searchsorted(base_keys, dk, side="right")
            cum = np.concatenate([
                np.zeros(1, dtype=np.int64),
                np.cumsum(hi - lo, dtype=np.int64),
            ])
            self._shadow_cum = cum
        return cum

    def inherit_shadow(self, prev: "_View") -> None:
        """Seed the shadow sums from the previous view of the same base.

        A write batch replaces only a few delta entries, but a fresh
        full recomputation searches the whole delta against the base --
        O(delta x log base) per apply, the dominant write-path cost at
        high write fractions.  Base multiplicities of keys already in
        the previous delta are copied over (they depend only on the
        base, which is unchanged); only the batch's genuinely new keys
        hit the base.  Callers must guarantee ``prev.base is
        self.base``.
        """
        dk = self.delta.keys
        prev_dk = prev.delta.keys
        if self._shadow_cum is not None:
            return
        if prev._shadow_cum is None and len(prev_dk):
            return  # nothing cached to inherit; compute lazily instead
        # An empty previous delta has the trivial cached form -- taking
        # it keeps the inheritance chain unbroken from the first apply.
        prev_mult = np.diff(prev.shadow_cum())
        mult = np.empty(len(dk), dtype=np.int64)
        if len(prev_dk):
            pos = np.searchsorted(prev_dk, dk, side="left")
            clipped = np.minimum(pos, len(prev_dk) - 1)
            hit = prev_dk[clipped] == dk
            mult[hit] = prev_mult[clipped[hit]]
        else:
            hit = np.zeros(len(dk), dtype=bool)
        fresh = ~hit
        if fresh.any():
            base_keys = self.base.keys
            nk = dk[fresh]
            mult[fresh] = (
                np.searchsorted(base_keys, nk, side="right")
                - np.searchsorted(base_keys, nk, side="left")
            )
        self._shadow_cum = np.concatenate([
            np.zeros(1, dtype=np.int64),
            np.cumsum(mult, dtype=np.int64),
        ])

    def correction(self) -> np.ndarray:
        """Combined per-rank position correction for merged lookups.

        ``correction()[i]`` is ``insert_cum[i] - shadow_cum[i]``: how
        many positions a query ranking ``i`` delta keys below it shifts
        relative to the bare base answer (delta-live keys push it up,
        shadowed base entries pull it down).  Folding both prefix-sum
        arrays into one ahead of time halves the random gathers on the
        dirty read path -- a cache-miss-bound loop, so that is a real
        ~x1.2 on cold query batches.
        """
        corr = self._corr
        if corr is None:
            corr = self.delta.insert_cum - self.shadow_cum()
            self._corr = corr
        return corr

    def lookup(self, queries: np.ndarray) -> np.ndarray:
        """Merged lower-bound positions for a query batch."""
        queries = np.ascontiguousarray(queries, dtype=np.uint64)
        base_pos = np.asarray(self.base.lookup_batch(queries),
                              dtype=np.int64)
        if not len(self.delta):
            return base_pos
        # One lower bound over the delta keys ranks each query, then a
        # single gather applies the combined correction (the delta is
        # per-key unique, so prefix-of-delta == "< query" exactly).
        # Dispatched through the kernel registry: the compiled fused
        # rank+gather pass is ~2x the staged searchsorted/take/add on
        # cold batches, and this is the dirty read path's hot loop.
        from ..kernels import get_backend

        return get_backend().delta_correct(
            self.delta.keys, self.correction(), base_pos, queries
        )

    def live_keys(self) -> np.ndarray:
        """The merged live key array (materialized once per view)."""
        live = self._live
        if live is None:
            base_keys = np.asarray(self.base.keys, dtype=np.uint64)
            if not len(self.delta):
                live = base_keys
            else:
                dk = self.delta.keys
                lo = np.searchsorted(base_keys, dk, side="left")
                hi = np.searchsorted(base_keys, dk, side="right")
                # Interval marks: +1 at each shadowed run start, -1 past
                # its end; positive prefix sums mark shadowed entries.
                marks = np.zeros(len(base_keys) + 1, dtype=np.int64)
                np.add.at(marks, lo, 1)
                np.add.at(marks, hi, -1)
                shadowed = np.cumsum(marks[:-1]) > 0
                live = np.sort(np.concatenate([
                    base_keys[~shadowed], self.delta.insert_keys
                ]), kind="stable")
            live.setflags(write=False)
            self._live = live
        return live


@dataclass(frozen=True)
class RebuildTicket:
    """A rebuild work order: what to build, and what it will replace.

    ``live_keys`` is the merged array to build the new base over;
    ``watermark`` bounds the delta entries the snapshot already folded
    in (pass it to :meth:`WritableIndex.finish_rebuild` verbatim);
    ``base`` is the current base index, for factory/type decisions.
    """

    live_keys: np.ndarray
    watermark: int
    base: Any


class WritableIndex(OrderedIndex):
    """Delta-buffered read-write wrapper over a static ``OrderedIndex``."""

    name = "writable"

    def __init__(self, base: Any, *,
                 clock: "Callable[[], float]" = time.time) -> None:
        # Deliberately no OrderedIndex.__init__: there is no immutable
        # key array to validate; ``keys``/``n`` are live properties.
        if not len(getattr(base, "keys", ())):
            raise ValueError("WritableIndex needs a non-empty base index")
        self._clock = clock
        self._mutate = threading.Lock()
        self._next_seq = 0
        self._view = _View(base, empty_delta())

    # -- live state ------------------------------------------------------

    @property
    def base(self) -> Any:
        """The current immutable base index (changes on rebuild)."""
        return self._view.base

    @property
    def keys(self) -> np.ndarray:  # type: ignore[override]
        """The merged live key array (materialized lazily per view)."""
        return self._view.live_keys()

    @property
    def n(self) -> int:  # type: ignore[override]
        return len(self.keys)

    @property
    def delta_len(self) -> int:
        """Number of unmerged delta entries (distinct written keys)."""
        return len(self._view.delta)

    def staleness_s(self, now: "float | None" = None) -> float:
        """Age of the oldest unmerged write, in seconds (0 when clean).

        The staleness-bound metric of the writable tier: an upper bound
        on how long any accepted write has been waiting for a rebuild
        to fold it into a fast base structure (reads always see it
        immediately -- this measures structural, not semantic, lag).
        """
        delta = self._view.delta
        if not len(delta):
            return 0.0
        now = self._clock() if now is None else now
        return max(float(now) - delta.oldest_born, 0.0)

    # -- writes ----------------------------------------------------------

    def apply(self, keys: np.ndarray, ops: np.ndarray) -> int:
        """Apply one ordered write batch; returns the number of writes.

        ``ops`` holds ``OP_INSERT``/``OP_TOMBSTONE`` flags per key;
        within the batch the last op per key wins.  The batch becomes
        visible to subsequent queries atomically (one view publish).
        """
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        ops = np.ascontiguousarray(ops, dtype=np.int8)
        if len(keys) == 0:
            return 0
        with self._mutate:
            seq_start = self._next_seq
            self._next_seq = seq_start + len(keys)
            view = self._view
            delta = view.delta.merged_with(keys, ops, seq_start,
                                           self._clock())
            new_view = _View(view.base, delta)
            new_view.inherit_shadow(view)
            # Warm the merged-lookup arrays on the write path: the
            # first read after a write should pay read costs only.
            new_view.correction()
            self._view = new_view
            # The packed-kernel cache reflects the (now stale) clean
            # view; drop it so pack() soft-falls back to the staged
            # merge path until the delta drains.
            self.__dict__.pop("_packed_cache", None)
        return len(keys)

    def insert(self, key: int) -> None:
        """Make ``key`` live with exactly one copy (idempotent)."""
        self.apply(np.array([key], dtype=np.uint64),
                   np.array([OP_INSERT], dtype=np.int8))

    def delete(self, key: int) -> None:
        """Remove every live copy of ``key`` (no-op when absent)."""
        self.apply(np.array([key], dtype=np.uint64),
                   np.array([OP_TOMBSTONE], dtype=np.int8))

    def contains(self, key: int) -> bool:
        """Whether ``key`` is currently live."""
        live = self.keys
        pos = int(np.searchsorted(live, np.uint64(key), side="left"))
        return pos < len(live) and int(live[pos]) == int(key)

    # -- queries (merged) ------------------------------------------------

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        return self._view.lookup(queries)

    def lower_bound(self, key: int) -> int:
        return int(self._view.lookup(
            np.array([key], dtype=np.uint64)
        )[0])

    def search_bounds(self, key: int) -> SearchBounds:
        """Delegate to the base when clean; whole-array bounds when not.

        The scalar two-phase contract is only exact against an
        immutable array; with a live delta the merged answer comes from
        :meth:`lower_bound` directly, so these bounds are the honest
        "anywhere" interval.
        """
        view = self._view
        if not len(view.delta):
            return view.base.search_bounds(key)
        n = len(view.live_keys())
        return SearchBounds(lo=0, hi=n - 1, hint=self.lower_bound(key))

    def range_query_batch(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        lows = np.asarray(lows, dtype=np.uint64)
        highs = np.asarray(highs, dtype=np.uint64)
        if len(lows) != len(highs):
            raise ValueError("range_query_batch needs equal-length bounds")
        if np.any(highs < lows):
            raise ValueError("range_query_batch requires low <= high")
        view = self._view
        starts = view.lookup(lows)
        ends = view.lookup(highs)
        return starts, ends - starts

    def serve_batch(
        self,
        point_queries: np.ndarray,
        range_lows: np.ndarray,
        range_highs: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """One capture of the view serves the whole micro-batch.

        Clean (empty delta) batches delegate to the base's own
        ``serve_batch`` -- including its fused compiled kernels; dirty
        batches run the merged three-pass arithmetic.  Either way the
        view is captured once, so a concurrent write or rebuild swap
        never splits a batch across two states.
        """
        view = self._view
        if not len(view.delta):
            return view.base.serve_batch(point_queries, range_lows,
                                         range_highs)
        # One fused merged lookup over points + range bounds: the base's
        # batch engine (and its compiled kernels) runs once, not three
        # times, and the delta corrections are one vectorized pass.
        np_, nr = len(point_queries), len(range_lows)
        if not nr:
            return view.lookup(point_queries), _EMPTY_I64, _EMPTY_I64
        fused = view.lookup(np.concatenate([
            np.asarray(point_queries, dtype=np.uint64),
            np.asarray(range_lows, dtype=np.uint64),
            np.asarray(range_highs, dtype=np.uint64),
        ]))
        positions = fused[:np_] if np_ else _EMPTY_I64
        starts = fused[np_:np_ + nr]
        counts = fused[np_ + nr:] - starts
        return positions, starts, counts

    # -- compiled kernels ------------------------------------------------

    def pack(self):
        """The base's packed form when clean; ``None`` when dirty.

        The soft-fallback contract of ``OrderedIndex.pack``: with
        unmerged writes the flat kernel representation cannot answer
        merged queries, so the staged (NumPy) merge path stays
        canonical until a rebuild drains the delta.
        """
        view = self._view
        if len(view.delta):
            return None
        return view.base.pack()

    def warm_kernels(self) -> None:
        self._view.base.warm_kernels()

    # -- rebuild protocol ------------------------------------------------

    def begin_rebuild(self) -> RebuildTicket:
        """Snapshot the merged state for an off-thread rebuild."""
        view = self._view
        return RebuildTicket(
            live_keys=view.live_keys(),
            watermark=view.delta.watermark,
            base=view.base,
        )

    def finish_rebuild(self, new_base: Any, watermark: int) -> None:
        """Publish a rebuilt base; keep writes newer than the snapshot.

        The swap is one view assignment: queries in flight keep the
        view they captured, later queries see the new base with the
        compacted delta -- zero-loss, same as the server's hot swap.
        """
        with self._mutate:
            delta = self._view.delta.compacted(watermark)
            self._view = _View(new_base, delta)
            self.__dict__.pop("_packed_cache", None)

    def rebuild(self,
                factory: "Callable[[np.ndarray], Any] | None" = None
                ) -> "Any | None":
        """Synchronous merge-sort + rebuild + swap (the inline path).

        Builds the new base with ``factory(live_keys)`` (default: the
        cache-aware same-type factory from
        :mod:`repro.writable.rebuild`) and swaps it in.  Returns the
        new base, or ``None`` when every key is deleted -- an
        ``OrderedIndex`` cannot be built over zero keys, so the delta
        keeps serving until an insert arrives.
        """
        ticket = self.begin_rebuild()
        if not len(ticket.live_keys):
            return None
        if factory is None:
            from .rebuild import default_base_factory

            factory = default_base_factory(ticket.base)
        new_base = factory(ticket.live_keys)
        self.finish_rebuild(new_base, ticket.watermark)
        return new_base

    # -- accounting ------------------------------------------------------

    def snapshot_state(self) -> "dict[str, np.ndarray]":
        raise TypeError(
            "WritableIndex holds live mutable state; snapshot the base "
            "index instead (it is rebuilt through the artifact cache)"
        )

    def size_in_bytes(self) -> int:
        return int(self._view.base.size_in_bytes()
                   + self._view.delta.nbytes())

    def stats(self) -> "dict[str, Any]":
        view = self._view
        return {
            "name": self.name,
            "base": view.base.stats(),
            "n": len(view.live_keys()),
            "delta_len": len(view.delta),
            "staleness_s": self.staleness_s(),
            "bytes": self.size_in_bytes(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        view = self._view
        return (f"<WritableIndex over {type(view.base).__name__}, "
                f"delta={len(view.delta)}>")
