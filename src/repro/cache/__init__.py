"""Content-addressed artifact cache for the evaluation pipeline.

The paper's experimental apparatus regenerates the same inputs over and
over: every figure driver used to call ``sosd.generate`` for its
datasets and retrain every RMI / rebuild every baseline from scratch.
Following SOSD (arXiv:1911.13014) and *Benchmarking Learned Indexes*
(arXiv:2006.12804), this package makes reusable artifacts the backbone
of the pipeline.  Three artifact kinds are cached, each addressed by a
content fingerprint (:mod:`repro.cache.fingerprint`):

* **datasets** -- fingerprinted by ``(name, n, seed,
  generator-version)``, persisted once as ``.npy`` and loaded back with
  ``mmap_mode="r"`` so suite workers share pages instead of copies;
* **indexes** -- trained RMIs (via :mod:`repro.core.serialize`) and
  baseline snapshots (via the :class:`~repro.baselines.interfaces.
  OrderedIndex` snapshot hooks), fingerprinted by
  ``(dataset-hash, config)`` and restored instead of rebuilt;
* **results** -- whole figure results, fingerprinted by the driver id
  and its bound arguments, so a warm suite run serves bit-identical
  rows without recomputing workloads.

Two layers sit in front of the disk store:

1. an **in-process LRU** per artifact kind, so a single suite run
   generates each dataset (and shared index) exactly once even with the
   disk cache disabled -- this fixes the intra-run waste where every
   figure called ``_datasets()`` independently;
2. the **disk store** (:class:`~repro.cache.store.ArtifactCache`),
   active only when a cache directory has been configured via
   :func:`activate`, the ``--cache-dir`` CLI flag, or the
   ``REPRO_CACHE_DIR`` environment variable.

All generators and builders are deterministic, so cached artifacts are
bit-identical to freshly built ones; the store verifies checksums and
fingerprints on every load and rebuilds on any mismatch.
"""

from __future__ import annotations

import json
import os
import pickle
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from .fingerprint import (
    CACHE_FORMAT_VERSION,
    DATASET_GENERATOR_VERSION,
    SNAPSHOT_VERSION,
    dataset_fingerprint,
    figure_fingerprint,
    fingerprint_digest,
    index_fingerprint,
    rmi_fingerprint,
)
from .store import ARTIFACT_KINDS, ArtifactCache

__all__ = [
    "ArtifactCache",
    "ARTIFACT_KINDS",
    "CACHE_FORMAT_VERSION",
    "DATASET_GENERATOR_VERSION",
    "SNAPSHOT_VERSION",
    "activate",
    "deactivate",
    "active_cache",
    "clear_memos",
    "dataset",
    "rmi_for",
    "index_for",
    "figure_result",
]

#: The process-wide active disk cache (None = in-process memos only).
_ACTIVE: ArtifactCache | None = None
_ENV_VAR = "REPRO_CACHE_DIR"

#: In-process LRUs.  Sized so a full default-scale suite run fits the
#: hot set (4 datasets, the per-figure RMI sweeps, one fig12 sweep)
#: without letting long sessions accumulate unboundedly.
_DATASET_MEMO_MAX = 16
_RMI_MEMO_MAX = 192
_INDEX_MEMO_MAX = 64

_dataset_memo: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
_rmi_memo: "OrderedDict[tuple, Any]" = OrderedDict()
_index_memo: "OrderedDict[tuple, Any]" = OrderedDict()


def activate(root: "str | os.PathLike") -> ArtifactCache:
    """Activate a disk cache rooted at ``root`` for this process.

    Re-activating the same directory keeps the existing instance (and
    its hit/miss counters); a different directory replaces it.
    """
    global _ACTIVE
    resolved = Path(root).resolve()
    if _ACTIVE is None or _ACTIVE.root.resolve() != resolved:
        _ACTIVE = ArtifactCache(resolved)
    return _ACTIVE


def deactivate() -> None:
    """Drop the active disk cache (in-process memos are untouched)."""
    global _ACTIVE
    _ACTIVE = None


def active_cache() -> ArtifactCache | None:
    """The active disk cache, auto-activating from ``REPRO_CACHE_DIR``."""
    if _ACTIVE is None and os.environ.get(_ENV_VAR):
        activate(os.environ[_ENV_VAR])
    return _ACTIVE


def clear_memos() -> None:
    """Empty every in-process LRU (cold-run hygiene for benchmarks)."""
    _dataset_memo.clear()
    _rmi_memo.clear()
    _index_memo.clear()


def _memo_get(memo: OrderedDict, key: tuple) -> Any | None:
    hit = memo.get(key)
    if hit is not None:
        memo.move_to_end(key)
    return hit


def _memo_put(memo: OrderedDict, key: tuple, value: Any, cap: int) -> None:
    memo[key] = value
    memo.move_to_end(key)
    while len(memo) > cap:
        memo.popitem(last=False)


# ---------------------------------------------------------------------------
# Datasets
# ---------------------------------------------------------------------------


def dataset(name: str, n: int, seed: int) -> np.ndarray:
    """The dataset ``(name, n, seed)``, generated at most once.

    Resolution order: in-process LRU, then the active disk cache
    (mmap-backed ``.npy``), then :func:`repro.data.sosd.generate` (the
    result is persisted when a disk cache is active).  Returned arrays
    are read-only -- they are shared between callers and, when disk
    cached, memory-mapped.
    """
    key = (str(name), int(n), int(seed))
    hit = _memo_get(_dataset_memo, key)
    if hit is not None:
        return hit
    keys = _load_or_generate_dataset(*key)
    _memo_put(_dataset_memo, key, keys, _DATASET_MEMO_MAX)
    return keys


def _load_or_generate_dataset(name: str, n: int, seed: int) -> np.ndarray:
    from ..data import sosd

    cache = active_cache()
    if cache is None:
        keys = sosd.generate(name, n=n, seed=seed)
        keys.setflags(write=False)
        return keys
    fp = dataset_fingerprint(name, n, seed)
    path = cache.get("datasets", fp)
    if path is not None:
        keys = np.load(path, mmap_mode="r")
        if keys.dtype == np.uint64 and len(keys) == n:
            return keys
        cache.discard("datasets", fp)  # wrong shape: stale beyond meta
    generated = sosd.generate(name, n=n, seed=seed)

    def write(tmp: Path) -> None:
        with open(tmp, "wb") as f:
            np.save(f, generated)

    path = cache.put("datasets", fp, write)
    return np.load(path, mmap_mode="r")


def _dataset_digest(name: str, n: int, seed: int) -> str:
    return fingerprint_digest(dataset_fingerprint(name, n, seed))


# ---------------------------------------------------------------------------
# Trained RMIs
# ---------------------------------------------------------------------------


def rmi_for(name: str, n: int, seed: int, config: Any) -> Any:
    """A trained RMI for ``config`` over dataset ``(name, n, seed)``.

    Cached in-process by ``(dataset, config)`` and, when a disk cache
    is active, persisted through :mod:`repro.core.serialize`'s payload
    format (keys excluded -- the dataset artifact already holds them)
    and restored without retraining.
    """
    key = (str(name), int(n), int(seed), config)
    hit = _memo_get(_rmi_memo, key)
    if hit is not None:
        return hit
    keys = dataset(name, n, seed)
    rmi = _load_or_build_rmi(name, n, seed, keys, config)
    _memo_put(_rmi_memo, key, rmi, _RMI_MEMO_MAX)
    return rmi


def _load_or_build_rmi(name: str, n: int, seed: int,
                       keys: np.ndarray, config: Any) -> Any:
    cache = active_cache()
    if cache is None:
        return config.build(keys)
    from ..core.serialize import rmi_from_payload, rmi_payload

    fp = rmi_fingerprint(_dataset_digest(name, n, seed), config)
    path = cache.get("indexes", fp)
    if path is not None:
        try:
            with np.load(path, allow_pickle=False) as data:
                return rmi_from_payload(data, keys=keys)
        except Exception:
            cache.discard("indexes", fp)
    rmi = config.build(keys)
    payload = rmi_payload(rmi, include_keys=False)
    cache.put("indexes", fp,
              lambda tmp: _savez(tmp, payload))
    return rmi


def _savez(tmp: Path, arrays: "dict[str, np.ndarray]") -> None:
    with open(tmp, "wb") as f:
        np.savez(f, **arrays)


# ---------------------------------------------------------------------------
# Baseline index snapshots
# ---------------------------------------------------------------------------


def index_for(
    name: str,
    n: int,
    seed: int,
    index_name: str,
    spec: Mapping[str, Any],
    factory: Callable[[np.ndarray], Any],
    cls: type | None = None,
) -> Any:
    """A built baseline index, restored from its snapshot when cached.

    ``spec`` names the constructor hyperparameters (it participates in
    the fingerprint); ``factory`` builds from the key array on a miss;
    ``cls`` (default: the factory result's type) restores via the
    :class:`~repro.baselines.interfaces.OrderedIndex` snapshot hooks.
    ``UnsupportedDataError`` propagates uncached -- incompatibility is
    re-derived cheaply and must not mask dataset changes.
    """
    key = (str(name), int(n), int(seed), str(index_name),
           tuple(sorted(spec.items())))
    hit = _memo_get(_index_memo, key)
    if hit is not None:
        return hit
    keys = dataset(name, n, seed)
    cache = active_cache()
    index = None
    fp = None
    if cache is not None and cls is not None:
        fp = index_fingerprint(_dataset_digest(name, n, seed),
                               cls.__name__, dict(spec, index=index_name))
        path = cache.get("indexes", fp)
        if path is not None:
            try:
                with np.load(path, allow_pickle=False) as data:
                    state = {k: data[k] for k in data.files}
                index = cls.restore_state(keys, state)
            except Exception:
                cache.discard("indexes", fp)
                index = None
    if index is None:
        index = factory(keys)
        if cache is not None and fp is not None:
            try:
                state = index.snapshot_state()
                cache.put("indexes", fp, lambda tmp: _savez(tmp, state))
            except (TypeError, pickle.PicklingError):
                pass  # not snapshottable: rebuild on every cold run
    _memo_put(_index_memo, key, index, _INDEX_MEMO_MAX)
    return index


# ---------------------------------------------------------------------------
# Figure results
# ---------------------------------------------------------------------------


def figure_result(
    figure_id: str,
    bound_kwargs: "Mapping[str, Any] | None",
    runner: Callable[[], Any],
) -> "tuple[Any, bool]":
    """Serve a figure result from the cache or compute and store it.

    Returns ``(FigureResult, from_cache)``.  ``bound_kwargs`` must be
    the driver's fully bound arguments minus row-invariant ones
    (``jobs``); ``None`` disables caching for this call.  Cached
    payloads are the exact ``to_json`` text of the cold run, so a warm
    load reconstructs bit-identical rows.
    """
    from ..bench.report import FigureResult

    cache = active_cache()
    if cache is None or bound_kwargs is None:
        return runner(), False
    try:
        fp = figure_fingerprint(figure_id, bound_kwargs)
    except TypeError:
        return runner(), False  # non-canonical kwargs: not cacheable
    path = cache.get("results", fp)
    if path is not None:
        try:
            payload = json.loads(path.read_text())
            return FigureResult.from_payload(payload), True
        except Exception:
            cache.discard("results", fp)
    result = runner()
    text = result.to_json()
    cache.put("results", fp, lambda tmp: tmp.write_text(text))
    return result, False
