"""On-disk content-addressed artifact store.

Layout under the cache root (one subdirectory per artifact kind)::

    <root>/datasets/<digest>.npy    + <digest>.json   (key arrays)
    <root>/indexes/<digest>.npz     + <digest>.json   (built-index snapshots)
    <root>/results/<digest>.json    + <digest>.meta.json (figure results)
    <root>/calibrations/<digest>.json + <digest>.meta.json (cost-model
                                                            calibrations)

``<digest>`` is the SHA-256 of the artifact's fingerprint (see
:mod:`repro.cache.fingerprint`); the sidecar meta file records the full
fingerprint plus the SHA-256 of the payload bytes.  Every ``get``
verifies both before serving: a payload whose checksum disagrees
(corruption) or whose stored fingerprint differs from the requested one
(stale entry / digest collision) is discarded and reported as a miss --
the caller rebuilds and overwrites.  Nothing is ever served unverified.

Writes are atomic (temp file + ``os.replace``), so concurrent suite
workers sharing one cache directory can only ever observe complete
artifacts; both sides of a write race produce identical bytes anyway,
content-addressing being the point.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Mapping

from .fingerprint import canonicalize, fingerprint_digest, sha256_file

__all__ = ["ArtifactCache", "ARTIFACT_KINDS"]

#: Artifact kind -> payload file suffix.
ARTIFACT_KINDS = {
    "datasets": ".npy",
    "indexes": ".npz",
    "results": ".json",
    "calibrations": ".json",
}


class ArtifactCache:
    """A content-addressed artifact cache rooted at one directory."""

    def __init__(self, root: "str | os.PathLike") -> None:
        self.root = Path(root)
        for kind in ARTIFACT_KINDS:
            (self.root / kind).mkdir(parents=True, exist_ok=True)
        self.hits: dict[str, int] = {k: 0 for k in ARTIFACT_KINDS}
        self.misses: dict[str, int] = {k: 0 for k in ARTIFACT_KINDS}

    # -- path helpers ----------------------------------------------------

    def _payload_path(self, kind: str, digest: str) -> Path:
        return self.root / kind / f"{digest}{ARTIFACT_KINDS[kind]}"

    def _meta_path(self, kind: str, digest: str) -> Path:
        suffix = ".meta.json" if ARTIFACT_KINDS[kind] == ".json" else ".json"
        return self.root / kind / f"{digest}{suffix}"

    # -- core get / put --------------------------------------------------

    def get(self, kind: str, fingerprint: Mapping[str, Any]) -> Path | None:
        """Verified payload path for ``fingerprint``, or ``None`` (miss).

        Corrupted or stale entries are deleted, never served.
        """
        digest = fingerprint_digest(fingerprint)
        payload = self._payload_path(kind, digest)
        meta_path = self._meta_path(kind, digest)
        if not payload.exists() or not meta_path.exists():
            self.misses[kind] += 1
            return None
        try:
            meta = json.loads(meta_path.read_text())
        except (OSError, ValueError):
            meta = None
        if (
            meta is None
            or meta.get("fingerprint") != canonicalize(fingerprint)
            or meta.get("sha256") != sha256_file(payload)
        ):
            self.discard(kind, fingerprint)
            self.misses[kind] += 1
            return None
        self.hits[kind] += 1
        return payload

    def put(
        self,
        kind: str,
        fingerprint: Mapping[str, Any],
        writer: Callable[[Path], None],
    ) -> Path:
        """Store one artifact: ``writer`` writes the payload to a path.

        The payload lands under a temporary name and is renamed into
        place only after the meta sidecar can describe it, so readers
        never observe half-written artifacts.
        """
        digest = fingerprint_digest(fingerprint)
        payload = self._payload_path(kind, digest)
        tmp = payload.with_name(f".{payload.name}.{os.getpid()}.tmp")
        try:
            writer(tmp)
            meta = {
                "fingerprint": canonicalize(fingerprint),
                "sha256": sha256_file(tmp),
                "bytes": tmp.stat().st_size,
                "created": time.time(),
            }
            os.replace(tmp, payload)
        finally:
            if tmp.exists():
                tmp.unlink()
        self._meta_path(kind, digest).write_text(
            json.dumps(meta, indent=2) + "\n"
        )
        return payload

    def discard(self, kind: str, fingerprint: Mapping[str, Any]) -> None:
        """Remove one entry (both payload and meta), if present."""
        digest = fingerprint_digest(fingerprint)
        for path in (self._payload_path(kind, digest),
                     self._meta_path(kind, digest)):
            try:
                path.unlink()
            except FileNotFoundError:
                pass

    # -- maintenance -----------------------------------------------------

    def _entries(self, kind: str) -> "list[tuple[Path, Path, dict | None]]":
        """(payload, meta, parsed meta or None) per stored artifact."""
        out = []
        directory = self.root / kind
        suffix = ARTIFACT_KINDS[kind]
        for payload in sorted(directory.glob(f"*{suffix}")):
            if payload.name.endswith(".meta.json"):
                continue  # results sidecars share the .json suffix
            digest = payload.name[: -len(suffix)]
            meta_path = self._meta_path(kind, digest)
            try:
                meta = json.loads(meta_path.read_text())
            except (OSError, ValueError):
                meta = None
            out.append((payload, meta_path, meta))
        return out

    def stats(self) -> dict:
        """Disk usage per kind plus this process's hit/miss counters."""
        kinds = {}
        for kind in ARTIFACT_KINDS:
            entries = self._entries(kind)
            kinds[kind] = {
                "entries": len(entries),
                "bytes": sum(p.stat().st_size for p, _, _ in entries),
                "hits": self.hits[kind],
                "misses": self.misses[kind],
            }
        return {
            "root": str(self.root),
            "kinds": kinds,
            "entries": sum(k["entries"] for k in kinds.values()),
            "bytes": sum(k["bytes"] for k in kinds.values()),
        }

    def gc(self, max_age_days: float | None = None,
           drop_all: bool = False) -> dict:
        """Collect garbage: invalid entries always, old entries on request.

        An entry is invalid when its meta sidecar is unreadable, its
        payload checksum disagrees, or it was written under a different
        cache format version.  ``max_age_days`` additionally drops
        entries older than that; ``drop_all`` empties the cache.
        Returns ``{"removed": ..., "kept": ...}``.
        """
        from .fingerprint import CACHE_FORMAT_VERSION

        removed = kept = 0
        now = time.time()
        for kind in ARTIFACT_KINDS:
            for payload, meta_path, meta in self._entries(kind):
                stale = (
                    drop_all
                    or meta is None
                    or meta.get("sha256") != sha256_file(payload)
                    or meta.get("fingerprint", {}).get("format")
                    != CACHE_FORMAT_VERSION
                )
                if not stale and max_age_days is not None:
                    age_s = now - float(meta.get("created", 0))
                    stale = age_s > max_age_days * 86_400
                if stale:
                    for path in (payload, meta_path):
                        try:
                            path.unlink()
                        except FileNotFoundError:
                            pass
                    removed += 1
                else:
                    kept += 1
            # Leftover temp files from interrupted writers.
            for tmp in (self.root / kind).glob(".*.tmp"):
                tmp.unlink()
        return {"removed": removed, "kept": kept}
