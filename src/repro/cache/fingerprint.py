"""Content fingerprints for cached artifacts.

Every artifact the cache stores -- datasets, built indexes, figure
results -- is addressed by the SHA-256 digest of a *fingerprint*: a
small JSON-able dict naming everything the artifact's content depends
on.  Equal fingerprints mean bit-identical artifacts (all generators
and builders in this repo are deterministic), so a digest hit can be
served without rebuilding; any input change -- a different ``n``, a
different config field, a bumped generator version -- lands on a
different digest and misses cleanly.

Invalidation is by construction: nothing is ever updated in place.
Code changes that alter an artifact's content without changing its
inputs must bump the matching version constant below; that shifts
every digest and orphans the stale entries (collected by ``gc``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping

__all__ = [
    "CACHE_FORMAT_VERSION",
    "DATASET_GENERATOR_VERSION",
    "SNAPSHOT_VERSION",
    "CALIBRATION_VERSION",
    "canonicalize",
    "fingerprint_digest",
    "dataset_fingerprint",
    "rmi_fingerprint",
    "index_fingerprint",
    "figure_fingerprint",
    "calibration_fingerprint",
    "sha256_file",
    "sha256_text",
]

#: Bump to invalidate every cached artifact (layout / meta changes).
CACHE_FORMAT_VERSION = 1

#: Bump when any generator in :mod:`repro.data.sosd` changes output.
DATASET_GENERATOR_VERSION = 1

#: Bump when an index's snapshot representation changes shape.
SNAPSHOT_VERSION = 1

#: Bump when the cost-model calibration procedure changes output.
CALIBRATION_VERSION = 1


def canonicalize(value: Any) -> Any:
    """Reduce ``value`` to canonical JSON-able form.

    Tuples become lists, NumPy scalars become Python scalars, frozen
    config dataclasses become dicts.  Raises ``TypeError`` for values
    with no canonical form (such artifacts are simply not cacheable).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (list, tuple)):
        return [canonicalize(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): canonicalize(v) for k, v in sorted(value.items())}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return canonicalize(dataclasses.asdict(value))
    item = getattr(value, "item", None)
    if callable(item) and getattr(value, "ndim", None) == 0:
        return canonicalize(value.item())  # NumPy scalar
    raise TypeError(f"{type(value).__name__} has no canonical JSON form")


def canonical_json(fingerprint: Mapping[str, Any]) -> str:
    """Stable JSON text of a fingerprint dict (sorted keys, no spaces)."""
    return json.dumps(canonicalize(fingerprint), sort_keys=True,
                      separators=(",", ":"))


def fingerprint_digest(fingerprint: Mapping[str, Any]) -> str:
    """Hex SHA-256 of the canonical fingerprint -- the artifact address."""
    return hashlib.sha256(canonical_json(fingerprint).encode()).hexdigest()


def dataset_fingerprint(name: str, n: int, seed: int) -> dict:
    """Fingerprint of a synthetic dataset: ``(name, n, seed, version)``."""
    return {
        "kind": "dataset",
        "format": CACHE_FORMAT_VERSION,
        "generator": DATASET_GENERATOR_VERSION,
        "name": str(name),
        "n": int(n),
        "seed": int(seed),
    }


def rmi_fingerprint(dataset_digest: str, config: Any) -> dict:
    """Fingerprint of a trained RMI: ``(dataset-hash, config)``.

    ``config`` is the full :class:`~repro.core.builder.RMIConfig`;
    every *structure-affecting* field participates, so e.g. two configs
    differing only in the search algorithm are distinct artifacts (the
    search name is serialized).  The ``kernels`` backend selection is
    excluded: all backends produce bit-identical positions, so a built
    index is backend-agnostic and one artifact serves every backend.
    """
    canonical = canonicalize(config)
    if isinstance(canonical, dict):
        canonical.pop("kernels", None)
    return {
        "kind": "rmi",
        "format": CACHE_FORMAT_VERSION,
        "dataset": str(dataset_digest),
        "config": canonical,
    }


def index_fingerprint(dataset_digest: str, cls_name: str,
                      spec: Mapping[str, Any]) -> dict:
    """Fingerprint of a built baseline index: ``(dataset-hash, config)``.

    ``spec`` carries the constructor hyperparameters; ``cls_name`` and
    the snapshot version guard against one name meaning two structures.
    """
    return {
        "kind": "index",
        "format": CACHE_FORMAT_VERSION,
        "snapshot": SNAPSHOT_VERSION,
        "dataset": str(dataset_digest),
        "class": str(cls_name),
        "spec": canonicalize(spec),
    }


def figure_fingerprint(figure_id: str, kwargs: Mapping[str, Any]) -> dict:
    """Fingerprint of a figure result: driver id + fully bound kwargs.

    Callers must pass the *bound* arguments (defaults applied) so
    ``fig04()`` and ``fig04(n=100_000)`` share one artifact, and must
    exclude arguments that do not affect the rows (``jobs``).
    """
    return {
        "kind": "figure",
        "format": CACHE_FORMAT_VERSION,
        "generator": DATASET_GENERATOR_VERSION,
        "figure": str(figure_id),
        "kwargs": canonicalize(dict(kwargs)),
    }


def calibration_fingerprint(machine_id: str, backend: str,
                            params: Mapping[str, Any],
                            family: str = "search") -> dict:
    """Fingerprint of a cost-model calibration run.

    Unlike built indexes, calibrations are *performance* measurements:
    the kernel ``backend`` and kernel ``family`` (``"search"``, or a
    packed family ``"rmi"``/``"pla"``/``"tree"`` -- see
    :func:`repro.cost.calibrate.calibrate_kernel_overhead`) both change
    the numbers, so each is an explicit fingerprint field and
    calibrations are never served across either.  ``machine_id`` names
    the measured host; ``params`` carries the calibration procedure's
    knobs (sizes, repetitions).
    """
    return {
        "kind": "calibration",
        "format": CACHE_FORMAT_VERSION,
        "calibration": CALIBRATION_VERSION,
        "machine": str(machine_id),
        "backend": str(backend),
        "family": str(family),
        "params": canonicalize(dict(params)),
    }


def sha256_file(path) -> str:
    """Hex SHA-256 of a file's bytes (corruption check on load)."""
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()
