"""Lookup workload generation (Section 4.4 of the paper).

The paper's workload: lower-bound queries whose keys are "sampled from
the sorted array uniformly at random with a fixed seed"; three
independent runs of 20M lookups each; reported times are from the
median run; a checksum over the returned positions guards against
wrong results.  This module reproduces that protocol at configurable
scale.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Workload",
    "make_workload",
    "position_checksum",
    "RangeWorkload",
    "make_range_workload",
    "make_arrivals",
    "MixedSegment",
    "MixedWorkload",
    "make_mixed_workload",
]

#: The paper's per-run lookup count (we default far lower; pass
#: ``num_lookups`` explicitly to scale up).
PAPER_NUM_LOOKUPS = 20_000_000

#: The paper performs three independent runs and reports the median.
PAPER_NUM_RUNS = 3


@dataclass(frozen=True)
class Workload:
    """A reproducible batch of lower-bound queries over a key array."""

    queries: np.ndarray  # uint64 query keys
    expected_positions: np.ndarray  # oracle lower-bound positions
    seed: int

    @property
    def num_lookups(self) -> int:
        return len(self.queries)

    @property
    def checksum(self) -> int:
        """Sum of the expected positions (the paper's checksum)."""
        return int(self.expected_positions.sum())


def make_workload(
    keys: np.ndarray,
    num_lookups: int = 100_000,
    seed: int = 42,
    include_absent: float = 0.0,
    access: str = "uniform",
    zipf_a: float = 1.3,
) -> Workload:
    """Sample a lookup workload from a sorted key array.

    ``access`` selects the key-popularity distribution: ``"uniform"``
    is the paper's protocol (Section 4.4); ``"zipf"`` is an extension
    with hot keys (exponent ``zipf_a``), the usual OLTP skew -- hot
    keys are scattered over the key space via a seeded permutation so
    skew does not correlate with key order.

    ``include_absent`` optionally mixes in a fraction of uniformly
    random (mostly absent) keys -- an extension beyond the paper's
    existing-keys-only workload, used by robustness tests.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if len(keys) == 0:
        raise ValueError("cannot sample a workload from an empty key array")
    if not 0.0 <= include_absent <= 1.0:
        raise ValueError("include_absent must be within [0, 1]")
    rng = np.random.default_rng(seed)
    num_absent = int(num_lookups * include_absent)
    num_present = num_lookups - num_absent
    if access == "uniform":
        idx = rng.integers(0, len(keys), num_present)
    elif access == "zipf":
        ranks = (rng.zipf(zipf_a, num_present) - 1) % len(keys)
        scatter = rng.permutation(len(keys))
        idx = scatter[ranks]
    else:
        raise ValueError(f"unknown access pattern {access!r}")
    present = keys[idx]
    if num_absent:
        lo, hi = int(keys[0]), int(keys[-1])
        absent = rng.integers(lo, max(hi, lo + 1), num_absent, dtype=np.uint64)
        queries = np.concatenate([present, absent])
        rng.shuffle(queries)
    else:
        queries = present
    expected = np.searchsorted(keys, queries, side="left").astype(np.int64)
    return Workload(queries=queries, expected_positions=expected, seed=seed)


def position_checksum(positions: np.ndarray) -> int:
    """Checksum over returned positions ("we sum up the returned
    positions", Section 4.4)."""
    return int(np.asarray(positions, dtype=np.int64).sum())


def make_arrivals(
    num_requests: int,
    qps: "float | None",
    seed: int = 42,
) -> np.ndarray:
    """Open-loop request arrival offsets (seconds from stream start).

    Arrivals form a Poisson process at rate ``qps``: exponential
    inter-arrival times, cumulatively summed.  This is the open-loop
    serving protocol -- request times are fixed in advance instead of
    reacting to responses, so server queueing delay shows up in the
    measured latency tail rather than being absorbed by a slowed-down
    client (the coordinated-omission pitfall).  ``qps=None`` (or 0)
    means saturation: every request arrives at time zero.
    """
    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    if qps is None or qps <= 0:
        return np.zeros(num_requests, dtype=np.float64)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / qps, num_requests)
    return np.cumsum(gaps)


@dataclass(frozen=True)
class RangeWorkload:
    """A reproducible batch of range-count queries.

    An extension beyond the paper's point-lookup workload: range scans
    are the database operation that motivates lower-bound indexes in
    the first place (the introduction's problem statement generalizes
    directly).  Each query asks for ``(start, count)`` of keys in
    ``[low, high)``.
    """

    lows: np.ndarray
    highs: np.ndarray
    expected_starts: np.ndarray
    expected_counts: np.ndarray
    seed: int

    @property
    def num_queries(self) -> int:
        return len(self.lows)

    @property
    def checksum(self) -> int:
        return int(self.expected_starts.sum() + self.expected_counts.sum())


@dataclass(frozen=True)
class MixedSegment:
    """One write burst followed by oracle-checked reads.

    The mixed stream is segmented so validation stays exact under live
    traffic: all writes of a segment are applied (and awaited) before
    its reads fire, so every expected position is the searchsorted
    oracle over a precisely known live key set.  Within a segment the
    writes are an ordered stream (later ops win on the same key).
    """

    write_keys: np.ndarray  # uint64, applied in order
    write_ops: np.ndarray  # int8: 1 = insert, 0 = delete
    queries: np.ndarray  # uint64 point lookups (post-writes)
    expected: np.ndarray  # int64 oracle lower-bound positions
    range_lows: np.ndarray  # uint64
    range_highs: np.ndarray  # uint64
    expected_starts: np.ndarray  # int64
    expected_counts: np.ndarray  # int64

    @property
    def num_writes(self) -> int:
        return len(self.write_keys)

    @property
    def num_reads(self) -> int:
        return len(self.queries) + len(self.range_lows)


@dataclass(frozen=True)
class MixedWorkload:
    """A reproducible mixed read/write stream (SOSD-style splits).

    SOSD and *Benchmarking Learned Indexes* evaluate read/write mixes
    by ratio; ``write_fraction`` is that knob (0.0 reproduces the
    read-only protocol in segmented form, so read throughput under
    writes has an apples-to-apples baseline).  ``final_live_keys`` is
    the oracle's end state -- drivers assert the served index agrees
    after the stream drains.
    """

    segments: "tuple[MixedSegment, ...]"
    seed: int
    write_fraction: float
    delete_fraction: float
    final_live_keys: np.ndarray

    @property
    def num_writes(self) -> int:
        return sum(s.num_writes for s in self.segments)

    @property
    def num_reads(self) -> int:
        return sum(s.num_reads for s in self.segments)

    @property
    def checksum(self) -> int:
        """Sum of all expected read positions (the paper's checksum)."""
        return int(
            sum(int(s.expected.sum()) + int(s.expected_starts.sum())
                + int(s.expected_counts.sum()) for s in self.segments)
        )


class _LiveOracle:
    """Sorted live-key list under upsert semantics (the reference).

    Mirrors :class:`~repro.writable.index.WritableIndex` exactly:
    ``insert`` leaves the key live with one copy (collapsing base
    duplicates it overwrites), ``delete`` removes every copy.  A plain
    ``bisect``-maintained Python list -- O(n) per write, which at
    generation scale is irrelevant and trivially correct.
    """

    def __init__(self, keys: np.ndarray) -> None:
        self.live = [int(k) for k in keys]

    def insert(self, key: int) -> None:
        lo = bisect.bisect_left(self.live, key)
        hi = bisect.bisect_right(self.live, key, lo=lo)
        self.live[lo:hi] = [key]

    def delete(self, key: int) -> None:
        lo = bisect.bisect_left(self.live, key)
        hi = bisect.bisect_right(self.live, key, lo=lo)
        del self.live[lo:hi]

    def lower_bound(self, key: int) -> int:
        return bisect.bisect_left(self.live, key)

    def sample(self, rng: np.random.Generator) -> int:
        return self.live[int(rng.integers(0, len(self.live)))]


def make_mixed_workload(
    keys: np.ndarray,
    num_ops: int = 10_000,
    seed: int = 42,
    write_fraction: float = 0.1,
    delete_fraction: float = 0.4,
    segment_size: int = 256,
    range_fraction: float = 0.0,
    include_absent: float = 0.1,
) -> MixedWorkload:
    """Sample a segmented mixed read/write stream over ``keys``.

    ``write_fraction`` of the operations are writes; of those,
    ``delete_fraction`` are deletes (sampled from currently live keys,
    so they hit) and the rest inserts (fresh keys across the key span,
    plus occasional upserts of present keys).  Reads are point lookups
    over live and absent keys, with ``range_fraction`` of them range
    counts.  The oracle is maintained *incrementally* write by write,
    so every read's expected answer reflects exactly the writes before
    it -- and, because the writable tier's answers are rebuild-timing
    independent, a live run validates byte-exactly no matter when
    background rebuilds land.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if len(keys) == 0:
        raise ValueError("cannot sample a mixed workload from no keys")
    if not 0.0 <= write_fraction <= 1.0:
        raise ValueError("write_fraction must be within [0, 1]")
    if not 0.0 <= delete_fraction <= 1.0:
        raise ValueError("delete_fraction must be within [0, 1]")
    if not 0.0 <= range_fraction <= 1.0:
        raise ValueError("range_fraction must be within [0, 1]")
    if segment_size < 1:
        raise ValueError("segment_size must be >= 1")
    rng = np.random.default_rng(seed)
    oracle = _LiveOracle(keys)
    key_lo, key_hi = int(keys[0]), int(keys[-1])
    span = max(key_hi - key_lo, 1)

    def fresh_key() -> int:
        # Fresh inserts cover the span plus a margin past both ends so
        # out-of-range routing and clamping stay exercised.
        margin = span // 8 + 1
        lo = max(key_lo - margin, 0)
        hi = min(key_hi + margin, 2**64 - 2)
        return int(rng.integers(lo, hi + 1, dtype=np.uint64))

    segments: "list[MixedSegment]" = []
    remaining = int(num_ops)
    while remaining > 0:
        size = min(int(segment_size), remaining)
        remaining -= size
        num_writes = int(round(size * write_fraction))
        num_reads = size - num_writes
        wkeys = np.empty(num_writes, dtype=np.uint64)
        wops = np.empty(num_writes, dtype=np.int8)
        for i in range(num_writes):
            if oracle.live and rng.random() < delete_fraction:
                wkeys[i] = oracle.sample(rng)
                wops[i] = 0
                oracle.delete(int(wkeys[i]))
            else:
                if oracle.live and rng.random() < 0.15:
                    wkeys[i] = oracle.sample(rng)  # upsert a live key
                else:
                    wkeys[i] = fresh_key()
                wops[i] = 1
                oracle.insert(int(wkeys[i]))
        num_ranges = int(round(num_reads * range_fraction))
        num_points = num_reads - num_ranges
        queries = np.empty(num_points, dtype=np.uint64)
        for i in range(num_points):
            if oracle.live and rng.random() >= include_absent:
                queries[i] = oracle.sample(rng)
            else:
                queries[i] = fresh_key()
        expected = np.array(
            [oracle.lower_bound(int(q)) for q in queries], dtype=np.int64
        )
        lows = np.empty(num_ranges, dtype=np.uint64)
        highs = np.empty(num_ranges, dtype=np.uint64)
        for i in range(num_ranges):
            a = oracle.sample(rng) if oracle.live else fresh_key()
            b = a + int(rng.integers(1, span // 50 + 2))
            lows[i], highs[i] = min(a, b), min(max(a, b), 2**64 - 1)
        starts = np.array(
            [oracle.lower_bound(int(lo)) for lo in lows], dtype=np.int64
        )
        ends = np.array(
            [oracle.lower_bound(int(hi)) for hi in highs], dtype=np.int64
        )
        segments.append(MixedSegment(
            write_keys=wkeys, write_ops=wops,
            queries=queries, expected=expected,
            range_lows=lows, range_highs=highs,
            expected_starts=starts, expected_counts=ends - starts,
        ))
    return MixedWorkload(
        segments=tuple(segments),
        seed=int(seed),
        write_fraction=float(write_fraction),
        delete_fraction=float(delete_fraction),
        final_live_keys=np.array(oracle.live, dtype=np.uint64),
    )


def make_range_workload(
    keys: np.ndarray,
    num_queries: int = 10_000,
    seed: int = 42,
    mean_span: int = 100,
) -> RangeWorkload:
    """Sample range queries covering ~``mean_span`` keys each.

    Query starts are sampled uniformly from the keys (like the paper's
    point workload); spans are geometric around ``mean_span``, so both
    short and long scans occur.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if len(keys) == 0:
        raise ValueError("cannot sample ranges from an empty key array")
    rng = np.random.default_rng(seed)
    start_idx = rng.integers(0, len(keys), num_queries)
    spans = rng.geometric(1.0 / max(mean_span, 1), num_queries)
    end_idx = np.minimum(start_idx + spans, len(keys) - 1)
    lows = keys[start_idx]
    highs = keys[end_idx]
    swap = highs < lows  # duplicates can invert tiny ranges
    lows, highs = np.where(swap, highs, lows), np.where(swap, lows, highs)
    starts = np.searchsorted(keys, lows, side="left").astype(np.int64)
    ends = np.searchsorted(keys, highs, side="left").astype(np.int64)
    return RangeWorkload(
        lows=lows,
        highs=highs,
        expected_starts=starts,
        expected_counts=(ends - starts),
        seed=seed,
    )
