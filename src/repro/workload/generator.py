"""Lookup workload generation (Section 4.4 of the paper).

The paper's workload: lower-bound queries whose keys are "sampled from
the sorted array uniformly at random with a fixed seed"; three
independent runs of 20M lookups each; reported times are from the
median run; a checksum over the returned positions guards against
wrong results.  This module reproduces that protocol at configurable
scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Workload",
    "make_workload",
    "position_checksum",
    "RangeWorkload",
    "make_range_workload",
    "make_arrivals",
]

#: The paper's per-run lookup count (we default far lower; pass
#: ``num_lookups`` explicitly to scale up).
PAPER_NUM_LOOKUPS = 20_000_000

#: The paper performs three independent runs and reports the median.
PAPER_NUM_RUNS = 3


@dataclass(frozen=True)
class Workload:
    """A reproducible batch of lower-bound queries over a key array."""

    queries: np.ndarray  # uint64 query keys
    expected_positions: np.ndarray  # oracle lower-bound positions
    seed: int

    @property
    def num_lookups(self) -> int:
        return len(self.queries)

    @property
    def checksum(self) -> int:
        """Sum of the expected positions (the paper's checksum)."""
        return int(self.expected_positions.sum())


def make_workload(
    keys: np.ndarray,
    num_lookups: int = 100_000,
    seed: int = 42,
    include_absent: float = 0.0,
    access: str = "uniform",
    zipf_a: float = 1.3,
) -> Workload:
    """Sample a lookup workload from a sorted key array.

    ``access`` selects the key-popularity distribution: ``"uniform"``
    is the paper's protocol (Section 4.4); ``"zipf"`` is an extension
    with hot keys (exponent ``zipf_a``), the usual OLTP skew -- hot
    keys are scattered over the key space via a seeded permutation so
    skew does not correlate with key order.

    ``include_absent`` optionally mixes in a fraction of uniformly
    random (mostly absent) keys -- an extension beyond the paper's
    existing-keys-only workload, used by robustness tests.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if len(keys) == 0:
        raise ValueError("cannot sample a workload from an empty key array")
    if not 0.0 <= include_absent <= 1.0:
        raise ValueError("include_absent must be within [0, 1]")
    rng = np.random.default_rng(seed)
    num_absent = int(num_lookups * include_absent)
    num_present = num_lookups - num_absent
    if access == "uniform":
        idx = rng.integers(0, len(keys), num_present)
    elif access == "zipf":
        ranks = (rng.zipf(zipf_a, num_present) - 1) % len(keys)
        scatter = rng.permutation(len(keys))
        idx = scatter[ranks]
    else:
        raise ValueError(f"unknown access pattern {access!r}")
    present = keys[idx]
    if num_absent:
        lo, hi = int(keys[0]), int(keys[-1])
        absent = rng.integers(lo, max(hi, lo + 1), num_absent, dtype=np.uint64)
        queries = np.concatenate([present, absent])
        rng.shuffle(queries)
    else:
        queries = present
    expected = np.searchsorted(keys, queries, side="left").astype(np.int64)
    return Workload(queries=queries, expected_positions=expected, seed=seed)


def position_checksum(positions: np.ndarray) -> int:
    """Checksum over returned positions ("we sum up the returned
    positions", Section 4.4)."""
    return int(np.asarray(positions, dtype=np.int64).sum())


def make_arrivals(
    num_requests: int,
    qps: "float | None",
    seed: int = 42,
) -> np.ndarray:
    """Open-loop request arrival offsets (seconds from stream start).

    Arrivals form a Poisson process at rate ``qps``: exponential
    inter-arrival times, cumulatively summed.  This is the open-loop
    serving protocol -- request times are fixed in advance instead of
    reacting to responses, so server queueing delay shows up in the
    measured latency tail rather than being absorbed by a slowed-down
    client (the coordinated-omission pitfall).  ``qps=None`` (or 0)
    means saturation: every request arrives at time zero.
    """
    if num_requests < 0:
        raise ValueError("num_requests must be >= 0")
    if qps is None or qps <= 0:
        return np.zeros(num_requests, dtype=np.float64)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / qps, num_requests)
    return np.cumsum(gaps)


@dataclass(frozen=True)
class RangeWorkload:
    """A reproducible batch of range-count queries.

    An extension beyond the paper's point-lookup workload: range scans
    are the database operation that motivates lower-bound indexes in
    the first place (the introduction's problem statement generalizes
    directly).  Each query asks for ``(start, count)`` of keys in
    ``[low, high)``.
    """

    lows: np.ndarray
    highs: np.ndarray
    expected_starts: np.ndarray
    expected_counts: np.ndarray
    seed: int

    @property
    def num_queries(self) -> int:
        return len(self.lows)

    @property
    def checksum(self) -> int:
        return int(self.expected_starts.sum() + self.expected_counts.sum())


def make_range_workload(
    keys: np.ndarray,
    num_queries: int = 10_000,
    seed: int = 42,
    mean_span: int = 100,
) -> RangeWorkload:
    """Sample range queries covering ~``mean_span`` keys each.

    Query starts are sampled uniformly from the keys (like the paper's
    point workload); spans are geometric around ``mean_span``, so both
    short and long scans occur.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if len(keys) == 0:
        raise ValueError("cannot sample ranges from an empty key array")
    rng = np.random.default_rng(seed)
    start_idx = rng.integers(0, len(keys), num_queries)
    spans = rng.geometric(1.0 / max(mean_span, 1), num_queries)
    end_idx = np.minimum(start_idx + spans, len(keys) - 1)
    lows = keys[start_idx]
    highs = keys[end_idx]
    swap = highs < lows  # duplicates can invert tiny ranges
    lows, highs = np.where(swap, highs, lows), np.where(swap, lows, highs)
    starts = np.searchsorted(keys, lows, side="left").astype(np.int64)
    ends = np.searchsorted(keys, highs, side="left").astype(np.int64)
    return RangeWorkload(
        lows=lows,
        highs=highs,
        expected_starts=starts,
        expected_counts=(ends - starts),
        seed=seed,
    )
