"""Lookup workloads and the measurement runner (Section 4.4)."""

from .generator import (
    PAPER_NUM_LOOKUPS,
    PAPER_NUM_RUNS,
    MixedSegment,
    MixedWorkload,
    RangeWorkload,
    Workload,
    make_arrivals,
    make_mixed_workload,
    make_range_workload,
    make_workload,
    position_checksum,
)
from .runner import (
    WorkloadResult,
    crosscheck_scalar,
    execute_lookup_batch,
    measure_build,
    run_range_workload,
    run_workload,
    trace_sample,
)

__all__ = [
    "Workload",
    "make_workload",
    "position_checksum",
    "RangeWorkload",
    "make_range_workload",
    "MixedSegment",
    "MixedWorkload",
    "make_mixed_workload",
    "make_arrivals",
    "WorkloadResult",
    "execute_lookup_batch",
    "crosscheck_scalar",
    "run_workload",
    "run_range_workload",
    "measure_build",
    "trace_sample",
    "PAPER_NUM_LOOKUPS",
    "PAPER_NUM_RUNS",
]
