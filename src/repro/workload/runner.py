"""Workload execution and measurement.

Runs a lookup workload against an index (an
:class:`~repro.baselines.interfaces.OrderedIndex` or a bare
:class:`~repro.core.rmi.RMI`), following the paper's protocol
(Section 4.4): several independent runs, the median run is reported,
and a checksum over the returned positions validates correctness.

Each result carries three views of the cost:

* ``wall_seconds`` / ``wall_ns_per_lookup`` -- measured Python time of
  the vectorized batch path (honest relative throughput at this scale);
* ``counters`` -- machine-independent operation counts from a traced
  sample of scalar lookups;
* ``estimated_ns_per_lookup`` -- the analytic cost model's estimate of
  the per-lookup latency on the paper's machine, which is what the
  figure drivers plot (see :mod:`repro.cost.model`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..baselines.interfaces import OrderedIndex
from ..core.rmi import RMI
from ..cost.counters import OperationCounters
from ..cost.model import CostModel
from .generator import RangeWorkload, Workload, position_checksum

__all__ = [
    "WorkloadResult",
    "run_workload",
    "run_range_workload",
    "measure_build",
    "trace_sample",
]

#: Queries traced per workload for operation counting (tracing is a
#: scalar Python path, so it runs on a sample, not the full workload).
DEFAULT_TRACE_SAMPLE = 512


@dataclass(frozen=True)
class WorkloadResult:
    """Measurements of one index over one workload."""

    index_name: str
    index_bytes: int
    num_lookups: int
    wall_seconds: float
    checksum_ok: bool
    counters: OperationCounters
    estimated_ns_per_lookup: float
    estimated_eval_ns: float
    estimated_search_ns: float

    @property
    def wall_ns_per_lookup(self) -> float:
        return self.wall_seconds / max(self.num_lookups, 1) * 1e9


def _batch_lookup(index: "OrderedIndex | RMI", queries: np.ndarray) -> np.ndarray:
    if isinstance(index, RMI):
        return index.lookup_batch(queries)
    return index.lower_bound_batch(queries)


def trace_sample(
    index: "OrderedIndex | RMI",
    queries: np.ndarray,
    sample: int = DEFAULT_TRACE_SAMPLE,
) -> OperationCounters:
    """Collect operation counters from a deterministic query sample."""
    take = queries[:: max(len(queries) // sample, 1)][:sample]
    evals, comps, intervals = [], [], []
    if isinstance(index, RMI):
        for q in take:
            t = index.lookup_traced(int(q))
            evals.append(t.model_evaluations)
            comps.append(t.comparisons)
            intervals.append(t.interval_size)
    else:
        for q in take:
            b = index.search_bounds(int(q))
            width = max(b.hi - b.lo + 1, 1)
            evals.append(b.evaluation_steps)
            comps.append(int(np.ceil(np.log2(width + 1))))
            intervals.append(width)
    return OperationCounters.collect(evals, comps, intervals)


def run_workload(
    index: "OrderedIndex | RMI",
    workload: Workload,
    runs: int = 3,
    cost_model: CostModel | None = None,
    search: str | None = None,
    trace_size: int = DEFAULT_TRACE_SAMPLE,
) -> WorkloadResult:
    """Execute a workload ``runs`` times; report the median run.

    ``search`` overrides the search algorithm assumed by the cost
    model; by default it is the RMI's configured algorithm or ``bin``
    for baselines (the Section 8 protocol).
    """
    cm = cost_model or CostModel()
    durations = []
    positions = None
    for _ in range(max(runs, 1)):
        t0 = time.perf_counter()
        positions = _batch_lookup(index, workload.queries)
        durations.append(time.perf_counter() - t0)
    checksum_ok = position_checksum(positions) == workload.checksum

    counters = trace_sample(index, workload.queries, trace_size)
    if isinstance(index, RMI):
        name = f"rmi[{index.describe()}]"
        algo = search or index.search_name
    else:
        name = index.name
        algo = search or "bin"
    index_bytes = index.size_in_bytes()
    eval_ns = cm.evaluation_ns(counters.mean_evaluation_steps, index_bytes)
    search_ns = cm.search_ns(
        algo,
        counters.mean_comparisons,
        counters.mean_interval,
        index.n * 8,
    )
    return WorkloadResult(
        index_name=name,
        index_bytes=index_bytes,
        num_lookups=workload.num_lookups,
        wall_seconds=float(np.median(durations)),
        checksum_ok=checksum_ok,
        counters=counters,
        estimated_ns_per_lookup=eval_ns + search_ns,
        estimated_eval_ns=eval_ns,
        estimated_search_ns=search_ns,
    )


def run_range_workload(
    index: "OrderedIndex | RMI",
    workload: RangeWorkload,
    runs: int = 1,
) -> tuple[float, bool]:
    """Execute a range workload; returns ``(median seconds, checksum ok)``.

    Implemented via the batch lower-bound path on both boundaries --
    exactly what :meth:`OrderedIndex.range_query` does per query, so
    the measured time reflects two lookups per range.
    """
    durations = []
    checksum = None
    for _ in range(max(runs, 1)):
        t0 = time.perf_counter()
        starts = _batch_lookup(index, workload.lows)
        ends = _batch_lookup(index, workload.highs)
        durations.append(time.perf_counter() - t0)
        checksum = int(starts.sum() + (ends - starts).sum())
    return float(np.median(durations)), checksum == workload.checksum


def measure_build(
    factory: Callable[[], "OrderedIndex | RMI"], runs: int = 3
) -> tuple["OrderedIndex | RMI", float]:
    """Build an index ``runs`` times; return (index, median seconds)."""
    durations = []
    index = None
    for _ in range(max(runs, 1)):
        t0 = time.perf_counter()
        index = factory()
        durations.append(time.perf_counter() - t0)
    return index, float(np.median(durations))
