"""Workload execution and measurement.

Runs a lookup workload against an index (an
:class:`~repro.baselines.interfaces.OrderedIndex` or a bare
:class:`~repro.core.rmi.RMI`), following the paper's protocol
(Section 4.4): several independent runs, the median run is reported,
and a checksum over the returned positions validates correctness.

All workloads execute through the **batch path**
(:meth:`~repro.baselines.interfaces.OrderedIndex.lookup_batch`),
optionally in fixed-size chunks (``chunk_size``) so serving-style
pipelines can bound per-batch latency and working-set size.
Validation is two-fold: the position checksum of the full batch run,
plus a batch-vs-scalar cross-check -- a deterministic sample of
queries is re-answered through the scalar ``lower_bound``/``lookup``
path and compared element-wise, so a vectorized fast path can never
silently diverge from the reference semantics.

Each result carries three views of the cost:

* ``wall_seconds`` / ``wall_ns_per_lookup`` -- measured Python time of
  the vectorized batch path (honest relative throughput at this scale);
* ``counters`` -- machine-independent operation counts from a traced
  sample of scalar lookups;
* ``estimated_ns_per_lookup`` -- the analytic cost model's estimate of
  the per-lookup latency on the paper's machine, which is what the
  figure drivers plot (see :mod:`repro.cost.model`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..baselines.interfaces import OrderedIndex
from ..core.rmi import RMI
from ..cost.counters import OperationCounters
from ..cost.model import CostModel
from .generator import RangeWorkload, Workload, position_checksum

__all__ = [
    "WorkloadResult",
    "execute_lookup_batch",
    "run_workload",
    "run_range_workload",
    "measure_build",
    "trace_sample",
    "crosscheck_scalar",
]

#: Queries traced per workload for operation counting (tracing is a
#: scalar Python path, so it runs on a sample, not the full workload).
DEFAULT_TRACE_SAMPLE = 512

#: Queries re-answered through the scalar path to cross-check the
#: vectorized batch results.
DEFAULT_CROSSCHECK_SAMPLE = 64


@dataclass(frozen=True)
class WorkloadResult:
    """Measurements of one index over one workload."""

    index_name: str
    index_bytes: int
    num_lookups: int
    wall_seconds: float
    checksum_ok: bool
    counters: OperationCounters
    estimated_ns_per_lookup: float
    estimated_eval_ns: float
    estimated_search_ns: float
    #: Batch-vs-scalar agreement on a deterministic query sample.
    scalar_agreement_ok: bool = True
    #: Kernel backend that executed the batch path ("numpy", "cext",
    #: "numba") -- wall-clock numbers are only comparable within one
    #: backend, so results record which one ran.
    kernel_backend: str = "numpy"
    #: True when the batch path ran the backend's *fused* packed kernel
    #: (the index packed and a compiled backend was active); False means
    #: the staged path ran, even under a compiled backend -- an honesty
    #: bit for comparing wall-clock numbers across indexes.
    kernel_packed: bool = False

    @property
    def wall_ns_per_lookup(self) -> float:
        return self.wall_seconds / max(self.num_lookups, 1) * 1e9

    @property
    def valid(self) -> bool:
        """Both validations: checksum and batch-vs-scalar agreement."""
        return self.checksum_ok and self.scalar_agreement_ok


def execute_lookup_batch(
    index: "OrderedIndex | RMI",
    queries: np.ndarray,
    chunk_size: int | None = None,
) -> np.ndarray:
    """Answer ``queries`` through the index's batch path.

    ``chunk_size`` splits the workload into fixed-size sub-batches
    (``None`` = one batch), bounding per-call latency and the size of
    the intermediate per-query arrays the vectorized paths allocate.
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if chunk_size is None or chunk_size >= len(queries):
        return index.lookup_batch(queries)
    out = np.empty(len(queries), dtype=np.int64)
    for start in range(0, len(queries), chunk_size):
        stop = start + chunk_size
        out[start:stop] = index.lookup_batch(queries[start:stop])
    return out


def _scalar_lookup(index: "OrderedIndex | RMI", key: int) -> int:
    return index.lookup(key) if isinstance(index, RMI) else index.lower_bound(key)


def crosscheck_scalar(
    index: "OrderedIndex | RMI",
    queries: np.ndarray,
    batch_positions: np.ndarray,
    sample: int = DEFAULT_CROSSCHECK_SAMPLE,
) -> bool:
    """Batch-vs-scalar agreement on a deterministic query sample.

    Re-answers an evenly strided sample of ``queries`` through the
    scalar path and compares against the batch results -- the runtime
    guard corresponding to the conformance suite's exhaustive check.
    """
    if not len(queries):
        return True
    stride = max(len(queries) // max(sample, 1), 1)
    take = np.arange(0, len(queries), stride)[:sample]
    return all(
        _scalar_lookup(index, int(queries[i])) == int(batch_positions[i])
        for i in take
    )


def trace_sample(
    index: "OrderedIndex | RMI",
    queries: np.ndarray,
    sample: int = DEFAULT_TRACE_SAMPLE,
) -> OperationCounters:
    """Collect operation counters from a deterministic query sample."""
    take = queries[:: max(len(queries) // sample, 1)][:sample]
    evals, comps, intervals = [], [], []
    if isinstance(index, RMI):
        for q in take:
            t = index.lookup_traced(int(q))
            evals.append(t.model_evaluations)
            comps.append(t.comparisons)
            intervals.append(t.interval_size)
    else:
        for q in take:
            b = index.search_bounds(int(q))
            width = max(b.hi - b.lo + 1, 1)
            evals.append(b.evaluation_steps)
            comps.append(int(np.ceil(np.log2(width + 1))))
            intervals.append(width)
    return OperationCounters.collect(evals, comps, intervals)


def run_workload(
    index: "OrderedIndex | RMI",
    workload: Workload,
    runs: int = 3,
    cost_model: CostModel | None = None,
    search: str | None = None,
    trace_size: int = DEFAULT_TRACE_SAMPLE,
    chunk_size: int | None = None,
    crosscheck_size: int = DEFAULT_CROSSCHECK_SAMPLE,
) -> WorkloadResult:
    """Execute a workload ``runs`` times; report the median run.

    All lookups go through the batch path (chunked by ``chunk_size``
    when given).  ``search`` overrides the search algorithm assumed by
    the cost model; by default it is the RMI's configured algorithm or
    ``bin`` for baselines (the Section 8 protocol).
    """
    cm = cost_model or CostModel()
    durations = []
    positions = None
    for _ in range(max(runs, 1)):
        t0 = time.perf_counter()
        positions = execute_lookup_batch(index, workload.queries, chunk_size)
        durations.append(time.perf_counter() - t0)
    checksum_ok = position_checksum(positions) == workload.checksum
    scalar_ok = crosscheck_scalar(
        index, workload.queries, positions, crosscheck_size
    )

    counters = trace_sample(index, workload.queries, trace_size)
    if isinstance(index, RMI):
        name = f"rmi[{index.describe()}]"
        algo = search or index.search_name
    else:
        name = index.name
        algo = search or "bin"
    index_bytes = index.size_in_bytes()
    eval_ns = cm.evaluation_ns(counters.mean_evaluation_steps, index_bytes)
    search_ns = cm.search_ns(
        algo,
        counters.mean_comparisons,
        counters.mean_interval,
        index.n * 8,
    )
    from ..kernels import get_backend

    # Resolve the backend the index's batch path actually dispatched
    # to: an explicit per-RMI spec if set (adapters hold it on .rmi),
    # otherwise the process default.
    spec_holder = getattr(index, "rmi", index)
    backend_name = get_backend(getattr(spec_holder, "kernels", None)).name
    state_fn = getattr(spec_holder, "_kernel_state", None)
    kernel_packed = bool(state_fn is not None and state_fn() is not None)
    return WorkloadResult(
        index_name=name,
        index_bytes=index_bytes,
        num_lookups=workload.num_lookups,
        wall_seconds=float(np.median(durations)),
        checksum_ok=checksum_ok,
        counters=counters,
        estimated_ns_per_lookup=(
            eval_ns + search_ns + cm.per_lookup_overhead_ns
        ),
        estimated_eval_ns=eval_ns,
        estimated_search_ns=search_ns,
        scalar_agreement_ok=scalar_ok,
        kernel_backend=backend_name,
        kernel_packed=kernel_packed,
    )


def run_range_workload(
    index: "OrderedIndex | RMI",
    workload: RangeWorkload,
    runs: int = 1,
    chunk_size: int | None = None,
) -> tuple[float, bool]:
    """Execute a range workload; returns ``(median seconds, checksum ok)``.

    Implemented via :meth:`range_query_batch` -- two batched
    lower-bound lookups per chunk, exactly what the scalar
    :meth:`OrderedIndex.range_query` does per query, so the measured
    time reflects two lookups per range.
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    durations = []
    checksum = None
    m = workload.num_queries
    step = m if chunk_size is None else chunk_size
    for _ in range(max(runs, 1)):
        starts = np.empty(m, dtype=np.int64)
        counts = np.empty(m, dtype=np.int64)
        t0 = time.perf_counter()
        for lo in range(0, m, step):
            hi = lo + step
            starts[lo:hi], counts[lo:hi] = index.range_query_batch(
                workload.lows[lo:hi], workload.highs[lo:hi]
            )
        durations.append(time.perf_counter() - t0)
        checksum = int(starts.sum() + counts.sum())
    return float(np.median(durations)), checksum == workload.checksum


def measure_build(
    factory: Callable[[], "OrderedIndex | RMI"], runs: int = 3
) -> tuple["OrderedIndex | RMI", float]:
    """Build an index ``runs`` times; return (index, median seconds)."""
    durations = []
    index = None
    for _ in range(max(runs, 1)):
        t0 = time.perf_counter()
        index = factory()
        durations.append(time.perf_counter() - t0)
    return index, float(np.median(durations))
