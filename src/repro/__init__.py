"""repro -- reproduction of "A Critical Analysis of Recursive Model
Indexes" (Maltry & Dittrich, VLDB 2022).

The package provides:

* :mod:`repro.core` -- a complete, configurable recursive model index
  (models, error bounds, search algorithms, training, analysis).
* :mod:`repro.baselines` -- from-scratch implementations of every index
  the paper compares against (B+-tree, ART, Hist-Tree, PGM-index,
  RadixSpline, ALEX, FITing-tree, binary search).
* :mod:`repro.data` -- synthetic stand-ins for the four SOSD datasets
  plus classic statistical distributions.
* :mod:`repro.workload` -- the paper's lower-bound lookup workload and
  a runner measuring time, operation counts, and checksums.
* :mod:`repro.cost` -- an analytic latency model turning operation
  counts into nanosecond estimates that reproduce the *shape* of the
  paper's timing figures.
* :mod:`repro.bench` -- one experiment driver per figure (3-14).

Quickstart::

    import numpy as np
    from repro import RMI, data

    keys = data.books(n=100_000)
    index = RMI(keys, layer_sizes=[1024], model_types=("ls", "lr"))
    pos = index.lookup(int(keys[1234]))
    assert pos == 1234
"""

from . import core, data
from .core import RMI, build_rmi_layers

__version__ = "1.0.0"

__all__ = ["core", "data", "RMI", "build_rmi_layers", "__version__"]
