"""Common interface of all evaluated indexes (Table 5 of the paper).

Every index -- learned or traditional -- answers *lower-bound queries*
over a sorted in-memory array (Section 4.4): given a key, return the
position of the smallest element greater than or equal to it.

Two-phase contract, matching the paper's Figure 13 decomposition of a
lookup into *evaluation* (model evaluation or tree traversal) and
*search* (error correction / scanning a data page):

* :meth:`OrderedIndex.search_bounds` performs the evaluation phase and
  returns a :class:`SearchBounds`: the interval of the sorted array the
  key must be in, plus a position hint where available.
* :meth:`OrderedIndex.lower_bound` completes the lookup with binary
  search inside those bounds (the paper: "During a lookup, each index
  yields a search range ... We use binary search to find keys in that
  search range", Section 8.1).

Implementations additionally report their memory footprint
(:meth:`size_in_bytes`) excluding the data array itself, and structural
statistics for reports.

Batch execution
---------------
Serving-scale traffic arrives in batches, and fair wall-clock
comparisons (SOSD; Marcus et al., "Benchmarking Learned Indexes",
VLDB 2020) require every competitor to run through the same batched
execution path.  :meth:`OrderedIndex.lookup_batch` is that path: a
NumPy-vectorized lower-bound lookup over a whole query array, answered
natively by every in-repo index.  The base-class implementation is a
correct scalar fallback (one :meth:`lower_bound` per query), so
third-party subclasses only implementing the scalar contract still
work everywhere the runner and benchmarks drive the batch path.
:meth:`range_query_batch` vectorizes :meth:`range_query` on top of it.

Snapshots
---------
Building an index is pure CPU work over an immutable key array, so a
built structure is a cacheable artifact (SOSD and *Benchmarking Learned
Indexes* both persist built indexes between runs).
:meth:`OrderedIndex.snapshot_state` captures the built structure --
everything except the key array itself -- as a dict of NumPy arrays,
and :meth:`OrderedIndex.restore_state` reattaches it to the keys
without rebuilding.  The default implementation serializes the
instance ``__dict__`` into a single byte array, which every in-repo
baseline supports; subclasses with derived, non-serializable state
override :meth:`_after_restore` (e.g. ALEX's identity-keyed leaf
ranks), and :class:`~repro.baselines.rmi_adapter.RMIAsIndex` overrides
the pair entirely to reuse :mod:`repro.core.serialize`'s array layout.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.search import binary_search

__all__ = ["SearchBounds", "OrderedIndex", "UnsupportedDataError"]


class UnsupportedDataError(ValueError):
    """Raised when an index cannot represent a dataset.

    Mirrors the paper's observation that "both Hist-Tree and ART did
    not work on wiki" (Section 8.1): tries keyed by value cannot hold
    duplicate keys while answering positional lower-bound queries.
    """


@dataclass(frozen=True)
class SearchBounds:
    """Result of an index's evaluation phase.

    ``lo``/``hi`` delimit the inclusive candidate interval in the
    sorted array; ``hint`` is the index's position estimate inside the
    interval (equal to ``lo`` when the index has no notion of an
    estimate).  ``evaluation_steps`` counts the structural steps taken
    (model evaluations or nodes visited), feeding Figure 13.
    """

    lo: int
    hi: int
    hint: int
    evaluation_steps: int = 1

    @property
    def width(self) -> int:
        return max(self.hi - self.lo + 1, 0)


class OrderedIndex:
    """Abstract base class of all baseline indexes."""

    #: Short name used in figures/tables, e.g. ``"b-tree"``.
    name: str = "?"

    def __init__(self, keys: np.ndarray) -> None:
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if len(keys) == 0:
            raise ValueError(f"cannot build {type(self).__name__} on no keys")
        if np.any(keys[1:] < keys[:-1]):
            raise ValueError("keys must be sorted in non-decreasing order")
        self.keys = keys
        self.n = len(keys)

    # -- evaluation phase ------------------------------------------------

    def search_bounds(self, key: int) -> SearchBounds:
        """Narrow the candidate interval for ``key`` (evaluation phase)."""
        raise NotImplementedError

    # -- full lookup -----------------------------------------------------

    def lower_bound(self, key: int) -> int:
        """Position of the smallest indexed key ``>= key``.

        Completes :meth:`search_bounds` with binary search, then repairs
        the rare interval-escape cases (absent keys, duplicate runs) so
        the result always equals ``np.searchsorted(keys, key, "left")``.
        """
        b = self.search_bounds(int(key))
        lo = max(b.lo, 0)
        hi = min(b.hi, self.n - 1)
        result = binary_search(self.keys, key, lo, hi)
        pos = result.position
        if pos == lo and lo > 0 and self.keys[lo - 1] >= key:
            pos = binary_search(self.keys, key, 0, lo - 1).position
        elif pos == hi + 1 and hi + 1 < self.n:
            pos = binary_search(self.keys, key, hi + 1, self.n - 1).position
        return pos

    def range_query(self, low: int, high: int) -> tuple[int, int]:
        """Keys in ``[low, high)`` as ``(start position, count)``.

        The database operation indexes exist for: a lower-bound lookup
        for each boundary, the scan between them coming from the data
        array itself.
        """
        if high < low:
            raise ValueError("range_query requires low <= high")
        start = self.lower_bound(low)
        end = self.lower_bound(high)
        return start, end - start

    # -- batch execution -------------------------------------------------

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`lower_bound` over a query array.

        Returns an ``int64`` position per query, identical to calling
        :meth:`lower_bound` on each -- the conformance suite asserts
        batch/scalar agreement for every index.  This default is the
        correct scalar fallback; every in-repo index overrides it with
        a genuinely vectorized path.
        """
        return np.fromiter(
            (self.lower_bound(int(q)) for q in np.asarray(queries)),
            dtype=np.int64,
            count=len(queries),
        )

    def lower_bound_batch(self, queries: np.ndarray) -> np.ndarray:
        """Alias of :meth:`lookup_batch` (the historical name)."""
        return self.lookup_batch(queries)

    def range_query_batch(
        self, lows: np.ndarray, highs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`range_query`: ``(start positions, counts)``.

        Two batched lower-bound lookups, one per boundary -- the same
        decomposition as the scalar method, amortized across queries.
        """
        lows = np.asarray(lows, dtype=np.uint64)
        highs = np.asarray(highs, dtype=np.uint64)
        if len(lows) != len(highs):
            raise ValueError("range_query_batch needs equal-length bounds")
        if np.any(highs < lows):
            raise ValueError("range_query_batch requires low <= high")
        starts = self.lookup_batch(lows)
        ends = self.lookup_batch(highs)
        return starts, ends - starts

    # -- compiled kernels ------------------------------------------------

    def pack(self):
        """Flatten the built structure for the compiled kernel backends.

        Returns a packed structure (``PackedPLA``/``PackedTree``/...,
        anything carrying a ``packed_kind`` dispatch tag) or ``None``
        when this index has no kernel-compatible flat form -- the
        staged NumPy batch path is then used unchanged (the same soft
        contract as ``pack_rmi``).  The base class packs nothing.
        """
        return None

    def _packed(self):
        """Cached :meth:`pack` result (``None`` cached too).

        The cache lives in the instance ``__dict__`` under
        ``_packed_cache`` and is excluded from snapshots; mutating
        subclasses must invalidate it themselves (none of the packable
        in-repo baselines mutate after build).
        """
        if "_packed_cache" not in self.__dict__:
            self.__dict__["_packed_cache"] = self.pack()
        return self.__dict__["_packed_cache"]

    def _kernel_state(self):
        """The ``(backend, packed)`` pair when the fused path applies.

        ``None`` unless the resolved backend is compiled *and* this
        index packs: the NumPy backend's packed kernels replay the
        staged arithmetic without being faster, so the staged path
        (whose intermediate arrays feed no one) stays canonical there.
        """
        from ..kernels import get_backend

        backend = get_backend(getattr(self, "kernels", None))
        if not backend.compiled:
            return None
        packed = self._packed()
        if packed is None:
            return None
        return backend, packed

    def serve_batch(
        self,
        point_queries: np.ndarray,
        range_lows: np.ndarray,
        range_highs: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        """One serving-layer execution unit: point + range queries.

        The async server (:mod:`repro.serve`) coalesces concurrent
        requests into a single call of this method per micro-batch, so
        an index pays one dispatch for the whole batch.  Returns
        ``(positions, range_starts, range_counts)``; either query array
        may be empty.  The default composes :meth:`lookup_batch` and
        :meth:`range_query_batch` -- or, when a compiled backend is
        active and the index packs (:meth:`_kernel_state`), fuses all
        three lower-bound passes into one kernel invocation.
        """
        state = self._kernel_state()
        if state is not None:
            backend, packed = state
            return backend.serve(
                packed, self.keys,
                np.ascontiguousarray(point_queries, dtype=np.uint64),
                np.ascontiguousarray(range_lows, dtype=np.uint64),
                np.ascontiguousarray(range_highs, dtype=np.uint64),
            )
        if len(point_queries):
            positions = self.lookup_batch(
                np.asarray(point_queries, dtype=np.uint64)
            )
        else:
            positions = np.empty(0, dtype=np.int64)
        if len(range_lows):
            starts, counts = self.range_query_batch(
                np.asarray(range_lows, dtype=np.uint64),
                np.asarray(range_highs, dtype=np.uint64),
            )
        else:
            starts = np.empty(0, dtype=np.int64)
            counts = np.empty(0, dtype=np.int64)
        return positions, starts, counts

    def warm_kernels(self) -> None:
        """Compile/load the batch-path kernels off the serving hot path.

        Every batch lookup completes through the kernel-backend
        dispatcher (``core/search.batch_lower_bound_window``), so a JIT
        backend would otherwise pay first-call compilation inside a
        live request's deadline.  ``IndexServer`` calls this at start
        and after every hot swap.  The default warms the active backend
        and runs a one-element ``serve_batch`` probe through this
        index's own batch path -- which, under a compiled backend, also
        builds and caches this index's packed representation
        (:meth:`pack` via :meth:`_packed`), so the first real request
        never pays the packing cost.  Idempotent and cheap when warm.
        """
        from ..kernels import get_backend

        get_backend().warmup()
        probe = self.keys[:1]
        self.serve_batch(probe, probe, probe)

    # -- snapshots -------------------------------------------------------

    def snapshot_state(self) -> "dict[str, np.ndarray]":
        """The built structure as a dict of arrays (keys excluded).

        The payload must round-trip through ``np.savez`` /
        ``np.load(allow_pickle=False)``; the default serializes the
        instance ``__dict__`` (minus ``keys``/``n``, which the restore
        side re-derives from the key array) into one ``uint8`` blob.
        Raises ``TypeError`` when some attribute cannot be serialized
        -- such indexes are simply rebuilt instead of cached.
        """
        state = {k: v for k, v in self.__dict__.items()
                 if k not in ("keys", "n", "_packed_cache")}
        blob = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        return {"pickled_state": np.frombuffer(blob, dtype=np.uint8)}

    @classmethod
    def restore_state(
        cls, keys: np.ndarray, state: "dict[str, np.ndarray]"
    ) -> "OrderedIndex":
        """Reattach a :meth:`snapshot_state` payload to ``keys``.

        Skips the subclass constructor (and therefore the build) but
        runs the base-class key validation, then :meth:`_after_restore`
        for state that cannot cross a serialization boundary.
        """
        obj = cls.__new__(cls)
        OrderedIndex.__init__(obj, keys)
        blob = np.asarray(state["pickled_state"], dtype=np.uint8)
        restored = pickle.loads(blob.tobytes())
        # Packed kernels cache is derived state; re-pack lazily against
        # the restored structure instead of trusting a stale snapshot.
        restored.pop("_packed_cache", None)
        obj.__dict__.update(restored)
        obj._after_restore()
        return obj

    def _after_restore(self) -> None:
        """Hook: rebuild derived state after :meth:`restore_state`."""

    # -- accounting ------------------------------------------------------

    def size_in_bytes(self) -> int:
        """Index memory footprint, excluding the sorted data array."""
        raise NotImplementedError

    def stats(self) -> dict[str, Any]:
        """Structural statistics (heights, node/segment counts, ...)."""
        return {"name": self.name, "n": self.n, "bytes": self.size_in_bytes()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} over {self.n} keys, {self.size_in_bytes()} B>"
