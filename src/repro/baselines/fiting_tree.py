"""FITing-tree (Galakatos et al., SIGMOD 2019 [15]).

The paper *could not* evaluate FITing-tree -- "at the time of writing,
an open-source implementation of FITing-tree was not available which
prevented us from including it in our experiments" (Section 3.1).  We
implement it anyway as an extension, following the paper's own
description:

1. the dataset is divided into variable-sized segments by a greedy
   single-pass algorithm such that each segment's linear approximation
   (through its first and last key) satisfies a user-defined error
   bound;
2. segments are indexed by bulk loading their first keys into a
   B-tree -- "FITing-tree can be considered as a sparse B-tree with
   variable-sized pages";
3. a lookup traverses the B-tree to the segment, interpolates a
   position, and searches within the error bound around it.

We reuse the shrinking-cone PLA (shared with PGM-index; the greedy
algorithm of the original FITing-tree paper is the same family) and the
bulk-loaded B+-tree substrate.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.search import batch_lower_bound_window
from .btree import BulkLoadedBPlusTree
from .interfaces import OrderedIndex, SearchBounds
from .pgm import build_pla_segments

__all__ = ["FITingTree"]


class FITingTree(OrderedIndex):
    """FITing-tree: greedy ε-PLA segments under a B+-tree directory."""

    name = "fiting-tree"

    def __init__(self, keys: np.ndarray, error: int = 64, fanout: int = 64):
        super().__init__(keys)
        if error < 1:
            raise ValueError("error must be >= 1")
        self.error = error
        self.fanout = fanout

        unique_keys, first_pos = np.unique(self.keys, return_index=True)
        segments = build_pla_segments(
            unique_keys, first_pos.astype(np.float64), error
        )
        self._first_keys = np.asarray(
            [s.first_key for s in segments], dtype=np.uint64
        )
        self._slopes = np.asarray([s.slope for s in segments], dtype=np.float64)
        self._first_values = np.asarray(
            [s.first_value for s in segments], dtype=np.float64
        )
        self._tree = BulkLoadedBPlusTree(
            self._first_keys,
            np.arange(len(segments), dtype=np.int64),
            fanout=fanout,
        )

    @property
    def num_segments(self) -> int:
        return len(self._first_keys)

    def search_bounds(self, key: int) -> SearchBounds:
        key = int(key)
        _, segment, steps = self._tree.lookup_le(key)
        if segment < 0:
            # Query precedes every segment.
            return SearchBounds(lo=0, hi=0, hint=0, evaluation_steps=steps)
        estimate = self._first_values[segment] + self._slopes[segment] * (
            float(key) - float(self._first_keys[segment])
        )
        center = int(np.clip(estimate, 0, self.n - 1))
        lo = max(center - self.error, 0)
        hi = min(center + self.error, self.n - 1)
        return SearchBounds(lo=lo, hi=hi, hint=center, evaluation_steps=steps + 1)

    def pack(self):
        """Flatten the segment table for the compiled kernel backends.

        The B+-tree directory only accelerates scalar descent; the
        batch path's predecessor search runs over the flat segment
        table, which is exactly the packed single-level form.
        """
        from ..kernels import PLA_SEGMENT, pack_pla_levels

        return pack_pla_levels(
            self.name, PLA_SEGMENT,
            [(self._first_keys, self._slopes, self._first_values)],
            eps=self.error, n=self.n,
        )

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized lookup: route all queries to their segment with
        one predecessor ``searchsorted`` over the segment table (the
        directory the B+-tree indexes), interpolate every estimate,
        and finish with a window-restricted batch binary search --
        fused in machine code when a compiled kernel backend is
        active."""
        state = self._kernel_state()
        if state is not None:
            backend, packed = state
            return backend.lookup(
                packed, self.keys,
                np.ascontiguousarray(queries, dtype=np.uint64),
            )
        q = np.asarray(queries, dtype=np.uint64)
        seg = np.searchsorted(self._first_keys, q, side="right") - 1
        before = seg < 0  # query precedes every segment
        seg = np.clip(seg, 0, len(self._first_keys) - 1)
        estimate = self._first_values[seg] + self._slopes[seg] * (
            q.astype(np.float64) - self._first_keys[seg].astype(np.float64)
        )
        center = np.clip(np.nan_to_num(estimate), 0, self.n - 1).astype(np.int64)
        lo = np.maximum(center - self.error, 0)
        hi = np.minimum(center + self.error, self.n - 1)
        lo[before] = 0
        hi[before] = 0
        return batch_lower_bound_window(self.keys, q, lo, hi)

    def size_in_bytes(self) -> int:
        """Segment table (24 B per segment) plus the B+-tree directory."""
        return self.num_segments * 24 + self._tree.size_in_bytes()

    def stats(self) -> dict[str, Any]:
        base = super().stats()
        base.update(
            segments=self.num_segments,
            error=self.error,
            tree_height=self._tree.height,
        )
        return base
