"""Adapter presenting an RMI through the common index interface.

Lets the comparison experiments (Figures 12-14) treat the RMI exactly
like every baseline: the evaluation phase yields a
:class:`~repro.baselines.interfaces.SearchBounds` (the error-bound
interval around the prediction) and the shared binary-search completion
performs the error correction -- matching the paper's Section 8 setup
where "we use binary search to find keys in that search range" for all
indexes.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

from ..core.builder import RMIConfig
from ..core.rmi import RMI
from .interfaces import OrderedIndex, SearchBounds

__all__ = ["RMIAsIndex"]


class RMIAsIndex(OrderedIndex):
    """The paper's fixed comparison RMI (LS→LR, LAbs) as an OrderedIndex."""

    name = "rmi"

    def __init__(self, keys: np.ndarray, layer2_size: int = 1024,
                 config: RMIConfig | None = None):
        super().__init__(keys)
        cfg = (config or RMIConfig()).with_layer2_size(layer2_size)
        self.config = cfg
        self.rmi: RMI = cfg.build(self.keys)

    def search_bounds(self, key: int) -> SearchBounds:
        model_id, pred = self.rmi.predict(int(key))
        lo, hi = self.rmi.bounds.interval(pred, model_id)
        return SearchBounds(
            lo=max(lo, 0),
            hi=min(hi, self.n - 1),
            hint=pred,
            evaluation_steps=len(self.rmi.layer_sizes),
        )

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        return self.rmi.lookup_batch(np.asarray(queries, dtype=np.uint64))

    def serve_batch(
        self,
        point_queries: np.ndarray,
        range_lows: np.ndarray,
        range_highs: np.ndarray,
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
        # Delegate to the RMI's fused path: on a compiled kernel
        # backend the whole micro-batch (points + both range
        # boundaries) runs in a single kernel call.
        return self.rmi.serve_batch(point_queries, range_lows, range_highs)

    def warm_kernels(self) -> None:
        self.rmi.warm_kernels()

    def size_in_bytes(self) -> int:
        return self.rmi.size_in_bytes()

    def snapshot_state(self) -> "dict[str, np.ndarray]":
        # Reuse core/serialize.py's array layout for the trained RMI
        # (keys excluded -- restore reattaches them); only the small
        # frozen config rides along as a byte blob.
        from ..core.serialize import rmi_payload

        state = rmi_payload(self.rmi, include_keys=False)
        state["config_pickle"] = np.frombuffer(
            pickle.dumps(self.config, protocol=pickle.HIGHEST_PROTOCOL),
            dtype=np.uint8,
        )
        return state

    @classmethod
    def restore_state(
        cls, keys: np.ndarray, state: "dict[str, np.ndarray]"
    ) -> "RMIAsIndex":
        from ..core.serialize import rmi_from_payload

        obj = cls.__new__(cls)
        OrderedIndex.__init__(obj, keys)
        blob = np.asarray(state["config_pickle"], dtype=np.uint8)
        obj.config = pickle.loads(blob.tobytes())
        obj.rmi = rmi_from_payload(state, keys=obj.keys)
        # getattr: snapshots written before the kernels field existed
        # unpickle to configs without it.
        obj.rmi.kernels = getattr(obj.config, "kernels", None)
        return obj

    def stats(self) -> dict[str, Any]:
        base = super().stats()
        base.update(config=self.config.describe())
        return base
