"""ALEX (Ding et al., SIGMOD 2020 [12]) -- an updatable adaptive
learned index.

Structure: internal nodes are linear models routing a key to one of
``fanout`` children; leaves are *gapped arrays* holding the indexed
(key, payload) pairs at model-predicted slots with gaps left for
inserts, searched with exponential search from the model's prediction.
Unlike RMI, the tree's depth is adaptive: nodes split where the data is
dense (the original uses a full cost model; we split wherever a subtree
exceeds the target leaf size, a simplification recorded in DESIGN.md
that preserves the adaptive-depth behaviour the paper discusses in its
build-time analysis, Section 8.2).

Like the paper's setup, index size is varied through *sparsity*: only
every k-th key of the data array is inserted, and a lookup yields the
gap between the surrounding sampled keys as the search range
(Section 4.5: "ALEX does not provide any parameters itself, so we vary
its size by adjusting the number of keys that are inserted").

ALEX "not only learns the distribution of the data but actually stores
the key/position pairs in data nodes" (Section 8.2) -- so unlike RMI,
its :meth:`size_in_bytes` includes the gapped data slots, which is why
ALEX is large and its build time grows steeply with the key count.

Inserts are supported (:meth:`ALEXIndex.insert_key`): the new key is
placed at its model-predicted slot, shifting toward the nearest gap;
a full leaf is expanded and retrained, preserving search correctness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.models import LinearRegression
from ..core.search import batch_lower_bound_window
from .interfaces import OrderedIndex, SearchBounds

__all__ = ["ALEXIndex", "GappedLeaf"]

_EMPTY = np.uint64(0xFFFFFFFFFFFFFFFF)  # sentinel for empty slots


class GappedLeaf:
    """A gapped array data node with a linear routing model.

    Keys live at model-predicted slots; empty slots carry the sentinel
    and are skipped by exponential search.  ``density`` controls the
    initial fill factor (ALEX's default is ~0.7).
    """

    def __init__(self, keys: np.ndarray, payloads: np.ndarray,
                 density: float = 0.7):
        if not 0.1 < density <= 1.0:
            raise ValueError("density must be in (0.1, 1.0]")
        self.density = density
        self.num_keys = len(keys)
        capacity = max(int(np.ceil(self.num_keys / density)), 1)
        self.slots = np.full(capacity, _EMPTY, dtype=np.uint64)
        self.payloads = np.full(capacity, -1, dtype=np.int64)
        self.model = LinearRegression.fit(
            keys, np.arange(len(keys), dtype=np.float64) / density
        )
        self._place_all(keys, payloads)

    def _place_all(self, keys: np.ndarray, payloads: np.ndarray) -> None:
        """Model-based placement preserving key order across slots.

        Slots must be strictly increasing (exponential search relies on
        ordered occupied slots).  Forward pass pushes each key right of
        its predecessor; backward cap pulls overflowing keys back so the
        last key fits -- both passes keep slots as close to the model's
        prediction as the ordering constraint allows.
        """
        m = len(keys)
        if m == 0:
            return
        capacity = len(self.slots)
        predicted = np.clip(
            self.model.predict_batch(keys).astype(np.int64), 0, capacity - 1
        )
        ranks = np.arange(m, dtype=np.int64)
        slots = np.maximum.accumulate(predicted - ranks) + ranks
        slots = np.minimum(slots, capacity - m + ranks)
        self.slots[slots] = keys
        self.payloads[slots] = payloads

    def _occupied(self) -> np.ndarray:
        return self.slots != _EMPTY

    def keys_in_order(self) -> np.ndarray:
        """The stored keys in ascending order (gaps removed)."""
        return self.slots[self._occupied()]

    def payloads_in_order(self) -> np.ndarray:
        return self.payloads[self._occupied()]

    def lower_bound_entry(self, key: int) -> tuple[int, int, int]:
        """Smallest stored key >= ``key``.

        Returns ``(stored_key, payload, steps)``; ``stored_key == -1``
        signals that every stored key is smaller.  Exponential search
        from the model prediction, skipping gaps, as in ALEX.
        """
        capacity = len(self.slots)
        pos = int(np.clip(self.model.predict(key), 0, capacity - 1))
        steps = 1
        occupied = self._occupied()
        order = np.flatnonzero(occupied)
        if len(order) == 0:
            return -1, -1, steps
        # Rank of the predicted slot among occupied slots, then gallop
        # over the *occupied* sequence (gap-skipping exponential search).
        rank = int(np.searchsorted(order, pos))
        rank = min(rank, len(order) - 1)
        stored = self.slots[order]
        if stored[rank] < key:
            step = 1
            while rank + step < len(order) and stored[rank + step] < key:
                step *= 2
                steps += 1
            hi = min(rank + step, len(order) - 1)
            idx = int(np.searchsorted(stored[rank:hi + 1], key)) + rank
            steps += max(int(np.ceil(np.log2(hi - rank + 2))), 1)
            if idx >= len(order):
                return -1, -1, steps
        else:
            step = 1
            while rank - step >= 0 and stored[rank - step] >= key:
                step *= 2
                steps += 1
            lo = max(rank - step, 0)
            idx = int(np.searchsorted(stored[lo:rank + 1], key)) + lo
            steps += max(int(np.ceil(np.log2(rank - lo + 2))), 1)
        return int(stored[idx]), int(self.payloads[order[idx]]), steps

    def insert(self, key: int, payload: int) -> bool:
        """Insert preserving slot order, shifting toward the nearest
        gap; returns False when the leaf is full and must expand.

        Existing keys are upserted in place (ALEX is a key->payload
        map).
        """
        occupied = np.flatnonzero(self._occupied())
        stored = self.slots[occupied]
        rank = int(np.searchsorted(stored, key))
        if rank < len(stored) and int(stored[rank]) == key:
            self.payloads[occupied[rank]] = payload  # upsert
            return True
        if len(occupied) == len(self.slots):
            return False
        gaps = np.flatnonzero(self.slots == _EMPTY)
        if rank == len(stored):
            # New maximum: append into the first gap right of the last
            # occupied slot, or shift the tail left when none exists.
            last = int(occupied[-1]) if len(occupied) else -1
            right_gaps = gaps[gaps > last]
            if len(right_gaps):
                g = int(right_gaps[0])
                self.slots[g] = key
                self.payloads[g] = payload
            else:
                g = int(gaps[-1])  # rightmost gap (left of `last`)
                self.slots[g:last] = self.slots[g + 1 : last + 1]
                self.payloads[g:last] = self.payloads[g + 1 : last + 1]
                self.slots[last] = key
                self.payloads[last] = payload
            self.num_keys += 1
            return True
        # The new key must precede stored[rank] at slot `target`.
        target = int(occupied[rank])
        right_gaps = gaps[gaps > target]
        left_gaps = gaps[gaps < target]
        if len(right_gaps) and (
            not len(left_gaps)
            or right_gaps[0] - target <= target - left_gaps[-1]
        ):
            g = int(right_gaps[0])
            self.slots[target + 1 : g + 1] = self.slots[target:g]
            self.payloads[target + 1 : g + 1] = self.payloads[target:g]
            self.slots[target] = key
            self.payloads[target] = payload
        else:
            g = int(left_gaps[-1])
            self.slots[g : target - 1] = self.slots[g + 1 : target]
            self.payloads[g : target - 1] = self.payloads[g + 1 : target]
            self.slots[target - 1] = key
            self.payloads[target - 1] = payload
        self.num_keys += 1
        return True

    def expand(self) -> None:
        """Double capacity and retrain the routing model (ALEX's node
        expansion)."""
        keys = self.keys_in_order()
        payloads = self.payloads_in_order()
        capacity = max(len(self.slots) * 2, 2)
        self.slots = np.full(capacity, _EMPTY, dtype=np.uint64)
        self.payloads = np.full(capacity, -1, dtype=np.int64)
        self.model = LinearRegression.fit(
            keys, np.arange(len(keys), dtype=np.float64) * (capacity / max(len(keys), 1))
        )
        self._place_all(keys, payloads)

    def size_in_bytes(self) -> int:
        """Gapped slots store key + payload (16 B each) plus the model."""
        return len(self.slots) * 16 + self.model.size_in_bytes()


@dataclass
class _InnerNode:
    """Linear model routing to ``len(children)`` children."""

    model: LinearRegression
    children: list[Any]

    def route(self, key: int) -> int:
        idx = int(self.model.predict(key))
        return min(max(idx, 0), len(self.children) - 1)

    def size_in_bytes(self) -> int:
        return len(self.children) * 8 + self.model.size_in_bytes()


class ALEXIndex(OrderedIndex):
    """ALEX baseline of Table 5 (bulk-loaded, insert-capable)."""

    name = "alex"

    def __init__(self, keys: np.ndarray, sparsity: int = 1,
                 max_leaf_keys: int = 256, fanout: int = 16,
                 density: float = 0.7, split_error_bits: float | None = 4.0,
                 min_leaf_keys: int = 32):
        super().__init__(keys)
        if sparsity < 1:
            raise ValueError("sparsity must be >= 1")
        if max_leaf_keys < 2:
            raise ValueError("max_leaf_keys must be >= 2")
        self.sparsity = sparsity
        self.max_leaf_keys = max_leaf_keys
        self.min_leaf_keys = min(min_leaf_keys, max_leaf_keys)
        self.fanout = fanout
        self.density = density
        #: Cost-model split knob: a subtree becomes an inner node when
        #: its keys would make a leaf whose expected exponential-search
        #: gallop exceeds this many doublings (i.e. expected error
        #: above ``2**split_error_bits`` slots).  ``None`` disables the
        #: cost model and splits purely on ``max_leaf_keys``, the
        #: pre-cost-model behaviour kept for ablations.
        self.split_error_bits = split_error_bits
        positions = np.arange(0, self.n, sparsity, dtype=np.int64)
        sampled = self.keys[positions]
        # ALEX keys must be unique (it is a key->payload map); keep the
        # first occurrence, which preserves lower-bound payload semantics.
        sampled, uniq_idx = np.unique(sampled, return_index=True)
        positions = positions[uniq_idx]
        self.num_inner = 0
        self.num_leaves = 0
        self.height = 0
        self._last_pos = int(positions[-1])
        self.root = self._bulk_load(sampled, positions.astype(np.int64), 1)
        self._leaves_chain = self._collect_leaves(self.root)
        self._leaf_rank = {id(l): i for i, l in enumerate(self._leaves_chain)}
        # Smallest key per leaf, for exact insert routing (the inner
        # models route lookups approximately; inserting into the wrong
        # leaf would break the global key order).
        self._leaf_min_keys = np.asarray(
            [int(l.keys_in_order()[0]) for l in self._leaves_chain],
            dtype=np.uint64,
        )
        # Flattened (key, payload) directory over all leaves, for the
        # batch path; rebuilt lazily after inserts.
        self._dir_keys: np.ndarray | None = None
        self._dir_payloads: np.ndarray | None = None

    def _should_be_leaf(self, keys: np.ndarray) -> bool:
        """ALEX's split decision: stop when a leaf is cheap enough.

        The original uses a cost model of expected exponential-search
        iterations (and shift costs for inserts); we implement the
        lookup half: fit the would-be leaf's linear model and split
        when the expected gallop from its mean error exceeds
        ``split_error_bits`` doublings.  The hard ``max_leaf_keys`` cap
        and the ``min_leaf_keys`` floor bound the recursion.
        """
        if len(keys) <= self.min_leaf_keys:
            return True
        if len(keys) > self.max_leaf_keys:
            return False
        if self.split_error_bits is None:
            return True
        targets = np.arange(len(keys), dtype=np.float64)
        model = LinearRegression.fit(keys, targets)
        mean_err = float(np.mean(np.abs(model.predict_batch(keys) - targets)))
        return np.log2(mean_err + 1.0) <= self.split_error_bits

    def _bulk_load(self, keys: np.ndarray, payloads: np.ndarray,
                   level: int) -> Any:
        self.height = max(self.height, level)
        if self._should_be_leaf(keys):
            self.num_leaves += 1
            return GappedLeaf(keys, payloads, density=self.density)
        model = LinearRegression.fit(
            keys, np.arange(len(keys), dtype=np.float64) * (self.fanout / len(keys))
        )
        routes = np.clip(
            model.predict_batch(keys).astype(np.int64), 0, self.fanout - 1
        )
        # Routing must be monotone for contiguous children; LR on sorted
        # targets is monotone, but guard against flat models.
        routes = np.maximum.accumulate(routes)
        if routes[0] == routes[-1]:
            # The model cannot separate these keys (degenerate cluster):
            # force a leaf rather than recurse forever.
            self.num_leaves += 1
            return GappedLeaf(keys, payloads, density=self.density)
        children = []
        for child in range(self.fanout):
            mask = routes == child
            if not mask.any():
                # Empty child: tiny leaf holding nothing is replaced by
                # the nearest non-empty sibling at route time; represent
                # as a shared empty marker via a 0-key leaf sentinel.
                children.append(None)
                continue
            children.append(self._bulk_load(keys[mask], payloads[mask], level + 1))
        # Replace empty children by their left (or right) neighbour so
        # routing never dead-ends.
        last = None
        for i, c in enumerate(children):
            if c is None:
                children[i] = last
            else:
                last = children[i]
        first = next(c for c in children if c is not None)
        children = [first if c is None else c for c in children]
        self.num_inner += 1
        return _InnerNode(model=model, children=children)

    def _collect_leaves(self, node: Any) -> list[GappedLeaf]:
        if isinstance(node, GappedLeaf):
            return [node]
        leaves = []
        seen = set()
        for child in node.children:
            if id(child) in seen:
                continue
            seen.add(id(child))
            leaves.extend(self._collect_leaves(child))
        return leaves

    def _after_restore(self) -> None:
        # ``_leaf_rank`` maps leaves by object identity; the ids in a
        # snapshotted dict belong to the builder process's objects, so
        # re-derive it from the restored leaf chain (whose identities
        # the tree shares -- serialization preserves aliasing).
        self._leaf_rank = {
            id(leaf): i for i, leaf in enumerate(self._leaves_chain)
        }

    def _find_leaf(self, key: int) -> tuple[GappedLeaf, int, int]:
        """Descend to the leaf for ``key``; returns (leaf, index, steps)."""
        node = self.root
        steps = 0
        while isinstance(node, _InnerNode):
            node = node.children[node.route(key)]
            steps += 1
        return node, self._leaf_rank[id(node)], steps

    def search_bounds(self, key: int) -> SearchBounds:
        key = int(key)
        leaf, leaf_idx, steps = self._find_leaf(key)
        stored_key, payload, search_steps = leaf.lower_bound_entry(key)
        steps += search_steps
        while stored_key < 0 and leaf_idx + 1 < len(self._leaves_chain):
            # Every key in this leaf is smaller; move to the next leaf.
            leaf_idx += 1
            leaf = self._leaves_chain[leaf_idx]
            stored_key, payload, s = leaf.lower_bound_entry(key)
            steps += s
        if stored_key < 0:
            # Every sampled key is smaller: the answer lies in the tail
            # gap after the last sampled key.
            lo = self._last_pos
            return SearchBounds(lo=lo, hi=self.n - 1, hint=self.n - 1,
                                evaluation_steps=steps)
        hi = payload
        lo = max(hi - (self.sparsity - 1), 0)
        return SearchBounds(lo=lo, hi=hi, hint=hi, evaluation_steps=steps)

    def insert_key(self, key: int, payload: int = -1) -> None:
        """Insert a new key (payloads default to -1 = "not in the data
        array"); full leaves expand and retrain, as in ALEX."""
        key = int(key)
        idx = int(
            np.searchsorted(self._leaf_min_keys, np.uint64(key), side="right")
        ) - 1
        if idx < 0:
            idx = 0
            self._leaf_min_keys[0] = key  # new global minimum
        leaf = self._leaves_chain[idx]
        if not leaf.insert(key, int(payload)):
            leaf.expand()
            inserted = leaf.insert(key, int(payload))
            assert inserted, "expanded leaf must accept the insert"
        self._dir_keys = None  # invalidate the batch directory

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized lookup over a flattened view of the gapped leaves.

        The leaves chain enumerates all stored ``(key, payload)`` pairs
        in sorted order; the batch path gathers them once (cached until
        the next insert) and amortizes the tree descent plus in-leaf
        exponential search into one ``searchsorted`` over that view --
        per-query results identical to :meth:`search_bounds` +
        :meth:`lower_bound`, as the conformance suite asserts.
        """
        if self._dir_keys is None:
            self._dir_keys = np.concatenate(
                [l.keys_in_order() for l in self._leaves_chain]
            )
            self._dir_payloads = np.concatenate(
                [l.payloads_in_order() for l in self._leaves_chain]
            )
        q = np.asarray(queries, dtype=np.uint64)
        idx = np.searchsorted(self._dir_keys, q, side="left")
        found = idx < len(self._dir_keys)
        safe = np.clip(idx, 0, len(self._dir_keys) - 1)
        payload = self._dir_payloads[safe]
        # Default: every stored key is smaller -> tail gap.
        lo = np.full(len(q), self._last_pos, dtype=np.int64)
        hi = np.full(len(q), self.n - 1, dtype=np.int64)
        hit = found & (payload >= 0)
        hi[hit] = payload[hit]
        lo[hit] = np.maximum(payload[hit] - (self.sparsity - 1), 0)
        # Inserted keys carry payload -1 ("not in the data array"); the
        # scalar path recovers via its escape repair over the whole
        # array, so give those queries the full window directly.
        ext = found & (payload < 0)
        lo[ext] = 0
        hi[ext] = self.n - 1
        return batch_lower_bound_window(self.keys, q, lo, hi)

    def size_in_bytes(self) -> int:
        inner = self._inner_bytes(self.root)
        leaves = sum(l.size_in_bytes() for l in self._leaves_chain)
        return inner + leaves

    def _inner_bytes(self, node: Any) -> int:
        if isinstance(node, GappedLeaf):
            return 0
        total = node.size_in_bytes()
        seen = set()
        for child in node.children:
            if id(child) in seen:
                continue
            seen.add(id(child))
            total += self._inner_bytes(child)
        return total

    def stats(self) -> dict[str, Any]:
        base = super().stats()
        base.update(
            height=self.height,
            inner_nodes=self.num_inner,
            leaves=self.num_leaves,
            sparsity=self.sparsity,
        )
        return base
