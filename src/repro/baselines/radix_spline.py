"""RadixSpline (Kipf et al. [19]).

RadixSpline approximates the CDF with an error-bounded *linear spline*
fitted in a single pass (GreedySplineCorridor), then indexes the spline
points with a *radix table*: an array mapping every ``radix_bits``-bit
key prefix to the first spline point sharing that prefix.  A lookup

1. consults the radix table to narrow the range of candidate spline
   points,
2. binary-searches the two spline points surrounding the key,
3. interpolates linearly between them to get a position estimate, and
4. binary-searches the data within ±``max_error`` of the estimate
   (Section 3.1 of the paper under reproduction).

Like the original, the spline is built over unique keys with
first-occurrence positions, so duplicates (wiki) are supported.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.search import batch_lower_bound_window
from .interfaces import OrderedIndex, SearchBounds

__all__ = ["RadixSpline", "greedy_spline_corridor"]


def greedy_spline_corridor(
    keys: np.ndarray, values: np.ndarray, max_error: int
) -> tuple[np.ndarray, np.ndarray]:
    """Single-pass greedy spline fit with error corridor ``max_error``.

    Returns the spline knots ``(xs, ys)``.  Interpolating between
    consecutive knots reproduces every input ``(key, value)`` within
    ``max_error``.  This is the GreedySplineCorridor algorithm: keep a
    corridor of feasible slopes from the last knot; emit a new knot when
    a point leaves the corridor.
    """
    n = len(keys)
    if n == 0:
        return np.array([], dtype=np.uint64), np.array([], dtype=np.float64)
    xs = [int(keys[0])]
    ys = [float(values[0])]
    if n == 1:
        return np.asarray(xs, dtype=np.uint64), np.asarray(ys, dtype=np.float64)

    base_x = float(keys[0])
    base_y = float(values[0])
    # Corridor of feasible chord slopes from the current base knot.  A
    # point is accepted when the *chord* from the base to it lies within
    # the corridor (then the chord is within max_error of every point
    # accepted so far); accepting it narrows the corridor by the point's
    # own error window.  On violation, the previously accepted point --
    # whose chord was verified -- becomes the next knot.
    # Distinct uint64 keys can collide to one float64 (ulp > 1 above
    # 2**53, e.g. keys near 2**64): a vertical chord bounds no slope,
    # so collided points are accepted with the corridor left open.  The
    # +-max_error guarantee cannot hold at collided x anyway; that is
    # safe because every consumer finishes through the escape-repairing
    # window search, which is correct for any window.
    prev_x, prev_y = float(keys[1]), float(values[1])
    prev_key = int(keys[1])
    dx = prev_x - base_x
    if dx > 0.0:
        slope_lo = (prev_y - max_error - base_y) / dx
        slope_hi = (prev_y + max_error - base_y) / dx
    else:
        slope_lo, slope_hi = float("-inf"), float("inf")

    for i in range(2, n):
        x = float(keys[i])
        y = float(values[i])
        dx = x - base_x
        # dx == 0 implies the corridor is open (the corridor is always
        # rebuilt from a point at or after the current x), so any
        # finite chord stands in for the unbounded vertical one.
        chord = (y - base_y) / dx if dx > 0.0 else 0.0
        if chord < slope_lo or chord > slope_hi:
            # Previous point becomes a knot; restart the corridor there.
            # Knots keep the exact integer key -- the rounded float
            # overflows uint64 at the very top of the key space.
            xs.append(prev_key)
            ys.append(prev_y)
            base_x, base_y = prev_x, prev_y
            dx = x - base_x
            if dx > 0.0:
                slope_lo = (y - max_error - base_y) / dx
                slope_hi = (y + max_error - base_y) / dx
            else:
                slope_lo, slope_hi = float("-inf"), float("inf")
        elif dx > 0.0:
            slope_lo = max(slope_lo, (y - max_error - base_y) / dx)
            slope_hi = min(slope_hi, (y + max_error - base_y) / dx)
        prev_x, prev_y = x, y
        prev_key = int(keys[i])
    xs.append(int(keys[-1]))
    ys.append(float(values[-1]))
    return np.asarray(xs, dtype=np.uint64), np.asarray(ys, dtype=np.float64)


class RadixSpline(OrderedIndex):
    """Single-pass learned index of Table 5.

    ``max_error`` bounds the data-level prediction error;
    ``radix_bits`` sizes the radix table (both paper hyperparameters).
    """

    name = "radix-spline"

    def __init__(self, keys: np.ndarray, max_error: int = 32, radix_bits: int = 18):
        super().__init__(keys)
        if max_error < 1:
            raise ValueError("max_error must be >= 1")
        if not 1 <= radix_bits <= 32:
            raise ValueError("radix_bits must be in [1, 32]")
        self.max_error = max_error
        self.radix_bits = radix_bits

        unique_keys, first_pos = np.unique(self.keys, return_index=True)
        self._spline_x, self._spline_y = greedy_spline_corridor(
            unique_keys, first_pos.astype(np.float64), max_error
        )

        # Radix table over the key prefix *after* the common prefix of
        # the key space (mirrors the reference implementation).
        lo = int(unique_keys[0])
        hi = int(unique_keys[-1])
        diff = lo ^ hi
        self._prefix_bits = 64 - diff.bit_length() if diff else 64
        self._shift = max(64 - self._prefix_bits - radix_bits, 0)
        table_slots = (self._radix_of(hi)) + 2
        prefixes = self._radix_of_batch(self._spline_x)
        # table[p] = first spline point whose prefix is >= p.
        self._table = np.searchsorted(
            prefixes, np.arange(table_slots, dtype=np.uint64), side="left"
        ).astype(np.int64)

    def _radix_of(self, key: int) -> int:
        mask = (1 << 64) - 1
        return ((key << self._prefix_bits) & mask) >> (
            self._prefix_bits + self._shift
        )

    def _radix_of_batch(self, keys: np.ndarray) -> np.ndarray:
        shifted = np.left_shift(keys, np.uint64(self._prefix_bits))
        return np.right_shift(shifted, np.uint64(self._prefix_bits + self._shift))

    def search_bounds(self, key: int) -> SearchBounds:
        key = int(key)
        if key <= int(self._spline_x[0]):
            return SearchBounds(lo=0, hi=0, hint=0, evaluation_steps=1)
        if key >= int(self._spline_x[-1]):
            center = int(self._spline_y[-1])
            lo = max(center - self.max_error, 0)
            return SearchBounds(
                lo=lo, hi=self.n - 1, hint=center, evaluation_steps=1
            )
        # (1) radix table narrows the spline-point range ...
        prefix = self._radix_of(key)
        begin = int(self._table[prefix])
        end = int(self._table[min(prefix + 1, len(self._table) - 1)])
        begin = max(begin - 1, 0)  # left knot may share the prior prefix
        end = min(max(end + 1, begin + 1), len(self._spline_x))
        # (2) ... binary search for the surrounding spline points ...
        idx = int(
            np.searchsorted(self._spline_x[begin:end], key, side="right")
        ) + begin
        left = max(idx - 1, 0)
        right = min(idx, len(self._spline_x) - 1)
        steps = 1 + max(int(np.ceil(np.log2(max(end - begin, 1) + 1))), 1)
        # (3) ... linear interpolation between them ...
        x0, x1 = float(self._spline_x[left]), float(self._spline_x[right])
        y0, y1 = float(self._spline_y[left]), float(self._spline_y[right])
        if x1 == x0:
            estimate = y0
        else:
            estimate = y0 + (y1 - y0) * (key - x0) / (x1 - x0)
        center = int(np.clip(estimate, 0, self.n - 1))
        # (4) ... ±max_error window for the data search.
        lo = max(center - self.max_error, 0)
        hi = min(center + self.max_error, self.n - 1)
        return SearchBounds(lo=lo, hi=hi, hint=center, evaluation_steps=steps)

    def pack(self):
        """Flatten the spline knots for the compiled kernel backends.

        The batch path searches the knot array directly (the radix
        table is a scalar-path accelerator), so the packed form is the
        knot ``(x, y)`` pairs with an all-zero slopes array.
        """
        from ..kernels import PLA_SPLINE, pack_pla_levels

        return pack_pla_levels(
            self.name, PLA_SPLINE,
            [(self._spline_x, np.zeros(len(self._spline_x)),
              self._spline_y)],
            eps=self.max_error, n=self.n,
        )

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized lookup: interpolate all estimates, then perform a
        window-restricted batch binary search (same per-query work as
        the scalar path, amortized across the batch; fused in machine
        code when a compiled kernel backend is active)."""
        state = self._kernel_state()
        if state is not None:
            backend, packed = state
            return backend.lookup(
                packed, self.keys,
                np.ascontiguousarray(queries, dtype=np.uint64),
            )
        q = np.asarray(queries, dtype=np.uint64)
        idx = np.searchsorted(self._spline_x, q, side="right")
        left = np.clip(idx - 1, 0, len(self._spline_x) - 1)
        right = np.clip(idx, 0, len(self._spline_x) - 1)
        x0 = self._spline_x[left].astype(np.float64)
        x1 = self._spline_x[right].astype(np.float64)
        y0 = self._spline_y[left]
        y1 = self._spline_y[right]
        dx = x1 - x0
        frac = np.divide(q.astype(np.float64) - x0, dx,
                         out=np.zeros(len(q)), where=dx > 0)
        center = np.clip(y0 + (y1 - y0) * frac, 0, self.n - 1).astype(np.int64)
        lo = np.maximum(center - self.max_error, 0)
        hi = np.minimum(center + self.max_error, self.n - 1)
        return batch_lower_bound_window(self.keys, q, lo, hi)

    def size_in_bytes(self) -> int:
        """Spline knots (16 B each) plus the radix table (8 B slots)."""
        return len(self._spline_x) * 16 + len(self._table) * 8

    def stats(self) -> dict[str, Any]:
        base = super().stats()
        base.update(
            spline_points=len(self._spline_x),
            radix_bits=self.radix_bits,
            table_slots=len(self._table),
            max_error=self.max_error,
        )
        return base
