"""Adaptive Radix Tree (Leis et al., ICDE 2013 [21]).

A trie over the 8 big-endian bytes of each 64-bit key with the four
adaptive node types of the original paper (Node4, Node16, Node48,
Node256) and pessimistic path compression (compressed prefixes stored
in the inner node).  The paper uses SOSD's ART variant with lower-bound
support and varies its size via sparsity, like the B-tree
(Section 4.5).

Bulk loading exploits that the input is sorted: children at each depth
are found by grouping on the discriminating byte column, giving O(n)
construction without any insert machinery (this index, like the paper's
evaluation, is read-only).

Duplicate keys are rejected with
:class:`~repro.baselines.interfaces.UnsupportedDataError` -- a trie
keyed by value cannot distinguish duplicates, which is how we reproduce
"Hist-Tree and ART did not work on wiki" (Section 8.1).

Lower-bound queries descend the trie; when the query byte diverges the
search either takes the *minimum leaf* of the next-larger sibling or
backtracks one level up, exactly like SOSD's implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.search import batch_lower_bound_window
from .interfaces import OrderedIndex, SearchBounds, UnsupportedDataError

__all__ = ["ARTIndex"]

# Size accounting (bytes) per node kind, following the ART paper's
# layouts: 16-byte header (prefix data + counts) plus key and pointer
# arrays of the respective capacities.
_LEAF_BYTES = 16  # full key + value
_NODE4_BYTES = 16 + 4 + 4 * 8
_NODE16_BYTES = 16 + 16 + 16 * 8
_NODE48_BYTES = 16 + 256 + 48 * 8
_NODE256_BYTES = 16 + 256 * 8


@dataclass
class _Leaf:
    key: int
    value: int


@dataclass
class _Inner:
    """Inner node; ``kind`` in {4, 16, 48, 256} for size accounting.

    ``child_bytes`` holds the discriminating byte of each child in
    ascending order, so ordered iteration (needed by lower-bound) is a
    scan of this array regardless of the physical node layout being
    modeled.
    """

    prefix: bytes  # compressed path (bytes between parent and this node)
    child_bytes: np.ndarray
    children: list[Any] = field(default_factory=list)
    kind: int = 4


def _node_kind(fanout: int) -> int:
    if fanout <= 4:
        return 4
    if fanout <= 16:
        return 16
    if fanout <= 48:
        return 48
    return 256


class ARTIndex(OrderedIndex):
    """ART baseline of Table 5, built on every ``sparsity``-th key."""

    name = "art"

    def __init__(self, keys: np.ndarray, sparsity: int = 1):
        super().__init__(keys)
        if sparsity < 1:
            raise ValueError("sparsity must be >= 1")
        if len(keys) > 1 and bool(np.any(keys[1:] == keys[:-1])):
            raise UnsupportedDataError(
                "ART cannot represent duplicate keys; dataset has duplicates"
            )
        self.sparsity = sparsity
        self._positions = np.arange(0, self.n, sparsity, dtype=np.int64)
        sampled = self.keys[self._positions]
        self._sampled_keys = sampled
        # Big-endian byte matrix: column d is the d-th most significant
        # byte, so lexicographic byte order equals numeric order.
        self._bytes = (
            np.frombuffer(sampled.astype(">u8").tobytes(), dtype=np.uint8)
            .reshape(len(sampled), 8)
        )
        self._node_counts = {4: 0, 16: 0, 48: 0, 256: 0}
        self.num_leaves = len(sampled)
        self.height = 0
        self.root = self._build(0, len(sampled), 0, 1)

    # ------------------------------------------------------------------
    # Bulk loading
    # ------------------------------------------------------------------

    def _build(self, start: int, end: int, depth: int, level: int) -> Any:
        self.height = max(self.height, level)
        if end - start == 1:
            rank = start
            return _Leaf(
                key=int(self.keys[self._positions[rank]]),
                value=int(self._positions[rank]),
            )
        # Path compression: consume byte columns on which all keys in
        # [start, end) agree (sorted input: compare first vs last row).
        prefix_start = depth
        while depth < 8 and self._bytes[start, depth] == self._bytes[end - 1, depth]:
            depth += 1
        if depth >= 8:  # pragma: no cover - duplicates are rejected above
            raise UnsupportedDataError("duplicate key reached trie bottom")
        prefix = bytes(self._bytes[start, prefix_start:depth])
        column = self._bytes[start:end, depth]
        child_bytes, first_idx = np.unique(column, return_index=True)
        boundaries = np.concatenate((first_idx, [end - start])) + start
        children = [
            self._build(int(boundaries[i]), int(boundaries[i + 1]), depth + 1,
                        level + 1)
            for i in range(len(child_bytes))
        ]
        kind = _node_kind(len(child_bytes))
        self._node_counts[kind] += 1
        return _Inner(
            prefix=prefix,
            child_bytes=child_bytes.astype(np.int16),
            children=children,
            kind=kind,
        )

    # ------------------------------------------------------------------
    # Lower-bound search
    # ------------------------------------------------------------------

    @staticmethod
    def _minimum(node: Any) -> _Leaf:
        """Leftmost leaf beneath ``node``."""
        while isinstance(node, _Inner):
            node = node.children[0]
        return node

    def _lower_bound_leaf(self, node: Any, key_bytes: bytes, depth: int,
                          steps: list[int]) -> _Leaf | None:
        """Smallest leaf with key >= query beneath ``node``, or None."""
        steps[0] += 1
        if isinstance(node, _Leaf):
            return node if node.key >= self._query_value else None
        # Compare the compressed prefix against the query bytes.
        p = node.prefix
        if p:
            segment = key_bytes[depth : depth + len(p)]
            if p > segment:
                return self._minimum(node)
            if p < segment:
                return None
            depth += len(p)
        b = key_bytes[depth]
        idx = int(np.searchsorted(node.child_bytes, b, side="left"))
        if idx < len(node.child_bytes) and int(node.child_bytes[idx]) == b:
            found = self._lower_bound_leaf(
                node.children[idx], key_bytes, depth + 1, steps
            )
            if found is not None:
                return found
            idx += 1
        if idx < len(node.children):
            return self._minimum(node.children[idx])
        return None

    def search_bounds(self, key: int) -> SearchBounds:
        key = int(key)
        self._query_value = key
        key_bytes = key.to_bytes(8, "big")
        steps = [0]
        leaf = self._lower_bound_leaf(self.root, key_bytes, 0, steps)
        if leaf is None:
            # Every indexed key is smaller; with sparsity the answer may
            # still be in the tail gap after the last sampled key.
            lo = int(self._positions[-1])
            return SearchBounds(
                lo=lo, hi=self.n - 1, hint=lo, evaluation_steps=steps[0]
            )
        pos = leaf.value
        # The found leaf is the first *sampled* key >= query; the true
        # lower bound lies in the gap since the previous sampled key.
        lo = max(pos - (self.sparsity - 1), 0)
        return SearchBounds(lo=lo, hi=pos, hint=pos, evaluation_steps=steps[0])

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized lookup over the bulk-loaded key sample.

        The trie's leaves enumerate the sampled keys in sorted order,
        so the batch path amortizes the byte-wise descent into a single
        ``searchsorted`` over that directory (batch result identical to
        the per-query trie walk; the conformance suite cross-checks).
        Covers the bulk-loaded positional contract only -- keys added
        via :meth:`insert` extend the trie for :meth:`lower_bound_key`,
        not the positional array this answers over.
        """
        q = np.asarray(queries, dtype=np.uint64)
        idx = np.searchsorted(self._sampled_keys, q, side="left")
        found = idx < len(self._sampled_keys)
        safe = np.clip(idx, 0, len(self._positions) - 1)
        pos = self._positions[safe]
        hi = np.where(found, pos, self.n - 1)
        lo = np.where(
            found,
            np.maximum(pos - (self.sparsity - 1), 0),
            int(self._positions[-1]),
        )
        return batch_lower_bound_window(self.keys, q, lo, hi)

    # ------------------------------------------------------------------
    # Inserts (the adaptive part of the Adaptive Radix Tree)
    # ------------------------------------------------------------------

    def insert(self, key: int, value: int = -1) -> None:
        """Insert ``key`` with ``value`` (upsert for present keys).

        Implements the original paper's insert paths: leaf split with a
        new Node4, path-compression split on prefix mismatch, and
        adaptive node growth 4 -> 16 -> 48 -> 256 when a node's child
        table fills its current capacity class.

        Note: inserted keys extend the *trie*; the positional
        :meth:`search_bounds` contract remains tied to the original
        array, so inserts are for set-membership / successor use via
        :meth:`lower_bound_key` (mirrors the dynamic-PGM API).
        """
        key = int(key)
        key_bytes = key.to_bytes(8, "big")
        self.root = self._insert(self.root, key_bytes, key, int(value), 0)

    def _insert(self, node: Any, kb: bytes, key: int, value: int,
                depth: int) -> Any:
        if isinstance(node, _Leaf):
            if node.key == key:
                node.value = value  # upsert
                return node
            ex = node.key.to_bytes(8, "big")
            p = depth
            while ex[p] == kb[p]:
                p += 1
            new_leaf = _Leaf(key=key, value=value)
            self.num_leaves += 1
            pair = sorted(((kb[p], new_leaf), (ex[p], node)))
            self._node_counts[4] += 1
            return _Inner(
                prefix=kb[depth:p],
                child_bytes=np.asarray([pair[0][0], pair[1][0]],
                                       dtype=np.int16),
                children=[pair[0][1], pair[1][1]],
                kind=4,
            )
        # Inner node: check the compressed prefix byte by byte.
        prefix = node.prefix
        limit = min(len(prefix), len(kb) - depth)
        i = 0
        while i < limit and prefix[i] == kb[depth + i]:
            i += 1
        if i < len(prefix):
            # Prefix mismatch: split the compressed path.
            new_leaf = _Leaf(key=key, value=value)
            self.num_leaves += 1
            old_branch = _Inner(
                prefix=prefix[i + 1 :],
                child_bytes=node.child_bytes,
                children=node.children,
                kind=node.kind,
            )
            pair = sorted(((kb[depth + i], new_leaf),
                           (prefix[i], old_branch)))
            self._node_counts[4] += 1
            return _Inner(
                prefix=prefix[:i],
                child_bytes=np.asarray([pair[0][0], pair[1][0]],
                                       dtype=np.int16),
                children=[pair[0][1], pair[1][1]],
                kind=4,
            )
        depth += len(prefix)
        b = kb[depth]
        idx = int(np.searchsorted(node.child_bytes, b, side="left"))
        if idx < len(node.child_bytes) and int(node.child_bytes[idx]) == b:
            node.children[idx] = self._insert(
                node.children[idx], kb, key, value, depth + 1
            )
            return node
        # New child byte: insert in order, growing the node kind when
        # its capacity class is exceeded.
        node.child_bytes = np.insert(node.child_bytes, idx, b)
        node.children.insert(idx, _Leaf(key=key, value=value))
        self.num_leaves += 1
        new_kind = _node_kind(len(node.children))
        if new_kind != node.kind:
            self._node_counts[node.kind] -= 1
            self._node_counts[new_kind] += 1
            node.kind = new_kind
        return node

    def lower_bound_key(self, key: int) -> tuple[int, int] | None:
        """Smallest stored key >= ``key`` with its value, or None.

        Successor search over the *trie contents* (including inserted
        keys), independent of the positional array contract.
        """
        self._query_value = int(key)
        key_bytes = int(key).to_bytes(8, "big")
        steps = [0]
        leaf = self._lower_bound_leaf(self.root, key_bytes, 0, steps)
        if leaf is None:
            return None
        return leaf.key, leaf.value

    def size_in_bytes(self) -> int:
        inner = sum(
            {4: _NODE4_BYTES, 16: _NODE16_BYTES, 48: _NODE48_BYTES,
             256: _NODE256_BYTES}[kind] * count
            for kind, count in self._node_counts.items()
        )
        return inner + self.num_leaves * _LEAF_BYTES

    def stats(self) -> dict[str, Any]:
        base = super().stats()
        base.update(
            height=self.height,
            leaves=self.num_leaves,
            node_counts=dict(self._node_counts),
            sparsity=self.sparsity,
        )
        return base
