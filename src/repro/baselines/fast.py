"""FAST: architecture-sensitive tree search (Kim et al., SIGMOD 2010 [17]).

Not part of the paper's Table 5, but one of the baselines SOSD [18]
measured RMIs against ("RMI and RadixSpline were able to outperform
traditional indexes including ART, FAST, and B-trees", Section 3.2), so
we provide it as an extension baseline.

FAST stores a complete binary search tree in an implicit breadth-first
(Eytzinger) layout, blocked for SIMD lanes, cache lines, and pages;
traversal is pure arithmetic on array indexes with no pointers.  We
implement the layout and the pointer-free traversal; the blocking shows
up in the evaluation-step accounting (one dependent access per
cache-line block of levels rather than per level), which is what the
analytic cost model consumes.

Like the paper treats B-tree/ART, index size is varied via *sparsity*.
Duplicate keys are fine (the tree stores sampled keys; equal keys
simply compare equal).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..core.search import batch_lower_bound_window
from .interfaces import OrderedIndex, SearchBounds

__all__ = ["FASTIndex"]

#: Levels per cache-line block: a 64-byte line holds 8 keys = 3 levels
#: of a binary tree (1 + 2 + 4 nodes), the blocking unit of FAST.
LEVELS_PER_LINE = 3

_SENTINEL = np.uint64(0xFFFFFFFFFFFFFFFF)


class FASTIndex(OrderedIndex):
    """Implicit breadth-first binary search tree over sampled keys."""

    name = "fast"

    def __init__(self, keys: np.ndarray, sparsity: int = 1):
        super().__init__(keys)
        if sparsity < 1:
            raise ValueError("sparsity must be >= 1")
        self.sparsity = sparsity
        positions = np.arange(0, self.n, sparsity, dtype=np.int64)
        sampled = self.keys[positions]

        # Pad to a complete tree with +inf sentinels so the implicit
        # index arithmetic never needs bounds checks on real hardware.
        self.num_sampled = len(sampled)
        self.height = max(int(np.ceil(np.log2(self.num_sampled + 1))), 1)
        size = (1 << self.height) - 1
        padded_keys = np.full(size, _SENTINEL, dtype=np.uint64)
        padded_vals = np.full(size, -1, dtype=np.int64)
        order = self._eytzinger_order(size)
        # In-order positions 0..size-1 map to sorted entries; sampled
        # entries occupy the first num_sampled in-order slots.
        in_order = np.argsort(order, kind="stable")
        take = in_order[:self.num_sampled]
        padded_keys[take] = sampled
        padded_vals[take] = positions
        self._tree_keys = padded_keys
        self._tree_vals = padded_vals
        self._positions = positions

    @staticmethod
    def _eytzinger_order(size: int) -> np.ndarray:
        """In-order rank of every breadth-first slot.

        ``order[bfs_index] = in_order_rank``; computed iteratively so
        building stays O(size).
        """
        order = np.empty(size, dtype=np.int64)
        rank = 0
        # Iterative in-order traversal of the implicit tree.
        stack: list[tuple[int, bool]] = [(0, False)]
        while stack:
            node, visited = stack.pop()
            if node >= size:
                continue
            if visited:
                order[node] = rank
                rank += 1
                stack.append((2 * node + 2, False))
            else:
                stack.append((node, True))
                stack.append((2 * node + 1, False))
        return order

    def search_bounds(self, key: int) -> SearchBounds:
        key = np.uint64(key)
        size = len(self._tree_keys)
        i = 0
        best = -1  # BFS slot of the smallest sampled key >= query
        depth = 0
        while i < size:
            depth += 1
            if self._tree_keys[i] >= key:
                best = i
                i = 2 * i + 1
            else:
                i = 2 * i + 2
        # One dependent access per cache-line block of levels (FAST's
        # SIMD/cache blocking), at least one.
        steps = max((depth + LEVELS_PER_LINE - 1) // LEVELS_PER_LINE, 1)
        if best < 0 or self._tree_keys[best] == _SENTINEL and \
                self._tree_vals[best] < 0:
            # Every sampled key is smaller: tail gap.
            lo = int(self._positions[-1])
            return SearchBounds(lo=lo, hi=self.n - 1, hint=lo,
                                evaluation_steps=steps)
        pos = int(self._tree_vals[best])
        lo = max(pos - (self.sparsity - 1), 0)
        return SearchBounds(lo=lo, hi=pos, hint=pos, evaluation_steps=steps)

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized traversal: all queries descend in lock-step."""
        q = np.asarray(queries, dtype=np.uint64)
        size = len(self._tree_keys)
        idx = np.zeros(len(q), dtype=np.int64)
        best = np.full(len(q), -1, dtype=np.int64)
        active = np.ones(len(q), dtype=bool)
        while active.any():
            node_keys = self._tree_keys[np.clip(idx, 0, size - 1)]
            ge = active & (node_keys >= q)
            best = np.where(ge, idx, best)
            idx = np.where(ge, 2 * idx + 1, 2 * idx + 2)
            active = active & (idx < size)
        found = best >= 0
        valid = found & (self._tree_vals[np.clip(best, 0, size - 1)] >= 0)
        pos = np.where(valid, self._tree_vals[np.clip(best, 0, size - 1)], 0)
        out = np.empty(len(q), dtype=np.int64)
        # Misses (query above all sampled keys): search the tail gap.
        tail = ~valid
        if tail.any():
            lo = int(self._positions[-1])
            out[tail] = lo + np.searchsorted(
                self.keys[lo:], q[tail], side="left"
            )
        if valid.any():
            hi = pos[valid]
            lo = np.maximum(hi - (self.sparsity - 1), 0)
            out[valid] = batch_lower_bound_window(self.keys, q[valid], lo, hi)
        return out

    def size_in_bytes(self) -> int:
        """16 bytes per (padded) tree slot, like the original's layout."""
        return len(self._tree_keys) * 16

    def stats(self) -> dict[str, Any]:
        base = super().stats()
        base.update(height=self.height, sampled=self.num_sampled,
                    padded_slots=len(self._tree_keys),
                    sparsity=self.sparsity)
        return base
