"""Dynamic PGM-index (Ferragina & Vinciguerra [14], Section 3.1).

The paper's Table 1 lists PGM-index as supporting updates; the static
variant used in the comparison (Section 4.5) does not.  This module
supplies the *dynamic* variant the PGM paper describes: the classic
logarithmic method (LSM-style) over static PGM runs.

Structure: a small unsorted insert buffer plus a sequence of *runs*,
each a sorted key array indexed by a static :class:`~repro.baselines.pgm.PGMIndex`.
Run ``i`` holds up to ``base_size * 2**i`` entries; newer entries live
in lower runs.  Deletions insert tombstones that shadow older inserts
and are purged when a merge reaches the oldest run.

Operations:

* ``insert(key)`` / ``delete(key)`` -- amortized O(log n) work through
  cascaded merges, exactly the dynamic-PGM recipe.
* ``lower_bound(key)`` -- smallest *live* key >= the query, resolved
  across runs with newest-wins semantics; each run is probed through
  its PGM (so lookups exercise the learned structure, not plain binary
  search).
* ``contains(key)`` -- membership with the same semantics.
* ``lower_bound_batch(queries)`` / ``contains_batch(queries)`` --
  vectorized variants answering a whole query array against a merged
  snapshot of the live keys (cached between updates), the batch
  execution path the workload runner drives.

This is a set-of-keys index (like the rest of the repository); payloads
would ride along the key arrays unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .pgm import PGMIndex

__all__ = ["DynamicPGMIndex"]

_INSERT = np.int8(1)
_TOMBSTONE = np.int8(0)


@dataclass
class _Run:
    """One sorted run: keys, operation flags, and a PGM over the keys."""

    keys: np.ndarray  # sorted uint64, unique within the run
    ops: np.ndarray  # int8: 1 = insert, 0 = tombstone
    pgm: PGMIndex | None  # None for single-key runs (PGM needs >= 1 key)

    @classmethod
    def build(cls, keys: np.ndarray, ops: np.ndarray, eps: int) -> "_Run":
        pgm = PGMIndex(keys, eps=eps) if len(keys) else None
        return cls(keys=keys, ops=ops, pgm=pgm)

    def lower_bound_pos(self, key: int) -> int:
        """Position of the smallest run key >= ``key`` (via the PGM)."""
        if self.pgm is None:
            return 0
        return self.pgm.lower_bound(key)

    def status_of(self, key: int) -> np.int8 | None:
        """Op flag of ``key`` in this run, or None when absent."""
        pos = self.lower_bound_pos(key)
        if pos < len(self.keys) and int(self.keys[pos]) == key:
            return self.ops[pos]
        return None


class DynamicPGMIndex:
    """Updatable PGM-index via the logarithmic method."""

    def __init__(self, keys: Iterable[int] = (), eps: int = 32,
                 base_size: int = 128):
        if eps < 1:
            raise ValueError("eps must be >= 1")
        if base_size < 2:
            raise ValueError("base_size must be >= 2")
        self.eps = eps
        self.base_size = base_size
        self._buffer_keys: list[int] = []
        self._buffer_ops: list[np.int8] = []
        #: Runs ordered newest (index 0) to oldest.
        self._runs: list[_Run] = []
        #: Merged sorted live-key snapshot for batch queries; rebuilt
        #: lazily after any update.
        self._snapshot: np.ndarray | None = None
        initial = np.unique(np.asarray(list(keys), dtype=np.uint64))
        if len(initial):
            self._runs.append(
                _Run.build(initial, np.full(len(initial), _INSERT), eps)
            )

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------

    def insert(self, key: int) -> None:
        """Insert ``key`` (idempotent for present keys)."""
        self._push(int(key), _INSERT)

    def delete(self, key: int) -> None:
        """Delete ``key`` (a no-op if absent, via tombstone shadowing)."""
        self._push(int(key), _TOMBSTONE)

    def _push(self, key: int, op: np.int8) -> None:
        self._snapshot = None  # any update invalidates the batch view
        # Same-key updates within the buffer: newest wins immediately.
        try:
            pos = self._buffer_keys.index(key)
            self._buffer_ops[pos] = op
        except ValueError:
            self._buffer_keys.append(key)
            self._buffer_ops.append(op)
        if len(self._buffer_keys) >= self.base_size:
            self._flush_buffer()

    def _flush_buffer(self) -> None:
        order = np.argsort(np.asarray(self._buffer_keys, dtype=np.uint64),
                           kind="stable")
        keys = np.asarray(self._buffer_keys, dtype=np.uint64)[order]
        ops = np.asarray(self._buffer_ops, dtype=np.int8)[order]
        self._buffer_keys.clear()
        self._buffer_ops.clear()
        self._merge_in(keys, ops)

    def _merge_in(self, keys: np.ndarray, ops: np.ndarray) -> None:
        """Cascade the new run through levels of doubling capacity.

        Level ``i`` holds at most ``base_size * 2**i`` entries.  The
        carried run merges with each occupied level on its way up until
        it fits an empty one; when no older data remains below, its
        tombstones are purged (nothing left to shadow).
        """
        empty = lambda: _Run.build(  # noqa: E731 - tiny local factory
            np.array([], dtype=np.uint64), np.array([], dtype=np.int8),
            self.eps,
        )
        level = 0
        while True:
            capacity = self.base_size * (2**level)
            if level >= len(self._runs):
                self._runs.append(empty())
            run = self._runs[level]
            if len(run.keys):
                # Merge: the carried run is newer than this level.
                keys, ops = self._merge_runs(keys, ops, run.keys, run.ops)
                self._runs[level] = empty()
            if all(len(r.keys) == 0 for r in self._runs[level + 1 :]):
                live = ops == _INSERT
                keys, ops = keys[live], ops[live]
            if len(keys) <= capacity:
                self._runs[level] = _Run.build(keys, ops, self.eps)
                return
            level += 1

    @staticmethod
    def _merge_runs(
        new_keys: np.ndarray, new_ops: np.ndarray,
        old_keys: np.ndarray, old_ops: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Merge two sorted runs; on duplicate keys the new run wins."""
        keys = np.concatenate([new_keys, old_keys])
        ops = np.concatenate([new_ops, old_ops])
        # Stable sort keeps new-run entries first among equal keys.
        order = np.argsort(keys, kind="stable")
        keys, ops = keys[order], ops[order]
        first = np.ones(len(keys), dtype=bool)
        first[1:] = keys[1:] != keys[:-1]
        return keys[first], ops[first]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _status(self, key: int) -> np.int8 | None:
        """Newest op recorded for ``key`` anywhere, or None."""
        try:
            pos = self._buffer_keys.index(key)
            return self._buffer_ops[pos]
        except ValueError:
            pass
        for run in self._runs:  # newest first
            status = run.status_of(key)
            if status is not None:
                return status
        return None

    def contains(self, key: int) -> bool:
        """Whether ``key`` is currently live in the set."""
        return self._status(int(key)) == _INSERT

    def lower_bound(self, key: int) -> int | None:
        """Smallest live key >= ``key``, or None when none exists."""
        key = int(key)
        candidates: list[int] = [
            k for k in self._buffer_keys if k >= key
        ]
        cursors = []
        for run in self._runs:
            pos = run.lower_bound_pos(key)
            if pos < len(run.keys):
                cursors.append([run, pos])
        while True:
            heads = [int(run.keys[pos]) for run, pos in cursors]
            pool = heads + [k for k in candidates]
            if not pool:
                return None
            smallest = min(pool)
            if self._status(smallest) == _INSERT:
                return smallest
            # Dead key: advance every cursor past it and drop it from
            # the buffer candidates.
            candidates = [k for k in candidates if k != smallest]
            next_cursors = []
            for run, pos in cursors:
                while pos < len(run.keys) and int(run.keys[pos]) <= smallest:
                    pos += 1
                if pos < len(run.keys):
                    next_cursors.append([run, pos])
            cursors = next_cursors

    def _live_keys(self) -> np.ndarray:
        """Sorted array of currently live keys (cached between updates).

        Newest-wins merge of the buffer and all runs: entries are
        concatenated newest-first, stably sorted by key, and only the
        first (newest) entry per key survives -- the vectorized
        generalization of :meth:`_merge_runs` across every level at
        once.  Tombstoned keys are then dropped.
        """
        if self._snapshot is None:
            keys = np.concatenate(
                [np.asarray(self._buffer_keys, dtype=np.uint64)]
                + [r.keys for r in self._runs]
            )
            ops = np.concatenate(
                [np.asarray(self._buffer_ops, dtype=np.int8)]
                + [r.ops for r in self._runs]
            )
            order = np.argsort(keys, kind="stable")
            keys, ops = keys[order], ops[order]
            first = np.ones(len(keys), dtype=bool)
            first[1:] = keys[1:] != keys[:-1]
            live = first & (ops == _INSERT)
            self._snapshot = keys[live]
        return self._snapshot

    def lower_bound_batch(
        self, queries: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`lower_bound`: ``(keys, found)`` arrays.

        ``keys[i]`` is the smallest live key >= ``queries[i]`` wherever
        ``found[i]`` is true (and 0 where false -- the scalar method's
        ``None``).  One ``searchsorted`` over the merged snapshot
        replaces the per-query multi-run cursor walk.
        """
        live = self._live_keys()
        q = np.asarray(queries, dtype=np.uint64)
        pos = np.searchsorted(live, q, side="left")
        found = pos < len(live)
        out = np.zeros(len(q), dtype=np.uint64)
        out[found] = live[pos[found]]
        return out, found

    def contains_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains` over the merged live snapshot."""
        live = self._live_keys()
        q = np.asarray(queries, dtype=np.uint64)
        pos = np.clip(np.searchsorted(live, q, side="left"), 0,
                      max(len(live) - 1, 0))
        if not len(live):
            return np.zeros(len(q), dtype=bool)
        return live[pos] == q

    def __len__(self) -> int:
        """Number of live keys (O(n): walks all runs)."""
        live: dict[int, bool] = {}
        for run in reversed(self._runs):  # oldest first; newer overwrite
            for k, op in zip(run.keys.tolist(), run.ops.tolist()):
                live[k] = op == 1
        for k, op in zip(self._buffer_keys, self._buffer_ops):
            live[k] = op == _INSERT
        return sum(live.values())

    def size_in_bytes(self) -> int:
        """PGM structures plus 9 bytes per stored run entry."""
        total = len(self._buffer_keys) * 9
        for run in self._runs:
            total += len(run.keys) * 9
            if run.pgm is not None:
                total += run.pgm.size_in_bytes()
        return total

    def stats(self) -> dict:
        return {
            "name": "dynamic-pgm",
            "runs": [len(r.keys) for r in self._runs],
            "buffer": len(self._buffer_keys),
            "bytes": self.size_in_bytes(),
        }
