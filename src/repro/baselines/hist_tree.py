"""Compact Hist-Tree (Crotty, CIDR 2021 [11]).

The Hist-Tree partitions the key range of each node into ``num_bins``
equal-width bins and stores the number of keys per bin; bins holding
more than ``max_error`` keys become child nodes.  A lookup descends the
bins of the query key, accumulating the counts of preceding bins into a
position offset, until it reaches a terminal bin -- whose at most
``max_error`` keys are then searched.  We implement the read-only
*compact* variant the paper uses ("an implementation of a compact
Hist-Tree that does not support updates in favor of lookup
performance", Section 4.5).

``num_bins`` must be a power of two: each level then consumes
``log2(num_bins)`` key bits and bin selection is a shift, which is what
makes the real implementation fast and what our cost accounting models.

Duplicate keys are rejected with
:class:`~repro.baselines.interfaces.UnsupportedDataError`: a run of
duplicates longer than ``max_error`` can never be split by range
bisection (the paper observes that "Hist-Tree and ART did not work on
wiki", the one dataset with duplicates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.search import batch_lower_bound_window
from .interfaces import OrderedIndex, SearchBounds, UnsupportedDataError

__all__ = ["HistTree"]


@dataclass
class _Node:
    """One Hist-Tree node: bin counts plus children for dense bins."""

    lo_key: int  # inclusive start of the covered key range (offset space)
    shift: int  # child bin width is 2**shift
    counts: np.ndarray  # keys per bin
    base: int  # array position of the first key in this node's range
    children: dict[int, "_Node"] = field(default_factory=dict)


class HistTree(OrderedIndex):
    """Compact Hist-Tree baseline of Table 5.

    ``num_bins`` sizes each node; ``max_error`` is the terminal-bin
    threshold -- both are the paper's tuning parameters for this index.
    """

    name = "hist-tree"

    def __init__(self, keys: np.ndarray, num_bins: int = 64, max_error: int = 32):
        super().__init__(keys)
        if num_bins < 2 or num_bins & (num_bins - 1):
            raise ValueError("num_bins must be a power of two >= 2")
        if max_error < 1:
            raise ValueError("max_error must be >= 1")
        if len(keys) > 1 and bool(np.any(keys[1:] == keys[:-1])):
            raise UnsupportedDataError(
                "Hist-Tree cannot split duplicate runs; dataset has duplicates"
            )
        self.num_bins = num_bins
        self.max_error = max_error
        self._bin_bits = int(np.log2(num_bins))
        self._min_key = int(self.keys[0])

        span = int(self.keys[-1]) - self._min_key + 1
        total_bits = max(span - 1, 1).bit_length()
        # Round up so the root consumes whole levels of bin_bits.
        total_bits = ((total_bits + self._bin_bits - 1) // self._bin_bits
                      ) * self._bin_bits
        self.num_nodes = 0
        self.height = 0
        self._offset_keys = (self.keys - np.uint64(self._min_key)).astype(np.uint64)
        self.root = self._build(0, total_bits - self._bin_bits, 0, self.n, 1)

    def _build(self, lo_key: int, shift: int, start: int, end: int,
               depth: int) -> _Node:
        """Recursively build the node covering keys [start, end)."""
        self.num_nodes += 1
        self.height = max(self.height, depth)
        width = 1 << shift
        # Bin edges can exceed the uint64 domain at the (rounded-up)
        # root level; clamp in Python-int space before converting.
        top = (1 << 64) - 1
        edges = np.fromiter(
            (min(lo_key + width * b, top) for b in range(1, self.num_bins)),
            dtype=np.uint64,
            count=self.num_bins - 1,
        )
        splits = start + np.searchsorted(
            self._offset_keys[start:end], edges, side="left"
        )
        boundaries = np.concatenate(([start], splits, [end])).astype(np.int64)
        counts = np.diff(boundaries)
        node = _Node(lo_key=lo_key, shift=shift, counts=counts, base=start)
        for b in range(self.num_bins):
            if counts[b] > self.max_error and shift > 0:
                node.children[b] = self._build(
                    lo_key + b * width,
                    shift - self._bin_bits,
                    int(boundaries[b]),
                    int(boundaries[b + 1]),
                    depth + 1,
                )
        return node

    def search_bounds(self, key: int) -> SearchBounds:
        key = int(key)
        if key < self._min_key:
            return SearchBounds(lo=0, hi=0, hint=0, evaluation_steps=1)
        offset_key = key - self._min_key
        node = self.root
        steps = 0
        while True:
            steps += 1
            bin_index = (offset_key - node.lo_key) >> node.shift
            if bin_index >= self.num_bins:
                # Query beyond the covered range: answer is at the end.
                return SearchBounds(
                    lo=self.n - 1, hi=self.n - 1, hint=self.n - 1,
                    evaluation_steps=steps,
                )
            child = node.children.get(bin_index)
            if child is None:
                lo = node.base + int(node.counts[:bin_index].sum())
                hi = lo + int(node.counts[bin_index])
                # Include one slot past the bin: the lower bound of a key
                # falling in an empty/exhausted bin is the next key.
                hi = min(hi, self.n - 1)
                return SearchBounds(
                    lo=min(lo, self.n - 1), hi=hi, hint=min(lo, self.n - 1),
                    evaluation_steps=steps,
                )
            node = child

    def pack(self):
        """Flatten the node graph breadth-first for the compiled
        backends; the per-query shift-descent then runs over parallel
        arrays with no Python objects or dict probes."""
        from ..kernels import pack_hist_nodes

        return pack_hist_nodes(
            self.name, self.root, self.num_bins, self._min_key, self.n
        )

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized lookup: grouped level-by-level bin descent.

        All queries routed to the same node are processed together --
        one vectorized shift picks their bins, one cumulative sum turns
        bin counts into position offsets -- so the per-query work
        matches the scalar descent while interpreter overhead is paid
        per *node visited*, not per query.  Terminal-bin windows then
        finish through the shared window-restricted batch search.
        """
        state = self._kernel_state()
        if state is not None:
            backend, packed = state
            return backend.lookup(
                packed, self.keys,
                np.ascontiguousarray(queries, dtype=np.uint64),
            )
        q = np.asarray(queries, dtype=np.uint64)
        lo = np.zeros(len(q), dtype=np.int64)
        hi = np.zeros(len(q), dtype=np.int64)
        above = q >= np.uint64(self._min_key)
        start = np.flatnonzero(above)
        # Queries below the key space keep the [0, 0] window.
        stack = [(self.root, start, q[start] - np.uint64(self._min_key))]
        while stack:
            node, idx, offs = stack.pop()
            # Bin selection stays in uint64: far-out-of-range queries
            # produce bin numbers beyond int64 at the root level.
            raw = (offs - np.uint64(node.lo_key)) >> np.uint64(node.shift)
            over = raw >= np.uint64(self.num_bins)
            if over.any():
                # Beyond the covered range: the answer is at the end.
                lo[idx[over]] = self.n - 1
                hi[idx[over]] = self.n - 1
                keep = ~over
                idx, offs, raw = idx[keep], offs[keep], raw[keep]
            bins = raw.astype(np.int64)
            if not len(idx):
                continue
            if node.children:
                routed = np.zeros(len(bins), dtype=bool)
                for b, child in node.children.items():
                    mask = bins == b
                    if mask.any():
                        routed |= mask
                        stack.append((child, idx[mask], offs[mask]))
                term = ~routed
                idx, bins = idx[term], bins[term]
            if not len(idx):
                continue
            offsets = np.concatenate(([0], np.cumsum(node.counts)))
            tlo = node.base + offsets[bins]
            hi[idx] = np.minimum(tlo + node.counts[bins], self.n - 1)
            lo[idx] = np.minimum(tlo, self.n - 1)
        return batch_lower_bound_window(self.keys, q, lo, hi)

    def size_in_bytes(self) -> int:
        """4 bytes per bin count plus 4 bytes per child slot (compact
        layout packs child offsets into the count array)."""
        return self.num_nodes * self.num_bins * 8

    def stats(self) -> dict[str, Any]:
        base = super().stats()
        base.update(
            num_bins=self.num_bins,
            max_error=self.max_error,
            nodes=self.num_nodes,
            height=self.height,
        )
        return base
