"""Compressed PGM-index (Ferragina & Vinciguerra [14]).

The PGM paper introduces a variant that compresses the segments; the
paper under reproduction mentions it alongside the dynamic variant
(Section 3.1).  We implement segment compression by quantizing the
bottom level's parameters -- slope and intercept to 32-bit floats --
which shrinks each segment from 24 to 16 bytes.

Quantization perturbs predictions, so the ε guarantee must be repaired:
after quantizing, the *actual* worst-case error of every key against
its quantized segment is measured and the search radius widened to
cover it.  The containment guarantee is therefore preserved exactly,
trading a slightly wider search window for a one-third smaller index --
the same trade the original makes.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .interfaces import SearchBounds
from .pgm import PGMIndex

__all__ = ["CompressedPGMIndex"]

#: Compressed accounting: 8-byte first key + float32 slope + float32
#: intercept per bottom segment.
COMPRESSED_SEGMENT_BYTES = 16
#: Upper levels stay uncompressed (they are tiny).
PLAIN_SEGMENT_BYTES = 24


class CompressedPGMIndex(PGMIndex):
    """PGM-index with float32-quantized bottom-level segments."""

    name = "compressed-pgm"

    def __init__(self, keys: np.ndarray, eps: int = 64, eps_internal: int = 4):
        super().__init__(keys, eps=eps, eps_internal=eps_internal)
        bottom = self.levels[0]
        # Quantize in the anchored form the predictor uses, so the
        # quantization error analysis below matches evaluation exactly.
        bottom.slopes = bottom.slopes.astype(np.float32).astype(np.float64)
        bottom.first_values = bottom.first_values.astype(np.float32).astype(
            np.float64
        )
        self._effective_eps = eps + self._measure_extra_error()

    def _measure_extra_error(self) -> int:
        """Worst-case |prediction - position| beyond the original ε."""
        unique_keys, first_pos = np.unique(self.keys, return_index=True)
        bottom = self.levels[0]
        seg = np.searchsorted(bottom.first_keys, unique_keys,
                              side="right") - 1
        seg = np.clip(seg, 0, len(bottom) - 1)
        preds = bottom.first_values[seg] + bottom.slopes[seg] * (
            unique_keys.astype(np.float64)
            - bottom.first_keys[seg].astype(np.float64)
        )
        err = np.abs(preds - first_pos.astype(np.float64))
        worst = float(err.max()) if len(err) else 0.0
        return max(int(np.ceil(worst)) - self.eps, 0)

    def search_bounds(self, key: int) -> SearchBounds:
        b = super().search_bounds(key)
        widen = self._effective_eps - self.eps
        if widen <= 0:
            return b
        return SearchBounds(
            lo=max(b.lo - widen, 0),
            hi=min(b.hi + widen, self.n - 1),
            hint=b.hint,
            evaluation_steps=b.evaluation_steps,
        )

    def pack(self):
        """Pack with the *effective* (quantization-repaired) ε.

        The instance levels already hold the quantized slopes and
        intercepts, so the only delta against ``PGMIndex.pack`` is the
        widened bottom window.
        """
        from ..kernels import PLA_DESCEND, pack_pla_levels

        return pack_pla_levels(
            self.name, PLA_DESCEND,
            [(lvl.first_keys, lvl.slopes, lvl.first_values)
             for lvl in self.levels],
            eps=self._effective_eps, n=self.n,
            eps_internal=self.eps_internal,
        )

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        # The vectorized PGM path uses self.eps for the bottom window;
        # temporarily widening keeps it correct without duplication.
        # (The fused kernel path inside super() packs _effective_eps
        # directly via the pack() override above.)
        original = self.eps
        try:
            self.eps = self._effective_eps
            return super().lookup_batch(queries)
        finally:
            self.eps = original

    def size_in_bytes(self) -> int:
        bottom = len(self.levels[0]) * COMPRESSED_SEGMENT_BYTES
        upper = sum(len(l) for l in self.levels[1:]) * PLAIN_SEGMENT_BYTES
        return bottom + upper

    def stats(self) -> dict[str, Any]:
        base = super().stats()
        base.update(
            name=self.name,
            effective_eps=self._effective_eps,
            compression_ratio=round(
                super().size_in_bytes() / max(self.size_in_bytes(), 1), 3
            ),
        )
        return base
