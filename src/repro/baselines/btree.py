"""Bulk-loaded B+-tree (Bayer & McCreight [10]).

The paper evaluates a B-tree (TLX's implementation) as the classic
general-purpose baseline and varies its size via *sparsity*: the index
is built on every k-th key only, turning it into a sparse index whose
candidate interval spans the gap between two indexed keys (Section 4.5).

Two classes:

* :class:`BulkLoadedBPlusTree` -- the reusable substrate: a node-based
  B+-tree bulk-loaded from sorted ``(key, value)`` pairs, answering
  *predecessor* queries (greatest indexed key <= query).  FITing-tree
  indexes its PLA segments with this class, exactly as described in the
  FITing-tree paper.
* :class:`BTreeIndex` -- the Table 5 baseline: a sparse B+-tree over the
  data array implementing the :class:`~repro.baselines.interfaces.OrderedIndex`
  contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.search import batch_lower_bound_window
from .interfaces import OrderedIndex, SearchBounds

__all__ = ["BulkLoadedBPlusTree", "BTreeIndex"]


@dataclass
class _Leaf:
    """Leaf node: parallel arrays of keys and user values."""

    keys: np.ndarray
    values: np.ndarray


@dataclass
class _Inner:
    """Internal node: ``separators[i]`` is the smallest key reachable
    through ``children[i + 1]``; queries < separators[0] descend into
    ``children[0]``."""

    separators: np.ndarray
    children: list[Any] = field(default_factory=list)


class BulkLoadedBPlusTree:
    """A B+-tree bulk-loaded from sorted keys, answering predecessor
    queries.

    ``fanout`` bounds both the number of leaf entries and the number of
    children per internal node.  Bulk loading packs nodes to capacity,
    which is what TLX's ``btree`` does for sorted input and gives the
    shallowest possible tree.
    """

    def __init__(self, keys: np.ndarray, values: np.ndarray, fanout: int = 64):
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        if len(keys) != len(values):
            raise ValueError("keys and values must have equal length")
        if len(keys) == 0:
            raise ValueError("cannot bulk-load an empty B+-tree")
        self.fanout = fanout
        self.num_entries = len(keys)
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        values = np.ascontiguousarray(values, dtype=np.int64)

        # Build the leaf level, then stack internal levels until a
        # single root remains.
        leaves: list[Any] = [
            _Leaf(keys[i : i + fanout], values[i : i + fanout])
            for i in range(0, len(keys), fanout)
        ]
        self.num_leaves = len(leaves)
        self.num_inner = 0
        self.height = 1
        level = leaves
        level_min_keys = [int(node.keys[0]) for node in level]
        while len(level) > 1:
            parents = []
            parent_min_keys = []
            for i in range(0, len(level), fanout):
                children = level[i : i + fanout]
                mins = level_min_keys[i : i + fanout]
                parents.append(
                    _Inner(
                        separators=np.asarray(mins[1:], dtype=np.uint64),
                        children=children,
                    )
                )
                parent_min_keys.append(mins[0])
            self.num_inner += len(parents)
            level = parents
            level_min_keys = parent_min_keys
            self.height += 1
        self.root = level[0]

    def lookup_le(self, key: int) -> tuple[int, int, int]:
        """Find the greatest indexed key ``<= key``.

        Returns ``(entry_index, value, nodes_visited)`` where
        ``entry_index`` is the rank of the found entry among all leaf
        entries, or ``-1`` when every indexed key exceeds ``key``.
        """
        node = self.root
        rank_base = 0
        steps = 0
        while isinstance(node, _Inner):
            child = int(np.searchsorted(node.separators, key, side="right"))
            for sibling in node.children[:child]:
                rank_base += self._subtree_entries(sibling)
            steps += self._node_accesses(len(node.separators) + 1)
            node = node.children[child]
        steps += self._node_accesses(len(node.keys))
        # Greatest leaf key <= query.
        idx = int(np.searchsorted(node.keys, key, side="right")) - 1
        if idx < 0:
            return -1, -1, steps
        return rank_base + idx, int(node.values[idx]), steps

    # ------------------------------------------------------------------
    # Inserts (classic B+-tree split propagation)
    # ------------------------------------------------------------------

    def insert(self, key: int, value: int) -> None:
        """Insert a ``(key, value)`` entry (upsert for present keys).

        Standard B+-tree insertion: the leaf absorbs the entry; an
        overfull leaf splits in the middle and propagates a separator
        upward, splitting inner nodes as needed; a root split grows the
        tree by one level.  Rank caches along the path are invalidated.
        """
        key = int(key)
        split = self._insert(self.root, key, int(value))
        if split is not None:
            sep, right = split
            self.root = _Inner(
                separators=np.asarray([sep], dtype=np.uint64),
                children=[self.root, right],
            )
            self.num_inner += 1
            self.height += 1

    def _insert(self, node: Any, key: int, value: int):
        """Recursive insert; returns ``(separator, new_right)`` on split."""
        node.__dict__.pop("_entry_count", None)  # rank cache invalidation
        if isinstance(node, _Leaf):
            idx = int(np.searchsorted(node.keys, key, side="left"))
            if idx < len(node.keys) and int(node.keys[idx]) == key:
                node.values[idx] = value  # upsert
                return None
            node.keys = np.insert(node.keys, idx, np.uint64(key))
            node.values = np.insert(node.values, idx, value)
            self.num_entries += 1
            if len(node.keys) <= self.fanout:
                return None
            mid = len(node.keys) // 2
            right = _Leaf(keys=node.keys[mid:].copy(),
                          values=node.values[mid:].copy())
            node.keys = node.keys[:mid].copy()
            node.values = node.values[:mid].copy()
            self.num_leaves += 1
            return int(right.keys[0]), right
        child = int(np.searchsorted(node.separators, key, side="right"))
        split = self._insert(node.children[child], key, value)
        if split is None:
            return None
        sep, right = split
        node.separators = np.insert(node.separators, child, np.uint64(sep))
        node.children.insert(child + 1, right)
        if len(node.children) <= self.fanout:
            return None
        mid = len(node.children) // 2
        push_up = int(node.separators[mid - 1])
        right_inner = _Inner(
            separators=node.separators[mid:].copy(),
            children=node.children[mid:],
        )
        node.separators = node.separators[: mid - 1].copy()
        node.children = node.children[:mid]
        self.num_inner += 1
        return push_up, right_inner

    @staticmethod
    def _node_accesses(entries: int) -> int:
        """Dependent memory accesses to search one node.

        A node of ``entries`` 8-byte keys spans ``entries/8`` cache
        lines; binary search inside it touches one line per halving
        above line granularity, plus the initial node access.  This is
        the work that makes a B-tree lookup cost comparable to plain
        binary search over the array (paper Section 8.1: the B-tree
        "was barely able to beat binary search").
        """
        lines = max(entries // 8, 1)
        return 1 + max(int(np.ceil(np.log2(lines))), 0)

    def _subtree_entries(self, node: Any) -> int:
        """Number of leaf entries beneath ``node`` (memoized)."""
        cache = getattr(node, "_entry_count", None)
        if cache is not None:
            return cache
        if isinstance(node, _Leaf):
            count = len(node.keys)
        else:
            count = sum(self._subtree_entries(c) for c in node.children)
        node._entry_count = count
        return count

    def size_in_bytes(self) -> int:
        """8 bytes per leaf key, value, separator, and child pointer."""
        leaf_bytes = self.num_entries * 16
        inner_bytes = 0
        stack = [self.root]
        while stack:
            node = stack.pop()
            if isinstance(node, _Inner):
                inner_bytes += len(node.separators) * 8 + len(node.children) * 8
                stack.extend(node.children)
        return leaf_bytes + inner_bytes


class BTreeIndex(OrderedIndex):
    """Sparse B+-tree baseline of Table 5.

    ``sparsity=k`` indexes every k-th key (k = 1 is a dense index).  The
    candidate interval returned by :meth:`search_bounds` spans from the
    greatest indexed key <= query to the next indexed key, i.e. at most
    ``k`` array slots -- the data page a database would scan.
    """

    name = "b-tree"

    def __init__(self, keys: np.ndarray, fanout: int = 64, sparsity: int = 1):
        super().__init__(keys)
        if sparsity < 1:
            raise ValueError("sparsity must be >= 1")
        self.sparsity = sparsity
        self.fanout = fanout
        positions = np.arange(0, self.n, sparsity, dtype=np.int64)
        self._positions = positions
        self._sampled_keys = self.keys[positions]
        self._tree = BulkLoadedBPlusTree(
            self._sampled_keys, positions, fanout=fanout
        )

    def search_bounds(self, key: int) -> SearchBounds:
        entry, value, steps = self._tree.lookup_le(key)
        if entry < 0:
            # Query precedes every indexed key: the answer is in the
            # first gap (non-empty only when sparsity > 1).
            hi = int(self._positions[0]) if len(self._positions) else 0
            return SearchBounds(lo=0, hi=hi, hint=0, evaluation_steps=steps)
        lo = value
        if entry + 1 < len(self._positions):
            hi = int(self._positions[entry + 1])
        else:
            hi = self.n - 1
        return SearchBounds(lo=lo, hi=hi, hint=lo, evaluation_steps=steps)

    def pack(self):
        """Flatten the sampled-key directory for the compiled backends.

        The leaf level as a whole is the sorted sampled-key array (see
        :meth:`lookup_batch`), so the packed form is exactly that
        directory plus the sampled positions.
        """
        from ..kernels import pack_sparse_directory

        return pack_sparse_directory(
            self.name, self._sampled_keys, self._positions, self.n
        )

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized lookup over the flattened leaf directory.

        Bulk loading packs the sampled ``(key, position)`` entries into
        leaves in order, so the leaf level as a whole *is* the sorted
        sampled-key array: a batched predecessor query over it yields
        the same gap the node-by-node descent finds, with the tree
        traversal amortized into one vectorized ``searchsorted`` (what
        a SIMD-batched B-tree achieves within nodes).  The data-page
        scan then runs as a window-restricted batch binary search.
        """
        state = self._kernel_state()
        if state is not None:
            backend, packed = state
            return backend.lookup(
                packed, self.keys,
                np.ascontiguousarray(queries, dtype=np.uint64),
            )
        q = np.asarray(queries, dtype=np.uint64)
        entry = np.searchsorted(self._sampled_keys, q, side="right") - 1
        found = entry >= 0
        safe = np.clip(entry, 0, len(self._positions) - 1)
        lo = np.where(found, self._positions[safe], 0)
        nxt = safe + 1
        has_next = nxt < len(self._positions)
        hi = np.where(
            has_next, self._positions[np.clip(nxt, 0, len(self._positions) - 1)],
            self.n - 1,
        )
        # Queries preceding every indexed key search the first gap.
        hi = np.where(found, hi, int(self._positions[0]))
        return batch_lower_bound_window(self.keys, q, lo, hi)

    def size_in_bytes(self) -> int:
        return self._tree.size_in_bytes()

    def stats(self) -> dict[str, Any]:
        base = super().stats()
        base.update(
            height=self._tree.height,
            leaves=self._tree.num_leaves,
            inner_nodes=self._tree.num_inner,
            indexed_keys=self._tree.num_entries,
            sparsity=self.sparsity,
        )
        return base
