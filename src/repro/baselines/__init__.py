"""Baseline indexes of Table 5, plus FITing-tree and an RMI adapter.

Every class implements the :class:`~repro.baselines.interfaces.OrderedIndex`
protocol (lower-bound queries over a sorted in-memory array) so the
comparison experiments can sweep them uniformly.
"""

from .alex import ALEXIndex, GappedLeaf
from .art import ARTIndex
from .binary_search import BinarySearchIndex
from .btree import BTreeIndex, BulkLoadedBPlusTree
from .compressed_pgm import CompressedPGMIndex
from .dynamic_pgm import DynamicPGMIndex
from .fast import FASTIndex
from .fiting_tree import FITingTree
from .hist_tree import HistTree
from .interfaces import OrderedIndex, SearchBounds, UnsupportedDataError
from .pgm import PGMIndex, PlaSegment, build_pla_segments
from .radix_spline import RadixSpline, greedy_spline_corridor
from .rmi_adapter import RMIAsIndex

#: All comparison indexes in the paper's Table 5 order (plus extensions).
INDEX_TYPES = {
    "rmi": RMIAsIndex,
    "alex": ALEXIndex,
    "pgm-index": PGMIndex,
    "radix-spline": RadixSpline,
    "b-tree": BTreeIndex,
    "hist-tree": HistTree,
    "art": ARTIndex,
    "binary-search": BinarySearchIndex,
    "fiting-tree": FITingTree,
    "fast": FASTIndex,
}

__all__ = [
    "OrderedIndex",
    "SearchBounds",
    "UnsupportedDataError",
    "BinarySearchIndex",
    "BTreeIndex",
    "BulkLoadedBPlusTree",
    "ARTIndex",
    "HistTree",
    "PGMIndex",
    "DynamicPGMIndex",
    "CompressedPGMIndex",
    "PlaSegment",
    "build_pla_segments",
    "RadixSpline",
    "greedy_spline_corridor",
    "ALEXIndex",
    "GappedLeaf",
    "FITingTree",
    "FASTIndex",
    "RMIAsIndex",
    "INDEX_TYPES",
]
