"""PGM-index (Ferragina & Vinciguerra [14]).

The PGM-index approximates the CDF with an error-bounded piecewise
linear approximation (PLA): every segment predicts the position of its
keys within a user-chosen maximum error ``eps``.  Segmentation is then
applied *recursively* to the segments' first keys until a single
segment remains, so every root-to-data path has the same length
(Section 3.1 of the paper under reproduction).

Segmentation algorithm
----------------------
We use the streaming *shrinking-cone* algorithm: a segment keeps the
interval of slopes that keeps all of its points within ``eps`` of the
line anchored at the segment's first point; a point that empties the
interval starts a new segment.  It runs in a single pass and O(1) space.
(The original PGM uses O'Rourke's optimal algorithm; the shrinking cone
produces at most a small constant factor more segments, preserving
every size/accuracy trend the paper reports.  The substitution is
recorded in DESIGN.md.)

Duplicates are handled by fitting on the *first* occurrence of each
key, which keeps lower-bound semantics exact.

Lookup: starting from the root segment, each level predicts the next
level's segment index and corrects it with binary search in a ±eps
window; the bottom level predicts the data position within ±eps
(Section 3.1: "a lookup is an iterative process ...").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.search import batch_binary_search, batch_lower_bound_window
from .interfaces import OrderedIndex, SearchBounds

__all__ = ["PGMIndex", "build_pla_segments", "PlaSegment"]

#: Accounting: key (8 B) + slope (8 B) + intercept (8 B) per segment,
#: matching the paper's "size depends on the number of segments".
SEGMENT_BYTES = 24


@dataclass(frozen=True)
class PlaSegment:
    """One ε-bounded linear segment anchored at its first point."""

    first_key: int
    slope: float
    first_value: float

    def predict(self, key: int) -> float:
        return self.first_value + self.slope * (float(key) - float(self.first_key))


def build_pla_segments(
    keys: np.ndarray, values: np.ndarray, eps: int
) -> list[PlaSegment]:
    """Single-pass ε-bounded PLA via the shrinking-cone algorithm.

    ``keys`` must be strictly increasing; ``values`` may be any
    non-decreasing targets (data positions at the bottom level, segment
    indexes at upper levels).  Every returned segment satisfies
    ``|predict(k) - v| <= eps`` for each of its ``(k, v)`` points.
    """
    if eps < 0:
        raise ValueError("eps must be non-negative")
    n = len(keys)
    if n == 0:
        return []
    segments: list[PlaSegment] = []
    y0 = float(values[0])
    k0 = int(keys[0])
    slope_lo = -np.inf
    slope_hi = np.inf
    for i in range(1, n):
        ki = int(keys[i])
        y = float(values[i])
        # Subtract in exact integer space: near 2**64 adjacent keys
        # collapse to the same float64 (the ULP there is 4096), which
        # would make strictly increasing keys look equal.
        dx = float(ki - k0)
        if ki <= k0:
            raise ValueError("keys must be strictly increasing for PLA")
        lo = (y - eps - y0) / dx
        hi = (y + eps - y0) / dx
        new_lo = max(slope_lo, lo)
        new_hi = min(slope_hi, hi)
        if new_lo > new_hi:
            # Cone emptied: close the current segment, start a new one.
            segments.append(PlaSegment(k0, _pick_slope(slope_lo, slope_hi), y0))
            y0, k0 = y, ki
            slope_lo, slope_hi = -np.inf, np.inf
        else:
            slope_lo, slope_hi = new_lo, new_hi
    segments.append(PlaSegment(k0, _pick_slope(slope_lo, slope_hi), y0))
    return segments


def _pick_slope(lo: float, hi: float) -> float:
    """Representative slope from a (possibly unbounded) feasible cone."""
    if not np.isfinite(lo) and not np.isfinite(hi):
        return 0.0  # single-point segment
    if not np.isfinite(lo):
        return hi
    if not np.isfinite(hi):
        return lo
    return (lo + hi) / 2.0


class _Level:
    """One PLA level stored as parallel arrays for fast descent."""

    def __init__(self, segments: list[PlaSegment]):
        self.first_keys = np.asarray(
            [s.first_key for s in segments], dtype=np.uint64
        )
        self.slopes = np.asarray([s.slope for s in segments], dtype=np.float64)
        self.first_values = np.asarray(
            [s.first_value for s in segments], dtype=np.float64
        )

    def __len__(self) -> int:
        return len(self.first_keys)

    def predict(self, segment: int, key: int) -> float:
        return self.first_values[segment] + self.slopes[segment] * (
            float(key) - float(self.first_keys[segment])
        )


class PGMIndex(OrderedIndex):
    """The static (non-updatable) PGM-index variant of Table 5.

    ``eps`` caps the bottom-level prediction error (the paper varies
    index size through it); ``eps_internal`` caps upper-level errors
    (the reference implementation defaults to a small constant).
    """

    name = "pgm-index"

    def __init__(self, keys: np.ndarray, eps: int = 64, eps_internal: int = 4):
        super().__init__(keys)
        if eps < 1 or eps_internal < 1:
            raise ValueError("eps and eps_internal must be >= 1")
        self.eps = eps
        self.eps_internal = eps_internal

        # Deduplicate: fit on the first occurrence of each key so that
        # predictions target lower-bound positions.
        unique_keys, first_pos = np.unique(self.keys, return_index=True)
        bottom = build_pla_segments(
            unique_keys, first_pos.astype(np.float64), eps
        )
        self.levels: list[_Level] = [_Level(bottom)]
        # Recurse on segment first keys until a single segment remains.
        while len(self.levels[-1]) > 1:
            level = self.levels[-1]
            segs = build_pla_segments(
                level.first_keys,
                np.arange(len(level), dtype=np.float64),
                eps_internal,
            )
            self.levels.append(_Level(segs))

    @property
    def height(self) -> int:
        """Number of PLA levels (paths from root to data are equal)."""
        return len(self.levels)

    def search_bounds(self, key: int) -> SearchBounds:
        key = int(key)
        steps = 0
        segment = 0
        # Descend from the root level to the bottom level.
        for depth in range(len(self.levels) - 1, 0, -1):
            level = self.levels[depth]
            below = self.levels[depth - 1]
            pred = level.predict(segment, key)
            steps += 1
            segment = self._correct_segment(below, key, pred)
        bottom = self.levels[0]
        pred = bottom.predict(segment, key)
        steps += 1
        center = int(np.clip(pred, 0, self.n - 1))
        lo = max(center - self.eps, 0)
        hi = min(center + self.eps, self.n - 1)
        return SearchBounds(lo=lo, hi=hi, hint=center, evaluation_steps=steps)

    def _correct_segment(self, level: _Level, key: int, pred: float) -> int:
        """Find the segment of ``level`` containing ``key``.

        The prediction is off by at most ``eps_internal``; the true
        segment is the rightmost one whose first key is <= the query,
        located with binary search inside the ±eps window.
        """
        m = len(level)
        center = int(np.clip(pred, 0, m - 1))
        lo = max(center - self.eps_internal, 0)
        hi = min(center + self.eps_internal + 1, m)
        window = level.first_keys[lo:hi]
        idx = int(np.searchsorted(window, key, side="right")) - 1 + lo
        # The window guarantee only covers keys >= the first indexed
        # key; clamp for queries preceding the whole key space.
        return max(idx, 0)

    def pack(self):
        """Flatten the PLA levels for the compiled kernel backends.

        Returns ``None`` (soft fallback) only when the level stack has
        a non-kernel shape; any fitted PGM packs.
        """
        from ..kernels import PLA_DESCEND, pack_pla_levels

        return pack_pla_levels(
            self.name, PLA_DESCEND,
            [(lvl.first_keys, lvl.slopes, lvl.first_values)
             for lvl in self.levels],
            eps=self.eps, n=self.n, eps_internal=self.eps_internal,
        )

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized lookup: descend all levels for the whole batch.

        Each level performs the same ±eps_internal window search as the
        scalar path, batched (or, with a compiled kernel backend, the
        whole descent runs fused in machine code -- bit-identical); the
        bottom level finishes with a window-restricted batch binary
        search over the data.
        """
        state = self._kernel_state()
        if state is not None:
            backend, packed = state
            return backend.lookup(
                packed, self.keys,
                np.ascontiguousarray(queries, dtype=np.uint64),
            )
        q = np.asarray(queries, dtype=np.uint64)
        qf = q.astype(np.float64)
        seg = np.zeros(len(q), dtype=np.int64)
        for depth in range(len(self.levels) - 1, 0, -1):
            level = self.levels[depth]
            below = self.levels[depth - 1]
            pred = level.first_values[seg] + level.slopes[seg] * (
                qf - level.first_keys[seg].astype(np.float64)
            )
            m = len(below)
            center = np.clip(np.nan_to_num(pred), 0, m - 1).astype(np.int64)
            lo = np.maximum(center - self.eps_internal, 0)
            hi = np.minimum(center + self.eps_internal, m - 1)
            lb = batch_binary_search(below.first_keys, q, lo, hi)
            # Predecessor semantics: the segment whose first key <= q.
            exact = (lb <= hi) & (
                below.first_keys[np.clip(lb, 0, m - 1)] == q
            )
            seg = np.clip(np.where(exact, lb, lb - 1), 0, m - 1)
        bottom = self.levels[0]
        pred = bottom.first_values[seg] + bottom.slopes[seg] * (
            qf - bottom.first_keys[seg].astype(np.float64)
        )
        center = np.clip(np.nan_to_num(pred), 0, self.n - 1).astype(np.int64)
        lo = np.maximum(center - self.eps, 0)
        hi = np.minimum(center + self.eps, self.n - 1)
        return batch_lower_bound_window(self.keys, q, lo, hi)

    def size_in_bytes(self) -> int:
        return sum(len(level) for level in self.levels) * SEGMENT_BYTES

    def stats(self) -> dict[str, Any]:
        base = super().stats()
        base.update(
            height=self.height,
            eps=self.eps,
            eps_internal=self.eps_internal,
            segments_per_level=[len(level) for level in self.levels],
        )
        return base
