"""Binary search over the sorted array -- the index-free baseline.

The paper's weakest baseline (Table 5): ``std::lower_bound`` over the
sorted array with no auxiliary structure at all.  Every index must beat
this to justify its memory; notably, *no* RMI configuration manages to
on the fb dataset (Section 6.1), and B-trees barely do (Section 8.1).
"""

from __future__ import annotations

import numpy as np

from ..core.search import binary_search
from .interfaces import OrderedIndex, SearchBounds

__all__ = ["BinarySearchIndex"]


class BinarySearchIndex(OrderedIndex):
    """No-op index: the search interval is always the whole array."""

    name = "binary-search"

    def search_bounds(self, key: int) -> SearchBounds:
        return SearchBounds(lo=0, hi=self.n - 1, hint=0, evaluation_steps=0)

    def lower_bound(self, key: int) -> int:
        return binary_search(self.keys, int(key), 0, self.n - 1).position

    def lookup_batch(self, queries: np.ndarray) -> np.ndarray:
        return np.searchsorted(
            self.keys, np.asarray(queries, dtype=np.uint64), side="left"
        ).astype(np.int64)

    def size_in_bytes(self) -> int:
        return 0
