"""CLI: generate, inspect, and convert SOSD-format datasets.

Usage::

    python -m repro.data generate books --n 200000 --out books.sosd
    python -m repro.data generate books --n 200000 --format npy \\
        --out books.npy
    python -m repro.data info books.sosd
    python -m repro.data list
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from . import distributions, sosd
from .io import dataset_info, read_npy, read_sosd, write_npy, write_sosd


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.data")
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a synthetic dataset")
    gen.add_argument("name", help="dataset or distribution name")
    gen.add_argument("--n", type=int, default=200_000)
    gen.add_argument("--seed", type=int, default=42)
    gen.add_argument("--out", required=True, help="output path")
    gen.add_argument("--format", choices=["sosd", "npy"], default="sosd",
                     help="sosd: SOSD binary layout; npy: the artifact "
                     "cache's mmap-friendly NumPy layout")

    info = sub.add_parser("info", help="inspect a dataset file "
                          "(.sosd or .npy, by suffix)")
    info.add_argument("path")

    sub.add_parser("list", help="list available generators")

    args = parser.parse_args(argv)

    if args.command == "list":
        for name in sosd.DATASETS:
            print(f"sosd:{name}")
        for name in distributions.DISTRIBUTIONS:
            print(f"dist:{name}")
        return 0

    if args.command == "generate":
        if args.name in sosd.DATASETS:
            keys = sosd.generate(args.name, n=args.n, seed=args.seed)
        elif args.name in distributions.DISTRIBUTIONS:
            keys = distributions.generate(args.name, n=args.n, seed=args.seed)
        else:
            parser.error(f"unknown generator {args.name!r}; see 'list'")
        writer = write_npy if args.format == "npy" else write_sosd
        written = writer(args.out, keys)
        print(f"wrote {len(keys):,} keys ({written:,} bytes) to {args.out}")
        return 0

    if args.command == "info":
        if Path(args.path).suffix == ".npy":
            keys = read_npy(args.path)
        else:
            keys = read_sosd(args.path)
        for field, value in dataset_info(keys).items():
            print(f"{field}: {value}")
        return 0

    return 1  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
