"""CDF utilities shared by analyses and figure drivers.

In the learned-index literature (and throughout this repository) "CDF"
denotes the mapping from key to position in the sorted array rather
than the statistical cumulative distribution function; see Section 2.1
of the paper for the relationship (Equation 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "positions",
    "normalized_cdf",
    "is_sorted",
    "has_duplicates",
    "zoom_segment",
    "local_noise",
    "CdfSummary",
    "summarize",
]


def positions(keys: np.ndarray) -> np.ndarray:
    """Positions 0..n-1 of the (sorted) keys: the CDF's codomain."""
    return np.arange(len(keys), dtype=np.float64)


def normalized_cdf(keys: np.ndarray, samples: int = 1024) -> tuple[np.ndarray, np.ndarray]:
    """Down-sampled (key, position/n) pairs for plotting Figure 2/3 CDFs."""
    n = len(keys)
    if n == 0:
        return np.array([]), np.array([])
    idx = np.unique(np.linspace(0, n - 1, min(samples, n)).astype(np.int64))
    return keys[idx].astype(np.float64), idx.astype(np.float64) / max(n - 1, 1)


def is_sorted(keys: np.ndarray) -> bool:
    """Whether the array is sorted in non-decreasing order."""
    return bool(np.all(keys[1:] >= keys[:-1])) if len(keys) > 1 else True


def has_duplicates(keys: np.ndarray) -> bool:
    """Whether the sorted array contains duplicate keys."""
    return bool(np.any(keys[1:] == keys[:-1])) if len(keys) > 1 else False


def zoom_segment(keys: np.ndarray, start: int | None = None,
                 length: int = 100) -> np.ndarray:
    """A window of ``length`` consecutive keys (the Figure 2 zoom-ins).

    Defaults to a window centered in the array; the paper uses such
    100-key segments to visualize local noise.
    """
    n = len(keys)
    if start is None:
        start = max(0, n // 2 - length // 2)
    return keys[start : min(start + length, n)]


def local_noise(keys: np.ndarray, window: int = 100) -> float:
    """Quantify local CDF noise: mean relative gap deviation in windows.

    For each window of consecutive keys, compute the coefficient of
    variation of the key gaps; return the mean over windows.  Perfectly
    regular data (sequential keys) scores 0; the heavy per-cluster noise
    of osmc scores high.  Used to sanity-check the synthetic datasets
    against the paper's qualitative descriptions.
    """
    keys = keys.astype(np.float64)
    gaps = np.diff(keys)
    if len(gaps) < window:
        if len(gaps) == 0 or gaps.mean() == 0:
            return 0.0
        return float(gaps.std() / gaps.mean())
    usable = len(gaps) - len(gaps) % window
    chunks = gaps[:usable].reshape(-1, window)
    means = chunks.mean(axis=1)
    stds = chunks.std(axis=1)
    mask = means > 0
    if not mask.any():
        return 0.0
    return float(np.mean(stds[mask] / means[mask]))


@dataclass(frozen=True)
class CdfSummary:
    """Structural summary of a dataset used by reports and tests."""

    n: int
    min_key: int
    max_key: int
    duplicates: bool
    noise: float

    @property
    def key_space_utilization(self) -> float:
        """Fraction of the spanned key range that is actually occupied."""
        span = self.max_key - self.min_key + 1
        return self.n / span if span > 0 else 0.0


def summarize(keys: np.ndarray) -> CdfSummary:
    """Compute a :class:`CdfSummary` for a sorted key array."""
    if len(keys) == 0:
        return CdfSummary(0, 0, 0, False, 0.0)
    return CdfSummary(
        n=len(keys),
        min_key=int(keys[0]),
        max_key=int(keys[-1]),
        duplicates=has_duplicates(keys),
        noise=local_noise(keys),
    )
