"""Synthetic statistical key distributions.

The paper notes that "learned indexes are known to adapt well to
artificial data sampled from statistical distributions" (Section 4.3)
and therefore evaluates on real-world data.  We nevertheless provide the
classic distributions: they serve as easy/controlled inputs for tests,
examples, and ablation benches, and let users reproduce the contrast
between statistical and real-world data themselves.

All generators return a sorted, unique ``uint64`` array and are
deterministic given ``(n, seed)``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "uniform",
    "normal",
    "lognormal",
    "zipf",
    "sequential",
    "DISTRIBUTIONS",
    "generate",
]


def _unique_n(sample: Callable[[int], np.ndarray], n: int) -> np.ndarray:
    """Draw from ``sample`` until ``n`` unique keys are collected."""
    keys = np.unique(sample(int(n * 1.1) + 16))
    while len(keys) < n:
        keys = np.unique(np.concatenate([keys, sample(n)]))
    return keys[:n] if len(keys) >= n else keys


def uniform(n: int = 200_000, seed: int = 42, high: int = 2**60) -> np.ndarray:
    """Uniformly distributed keys: the easiest case for any learned index."""
    rng = np.random.default_rng(seed)
    return _unique_n(
        lambda k: rng.integers(0, high, size=k, dtype=np.uint64), n
    )


def normal(n: int = 200_000, seed: int = 42) -> np.ndarray:
    """Gaussian keys centered in the key space."""
    rng = np.random.default_rng(seed)

    def sample(k: int) -> np.ndarray:
        x = rng.normal(2**40, 2**36, size=k)
        return np.clip(x, 0, 2**63).astype(np.uint64)

    return _unique_n(sample, n)


def lognormal(n: int = 200_000, seed: int = 42, sigma: float = 2.0) -> np.ndarray:
    """Lognormal keys: a hard, heavily skewed but outlier-free case."""
    rng = np.random.default_rng(seed)

    def sample(k: int) -> np.ndarray:
        x = rng.lognormal(0.0, sigma, size=k)
        return np.clip(x * 2**32, 0, 2**63).astype(np.uint64)

    return _unique_n(sample, n)


def zipf(n: int = 200_000, seed: int = 42, a: float = 1.5) -> np.ndarray:
    """Zipf-distributed keys (power-law gaps)."""
    rng = np.random.default_rng(seed)

    def sample(k: int) -> np.ndarray:
        x = rng.zipf(a, size=k).astype(np.float64)
        return np.clip(x * 2**20, 0, 2**63).astype(np.uint64)

    return _unique_n(sample, n)


def sequential(n: int = 200_000, seed: int = 42, start: int = 0,
               step: int = 1) -> np.ndarray:
    """Densely packed sequential keys: the degenerate best case.

    A single linear model predicts these exactly; useful as a unit-test
    oracle (every model family should achieve zero error here).
    """
    del seed  # deterministic by construction; kept for a uniform API
    return (start + step * np.arange(n, dtype=np.uint64)).astype(np.uint64)


#: Registry of statistical distribution generators.
DISTRIBUTIONS: dict[str, Callable[..., np.ndarray]] = {
    "uniform": uniform,
    "normal": normal,
    "lognormal": lognormal,
    "zipf": zipf,
    "sequential": sequential,
}


def generate(name: str, n: int = 200_000, seed: int = 42) -> np.ndarray:
    """Generate distribution ``name``; see :data:`DISTRIBUTIONS`."""
    try:
        gen = DISTRIBUTIONS[name]
    except KeyError:
        known = ", ".join(DISTRIBUTIONS)
        raise ValueError(f"unknown distribution {name!r}; known: {known}")
    return gen(n=n, seed=seed)
