"""Synthetic stand-ins for the four SOSD datasets used in the paper.

The paper evaluates on four real-world datasets from the SOSD benchmark
[18], each 200M unsigned 64-bit keys (Section 4.3, Figure 2).  The raw
datasets are multi-gigabyte downloads and are not redistributable here,
so this module generates *synthetic* datasets that reproduce the
distributional properties each of the paper's findings hinges on:

``books``
    Popularity of books on Amazon: a smooth, mildly convex CDF with a
    heavy upper tail.  Finding it drives: accurate RMI predictions,
    small error intervals, RMI/RadixSpline winning on "smooth CDFs".
``fb``
    Facebook user ids: near-uniform keys **plus 21 outliers at the
    upper end that are several orders of magnitude larger** than the
    rest.  The 21 outliers are the load-bearing property: they flatten
    every root-model approximation, collapse almost all keys into one
    segment, and make every RMI configuration lose to plain binary
    search (Sections 5.1, 5.2, 6.1).
``osmc``
    OpenStreetMap cell ids: strong clustering caused by projecting
    two-dimensional data into one dimension [22].  Clusters concentrate
    the keys in a small fraction of the key space, producing many empty
    segments and noisy large segments (Sections 5.1, 5.2).
``wiki``
    Wikipedia edit timestamps: a near-linear CDF with bursty density
    **and duplicate keys**.  SOSD's wiki is the only one of the four
    with duplicates, which is why ART and Hist-Tree "did not work on
    wiki" in the paper (Section 8.1); we keep duplicates for exactly
    that reason.

All generators are deterministic given ``(n, seed)`` and return a sorted
``uint64`` array.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "books",
    "fb",
    "osmc",
    "wiki",
    "DATASETS",
    "generate",
    "dataset_names",
    "FB_NUM_OUTLIERS",
]

#: Number of extreme outliers in the fb dataset (Section 4.3: "This
#: dataset contains 21 outliers at the upper end of the key space").
FB_NUM_OUTLIERS = 21

_KEY_MAX = np.uint64(2**64 - 1)


def _finalize(values: np.ndarray, allow_duplicates: bool = False) -> np.ndarray:
    """Sort, clip to the uint64 domain, and optionally deduplicate."""
    values = np.clip(values, 0.0, float(2**63))  # headroom for outliers
    keys = np.sort(values.astype(np.uint64))
    if not allow_duplicates:
        keys = np.unique(keys)
    return keys


def _top_up_unique(keys: np.ndarray, n: int, rng: np.random.Generator,
                   low: int, high: int) -> np.ndarray:
    """Pad a deduplicated sample back up to exactly ``n`` unique keys."""
    while len(keys) < n:
        extra = rng.integers(low, high, size=(n - len(keys)) * 2, dtype=np.uint64)
        keys = np.unique(np.concatenate([keys, extra]))
    if len(keys) > n:
        drop = rng.choice(len(keys), size=len(keys) - n, replace=False)
        keys = np.delete(keys, drop)
    return keys


def books(n: int = 200_000, seed: int = 42) -> np.ndarray:
    """Amazon book popularity: smooth, gently curved CDF.

    The paper characterizes books as a *smooth* CDF that spline root
    models approximate well (few empty segments, single-digit median
    errors at large layer sizes).  We reproduce that with a density
    that varies smoothly -- by a factor of a few, via a smoothed random
    walk -- across the key space, plus per-key noise.
    """
    rng = np.random.default_rng(seed)
    epochs = 1_000
    walk = np.cumsum(rng.normal(0.0, 1.0, size=epochs))
    walk -= walk.mean()
    walk /= max(np.abs(walk).max(), 1e-9)
    rate = np.exp(0.8 * walk)  # smooth density, ~5x max/min ratio
    rate /= rate.sum()
    counts = rng.multinomial(int(n * 1.05), rate)
    # The occupied range deliberately starts well inside its enclosing
    # power-of-two range: radix root models then never predict the low
    # segment indexes, reproducing RX's high share of empty segments on
    # books (paper Figure 4; the real books keys sit inside their
    # bit-range the same way).
    lo, hi = int(0.15 * 2**50), int(0.95 * 2**50)
    edges = np.linspace(lo, hi, epochs + 1)
    parts = [
        rng.uniform(edges[i], edges[i + 1], size=c)
        for i, c in enumerate(counts)
        if c > 0
    ]
    keys = _finalize(np.concatenate(parts))
    return _top_up_unique(keys, n, rng, lo, hi)


def fb(n: int = 200_000, seed: int = 42,
       num_outliers: int = FB_NUM_OUTLIERS) -> np.ndarray:
    """Facebook user ids: noisy body plus extreme upper outliers.

    Two load-bearing properties from the paper:

    * the ``num_outliers`` (default 21) outliers are spread
      log-uniformly across ``[2^50, 2^63)`` -- orders of magnitude above
      the body.  They flatten every root approximation; as the segment
      count grows they gradually leave the big segment, reproducing the
      sudden error drop of Figure 6 (paper: "between 2^15 and 2^17
      segments ... none of the outliers being assigned to the large
      segment anymore").
    * the body in ``[0, 2^44)`` has coarse *density regimes* (ID
      allocation eras), so even after the outliers separate, a single
      linear model keeps a large error over the body segment (paper:
      the large segment "still contains a considerable amount of noise
      that leads to the persistent high prediction error").
    """
    rng = np.random.default_rng(seed)
    body_n = n - num_outliers
    # Coarse regimes with strong rate variation: the resulting CDF
    # deviates from any single line by a double-digit percentage of n.
    # Because the root model's slope is dominated by the outliers, the
    # body always collapses into ~one segment whose single linear model
    # inherits this deviation -- keeping every RMI at or below binary
    # search on fb at every scale, like the paper's Figure 8.
    epochs = 50
    rate = np.exp(rng.normal(0.0, 1.5, size=epochs))
    rate /= rate.sum()
    counts = rng.multinomial(int(body_n * 1.05), rate)
    edges = np.linspace(0, 2**44, epochs + 1)
    parts = [
        rng.uniform(edges[i], edges[i + 1], size=c)
        for i, c in enumerate(counts)
        if c > 0
    ]
    body = _finalize(np.concatenate(parts))
    body = _top_up_unique(body, body_n, rng, 0, 2**44)
    # Outliers spread log-evenly over [2^47, 2^63] with jitter.  The
    # smallest outlier pins where the Figure 6 error drop happens: the
    # big segment keeps at least one outlier until the segment count
    # exceeds keyspace/2^47 = 2^16 -- late in any sweep, like the
    # paper's drop between 2^15 and 2^17 segments.  Deterministic
    # across n and seed.
    if num_outliers > 0:
        exponents = np.linspace(47.0, 63.0, num_outliers)
        exponents += rng.uniform(-0.2, 0.2, size=num_outliers)
        outliers = np.unique((2.0 ** exponents).astype(np.uint64))
        while len(outliers) < num_outliers:  # jitter collisions (rare)
            extra = 2.0 ** rng.uniform(47.0, 63.0, num_outliers)
            outliers = np.unique(
                np.concatenate([outliers, extra.astype(np.uint64)])
            )
        outliers = outliers[:num_outliers]
        return np.sort(np.concatenate([body, outliers]))
    return body


def osmc(n: int = 200_000, seed: int = 42, clusters: int | None = None) -> np.ndarray:
    """OpenStreetMap cell ids: heavily clustered key space.

    Cluster centers are spread log-uniformly over the key space (the
    2D->1D projection concentrates populated cells); members are tightly
    packed around their center.  The result is the staircase CDF with
    per-cluster noise that dominates the paper's osmc findings.
    """
    rng = np.random.default_rng(seed)
    if clusters is None:
        clusters = max(16, n // 1_000)
    centers = np.sort(rng.uniform(2.0**30, 2.0**62, size=clusters))
    # Lognormal cluster populations: heavily skewed (some cells are
    # cities, some are oceans) without letting a single cluster swallow
    # the dataset, which would mimic fb's one-segment collapse instead
    # of osmc's many-noisy-segments profile.
    weights = rng.lognormal(0.0, 1.5, size=clusters)
    weights /= weights.sum()
    counts = rng.multinomial(int(n * 1.08), weights)
    parts = []
    for center, count in zip(centers, counts):
        if count == 0:
            continue
        spread = center * 1e-4 + 1_000.0
        parts.append(rng.normal(center, spread, size=count))
    keys = _finalize(np.concatenate(parts))
    return _top_up_unique(keys, n, rng, 2**30, 2**62)


def wiki(n: int = 200_000, seed: int = 42) -> np.ndarray:
    """Wikipedia edit timestamps: bursty near-linear CDF with duplicates.

    Simulates ~15 years of edit timestamps (seconds) with weekly and
    yearly rate modulation plus random burst events.  Duplicate
    timestamps are retained on purpose: SOSD's wiki contains duplicates,
    which is why tries reject it (Section 8.1).
    """
    rng = np.random.default_rng(seed)
    start = 1_050_000_000  # ~2003, like Wikipedia's early history
    span = int(15 * 365.25 * 86_400)
    # Piecewise-constant edit rate over ~2000 epochs, growing over time
    # with multiplicative noise and occasional bursts.
    epochs = 2_000
    t = np.linspace(0.0, 1.0, epochs)
    rate = (0.2 + t) * np.exp(rng.normal(0.0, 0.35, size=epochs))
    bursts = rng.random(epochs) < 0.01
    rate[bursts] *= rng.uniform(5.0, 20.0, size=int(bursts.sum()))
    rate /= rate.sum()
    # Reserve ~1% of keys as same-second duplicates (concurrent edits):
    # SOSD's wiki contains duplicates at every scale, and they are what
    # disqualifies tries (Section 8.1), so their presence must not
    # depend on sampling luck.
    num_dupes = max(n // 100, 1)
    base_n = n - num_dupes
    counts = rng.multinomial(base_n, rate)
    edges = (start + np.linspace(0, span, epochs + 1)).astype(np.int64)
    parts = [
        rng.integers(edges[i], edges[i + 1], size=c, dtype=np.int64)
        for i, c in enumerate(counts)
        if c > 0
    ]
    base = np.concatenate(parts).astype(np.uint64)
    dupes = base[rng.integers(0, len(base), num_dupes)]
    keys = np.sort(np.concatenate([base, dupes]))
    return keys  # duplicates intentionally retained


#: Registry of dataset generators in the paper's presentation order.
DATASETS: dict[str, Callable[..., np.ndarray]] = {
    "books": books,
    "fb": fb,
    "osmc": osmc,
    "wiki": wiki,
}


def dataset_names() -> list[str]:
    """Names of the four SOSD-like datasets, in paper order."""
    return list(DATASETS)


def generate(name: str, n: int = 200_000, seed: int = 42) -> np.ndarray:
    """Generate dataset ``name`` with ``n`` keys; see module docstring."""
    try:
        gen = DATASETS[name]
    except KeyError:
        known = ", ".join(DATASETS)
        raise ValueError(f"unknown dataset {name!r}; known datasets: {known}")
    return gen(n=n, seed=seed)
