"""Datasets: synthetic SOSD stand-ins and statistical distributions."""

from . import cdf, distributions, sosd
from .cdf import CdfSummary, has_duplicates, is_sorted, local_noise, summarize
from .distributions import DISTRIBUTIONS
from .sosd import DATASETS, books, dataset_names, fb, generate, osmc, wiki

__all__ = [
    "sosd",
    "distributions",
    "cdf",
    "DATASETS",
    "DISTRIBUTIONS",
    "books",
    "fb",
    "osmc",
    "wiki",
    "generate",
    "dataset_names",
    "CdfSummary",
    "summarize",
    "is_sorted",
    "has_duplicates",
    "local_noise",
]
