"""SOSD-format dataset files.

SOSD [18] stores each dataset as a little-endian binary file: an 8-byte
``uint64`` element count followed by the keys as consecutive ``uint64``
values.  This module reads and writes that format, so synthetic
datasets generated here interoperate with SOSD tooling -- and the *real*
SOSD datasets, where available, can be dropped in for full-fidelity
runs.

Alongside the SOSD format, :func:`write_npy`/:func:`read_npy` handle
the ``.npy`` layout the artifact cache uses: same ``uint64`` keys, but
self-describing and loadable with ``mmap_mode="r"`` so suite workers
share pages instead of copies.

A small CLI is attached (``python -m repro.data``) for generating,
inspecting, and converting datasets.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

__all__ = ["write_sosd", "read_sosd", "write_npy", "read_npy",
           "dataset_info"]

_HEADER_DTYPE = np.dtype("<u8")
_KEY_DTYPE = np.dtype("<u8")


def write_sosd(path: "str | os.PathLike", keys: np.ndarray) -> int:
    """Write keys in SOSD binary format; returns bytes written.

    Keys must be sorted ``uint64``; the format has no room for metadata
    beyond the count, matching SOSD's loaders.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if len(keys) > 1 and np.any(keys[1:] < keys[:-1]):
        raise ValueError("keys must be sorted before writing")
    path = Path(path)
    with open(path, "wb") as f:
        f.write(np.uint64(len(keys)).astype(_HEADER_DTYPE).tobytes())
        f.write(keys.astype(_KEY_DTYPE).tobytes())
    return 8 + 8 * len(keys)


def read_sosd(path: "str | os.PathLike") -> np.ndarray:
    """Read a SOSD binary file into a ``uint64`` array.

    Validates the header against the file size and the sortedness SOSD
    guarantees.
    """
    path = Path(path)
    size = path.stat().st_size
    if size < 8:
        raise ValueError(f"{path}: too small to hold a SOSD header")
    with open(path, "rb") as f:
        count = int(np.frombuffer(f.read(8), dtype=_HEADER_DTYPE)[0])
        expected = 8 + 8 * count
        if size != expected:
            raise ValueError(
                f"{path}: header promises {count} keys ({expected} bytes) "
                f"but the file has {size} bytes"
            )
        keys = np.frombuffer(f.read(8 * count), dtype=_KEY_DTYPE).astype(
            np.uint64
        )
    if len(keys) > 1 and np.any(keys[1:] < keys[:-1]):
        raise ValueError(f"{path}: keys are not sorted")
    return keys


def write_npy(path: "str | os.PathLike", keys: np.ndarray) -> int:
    """Write keys as a ``.npy`` file; returns bytes written.

    Keys must be sorted ``uint64`` (same contract as the SOSD format).
    The file is written through an explicit handle so NumPy cannot
    append its own ``.npy`` suffix to the chosen path.
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if len(keys) > 1 and np.any(keys[1:] < keys[:-1]):
        raise ValueError("keys must be sorted before writing")
    path = Path(path)
    with open(path, "wb") as f:
        np.save(f, keys)
    return path.stat().st_size


def read_npy(path: "str | os.PathLike", mmap: bool = True) -> np.ndarray:
    """Read a key array written by :func:`write_npy`.

    ``mmap`` (default) maps the file read-only instead of copying it
    into memory -- lookups touch only the pages they search.  Validates
    the same invariants :func:`read_sosd` does.
    """
    path = Path(path)
    keys = np.load(path, mmap_mode="r" if mmap else None,
                   allow_pickle=False)
    if keys.dtype != np.uint64 or keys.ndim != 1:
        raise ValueError(
            f"{path}: expected a 1-d uint64 array, found "
            f"{keys.dtype} with shape {keys.shape}"
        )
    if len(keys) > 1 and np.any(keys[1:] < keys[:-1]):
        raise ValueError(f"{path}: keys are not sorted")
    return keys


def dataset_info(keys: np.ndarray) -> dict:
    """Summary dict for CLI inspection."""
    from .cdf import summarize

    s = summarize(keys)
    return {
        "n": s.n,
        "min_key": s.min_key,
        "max_key": s.max_key,
        "duplicates": s.duplicates,
        "noise": round(s.noise, 4),
        "bytes": 8 + 8 * s.n,
    }
