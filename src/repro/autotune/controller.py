"""The autotuner's control loop: observe, plan, hysteresis, swap, watch.

One :class:`AutoTuner` closes the loop around one serving target -- a
single-process :class:`~repro.serve.server.IndexServer` or one shard of
a :class:`~repro.serve.router.ShardRouter` cluster (per-shard tuners
see per-shard traffic, so shards legitimately converge to different
configs).  Each control window it:

1. diffs the target's metrics (:func:`~repro.serve.metrics.
   window_between`) to get the *window's* completed count and p99;
2. if a swap is pending measurement, attaches the post-swap p99 to the
   journal's swap record and **rolls back** when the measured p99
   regressed past the configured threshold -- within one window of the
   swap, by construction;
3. otherwise profiles the sampled traffic, asks the
   :class:`~repro.autotune.planner.Planner` for a ranked plan, and acts
   only when the winner's *predicted* p99 beats the incumbent's by the
   improvement threshold for ``hysteresis_windows`` consecutive windows
   (transient traffic shifts don't churn the index);
4. acting means: build the winner off the event loop, verify it against
   a ``searchsorted`` oracle on a probe set (a wrong index is journaled
   and never swapped), then hot-swap -- zero in-flight requests dropped,
   by the swap primitives' contract.

``dry_run`` stops at step 3: the ranked plan is journaled as a ``plan``
record and nothing is built or swapped.  Every decision (including the
quiet ``idle`` windows and thresholded ``hold``\\ s) lands in the
:class:`~repro.autotune.report.DecisionJournal`.

The loop is synchronous-testable: :meth:`AutoTuner.step` performs
exactly one control window and can be awaited directly with a test's
own clock and injected metrics; :meth:`AutoTuner.run` is just ``step``
on an ``interval_s`` timer.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..baselines import INDEX_TYPES, RMIAsIndex
from ..serve.metrics import window_between
from .planner import CandidateConfig, CandidateFactory, Plan, Planner
from .report import DecisionJournal

__all__ = [
    "TunerConfig",
    "AutoTuner",
    "ServerTarget",
    "ShardTarget",
    "infer_config",
]


def infer_config(index: Any, backend: "str | None" = None) \
        -> "CandidateConfig | None":
    """Reverse-map a served index object to its :class:`CandidateConfig`.

    Lets the controller score the incumbent without being told what it
    is.  Returns ``None`` for indexes outside the registry (e.g. a
    writable wrapper) -- the tuner then treats the first planned winner
    as an unconditional improvement candidate.
    """
    from ..kernels import get_backend

    be = get_backend(backend).name
    if isinstance(index, RMIAsIndex):
        cfg = index.config
        return CandidateConfig(
            family="rmi",
            layer2_size=int(cfg.layer_sizes[-1]),
            bound_type=cfg.bound_type,
            search=cfg.search,
            backend=be,
        )
    for name, cls in INDEX_TYPES.items():
        if type(index) is cls:
            return CandidateConfig(family=name, backend=be)
    return None


@dataclass
class TunerConfig:
    """Knobs of the control loop (hysteresis and rollback in one place)."""

    #: Seconds between control windows in :meth:`AutoTuner.run`.
    interval_s: float = 5.0
    #: Minimum predicted p99 improvement to consider acting: the winner
    #: must satisfy ``winner_p99 <= incumbent_p99 * (1 - threshold)``.
    improvement_threshold: float = 0.10
    #: Consecutive windows the *same* winner must clear the threshold
    #: before a swap happens.
    hysteresis_windows: int = 2
    #: Measured post-swap regression that triggers rollback:
    #: ``post_p99 > pre_p99 * (1 + rollback_threshold)`` undoes the swap.
    rollback_threshold: float = 0.25
    #: Windows with fewer completed requests than this are ``idle`` --
    #: too quiet to profile or to judge a pending swap.
    min_window_requests: int = 256
    #: Probe set size for pre-swap correctness verification.
    probe_set_size: int = 512
    #: Plan and journal, but never build or swap.
    dry_run: bool = False
    #: Optional cap on lifetime swaps (``None`` = unlimited).
    max_swaps: "int | None" = None
    #: Windows to keep waiting for a measurable post-swap window before
    #: giving up on the measurement (quiet-traffic safety valve).
    measure_patience: int = 5


class ServerTarget:
    """Adapter: one :class:`~repro.serve.server.IndexServer`.

    Rollback keeps the old index object returned by ``swap_index`` --
    undoing a bad swap is another swap, not a rebuild.
    """

    name = "server"

    def __init__(self, server: Any, sampler: Any = None) -> None:
        self.server = server
        self.sampler = sampler if sampler is not None else server.sampler
        if self.sampler is None:
            raise ValueError("target needs a workload sampler (pass one "
                             "here or construct the server with one)")

    @property
    def keys(self) -> np.ndarray:
        return self.server.index.keys

    def current_index(self) -> Any:
        return self.server.index

    async def metrics_state(self) -> "dict[str, Any] | None":
        return self.server.metrics.state()

    async def swap(self, built: Any, factory: CandidateFactory,
                   prev_factory: "CandidateFactory | None") -> Any:
        return self.server.swap_index(built)

    async def rollback(self, token: Any) -> None:
        self.server.swap_index(token)


class ShardTarget:
    """Adapter: one shard of a :class:`~repro.serve.router.ShardRouter`.

    Swaps ship the picklable :class:`~repro.autotune.planner.
    CandidateFactory` through the router's swap protocol, so they work
    identically for the in-process backend and the multi-process
    cluster (whose worker rebuilds over its own shard keys).  Rollback
    re-ships the previous config's factory.
    """

    def __init__(self, router: Any, shard_id: int,
                 sampler: Any = None, keys: "np.ndarray | None" = None):
        self.router = router
        self.shard_id = int(shard_id)
        self.name = f"shard{self.shard_id}"
        if sampler is None and router.samplers is not None:
            sampler = router.samplers[self.shard_id]
        if sampler is None:
            raise ValueError(f"shard {shard_id} has no workload sampler")
        self.sampler = sampler
        if keys is None:
            indexes = getattr(router._backend, "_indexes", None)
            if indexes is None:
                raise ValueError(
                    "pass keys= explicitly for non-local backends (the "
                    "controller plans in the parent process)"
                )
            keys = indexes[self.shard_id].keys
        self._keys = np.asarray(keys)

    @property
    def keys(self) -> np.ndarray:
        return self._keys

    def current_index(self) -> Any:
        indexes = getattr(self.router._backend, "_indexes", None)
        if indexes is not None:
            return indexes[self.shard_id]
        return None

    async def metrics_state(self) -> "dict[str, Any] | None":
        states = await self.router._backend.shard_metrics()
        return states[self.shard_id]

    async def swap(self, built: Any, factory: CandidateFactory,
                   prev_factory: "CandidateFactory | None") -> Any:
        await self.router.swap_shard(self.shard_id, factory)
        return prev_factory

    async def rollback(self, token: Any) -> None:
        if token is None:
            raise RuntimeError(
                f"{self.name}: no previous config to roll back to"
            )
        await self.router.swap_shard(self.shard_id, token)


class AutoTuner:
    """Closed-loop controller over one serving target."""

    def __init__(
        self,
        target: Any,
        planner: "Planner | None" = None,
        config: "TunerConfig | None" = None,
        journal: "DecisionJournal | None" = None,
    ) -> None:
        self.target = target
        self.planner = planner or Planner()
        self.config = config or TunerConfig()
        self.journal = journal or DecisionJournal()
        self.current: "CandidateConfig | None" = infer_config(
            target.current_index(), getattr(self.planner, "backend", None)
        ) if target.current_index() is not None else None
        self.swaps_done = 0
        self.last_plan: "Plan | None" = None
        self._prev_state: "dict[str, Any] | None" = None
        self._streak_key: "str | None" = None
        self._streak = 0
        #: Pending swap awaiting its post-swap window measurement:
        #: ``{"record", "token", "pre_p99_ms", "prev_config", "age"}``.
        self._pending: "dict[str, Any] | None" = None
        self._task: "asyncio.Task | None" = None
        self._stopping = False

    @property
    def pending_swap(self) -> bool:
        """True while a swap awaits its post-swap window measurement."""
        return self._pending is not None

    # -- one control window ----------------------------------------------

    async def step(self) -> "dict[str, Any] | None":
        """Run exactly one control window; returns the journal record
        it produced (``None`` only when a pending swap measured clean)."""
        cfg = self.config
        state = await self.target.metrics_state()
        if state is None:
            return self.journal.record("idle", target=self.target.name,
                                       reason="target metrics unavailable")
        if self._prev_state is None:
            self._prev_state = state
            return self.journal.record(
                "idle", target=self.target.name,
                reason="first window establishes the baseline",
            )
        window = window_between(self._prev_state, state)
        self._prev_state = state
        completed = int(window.completed)
        p99_ms = (window.latency_s.percentile(99) * 1e3
                  if window.latency_s.count else None)
        if self._pending is not None:
            return await self._watch_pending(completed, p99_ms)
        if completed < cfg.min_window_requests:
            return self.journal.record(
                "idle", target=self.target.name, completed=completed,
                reason=f"window below min_window_requests "
                       f"({completed} < {cfg.min_window_requests})",
            )
        return await self._plan_and_act(completed, p99_ms)

    async def _watch_pending(self, completed: int,
                             p99_ms: "float | None") -> "dict | None":
        """Measure the post-swap window; roll back on regression."""
        cfg = self.config
        pending = self._pending
        assert pending is not None
        if p99_ms is None or completed < max(cfg.min_window_requests // 4,
                                             1):
            pending["age"] += 1
            if pending["age"] < cfg.measure_patience:
                return self.journal.record(
                    "idle", target=self.target.name, completed=completed,
                    reason="awaiting a measurable post-swap window",
                )
            # Quiet since the swap: accept it unmeasured.
            self._pending = None
            return self.journal.record(
                "hold", target=self.target.name,
                reason="post-swap window never became measurable; "
                       "keeping the swap",
            )
        record = pending["record"]
        record["measured_post_p99_ms"] = round(p99_ms, 4)
        pre = pending["pre_p99_ms"]
        self._pending = None
        if pre and p99_ms > pre * (1.0 + cfg.rollback_threshold):
            await self.target.rollback(pending["token"])
            self.current = pending["prev_config"]
            self._streak_key, self._streak = None, 0
            return self.journal.record(
                "rollback", target=self.target.name,
                frm=record.get("to"), to=record.get("frm"),
                measured_pre_p99_ms=pre,
                measured_post_p99_ms=round(p99_ms, 4),
                reason=f"measured p99 regressed "
                       f"{p99_ms / pre:.2f}x > "
                       f"1+{cfg.rollback_threshold}",
            )
        return None  # swap confirmed; its record now carries both sides

    async def _plan_and_act(self, completed: int,
                            p99_ms: "float | None") -> "dict[str, Any]":
        cfg = self.config
        keys = np.asarray(self.target.keys)
        profile = self.target.sampler.profile(keys)
        plan = await asyncio.to_thread(self.planner.plan, keys, profile,
                                       self.current)
        self.last_plan = plan
        winner = plan.winner
        if winner is None:
            return self.journal.record(
                "hold", target=self.target.name,
                reason="planner produced no candidates",
            )
        current_key = self.current.key() if self.current else None
        incumbent = (plan.score_of(current_key)
                     if current_key is not None else None)
        if incumbent is not None:
            ratio = winner.predicted_p99_ns / incumbent.predicted_p99_ns
        else:
            ratio = 1.0 - cfg.improvement_threshold  # unknown incumbent:
            # the winner is taken at exactly the threshold, no better.
        base = {
            "target": self.target.name,
            "window_completed": completed,
            "window_p99_ms": round(p99_ms, 4) if p99_ms else None,
            "profile": profile.to_json(),
            "winner": winner.to_json(),
            "incumbent": incumbent.to_json() if incumbent else None,
            "predicted_ratio": round(ratio, 4),
        }
        if winner.config.key() == current_key \
                or ratio > 1.0 - cfg.improvement_threshold:
            self._streak_key, self._streak = None, 0
            return self.journal.record(
                "hold", reason="winner does not clear the improvement "
                               f"threshold ({ratio:.3f} > "
                               f"{1 - cfg.improvement_threshold:.3f})"
                if winner.config.key() != current_key
                else "incumbent already wins the ranking", **base)
        if winner.config.key() == self._streak_key:
            self._streak += 1
        else:
            self._streak_key, self._streak = winner.config.key(), 1
        if self._streak < cfg.hysteresis_windows:
            return self.journal.record(
                "hold", reason=f"hysteresis {self._streak}/"
                               f"{cfg.hysteresis_windows} windows", **base)
        if cfg.max_swaps is not None and self.swaps_done >= cfg.max_swaps:
            return self.journal.record(
                "hold", reason=f"swap budget exhausted "
                               f"({cfg.max_swaps})", **base)
        if cfg.dry_run:
            self._streak_key, self._streak = None, 0
            return self.journal.record(
                "plan", reason="dry run: winner cleared hysteresis; "
                               "swap suppressed",
                ranking=[c.to_json() for c in plan.ranked], **base)
        return await self._build_verify_swap(winner, keys, p99_ms, base)

    async def _build_verify_swap(self, winner, keys, p99_ms,
                                 base) -> "dict[str, Any]":
        cfg = self.config
        factory = winner.config.factory()
        built = await asyncio.to_thread(factory, keys)
        bad = await asyncio.to_thread(self._verify, built, keys)
        self._streak_key, self._streak = None, 0
        if bad:
            return self.journal.record(
                "verify_failed", reason=f"built winner mis-answered "
                                        f"{bad} probe queries; not "
                                        "swapped", **base)
        prev_config = self.current
        prev_factory = prev_config.factory() if prev_config else None
        token = await self.target.swap(built, factory, prev_factory)
        self.current = winner.config
        self.swaps_done += 1
        record = self.journal.record(
            "swap", frm=prev_config.key() if prev_config else None,
            to=winner.config.key(),
            measured_pre_p99_ms=round(p99_ms, 4) if p99_ms else None,
            measured_post_p99_ms=None, **base)
        self._pending = {
            "record": record,
            "token": token,
            "pre_p99_ms": p99_ms,
            "prev_config": prev_config,
            "age": 0,
        }
        return record

    def _verify(self, built: Any, keys: np.ndarray) -> int:
        """Probe the built winner against a ``searchsorted`` oracle;
        returns the number of wrong answers (0 = safe to swap)."""
        n = len(keys)
        take = np.linspace(0, n - 1, min(self.config.probe_set_size, n),
                           dtype=np.int64)
        probes = np.asarray(keys)[take]
        sampled = self.target.sampler.sample
        if len(sampled):
            extra = sampled[: self.config.probe_set_size]
            probes = np.concatenate((probes,
                                     np.asarray(extra, dtype=np.uint64)))
        expect = np.searchsorted(keys, probes, side="left")
        got = built.lookup_batch(np.ascontiguousarray(probes,
                                                      dtype=np.uint64))
        return int(np.sum(np.asarray(got) != expect))

    # -- the loop ---------------------------------------------------------

    async def run(self) -> None:
        """``step()`` every ``interval_s`` seconds until :meth:`stop`."""
        self._stopping = False
        while not self._stopping:
            try:
                await asyncio.sleep(self.config.interval_s)
            except asyncio.CancelledError:
                return
            if self._stopping:
                return
            await self.step()

    def start(self) -> "AutoTuner":
        if self._task is not None and not self._task.done():
            raise RuntimeError("tuner is already running")
        self._task = asyncio.create_task(
            self.run(), name=f"repro-tune-{self.target.name}"
        )
        return self

    async def stop(self) -> None:
        self._stopping = True
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None
