"""Candidate enumeration and cost-model scoring for the autotuner.

The planner answers one question: *given the traffic we actually see,
which servable config should this index be?*  Candidates come from the
advisor's eligible families (:func:`repro.core.advisor.
eligible_families`) plus an RMI tuning grid (layer2 size, bound type,
search algorithm); each is scored with the calibrated analytic
:class:`~repro.cost.model.CostModel` against the observed
:class:`~repro.autotune.sampler.WorkloadProfile`.

**Miniature probing.**  Scoring a candidate does not build it at full
scale.  Instead the planner builds a scaled-down twin on a bounded key
sample, answers the profile's own sampled queries through it while
tracing per-query operation counts (model evaluations, comparisons,
search-interval widths -- the same counters the workload runner
traces), and scales the counts to full size before pricing them:

* RMI twins keep *keys-per-leaf* constant (the mini layer2 is scaled
  down with the sample), so the traced intervals transfer directly;
* tree/PLA descent depths scale by ``log(n) / log(n_sample)``;
* a plain binary search's interval is the array, scaling by
  ``n / n_sample``;
* structure bytes scale linearly with ``n`` for cache-residency
  pricing, and the profile's ``coverage`` (access skew) shrinks the
  *effective* resident bytes -- hot-key traffic runs out of cache even
  when the structure does not fit.

Per-query nanosecond estimates then roll up into predicted p50/p99 via
plain quantiles, which makes the ranking provably invariant to the
order of the profile's sample (a property the test suite pins).  The
fixed dispatch overhead of the executing kernel backend comes from the
per-``(backend, family)`` calibration
(:func:`repro.cost.calibrate.cached_kernel_overhead`), served through
the artifact cache so no pair is ever re-probed on a machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from ..baselines import INDEX_TYPES, RMIAsIndex, UnsupportedDataError
from ..core.advisor import WorkloadRequirements, eligible_families
from ..core.builder import RMIConfig
from ..cost.model import CostModel
from .sampler import WorkloadProfile

__all__ = [
    "CandidateConfig",
    "CandidateFactory",
    "CandidateScore",
    "Plan",
    "Planner",
    "DEFAULT_FAMILIES",
    "kernel_family",
]

#: Families the planner considers by default: every family the serving
#: tier can build quickly from a key array and answer the batch
#: contract with.  (The scalar-heavy tries are advisory-only here.)
DEFAULT_FAMILIES = (
    "rmi", "pgm-index", "radix-spline", "b-tree", "hist-tree",
    "binary-search",
)

#: Index family -> calibration kernel family (the per-(backend, family)
#: dispatch-overhead probe of :mod:`repro.cost.calibrate`).
_KERNEL_FAMILY = {
    "rmi": "rmi",
    "pgm-index": "pla",
    "compressed-pgm": "pla",
    "radix-spline": "pla",
    "fiting-tree": "pla",
    "b-tree": "tree",
    "hist-tree": "tree",
}

#: Families whose evaluation phase is a depth-logarithmic descent, so
#: mini-probe evaluation steps scale by log(n)/log(n_sample).
_LOG_DEPTH_FAMILIES = frozenset((
    "pgm-index", "compressed-pgm", "b-tree", "hist-tree", "art", "alex",
    "fast", "fiting-tree",
))


def kernel_family(family: str) -> str:
    """The calibration family whose dispatch overhead prices ``family``."""
    return _KERNEL_FAMILY.get(family, "search")


@dataclass(frozen=True)
class CandidateConfig:
    """One servable configuration the planner can score and build."""

    family: str
    #: RMI grid knobs (``None`` for non-RMI families).
    layer2_size: "int | None" = None
    bound_type: str = "labs"
    search: str = "bin"
    #: Kernel backend name the candidate would serve under.
    backend: str = "numpy"

    def key(self) -> str:
        """Stable identity string (journal/streak bookkeeping)."""
        if self.family == "rmi":
            return (f"rmi[l2={self.layer2_size},{self.bound_type},"
                    f"{self.search}]@{self.backend}")
        return f"{self.family}@{self.backend}"

    def describe(self) -> str:
        if self.family == "rmi":
            return (f"rmi layer2={self.layer2_size} "
                    f"{self.bound_type}/{self.search}")
        return self.family

    def rmi_config(self) -> RMIConfig:
        if self.family != "rmi":
            raise ValueError(f"{self.family} has no RMI config")
        return RMIConfig(
            layer_sizes=(int(self.layer2_size or 1024),),
            bound_type=self.bound_type,
            search=self.search,
        )

    def factory(self) -> "CandidateFactory":
        return CandidateFactory(self)


class CandidateFactory:
    """Picklable ``factory(keys) -> index`` for one candidate.

    Both swap transports accept it: :class:`~repro.serve.router.
    LocalBackend` calls it in-process and the multi-process cluster
    ships it over the control pipe and calls it in the worker over the
    shard's own keys -- which is how per-shard tuning lets shards
    converge to different families.
    """

    def __init__(self, config: CandidateConfig) -> None:
        self.config = config

    def __call__(self, keys: np.ndarray) -> Any:
        cfg = self.config
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        if cfg.family == "rmi":
            # layer2_size must ride along explicitly: RMIAsIndex
            # re-applies it over any provided config.
            return RMIAsIndex(keys, layer2_size=int(cfg.layer2_size or 1024),
                              config=cfg.rmi_config())
        return INDEX_TYPES[cfg.family](keys)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CandidateFactory({self.config.key()})"


@dataclass
class CandidateScore:
    """One scored candidate: the ranking entry of a :class:`Plan`."""

    config: CandidateConfig
    predicted_p50_ns: float
    predicted_p99_ns: float
    predicted_mean_ns: float
    index_bytes: int
    #: Estimated full-scale build seconds (mini build time scaled).
    estimated_build_s: float
    #: Explanations: advisor sentences plus scoring notes.
    reasons: "list[str]" = field(default_factory=list)

    def finite(self) -> bool:
        return all(np.isfinite(v) for v in (
            self.predicted_p50_ns, self.predicted_p99_ns,
            self.predicted_mean_ns,
        ))

    def to_json(self) -> "dict[str, Any]":
        return {
            "config": self.config.key(),
            "family": self.config.family,
            "describe": self.config.describe(),
            "predicted_p50_ns": round(self.predicted_p50_ns, 2),
            "predicted_p99_ns": round(self.predicted_p99_ns, 2),
            "predicted_mean_ns": round(self.predicted_mean_ns, 2),
            "index_bytes": int(self.index_bytes),
            "estimated_build_s": round(self.estimated_build_s, 4),
            "reasons": list(self.reasons),
        }


@dataclass
class Plan:
    """An explainable ranked plan over the candidate set."""

    ranked: "list[CandidateScore]"
    profile: WorkloadProfile
    n: int
    sample_n: int
    backend: str
    skipped: "dict[str, str]" = field(default_factory=dict)

    @property
    def winner(self) -> "CandidateScore | None":
        return self.ranked[0] if self.ranked else None

    def score_of(self, key: str) -> "CandidateScore | None":
        for cand in self.ranked:
            if cand.config.key() == key:
                return cand
        return None

    def finite(self) -> bool:
        return bool(self.ranked) and all(c.finite() for c in self.ranked)

    def to_json(self) -> "dict[str, Any]":
        return {
            "n": int(self.n),
            "sample_n": int(self.sample_n),
            "backend": self.backend,
            "profile": self.profile.to_json(),
            "ranked": [c.to_json() for c in self.ranked],
            "skipped": dict(self.skipped),
        }

    def explain(self) -> str:
        """Human-readable plan: ranking, predictions, reasoning."""
        prof = self.profile
        lines = [
            f"plan over n={self.n:,} keys (mini sample {self.sample_n:,}, "
            f"backend {self.backend}): "
            f"{prof.requests:,} requests observed, "
            f"{prof.range_fraction * 100:.1f}% ranges, "
            f"coverage {prof.coverage:.2f}, "
            f"absent {prof.absent_fraction * 100:.1f}%",
        ]
        for rank, cand in enumerate(self.ranked, start=1):
            lines.append(
                f"{rank:2}. {cand.config.describe():<34} "
                f"p50 {cand.predicted_p50_ns:9.1f}ns  "
                f"p99 {cand.predicted_p99_ns:9.1f}ns  "
                f"{cand.index_bytes:12,}B"
            )
            for reason in cand.reasons:
                lines.append(f"      - {reason}")
        for family, why in self.skipped.items():
            lines.append(f"    (skipped {family}: {why})")
        return "\n".join(lines)


class Planner:
    """Score candidate configs against an observed workload profile."""

    def __init__(
        self,
        *,
        families: "tuple[str, ...] | None" = None,
        rmi_layer2_sizes: "tuple[int, ...]" = (1024, 16384),
        rmi_bound_types: "tuple[str, ...]" = ("labs",),
        rmi_searches: "tuple[str, ...]" = ("bin",),
        requirements: "WorkloadRequirements | None" = None,
        backend: "str | None" = None,
        sample_keys: int = 8192,
        probe_queries: int = 512,
        cost_model: "CostModel | None" = None,
        calibrate: bool = True,
        seed: int = 0,
    ) -> None:
        self.families = tuple(families) if families else DEFAULT_FAMILIES
        self.rmi_layer2_sizes = tuple(int(s) for s in rmi_layer2_sizes)
        self.rmi_bound_types = tuple(rmi_bound_types)
        self.rmi_searches = tuple(rmi_searches)
        self.requirements = requirements or WorkloadRequirements()
        self.sample_keys = max(int(sample_keys), 256)
        self.probe_queries = max(int(probe_queries), 16)
        self.cost_model = cost_model or CostModel()
        self.calibrate = calibrate
        self.seed = seed
        from ..kernels import get_backend

        self.backend = get_backend(backend).name
        self._overhead_memo: "dict[str, float]" = {}

    # -- calibration -----------------------------------------------------

    def _overhead_ns(self, family: str) -> float:
        """Calibrated per-lookup dispatch overhead for this backend and
        the candidate's kernel family (cached; probed at most once)."""
        if not self.calibrate:
            return float(self.cost_model.per_lookup_overhead_ns)
        kfam = kernel_family(family)
        hit = self._overhead_memo.get(kfam)
        if hit is None:
            from ..cost.calibrate import cached_kernel_overhead

            try:
                result = cached_kernel_overhead(self.backend, family=kfam)
                hit = float(result["per_lookup_overhead_ns"])
            except Exception:
                hit = float(self.cost_model.per_lookup_overhead_ns)
            self._overhead_memo[kfam] = hit
        return hit

    # -- candidate enumeration -------------------------------------------

    def candidates(
        self,
        key_sample: np.ndarray,
        current: "CandidateConfig | None" = None,
    ) -> "tuple[list[CandidateConfig], dict[str, str]]":
        """The candidate set plus the skip map (family -> reason)."""
        eligible = eligible_families(self.requirements, key_sample)
        out: "list[CandidateConfig]" = []
        skipped: "dict[str, str]" = {}
        for family in self.families:
            if family not in INDEX_TYPES:
                skipped[family] = "no registered index type"
                continue
            if family not in eligible:
                skipped[family] = ("excluded by the advisor for these "
                                   "requirements/data")
                continue
            if family == "rmi":
                for layer2 in self.rmi_layer2_sizes:
                    for bound in self.rmi_bound_types:
                        for search in self.rmi_searches:
                            out.append(CandidateConfig(
                                family="rmi", layer2_size=int(layer2),
                                bound_type=bound, search=search,
                                backend=self.backend,
                            ))
            else:
                out.append(CandidateConfig(family=family,
                                           backend=self.backend))
        if current is not None:
            current = replace(current, backend=self.backend)
            if all(c.key() != current.key() for c in out):
                # The incumbent is always scored, even when the advisor
                # would exclude it -- improvement is measured against it.
                out.append(current)
        return out, skipped

    # -- scoring ---------------------------------------------------------

    def plan(
        self,
        keys: np.ndarray,
        profile: WorkloadProfile,
        current: "CandidateConfig | None" = None,
    ) -> Plan:
        """Rank every candidate for ``keys`` under ``profile``."""
        keys = np.asarray(keys)
        n = len(keys)
        if n == 0:
            raise ValueError("cannot plan over an empty key array")
        # Evenly strided sorted sample: the mini twins' training data.
        stride = max(n // self.sample_keys, 1)
        key_sample = np.ascontiguousarray(keys[::stride][:self.sample_keys],
                                          dtype=np.uint64)
        n_s = len(key_sample)
        probes = self._probe_queries(keys, profile)
        eligibility = eligible_families(self.requirements, key_sample)
        candidates, skipped = self.candidates(key_sample, current)
        scored: "list[CandidateScore]" = []
        for config in candidates:
            try:
                score = self._score(config, key_sample, probes, n, n_s,
                                    profile)
            except UnsupportedDataError as exc:
                skipped[config.key()] = f"unsupported data: {exc}"
                continue
            advisor_notes = eligibility.get(config.family)
            if advisor_notes:
                score.reasons = list(advisor_notes) + score.reasons
            scored.append(score)
        scored.sort(key=lambda c: (c.predicted_p99_ns,
                                   c.predicted_p50_ns, c.config.key()))
        return Plan(ranked=scored, profile=profile, n=n, sample_n=n_s,
                    backend=self.backend, skipped=skipped)

    def _probe_queries(self, keys: np.ndarray,
                       profile: WorkloadProfile) -> np.ndarray:
        """The query set candidates are probed with.

        The profile's reservoir *is* the workload (skew and absent keys
        included); sorted so the result depends only on the sample's
        multiset, never its order.  An empty profile falls back to an
        evenly strided key sample -- a uniform synthetic stand-in.
        """
        if len(profile.sample):
            probes = np.sort(np.asarray(profile.sample, dtype=np.uint64))
        else:
            stride = max(len(keys) // self.probe_queries, 1)
            probes = np.ascontiguousarray(
                keys[::stride][:self.probe_queries], dtype=np.uint64
            )
        if len(probes) > self.probe_queries:
            take = np.linspace(0, len(probes) - 1, self.probe_queries,
                               dtype=np.int64)
            probes = probes[take]
        return probes

    def _score(
        self,
        config: CandidateConfig,
        key_sample: np.ndarray,
        probes: np.ndarray,
        n: int,
        n_s: int,
        profile: WorkloadProfile,
    ) -> CandidateScore:
        """Score one candidate via its miniature twin."""
        reasons: "list[str]" = []
        t0 = time.perf_counter()
        mini = self._build_mini(config, key_sample, n, n_s)
        build_s = time.perf_counter() - t0
        evals, comps, intervals = _trace(mini, probes)
        scale = float(n) / float(n_s)
        if config.family == "rmi":
            # Keys-per-leaf preserved: intervals and depth transfer.
            eval_note = "RMI depth is layer count; intervals transfer " \
                        "at constant keys-per-leaf"
            index_bytes = int(mini.size_in_bytes() * scale)
        elif config.family == "binary-search":
            intervals = intervals * scale
            eval_note = "binary search: interval is the whole array"
            index_bytes = mini.size_in_bytes()
        else:
            if config.family in _LOG_DEPTH_FAMILIES:
                depth_scale = (np.log2(max(n, 2))
                               / np.log2(max(n_s, 2)))
                evals = evals * depth_scale
                eval_note = (f"descent depth scaled by log(n)/log(n_s) "
                             f"= {depth_scale:.2f}")
            else:
                eval_note = "evaluation steps transfer unscaled"
            index_bytes = int(mini.size_in_bytes() * scale)
        algo = config.search if config.family == "rmi" else "bin"
        coverage = max(min(float(profile.coverage), 1.0), 1e-3)
        index_res = max(int(index_bytes * coverage), 1)
        data_res = max(int(n * 8 * coverage), 1)
        cm = self.cost_model
        per_query = np.empty(len(probes), dtype=np.float64)
        for i in range(len(probes)):
            e = cm.evaluation_ns(float(evals[i]), index_res)
            s = cm.search_ns(algo, float(comps[i]), float(intervals[i]),
                             data_res)
            per_query[i] = e + s
        overhead = self._overhead_ns(config.family)
        # A range query is two lower-bound lookups.
        range_mult = 1.0 + profile.range_fraction
        per_query = per_query * range_mult + overhead
        reasons.append(eval_note)
        reasons.append(
            f"scored on {len(probes)} profiled queries; coverage "
            f"{coverage:.2f} -> effective resident "
            f"{data_res / 1e6:.1f}MB data + {index_res / 1e6:.2f}MB index"
        )
        if overhead:
            reasons.append(
                f"+{overhead:.1f}ns calibrated "
                f"{self.backend}/{kernel_family(config.family)} dispatch "
                "overhead per lookup"
            )
        return CandidateScore(
            config=config,
            predicted_p50_ns=float(np.percentile(per_query, 50)),
            predicted_p99_ns=float(np.percentile(per_query, 99)),
            predicted_mean_ns=float(np.mean(per_query)),
            index_bytes=int(index_bytes),
            estimated_build_s=build_s * scale,
            reasons=reasons,
        )

    def _build_mini(self, config: CandidateConfig,
                    key_sample: np.ndarray, n: int, n_s: int) -> Any:
        if config.family != "rmi":
            return INDEX_TYPES[config.family](key_sample)
        layer2 = int(config.layer2_size or 1024)
        mini_layer2 = int(np.clip(round(layer2 * n_s / max(n, 1)), 4, n_s))
        cfg = RMIConfig(layer_sizes=(mini_layer2,),
                        bound_type=config.bound_type,
                        search=config.search)
        return RMIAsIndex(key_sample, layer2_size=mini_layer2, config=cfg)


def _trace(mini: Any, probes: np.ndarray):
    """Per-query (evaluation steps, comparisons, interval widths)."""
    m = len(probes)
    evals = np.empty(m, dtype=np.float64)
    comps = np.empty(m, dtype=np.float64)
    intervals = np.empty(m, dtype=np.float64)
    rmi = getattr(mini, "rmi", None)
    if rmi is not None:
        for i in range(m):
            t = rmi.lookup_traced(int(probes[i]))
            evals[i] = t.model_evaluations
            comps[i] = t.comparisons
            intervals[i] = max(t.interval_size, 1)
    else:
        for i in range(m):
            b = mini.search_bounds(int(probes[i]))
            width = max(b.hi - b.lo + 1, 1)
            evals[i] = b.evaluation_steps
            comps[i] = np.ceil(np.log2(width + 1))
            intervals[i] = width
    return evals, comps, intervals
