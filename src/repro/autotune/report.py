"""The autotuner's decision journal.

Every control decision -- observe, hold, plan, swap, rollback -- lands
here as one structured record, so a tuning run can be audited after
the fact: what the controller saw (the workload profile and the
measured window), what the planner predicted (the ranked candidates
with per-config p50/p99 estimates), what was done, and how the
prediction held up against the post-swap measurement.  The
predicted-vs-measured aggregation is the point: it validates the
calibrated cost model at serving scale, swap by swap.

Predicted latencies are analytic *model nanoseconds per lookup*
(index work on the modeled machine); measured latencies are *serving
milliseconds* (queueing + batching + Python dispatch on this host).
The two live in different regimes, so the journal compares them where
they are commensurable: the **improvement ratio**.  If the model says
the winner's p99 is 0.6x the incumbent's and the measured post-swap
p99 comes in at 0.7x the pre-swap window, the prediction erred by 0.1
-- that error, per swap, is what :meth:`DecisionJournal.
predicted_vs_measured` reports.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

__all__ = ["DecisionJournal"]


class DecisionJournal:
    """Append-only record of every autotune decision."""

    #: Record kinds, for reference: ``idle`` (window too quiet to act),
    #: ``hold`` (no candidate beat the threshold), ``plan`` (dry-run:
    #: winner found, swap suppressed), ``verify_failed`` (built winner
    #: answered the probe set wrong; never swapped), ``swap``,
    #: ``rollback``.
    KINDS = ("idle", "hold", "plan", "verify_failed", "swap", "rollback")

    def __init__(self, maxlen: "int | None" = 4096,
                 clock=time.time) -> None:
        self._records: "list[dict[str, Any]]" = []
        self._maxlen = maxlen
        self._clock = clock
        self._seq = 0

    def record(self, kind: str, **fields: Any) -> "dict[str, Any]":
        """Append one decision record and return it (mutable: the
        controller attaches the post-swap measurement to ``swap``
        records one window later)."""
        if kind not in self.KINDS:
            raise ValueError(f"unknown journal kind {kind!r}; "
                             f"known: {self.KINDS}")
        entry = {"seq": self._seq, "kind": kind, "t": self._clock()}
        entry.update(fields)
        self._seq += 1
        self._records.append(entry)
        if self._maxlen is not None and len(self._records) > self._maxlen:
            del self._records[: len(self._records) - self._maxlen]
        return entry

    # -- views -----------------------------------------------------------

    @property
    def records(self) -> "list[dict[str, Any]]":
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def of_kind(self, kind: str) -> "list[dict[str, Any]]":
        return [r for r in self._records if r["kind"] == kind]

    @property
    def swaps(self) -> "list[dict[str, Any]]":
        return self.of_kind("swap")

    @property
    def rollbacks(self) -> "list[dict[str, Any]]":
        return self.of_kind("rollback")

    def predicted_vs_measured(self) -> "dict[str, Any]":
        """Per-swap prediction error, plus the aggregate bound.

        For every completed swap (one with a post-swap measurement
        attached), compares the *predicted* improvement ratio
        (winner's modeled p99 / incumbent's modeled p99) against the
        *measured* one (post-swap window p99 / pre-swap window p99).
        ``max_abs_error`` over those per-swap errors is the error
        bound the tune benchmark commits.
        """
        entries = []
        for rec in self.swaps:
            pred = rec.get("predicted_ratio")
            pre = rec.get("measured_pre_p99_ms")
            post = rec.get("measured_post_p99_ms")
            if pred is None or not pre or post is None:
                continue
            measured = float(post) / float(pre)
            entries.append({
                "seq": rec["seq"],
                "to": rec.get("to"),
                "predicted_ratio": round(float(pred), 4),
                "measured_ratio": round(measured, 4),
                "abs_error": round(abs(float(pred) - measured), 4),
                "direction_agrees": (float(pred) < 1.0) == (measured < 1.0),
            })
        return {
            "swaps_measured": len(entries),
            "entries": entries,
            "max_abs_error": max((e["abs_error"] for e in entries),
                                 default=0.0),
            "directions_agree": all(e["direction_agrees"]
                                    for e in entries),
        }

    def summary(self) -> "dict[str, Any]":
        counts = {k: 0 for k in self.KINDS}
        for rec in self._records:
            counts[rec["kind"]] += 1
        return {
            "records": len(self._records),
            "counts": counts,
            "predicted_vs_measured": self.predicted_vs_measured(),
        }

    # -- persistence -----------------------------------------------------

    def to_json(self) -> "dict[str, Any]":
        return {"summary": self.summary(), "records": self.records}

    def dump(self, path: "str | os.PathLike") -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2) + "\n")
