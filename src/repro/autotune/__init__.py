"""Self-tuning serving: the closed-loop autotuner control plane.

The serving tier answers queries; this package decides *what should be
serving them*.  A near-zero-overhead :class:`~repro.autotune.sampler.
WorkloadSampler` taps live traffic into a bounded reservoir; the
:class:`~repro.autotune.planner.Planner` scores candidate index
configurations (families, RMI tuning grid, kernel backends) with the
calibrated cost model against the observed profile; the
:class:`~repro.autotune.controller.AutoTuner` applies hysteresis,
builds the winner off-thread, verifies it, hot-swaps it with zero
request loss, and rolls back if the measured p99 regresses.  Every
decision is auditable through the :class:`~repro.autotune.report.
DecisionJournal`, including how each swap's predicted improvement held
up against the measured one.
"""

from .controller import (
    AutoTuner,
    ServerTarget,
    ShardTarget,
    TunerConfig,
    infer_config,
)
from .planner import (
    DEFAULT_FAMILIES,
    CandidateConfig,
    CandidateFactory,
    CandidateScore,
    Plan,
    Planner,
    kernel_family,
)
from .report import DecisionJournal
from .sampler import WorkloadProfile, WorkloadSampler

__all__ = [
    "WorkloadSampler",
    "WorkloadProfile",
    "Planner",
    "Plan",
    "CandidateConfig",
    "CandidateFactory",
    "CandidateScore",
    "DEFAULT_FAMILIES",
    "kernel_family",
    "AutoTuner",
    "TunerConfig",
    "ServerTarget",
    "ShardTarget",
    "infer_config",
    "DecisionJournal",
]
