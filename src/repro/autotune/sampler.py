"""Near-zero-overhead live traffic sampling for the autotuner.

The control plane needs to know what the served workload *looks like*
-- which keys are hot, how many requests are ranges, how big the
batches run -- without taxing the hot path it observes.
:class:`WorkloadSampler` keeps a bounded reservoir of request keys
(vectorized Algorithm R: one RNG draw per *batch*, a handful of NumPy
ops regardless of traffic volume) plus a few scalar counters; the
serving tier calls :meth:`WorkloadSampler.observe` once per dispatched
batch with arrays it has already formed, so the added work is O(batch)
array writes amortized to nanoseconds per request.

:meth:`WorkloadSampler.profile` condenses the reservoir into a
:class:`WorkloadProfile`: an access-skew estimate (position-bucket
perplexity over the served key array -- uniform traffic covers every
bucket evenly, zipf traffic collapses onto a few), the absent-key
rate, the point/range mix, batch shape, and the arrival rate.  The
planner prices candidate configs against exactly this profile.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["WorkloadSampler", "WorkloadProfile"]

#: Position buckets used for the skew (coverage) estimate.
_SKEW_BUCKETS = 64


@dataclass(frozen=True)
class WorkloadProfile:
    """A bounded summary of observed traffic, priced by the planner."""

    #: Reservoir of observed keys (point keys and range lows), a
    #: uniform sample of the request stream.  Unordered by contract --
    #: every consumer must be invariant to sample permutation.
    sample: np.ndarray
    #: Total requests observed (points + ranges), not just sampled.
    requests: int
    points: int
    ranges: int
    batches: int
    #: Observation span in seconds (first to last observe call).
    duration_s: float
    #: Fraction of sampled keys absent from the served key array
    #: (lower-bound workloads still answer them; they change the search
    #: pattern, not correctness).
    absent_fraction: float
    #: Working-set fraction estimate in (0, 1]: the perplexity of the
    #: sample's position-bucket distribution over the served array,
    #: normalized by the bucket count.  1.0 = uniform access; zipf-hot
    #: traffic drives it toward 0, shrinking the cache-resident bytes
    #: the cost model charges for.
    coverage: float = 1.0

    @property
    def range_fraction(self) -> float:
        return self.ranges / self.requests if self.requests else 0.0

    @property
    def arrival_rate(self) -> float:
        """Observed requests per second (0.0 when the span is trivial)."""
        if self.duration_s <= 0.0:
            return 0.0
        return self.requests / self.duration_s

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    def to_json(self) -> "dict[str, Any]":
        """Journal-ready summary (the raw sample stays out of reports)."""
        return {
            "sample_size": int(len(self.sample)),
            "requests": int(self.requests),
            "points": int(self.points),
            "ranges": int(self.ranges),
            "batches": int(self.batches),
            "range_fraction": round(self.range_fraction, 4),
            "mean_batch_size": round(self.mean_batch_size, 2),
            "arrival_rate": round(self.arrival_rate, 2),
            "duration_s": round(self.duration_s, 4),
            "absent_fraction": round(self.absent_fraction, 4),
            "coverage": round(self.coverage, 4),
        }


@dataclass
class WorkloadSampler:
    """Bounded reservoir over the live request stream (single-writer).

    One sampler per server (or per shard); ``observe`` is called on the
    dispatch path with the batch arrays the server already built, so
    the reservoir is a uniform sample of all observed keys without any
    per-request bookkeeping.  Like the metrics objects, it is written
    from one thread (the event loop) only.
    """

    capacity: int = 4096
    seed: int = 0
    _keys: np.ndarray = field(init=False, repr=False)
    _filled: int = field(init=False, default=0)
    _seen: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.capacity = max(int(self.capacity), 1)
        self._keys = np.zeros(self.capacity, dtype=np.uint64)
        self._rng = np.random.default_rng(self.seed)
        self.points = 0
        self.ranges = 0
        self.batches = 0
        self._t_first: "float | None" = None
        self._t_last: "float | None" = None

    def observe(
        self,
        point_keys: np.ndarray,
        range_lows: np.ndarray,
        range_highs: np.ndarray,
        now: "float | None" = None,
    ) -> None:
        """Fold one dispatched batch into the reservoir.

        ``range_highs`` only contributes to shape accounting; the
        reservoir samples point keys and range *lows* (both are access
        positions a candidate index must answer fast).
        """
        npts, nrng = len(point_keys), len(range_lows)
        if not npts and not nrng:
            return
        self.points += npts
        self.ranges += nrng
        self.batches += 1
        t = time.monotonic() if now is None else float(now)
        if self._t_first is None:
            self._t_first = t
        self._t_last = t
        if nrng:
            batch = np.concatenate((
                np.asarray(point_keys, dtype=np.uint64),
                np.asarray(range_lows, dtype=np.uint64),
            )) if npts else np.asarray(range_lows, dtype=np.uint64)
        else:
            batch = np.asarray(point_keys, dtype=np.uint64)
        self._absorb(batch)

    def _absorb(self, batch: np.ndarray) -> None:
        """Vectorized Algorithm R over one batch of stream items."""
        m = len(batch)
        start = 0
        if self._filled < self.capacity:
            take = min(self.capacity - self._filled, m)
            self._keys[self._filled:self._filled + take] = batch[:take]
            self._filled += take
            self._seen += take
            start = take
        if start >= m:
            return
        rest = batch[start:]
        # Stream index of each remaining item (0-based): item i is kept
        # with probability capacity / (i + 1), landing in a uniform slot
        # -- the classic reservoir invariant, batched into one draw.
        idx = self._seen + np.arange(len(rest), dtype=np.int64)
        slots = self._rng.integers(0, idx + 1)
        keep = slots < self.capacity
        if np.any(keep):
            # Later duplicates of a slot overwrite earlier ones, which
            # is exactly processing the stream in order.
            self._keys[slots[keep]] = rest[keep]
        self._seen += len(rest)

    @property
    def sample(self) -> np.ndarray:
        """A copy of the current reservoir contents."""
        return self._keys[: self._filled].copy()

    @property
    def observed(self) -> int:
        return self.points + self.ranges

    def reset(self) -> None:
        """Forget everything (e.g. after a deliberate workload change)."""
        self._filled = 0
        self._seen = 0
        self.points = 0
        self.ranges = 0
        self.batches = 0
        self._t_first = None
        self._t_last = None

    def profile(self, keys: "np.ndarray | None" = None) -> WorkloadProfile:
        """Summarize the reservoir into a :class:`WorkloadProfile`.

        ``keys`` is the served (sorted) key array; with it the profile
        carries the absent-key rate and the skew-derived coverage
        estimate.  Without it both default to the neutral values.
        """
        sample = self.sample
        duration = 0.0
        if self._t_first is not None and self._t_last is not None:
            duration = max(self._t_last - self._t_first, 0.0)
        absent = 0.0
        coverage = 1.0
        if keys is not None and len(sample) and len(keys):
            keys = np.asarray(keys)
            pos = np.searchsorted(keys, sample, side="left")
            hit = (pos < len(keys)) & (keys[np.minimum(pos, len(keys) - 1)]
                                       == sample)
            absent = 1.0 - float(np.mean(hit))
            coverage = _coverage(pos, len(keys))
        return WorkloadProfile(
            sample=sample,
            requests=self.observed,
            points=self.points,
            ranges=self.ranges,
            batches=self.batches,
            duration_s=duration,
            absent_fraction=absent,
            coverage=coverage,
        )


def _coverage(positions: np.ndarray, n: int) -> float:
    """Perplexity-based working-set fraction of sampled access positions.

    Buckets the accessed positions into :data:`_SKEW_BUCKETS` equal
    slices of the key array and computes ``exp(entropy) / buckets`` of
    the bucket distribution: 1.0 when accesses spread evenly, tending
    to ``1/buckets`` when one bucket absorbs everything.  Order- and
    duplicate-stable: a permutation of the same positions yields the
    same value.
    """
    if n <= 0 or not len(positions):
        return 1.0
    buckets = min(_SKEW_BUCKETS, n)
    which = np.minimum(positions.astype(np.int64) * buckets // n,
                       buckets - 1)
    counts = np.bincount(which, minlength=buckets).astype(np.float64)
    p = counts / counts.sum()
    nz = p[p > 0.0]
    entropy = -float(np.sum(nz * np.log(nz)))
    return float(np.exp(entropy) / buckets)
