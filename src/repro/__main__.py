"""Top-level CLI.

Subcommands::

    python -m repro tune <dataset|file.sosd> [--n N]   CDFShop-style tuner
    python -m repro compare <dataset|file.sosd>        quick index shoot-out
    python -m repro guideline <num_keys>               paper §9.1 defaults

`python -m repro.bench` reproduces the paper's figures;
`python -m repro.data` generates and inspects datasets.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np


def _load_keys(spec: str, n: int, seed: int) -> np.ndarray:
    from repro.data import DATASETS, DISTRIBUTIONS, sosd, distributions
    from repro.data.io import read_sosd

    if Path(spec).exists():
        return read_sosd(spec)
    if spec in DATASETS:
        return sosd.generate(spec, n=n, seed=seed)
    if spec in DISTRIBUTIONS:
        return distributions.generate(spec, n=n, seed=seed)
    raise SystemExit(
        f"unknown dataset {spec!r}: not a file, SOSD generator, or "
        "distribution"
    )


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.bench.report import format_bytes, render_table
    from repro.core import grid_search, guideline_config, pareto_front

    keys = _load_keys(args.dataset, args.n, args.seed)
    sizes = [max(len(keys) // d, 16) for d in (800, 200, 50)]
    results = grid_search(keys, layer2_sizes=sizes)
    front = pareto_front(results)
    rows = [{
        "config": r.config.describe(),
        "size": format_bytes(r.size_bytes),
        "median_interval": r.median_interval,
        "cost_proxy": round(r.lookup_cost, 2),
    } for r in front]
    print(f"Pareto-optimal RMI configurations for {args.dataset} "
          f"({len(keys):,} keys):")
    print(render_table(
        ["config", "size", "median_interval", "cost_proxy"], rows
    ))
    print(f"\npaper guideline default: {guideline_config(len(keys)).describe()}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines import INDEX_TYPES, UnsupportedDataError
    from repro.bench.report import format_bytes, format_ns, render_table
    from repro.workload import make_workload, run_workload

    keys = _load_keys(args.dataset, args.n, args.seed)
    wl = make_workload(keys, num_lookups=args.lookups, seed=args.seed)
    rows = []
    for name, cls in INDEX_TYPES.items():
        try:
            index = cls(keys)
        except UnsupportedDataError as exc:
            print(f"{name}: skipped ({exc})")
            continue
        res = run_workload(index, wl, runs=1, chunk_size=args.chunk_size)
        rows.append({
            "index": name,
            "size": format_bytes(res.index_bytes),
            "est lookup": format_ns(res.estimated_ns_per_lookup),
            "checksum": "ok" if res.valid else "WRONG",
        })
    print(render_table(["index", "size", "est lookup", "checksum"], rows))
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    from repro.core import WorkloadRequirements, recommend_index

    keys = _load_keys(args.dataset, args.n, args.seed)
    req = WorkloadRequirements(
        needs_updates=args.updates,
        lookup_priority=args.lookup,
        build_priority=args.build,
        memory_priority=args.memory,
    )
    print(f"index recommendations for {args.dataset} "
          f"({len(keys):,}-key sample):\n")
    for i, rec in enumerate(recommend_index(keys, req, top=args.top), 1):
        print(f"{i}. {rec}")
        print()
    return 0


def _cmd_guideline(args: argparse.Namespace) -> int:
    from repro.core import guideline_config

    cfg = guideline_config(args.num_keys)
    print(f"paper §9.1 configuration for {args.num_keys:,} keys:")
    print(f"  {cfg.describe()}")
    print("  (spline root, LR leaves, local absolute bounds, binary "
          "search, second layer >= 0.01% of n)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro")
    sub = parser.add_subparsers(dest="command", required=True)

    tune = sub.add_parser("tune", help="grid-search Pareto-optimal configs")
    tune.add_argument("dataset")
    tune.add_argument("--n", type=int, default=100_000)
    tune.add_argument("--seed", type=int, default=42)
    tune.set_defaults(func=_cmd_tune)

    compare = sub.add_parser("compare", help="quick index comparison")
    compare.add_argument("dataset")
    compare.add_argument("--n", type=int, default=100_000)
    compare.add_argument("--seed", type=int, default=42)
    compare.add_argument("--lookups", type=int, default=5_000)
    compare.add_argument("--chunk-size", type=int, default=None,
                         help="split the batch lookup path into chunks")
    compare.set_defaults(func=_cmd_compare)

    rec = sub.add_parser("recommend",
                         help="rank index families per the §9.2 guideline")
    rec.add_argument("dataset")
    rec.add_argument("--n", type=int, default=50_000)
    rec.add_argument("--seed", type=int, default=42)
    rec.add_argument("--updates", action="store_true",
                     help="the workload requires inserts")
    rec.add_argument("--lookup", type=float, default=1.0)
    rec.add_argument("--build", type=float, default=0.2)
    rec.add_argument("--memory", type=float, default=0.2)
    rec.add_argument("--top", type=int, default=3)
    rec.set_defaults(func=_cmd_recommend)

    guide = sub.add_parser("guideline", help="print the paper's defaults")
    guide.add_argument("num_keys", type=int)
    guide.set_defaults(func=_cmd_guideline)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
