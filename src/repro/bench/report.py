"""Plain-text rendering of figure-reproduction results.

The paper's evaluation is a set of figures; our drivers regenerate each
figure's underlying series as rows of numbers.  This module renders
those rows as aligned text tables so results are readable in a
terminal and diffable in EXPERIMENTS.md.
"""

from __future__ import annotations

import csv
import io
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

import numpy as np

__all__ = ["FigureResult", "render_table", "format_bytes", "format_ns"]


def _plain(value: Any) -> Any:
    """Reduce a cell value to a plain Python scalar/list.

    Rows must survive a JSON round trip bit-identically (the artifact
    cache persists figure results as JSON and serves them back), so
    NumPy scalars are unwrapped at ``add`` time -- ``json`` would
    otherwise stringify them via ``default=str`` and a reloaded row
    would no longer equal the original.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    return value


@dataclass
class FigureResult:
    """One reproduced figure: metadata plus its data rows."""

    figure_id: str  # e.g. "fig04"
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, **row: Any) -> None:
        self.rows.append({k: _plain(v) for k, v in row.items()})

    def note(self, text: str) -> None:
        self.notes.append(text)

    def series(self, **filters: Any) -> list[dict[str, Any]]:
        """Rows matching all given column=value filters."""
        return [
            r for r in self.rows
            if all(r.get(k) == v for k, v in filters.items())
        ]

    def column(self, name: str, **filters: Any) -> list[Any]:
        """Values of one column for the filtered rows."""
        return [r[name] for r in self.series(**filters)]

    def render(self) -> str:
        lines = [f"== {self.figure_id}: {self.title} =="]
        lines.append(render_table(self.columns, self.rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def to_csv(self, path: "str | os.PathLike | None" = None) -> str:
        """Rows as CSV text (plot-tool friendly); optionally written
        to ``path``."""
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=self.columns,
                                extrasaction="ignore")
        writer.writeheader()
        writer.writerows(self.rows)
        text = buf.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text

    def to_json(self, path: "str | os.PathLike | None" = None) -> str:
        """Full result (metadata + rows + notes) as JSON."""
        payload = {
            "figure_id": self.figure_id,
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
            "notes": self.notes,
        }
        text = json.dumps(payload, indent=2, default=str)
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_payload(cls, payload: dict) -> "FigureResult":
        """Rebuild a result from its :meth:`to_json` payload.

        Because :meth:`add` stores only plain JSON scalars, the rows of
        a reloaded result are bit-identical to the originals.
        """
        return cls(
            figure_id=payload["figure_id"],
            title=payload["title"],
            columns=list(payload["columns"]),
            rows=[dict(r) for r in payload["rows"]],
            notes=list(payload["notes"]),
        )


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(columns: list[str], rows: Iterable[dict[str, Any]]) -> str:
    """Render dict rows as an aligned, pipe-separated text table."""
    rendered = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered)) if rendered else len(col)
        for i, col in enumerate(columns)
    ]
    header = " | ".join(c.ljust(w) for c, w in zip(columns, widths))
    rule = "-+-".join("-" * w for w in widths)
    body = [
        " | ".join(cell.rjust(w) for cell, w in zip(r, widths))
        for r in rendered
    ]
    return "\n".join([header, rule, *body])


def format_bytes(num: float) -> str:
    """Human-readable size, e.g. ``3.2 MiB``."""
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(num) < 1024 or unit == "GiB":
            return f"{num:.1f} {unit}" if unit != "B" else f"{num:.0f} B"
        num /= 1024
    return f"{num:.1f} GiB"  # pragma: no cover


def format_ns(ns: float) -> str:
    """Human-readable duration from nanoseconds."""
    if ns < 1_000:
        return f"{ns:.0f} ns"
    if ns < 1_000_000:
        return f"{ns / 1000:.1f} us"
    return f"{ns / 1e6:.1f} ms"
