"""The ``updates`` benchmark: read throughput under mixed writes.

The paper's protocol (and every committed benchmark before this one)
is read-only; this driver measures what the writable tier costs.  One
leg per write fraction -- ``0.0`` is the segmented read-only baseline,
then increasing write mixes -- each serving the same dataset through a
:class:`~repro.writable.WritableIndex` behind an
:class:`~repro.serve.server.IndexServer` with a background
:class:`~repro.writable.RebuildDaemon` swapping compacted bases in
while the stream runs.  Every read is validated against the workload
generator's incremental oracle, and the final live key set must match
it exactly, so the numbers are only reported for provably correct
answers.

Two gates bind in CI (``BENCH_updates.json``):

* **retention** -- read throughput under the *smoke* write mix (the
  lowest non-zero write fraction, 10% by default) must stay at least
  ``min_retention`` of the read-only leg (0.5x in CI: writes may
  cost, but reads must not collapse).  The heavier fractions document
  the rest of the curve -- at 50% writes on one core the background
  rebuilds alone consume a read-phase-sized slice of CPU, so the
  curve's ``min_retention`` is reported but gated separately (and
  leniently) via ``--min-retention-worst``;
* **staleness** -- the high-water staleness (age of the oldest
  unmerged write, sampled on every batch) must stay under
  ``max_staleness_s``, i.e. the rebuild loop provably keeps up.

The default rebuild trigger (``rebuild_min_delta`` = 4096 ~ 2% of
``n``) is the amortization point, not a tuning accident: a rebuild
costs O(n) regardless of how few delta entries it folds in, so firing
every ``k`` writes costs O(n/k) CPU per write -- ``k`` must be a fixed
fraction of ``n`` for bounded write amplification.  At the 10% smoke
mix the delta stays below the trigger (the leg measures the steady
shadowed-read path); the 50% leg crosses it repeatedly and exercises
rebuild + hot-swap under live traffic.

Each leg is run ``repeats`` times on fresh state and the
median-throughput repeat is reported: legs are only tens of
milliseconds of wall clock, where scheduler noise alone moves
throughput ~2x run to run.  Correctness is *not* sampled: every
repeat must return zero wrong answers and an exactly-matching final
live key set.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import time
from pathlib import Path
from typing import Any

import numpy as np

from ..baselines import INDEX_TYPES
from ..data import sosd
from ..serve import IndexServer
from ..serve.loadgen import run_mixed_closed_loop
from ..workload import make_mixed_workload
from ..writable import RebuildDaemon, WritableIndex

__all__ = [
    "DEFAULT_WRITE_FRACTIONS",
    "updates_report",
    "render_updates_report",
    "write_updates_report",
]

DEFAULT_WRITE_FRACTIONS = (0.0, 0.1, 0.5)


def _run_leg(
    keys: np.ndarray,
    *,
    index_type: str,
    write_fraction: float,
    num_ops: int,
    segment_size: int,
    delete_fraction: float,
    range_fraction: float,
    seed: int,
    rebuild_interval_s: float,
    rebuild_min_delta: int,
) -> "dict[str, Any]":
    workload = make_mixed_workload(
        keys,
        num_ops=num_ops,
        seed=seed,
        write_fraction=write_fraction,
        delete_fraction=delete_fraction,
        segment_size=segment_size,
        range_fraction=range_fraction,
    )
    base = INDEX_TYPES[index_type](keys)
    windex = WritableIndex(base)

    async def drive() -> "dict[str, Any]":
        # Sub-ms GIL slices: every leg (baseline included) serves with
        # fast loop<->worker handoffs, so the retention ratio compares
        # index paths, not thread-scheduling noise.
        async with IndexServer(windex,
                               gil_switch_interval_s=0.0005) as server:
            daemon = RebuildDaemon(
                windex, server=server,
                interval_s=rebuild_interval_s,
                min_delta=rebuild_min_delta,
            )
            if write_fraction > 0.0:
                await daemon.start()
            try:
                run = await run_mixed_closed_loop(server, workload,
                                                  bulk=True)
            finally:
                await daemon.stop()
            # Drain any still-buffered writes so the final state check
            # compares fully merged structures, then record the gauge.
            if windex.delta_len:
                await daemon.rebuild_now(force=True)
            run["rebuilds"] = daemon.rebuilds
            run["swaps"] = int(server.metrics.swaps.value)
            run["staleness_max_s"] = round(
                float(server.metrics.staleness_s.max), 6
            )
        return run

    run = asyncio.run(drive())
    final_ok = bool(np.array_equal(np.asarray(windex.keys),
                                   workload.final_live_keys))
    return {
        "write_fraction": float(write_fraction),
        "reads": run["reads"],
        "writes": run["writes"],
        "wrong": run["wrong"],
        "read_qps": run["read_qps"],
        "read_wall_s": run["read_wall_s"],
        "write_wall_s": run["write_wall_s"],
        "rebuilds": run["rebuilds"],
        "swaps": run["swaps"],
        "staleness_max_s": run["staleness_max_s"],
        "final_state_ok": final_ok,
        "final_live_n": int(len(workload.final_live_keys)),
        "delta_len_end": int(windex.delta_len),
    }


def updates_report(
    *,
    n: int = 200_000,
    dataset: str = "books",
    seed: int = 42,
    index_type: str = "rmi",
    num_ops: int = 20_000,
    segment_size: int = 512,
    delete_fraction: float = 0.4,
    range_fraction: float = 0.1,
    write_fractions: "tuple[float, ...]" = DEFAULT_WRITE_FRACTIONS,
    rebuild_interval_s: float = 0.05,
    rebuild_min_delta: int = 4096,
    repeats: int = 3,
) -> "dict[str, Any]":
    """Run the mixed read/write legs; return the gateable report."""
    keys = np.ascontiguousarray(
        sosd.generate(dataset, n=n, seed=seed), dtype=np.uint64
    )
    fractions = sorted(set(float(f) for f in write_fractions))
    if not fractions or fractions[0] != 0.0:
        fractions.insert(0, 0.0)  # the retention gate needs the baseline
    repeats = max(1, int(repeats))
    t0 = time.perf_counter()
    legs = []
    for wf in fractions:
        trials = [_run_leg(
            keys,
            index_type=index_type,
            write_fraction=wf,
            num_ops=num_ops,
            segment_size=segment_size,
            delete_fraction=delete_fraction,
            range_fraction=range_fraction,
            seed=seed,
            rebuild_interval_s=rebuild_interval_s,
            rebuild_min_delta=rebuild_min_delta,
        ) for _ in range(repeats)]
        # Median-throughput repeat carries the timing numbers; the
        # correctness fields aggregate over every repeat (one bad
        # repeat must fail the gate, not hide behind the median).
        leg = sorted(trials, key=lambda t: t["read_qps"])[len(trials) // 2]
        leg["wrong"] = int(sum(t["wrong"] for t in trials))
        leg["final_state_ok"] = all(t["final_state_ok"] for t in trials)
        leg["staleness_max_s"] = max(t["staleness_max_s"] for t in trials)
        legs.append(leg)
    baseline_qps = legs[0]["read_qps"] or 1.0
    for leg in legs:
        leg["retention"] = round(leg["read_qps"] / baseline_qps, 4)
    mixed = [leg for leg in legs if leg["write_fraction"] > 0.0]
    return {
        "benchmark": "updates",
        "dataset": dataset,
        "n": int(n),
        "seed": int(seed),
        "index_type": index_type,
        "num_ops": int(num_ops),
        "segment_size": int(segment_size),
        "delete_fraction": float(delete_fraction),
        "range_fraction": float(range_fraction),
        "rebuild_interval_s": float(rebuild_interval_s),
        "rebuild_min_delta": int(rebuild_min_delta),
        "repeats": repeats,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "wall_s": round(time.perf_counter() - t0, 3),
        "legs": legs,
        "total_wrong": int(sum(leg["wrong"] for leg in legs)),
        "all_final_states_ok": all(leg["final_state_ok"] for leg in legs),
        "min_retention": min((leg["retention"] for leg in mixed),
                             default=1.0),
        # The gated number: retention at the lowest non-zero write
        # fraction (the canonical 10% smoke mix).
        "smoke_retention": mixed[0]["retention"] if mixed else 1.0,
        "max_staleness_s": max((leg["staleness_max_s"] for leg in mixed),
                               default=0.0),
    }


def render_updates_report(report: "dict[str, Any]") -> str:
    lines = [
        f"updates benchmark -- {report['dataset']}, n={report['n']:,}, "
        f"{report['index_type']} base, {report['num_ops']:,} ops/leg "
        f"({report['wall_s']:.1f}s total)",
        f"{'write%':>7}  {'read qps':>12}  {'retention':>9}  "
        f"{'writes':>7}  {'rebuilds':>8}  {'stale max':>10}  "
        f"{'wrong':>5}  final",
    ]
    for leg in report["legs"]:
        lines.append(
            f"{leg['write_fraction'] * 100:6.1f}%  "
            f"{leg['read_qps']:12,.0f}  "
            f"{leg['retention']:8.2f}x  "
            f"{leg['writes']:7,}  "
            f"{leg['rebuilds']:8}  "
            f"{leg['staleness_max_s'] * 1e3:8.1f}ms  "
            f"{leg['wrong']:5}  "
            f"{'ok' if leg['final_state_ok'] else 'MISMATCH'}"
        )
    lines.append(
        f"smoke retention {report['smoke_retention']:.2f}x (gated), "
        f"curve min {report['min_retention']:.2f}x, high-water "
        f"staleness {report['max_staleness_s'] * 1e3:.1f}ms, "
        f"{report['total_wrong']} wrong answers"
    )
    return "\n".join(lines)


def write_updates_report(report: "dict[str, Any]",
                         path: "str | os.PathLike") -> None:
    Path(path).write_text(json.dumps(report, indent=2) + "\n")
