"""Process-pool execution of build sweeps, and the build benchmark.

RMI builds are pure CPU-bound functions of ``(keys, config)``, so a
hyperparameter sweep (Section 4.2 trains thousands of configurations)
parallelizes trivially across processes.  :func:`pool_map_keys` ships
the key array to each worker once (via the pool initializer) instead of
once per task, which matters when one 8-byte-per-key array backs
hundreds of configurations.

Results always come back in the order of the input items, regardless of
``jobs`` — sweeps are reproducible modulo wall-clock noise.

:func:`build_report` is the grouped-vs-reference build benchmark behind
``python -m repro.bench build`` and the committed ``BENCH_build.json``:
it times every configuration once with the grouped closed-form fit and
once with the per-segment reference path (``grouped_fit=False``) and
reports the speedups.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Callable, Iterable, Sequence, TypeVar

import numpy as np

from ..core.builder import RMIConfig
from ..cost.counters import BuildCounters
from ..data import sosd

__all__ = [
    "default_jobs",
    "pool_map",
    "pool_map_keys",
    "run_build_sweep",
    "build_report",
    "write_build_report",
    "render_build_report",
]

T = TypeVar("T")
R = TypeVar("R")

#: Key array shared with pool workers (set by the pool initializer).
_WORKER_KEYS: "np.ndarray | None" = None


def default_jobs() -> int:
    """Number of worker processes to use by default (the CPU count)."""
    return max(os.cpu_count() or 1, 1)


def _init_worker(keys: np.ndarray) -> None:
    global _WORKER_KEYS
    _WORKER_KEYS = keys


def _call_with_keys(payload: "tuple[Callable, T]") -> R:
    fn, item = payload
    return fn(_WORKER_KEYS, item)


def pool_map(
    fn: "Callable[[T], R]",
    items: Iterable[T],
    jobs: int = 1,
    initializer: "Callable[..., None] | None" = None,
    initargs: tuple = (),
) -> "list[R]":
    """``[fn(x) for x in items]``, optionally across worker processes.

    ``jobs <= 1`` runs in-process (no pickling, exact tracebacks).
    ``fn`` must be picklable (a module-level function) when ``jobs > 1``.
    Output order always matches input order.

    ``initializer(*initargs)`` runs once per worker before any item
    (e.g. activating the artifact cache in each process); in-process
    runs call it once directly, so the two paths see the same setup.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [fn(item) for item in items]
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(items)),
        initializer=initializer,
        initargs=initargs,
    ) as pool:
        return list(pool.map(fn, items))


def pool_map_keys(
    fn: "Callable[[np.ndarray, T], R]",
    keys: np.ndarray,
    items: Iterable[T],
    jobs: int = 1,
) -> "list[R]":
    """``[fn(keys, x) for x in items]`` with ``keys`` shared per worker.

    The key array crosses the process boundary once per worker (pool
    initializer), not once per item.  ``jobs <= 1`` runs in-process.
    Output order always matches input order.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [fn(keys, item) for item in items]
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(items)),
        initializer=_init_worker,
        initargs=(keys,),
    ) as pool:
        return list(pool.map(_call_with_keys, [(fn, item) for item in items]))


def _timed_build(keys: np.ndarray, config: RMIConfig) -> dict:
    """Build one configuration and report timings + work counters."""
    t0 = time.perf_counter()
    rmi = config.build(keys)
    wall = time.perf_counter() - t0
    st = rmi.build_stats
    counters = BuildCounters.from_rmi(rmi)
    return {
        "config": config.describe(),
        "model_types": list(config.model_types),
        "layer2_size": int(config.layer_sizes[0]),
        "bound_type": config.bound_type,
        "grouped_fit": bool(config.grouped_fit),
        "fit_path": counters.fit_path,
        "build_s": wall,
        "train_root_s": st.train_root_seconds,
        "segment_s": st.segment_seconds,
        "train_leaves_s": st.train_leaves_seconds,
        "bounds_s": st.bounds_seconds,
        "index_bytes": int(rmi.size_in_bytes()),
        "models_trained": counters.models_trained,
        "keys_touched": counters.keys_touched,
    }


def run_build_sweep(
    keys: np.ndarray,
    configs: Sequence[RMIConfig],
    jobs: int = 1,
    runs: int = 1,
) -> "list[dict]":
    """Time a build per configuration; best-of-``runs`` wall clock.

    Returns one dict per config, in config order.  With ``runs > 1``
    each configuration is rebuilt that many times and the fastest run's
    record is kept (standard best-of-N timing hygiene).
    """
    configs = list(configs)
    best: "list[dict | None]" = [None] * len(configs)
    for _ in range(max(runs, 1)):
        rows = pool_map_keys(_timed_build, keys, configs, jobs=jobs)
        for i, row in enumerate(rows):
            if best[i] is None or row["build_s"] < best[i]["build_s"]:
                best[i] = row
    return [row for row in best if row is not None]


#: Default configurations of the build benchmark.  ``ls -> lr`` is the
#: paper's Section 8 comparison config; ``ls -> cs`` exercises the
#: CS fit + fallback, whose reference path is the slowest of all.
_REPORT_MODEL_TYPES: "tuple[tuple[str, str], ...]" = (("ls", "lr"), ("ls", "cs"))


def build_report(
    n: int = 1_000_000,
    layer2_size: int = 2**14,
    dataset: str = "books",
    seed: int = 42,
    model_types: "Sequence[tuple[str, str]]" = _REPORT_MODEL_TYPES,
    bound_type: str = "labs",
    jobs: int = 1,
    runs: int = 1,
) -> dict:
    """Grouped vs per-segment build times, as a JSON-ready dict.

    Each (root, leaf) combination is built with ``grouped_fit=True``
    and with ``grouped_fit=False`` (the per-segment reference path) on
    the same keys; ``speedup`` is reference / grouped wall time.  The
    grouped builds additionally assert structural parity with their
    reference twin: identical leaf sizes and error-bound payloads.
    """
    keys = sosd.generate(dataset, n=n, seed=seed)
    pairs = [tuple(mt) for mt in model_types]
    grouped_cfgs = [
        RMIConfig(model_types=mt, layer_sizes=(int(layer2_size),),
                  bound_type=bound_type, grouped_fit=True)
        for mt in pairs
    ]
    reference_cfgs = [
        RMIConfig(model_types=mt, layer_sizes=(int(layer2_size),),
                  bound_type=bound_type, grouped_fit=False)
        for mt in pairs
    ]
    grouped_rows = run_build_sweep(keys, grouped_cfgs, jobs=jobs, runs=runs)
    reference_rows = run_build_sweep(keys, reference_cfgs, jobs=jobs,
                                     runs=runs)
    entries = []
    for mt, g, r in zip(pairs, grouped_rows, reference_rows):
        if g["index_bytes"] != r["index_bytes"]:
            raise AssertionError(
                f"{mt}: grouped and reference builds disagree on index "
                f"size ({g['index_bytes']} vs {r['index_bytes']} bytes)"
            )
        entries.append({
            "model_types": list(mt),
            "grouped": g,
            "reference": r,
            "speedup": r["build_s"] / max(g["build_s"], 1e-12),
        })
    speedups = [e["speedup"] for e in entries]
    return {
        "benchmark": "grouped vs per-segment RMI build",
        "dataset": dataset,
        "n": int(n),
        "layer2_size": int(layer2_size),
        "bound_type": bound_type,
        "seed": int(seed),
        "runs": int(runs),
        "jobs": int(jobs),
        "cpu_count": os.cpu_count(),
        "configs": entries,
        "min_speedup": min(speedups) if speedups else None,
        "max_speedup": max(speedups) if speedups else None,
    }


def write_build_report(report: dict, path: "str | os.PathLike") -> None:
    """Write a :func:`build_report` dict as pretty-printed JSON."""
    Path(path).write_text(json.dumps(report, indent=2) + "\n")


def render_build_report(report: dict) -> str:
    """Human-readable summary of a :func:`build_report` dict."""
    lines = [
        f"grouped vs per-segment RMI build -- {report['dataset']}, "
        f"n={report['n']:,}, layer2=2^{int(np.log2(report['layer2_size']))}, "
        f"{report['bound_type']}, best of {report['runs']}",
    ]
    for e in report["configs"]:
        arrow = "->".join(e["model_types"])
        lines.append(
            f"  {arrow:8s} grouped {e['grouped']['build_s']:8.3f}s   "
            f"reference {e['reference']['build_s']:8.3f}s   "
            f"speedup {e['speedup']:6.1f}x"
        )
    return "\n".join(lines)
