"""Machine-checkable registry of the paper's claims.

Every load-bearing sentence of the paper's evaluation, encoded as a
predicate over the figure drivers' outputs.  ``check_claims`` runs the
required experiments once (memoized) and reports pass/fail per claim --
the reproduction's executable abstract:

    python -m repro.bench claims --n 100000

Claims marked ``scale_sensitive`` involve effects the DESIGN.md scale
substitution can shift at very small ``n`` (they are verified at the
default benchmark scale); they are still checked, but a failure below
``min_n`` is reported as SKIPPED rather than FAILED.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .report import FigureResult, render_table

__all__ = ["Claim", "CLAIMS", "check_claims"]


@dataclass(frozen=True)
class Claim:
    """One verifiable statement from the paper."""

    claim_id: str
    section: str
    statement: str
    figures: tuple[str, ...]
    check: Callable[[dict[str, FigureResult]], bool]
    min_n: int = 0  # below this n, a failure is reported as SKIPPED


def _best(result: FigureResult, value: str, **filters) -> float:
    values = [float(r[value]) for r in result.series(**filters)]
    if not values:
        raise KeyError(f"no rows for {filters}")
    return min(values)


def _roots():
    return ("lr", "ls", "cs", "rx")


# --------------------------------------------------------------------------
# Claim predicates
# --------------------------------------------------------------------------


def _osmc_emptier_than_books(res):
    r = res["fig04"]
    segments = max(x["segments"] for x in r.rows)
    return all(
        r.series(dataset="osmc", root=root, segments=segments)[0]["empty_pct"]
        > r.series(dataset="books", root=root, segments=segments)[0]["empty_pct"]
        for root in _roots()
    )


def _fb_one_segment(res):
    r = res["fig05"]
    return all(
        row["largest_frac"] > 0.9
        for row in r.rows
        if row["dataset"] == "fb"
    )


def _leaf_lr_beats_ls(res):
    r = res["fig06"]
    for ds in ("books", "osmc", "wiki"):
        for root in ("ls", "cs"):
            for seg in {x["segments"] for x in r.rows}:
                lr = r.series(dataset=ds, combo=f"{root}->lr", segments=seg)
                ls = r.series(dataset=ds, combo=f"{root}->ls", segments=seg)
                if lr and ls and lr[0]["median_err"] > ls[0]["median_err"] * 1.05:
                    return False
    return True


def _smooth_datasets_accurate(res):
    r = res["fig06"]
    top = max(x["segments"] for x in r.rows)
    n = None
    for row in r.rows:
        n = max(n or 0, row["segments"] * 8)  # sweep max ~ n/8
    for ds in ("books", "wiki"):
        err = r.series(dataset=ds, combo="ls->lr", segments=top)[0][
            "median_err"
        ]
        if err > max(n * 0.001, 4):
            return False
    return True


def _local_bounds_beat_global(res):
    r = res["fig07"]
    for ds in ("books", "wiki"):
        smallest_seg = min(x["segments"] for x in r.rows)
        lind = r.series(dataset=ds, combo="ls->lr", bounds="lind",
                        segments=smallest_seg)[0]
        gabs = min(
            r.series(dataset=ds, combo="ls->lr", bounds="gabs"),
            key=lambda x: abs(x["index_bytes"] - lind["index_bytes"]),
        )
        if lind["median_interval"] > gabs["median_interval"] * 1.5:
            return False
    return True


def _fb_rmi_never_beats_binary(res):
    r = res["fig08"]
    base = r.series(dataset="fb", combo="binary-search")[0]["est_ns"]
    return all(
        row["est_ns"] >= base * 0.85
        for row in r.rows
        if row["dataset"] == "fb" and row["combo"] != "binary-search"
    )


def _books_rmi_beats_binary(res):
    r = res["fig08"]
    base = r.series(dataset="books", combo="binary-search")[0]["est_ns"]
    return all(
        row["est_ns"] < base
        for row in r.series(dataset="books", combo="ls->lr")
    )


def _bin_best_on_osmc(res):
    r = res["fig10"]
    for seg in {x["segments"] for x in r.rows}:
        rows = {x["search"]: x["est_ns"]
                for x in r.series(dataset="osmc", combo="ls->lr",
                                  segments=seg)}
        if "bin" in rows and "mexp" in rows and rows["bin"] > rows["mexp"] * 1.2:
            return False
    return True


def _mexp_wins_eventually_on_books(res):
    r = res["fig10"]
    top = max(x["segments"] for x in r.rows)
    rows = {x["search"]: x["est_ns"]
            for x in r.series(dataset="books", combo="ls->lr", segments=top)}
    return rows["mexp"] <= rows["bin"] * 1.1


def _bounds_cost_build_time(res):
    r = res["fig11"]
    nb = r.series(panel="bounds", variant="nb")[0]["bounds_s"]
    return all(
        r.series(panel="bounds", variant=v)[0]["bounds_s"] > nb
        for v in ("lind", "labs", "gind", "gabs")
    )


def _rmi_best_on_smooth(res):
    r = res["fig12"]
    for ds in ("books", "wiki"):
        rmi = _best(r, "est_ns", dataset=ds, index="rmi")
        others = [
            _best(r, "est_ns", dataset=ds, index=i)
            for i in ("pgm-index", "radix-spline", "alex", "b-tree")
        ]
        if rmi > min(others) * 1.05:  # qualitative claim; 5% tolerance
            return False
    return True


def _pgm_most_robust(res):
    r = res["fig12"]
    learned = ("rmi", "pgm-index", "radix-spline", "alex")
    worst_case = {
        i: max(_best(r, "est_ns", dataset=ds, index=i)
               for ds in ("books", "fb", "osmc", "wiki"))
        for i in learned
    }
    return min(worst_case, key=worst_case.get) == "pgm-index"


def _tries_reject_wiki(res):
    r = res["fig12"]
    wiki = {row["index"] for row in r.series(dataset="wiki")}
    return "art" not in wiki and "hist-tree" not in wiki


def _btree_fastest_build(res):
    r = res["fig14"]
    for ds in ("books", "osmc"):
        btree = _best(r, "build_s", dataset=ds, index="b-tree")
        for learned in ("rmi", "pgm-index", "radix-spline"):
            if btree >= _best(r, "build_s", dataset=ds, index=learned):
                return False
    return True


def _capped_indexes_flat_variance(res):
    r = res["ext_variance"]
    return all(
        row["p99_over_p50"] <= 1.5
        for row in r.rows
        if row["index"] in ("pgm-index", "radix-spline")
    )


CLAIMS: tuple[Claim, ...] = (
    Claim("empty-segments", "§5.1 / Fig 4",
          "osmc's clustering leaves more segments empty than books, for "
          "every root model type", ("fig04",), _osmc_emptier_than_books),
    Claim("fb-one-segment", "§5.1 / Fig 5",
          "on fb, almost all keys reside in a single segment, regardless "
          "of segment count and root model", ("fig05",), _fb_one_segment),
    Claim("leaf-lr-beats-ls", "§5.2 / Fig 6",
          "LR always achieves lower errors than LS on the second layer",
          ("fig06",), _leaf_lr_beats_ls),
    Claim("smooth-accurate", "§5.2 / Fig 6",
          "books and wiki reach very low median errors at large layer "
          "sizes", ("fig06",), _smooth_datasets_accurate),
    Claim("local-bounds-win", "§5.3 / Fig 7",
          "at similar index size, local bounds lead to smaller error "
          "intervals than global bounds", ("fig07",), _local_bounds_beat_global),
    Claim("fb-binary-search", "§6.1 / Fig 8",
          "none of the RMIs meaningfully beats binary search on fb",
          ("fig08",), _fb_rmi_never_beats_binary, min_n=20_000),
    Claim("books-beats-binary", "§6.1 / Fig 8",
          "every LS→LR configuration beats binary search on books",
          ("fig08",), _books_rmi_beats_binary),
    Claim("bin-best-osmc", "§6.3 / Fig 10",
          "Bin/MBin always achieve the fastest lookups on osmc",
          ("fig10",), _bin_best_on_osmc),
    Claim("mexp-overtakes", "§6.3 / Fig 10",
          "MExp is faster once the prediction error is sufficiently "
          "small (books, large sizes)", ("fig10",), _mexp_wins_eventually_on_books,
          min_n=20_000),
    Claim("bounds-build-cost", "§7 / Fig 11",
          "computing bounds requires evaluating the RMI on every key; "
          "NB skips that pass", ("fig11",), _bounds_cost_build_time),
    Claim("rmi-best-smooth", "§8.1 / Fig 12 / §9.2",
          "RMI offers the best lookup performance on smooth CDFs "
          "(books, wiki)", ("fig12",), _rmi_best_on_smooth, min_n=50_000),
    Claim("pgm-most-robust", "§8.1 / §9.2",
          "PGM-index is the most robust against data distributions",
          ("fig12",), _pgm_most_robust, min_n=20_000),
    Claim("tries-reject-wiki", "§8.1",
          "Hist-Tree and ART did not work on wiki (duplicates)",
          ("fig12",), _tries_reject_wiki),
    Claim("btree-fastest-build", "§8.2 / Fig 14",
          "B-tree provides the fastest build times; learned indexes "
          "trained on all keys are slower", ("fig14",), _btree_fastest_build),
    Claim("capped-variance", "footnote 2",
          "error-capped indexes have near-constant per-lookup cost",
          ("ext_variance",), _capped_indexes_flat_variance),
)


@dataclass
class ClaimOutcome:
    claim: Claim
    status: str  # "PASS" | "FAIL" | "SKIP" | "ERROR"
    detail: str = ""


def check_claims(n: int = 50_000, seed: int = 42,
                 claims: "tuple[Claim, ...] | None" = None
                 ) -> list[ClaimOutcome]:
    """Run all claims at scale ``n``; figures are computed once each."""
    from .registry import run_experiment

    claims = claims or CLAIMS
    cache: dict[str, FigureResult] = {}
    outcomes: list[ClaimOutcome] = []
    for claim in claims:
        try:
            for fid in claim.figures:
                if fid not in cache:
                    cache[fid] = run_experiment(fid, n=n, seed=seed)
            passed = claim.check(cache)
        except Exception as exc:  # pragma: no cover - defensive
            outcomes.append(ClaimOutcome(claim, "ERROR", repr(exc)))
            continue
        if passed:
            outcomes.append(ClaimOutcome(claim, "PASS"))
        elif n < claim.min_n:
            outcomes.append(ClaimOutcome(
                claim, "SKIP", f"scale-sensitive; needs n >= {claim.min_n}"
            ))
        else:
            outcomes.append(ClaimOutcome(claim, "FAIL"))
    return outcomes


def render_outcomes(outcomes: list[ClaimOutcome]) -> str:
    rows = [{
        "status": o.status,
        "claim": o.claim.claim_id,
        "paper": o.claim.section,
        "statement": o.claim.statement[:60]
        + ("..." if len(o.claim.statement) > 60 else ""),
    } for o in outcomes]
    summary = (f"{sum(o.status == 'PASS' for o in outcomes)} passed, "
               f"{sum(o.status == 'FAIL' for o in outcomes)} failed, "
               f"{sum(o.status == 'SKIP' for o in outcomes)} skipped")
    return render_table(["status", "claim", "paper", "statement"], rows) + \
        "\n" + summary
