"""Experiment registry: figure id -> driver, with CLI metadata.

Maps every reproduced figure to its driver in
:mod:`repro.bench.figures`; ``python -m repro.bench <figure>`` runs a
driver and prints its table (see :mod:`repro.bench.__main__`).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable

from . import extensions, figures
from .report import FigureResult

__all__ = [
    "Experiment",
    "EXPERIMENTS",
    "run_experiment",
    "run_experiment_cached",
    "experiment_ids",
]


@dataclass(frozen=True)
class Experiment:
    """One reproducible figure of the paper."""

    figure_id: str
    paper_reference: str
    summary: str
    driver: Callable[..., FigureResult]


EXPERIMENTS: dict[str, Experiment] = {
    e.figure_id: e
    for e in [
        Experiment("fig02", "Figure 2 / Section 4.3",
                   "dataset CDF structural summaries",
                   figures.fig02_datasets),
        Experiment("fig03", "Figure 3 / Section 5.1",
                   "root-model CDF approximations",
                   figures.fig03_root_approximations),
        Experiment("fig04", "Figure 4 / Section 5.1",
                   "percentage of empty segments",
                   figures.fig04_empty_segments),
        Experiment("fig05", "Figure 5 / Section 5.1",
                   "keys in the largest segment",
                   figures.fig05_largest_segment),
        Experiment("fig06", "Figure 6 / Section 5.2",
                   "median absolute prediction error of model combos",
                   figures.fig06_prediction_error),
        Experiment("fig07", "Figure 7 / Section 5.3",
                   "median error-interval size per bound type",
                   figures.fig07_error_bounds),
        Experiment("fig08", "Figure 8 / Section 6.1",
                   "lookup time per model combination",
                   figures.fig08_lookup_models),
        Experiment("fig09", "Figure 9 / Section 6.2",
                   "lookup time per error-bound type",
                   figures.fig09_lookup_bounds),
        Experiment("fig10", "Figure 10 / Section 6.3",
                   "lookup time per search algorithm",
                   figures.fig10_search_algorithms),
        Experiment("fig11", "Figure 11 / Section 7",
                   "build-time decomposition and copy ablation",
                   figures.fig11_build_time),
        Experiment("fig12", "Figure 12 / Section 8.1",
                   "lookup time vs size, all indexes",
                   figures.fig12_index_comparison),
        Experiment("fig13", "Figure 13 / Section 8.1",
                   "evaluation vs search share of lookups",
                   figures.fig13_eval_vs_search),
        Experiment("fig14", "Figure 14 / Section 8.2",
                   "build time vs size, all indexes",
                   figures.fig14_build_comparison),
        Experiment("ext_multilayer", "future work of Section 4.2",
                   "two-layer vs three-layer RMIs",
                   extensions.ext_multilayer),
        Experiment("ext_robust", "sought by Section 6.1",
                   "outlier-robust RMIs on fb",
                   extensions.ext_robust),
        Experiment("ext_distributions", "Section 4.3 remark",
                   "RMIs on statistical vs real-world data",
                   extensions.ext_distributions),
        Experiment("ext_variance", "footnote 2",
                   "per-lookup cost variance, RMI vs capped indexes",
                   extensions.ext_variance),
        Experiment("ext_baselines", "Sections 3.1/3.2",
                   "FAST, FITing-tree, compressed PGM vs Table 5 anchors",
                   extensions.ext_baselines),
        Experiment("ext_updates", "Table 1",
                   "insert support across structures, measured",
                   extensions.ext_updates),
    ]
}


def experiment_ids() -> list[str]:
    return list(EXPERIMENTS)


def run_experiment(figure_id: str, **kwargs) -> FigureResult:
    """Run one experiment by id (e.g. ``"fig04"``).

    Optional tuning kwargs (currently ``jobs``) are forwarded only to
    drivers whose signature accepts them, so ``python -m repro.bench
    all --jobs 8`` parallelizes the build figures without every driver
    having to grow the parameter.
    """
    return run_experiment_cached(figure_id, **kwargs)[0]


def run_experiment_cached(
    figure_id: str, **kwargs
) -> "tuple[FigureResult, bool]":
    """:func:`run_experiment`, consulting the active artifact cache.

    Returns ``(result, from_cache)``.  The cache key binds the driver's
    full signature with defaults applied, so ``fig04()`` and
    ``fig04(n=1_000_000)`` share one entry while any explicit parameter
    change produces a distinct one.  ``jobs`` only affects wall-clock,
    not results, and is excluded from the key.  Without an active cache
    this is exactly a driver call with ``from_cache=False``.
    """
    try:
        exp = EXPERIMENTS[figure_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise ValueError(f"unknown experiment {figure_id!r}; known: {known}")
    if "jobs" in kwargs:
        accepted = inspect.signature(exp.driver).parameters
        if "jobs" not in accepted:
            kwargs = {k: v for k, v in kwargs.items() if k != "jobs"}
    try:
        bound = inspect.signature(exp.driver).bind(**kwargs)
        bound.apply_defaults()
        fp_kwargs = {
            k: v for k, v in bound.arguments.items() if k != "jobs"
        }
    except TypeError:
        fp_kwargs = None  # unbindable -> uncacheable, run the driver

    from .. import cache as artifact_cache

    return artifact_cache.figure_result(
        figure_id, fp_kwargs, lambda: exp.driver(**kwargs)
    )
