"""Per-figure experiment drivers and the experiment registry."""

from . import figures
from .registry import EXPERIMENTS, Experiment, experiment_ids, run_experiment
from .report import FigureResult, format_bytes, format_ns, render_table

__all__ = [
    "figures",
    "EXPERIMENTS",
    "Experiment",
    "experiment_ids",
    "run_experiment",
    "FigureResult",
    "render_table",
    "format_bytes",
    "format_ns",
]
