"""Per-figure experiment drivers and the experiment registry."""

from . import figures
from .parallel import (
    build_report,
    default_jobs,
    pool_map,
    pool_map_keys,
    run_build_sweep,
)
from .registry import EXPERIMENTS, Experiment, experiment_ids, run_experiment
from .report import FigureResult, format_bytes, format_ns, render_table

__all__ = [
    "figures",
    "pool_map",
    "pool_map_keys",
    "run_build_sweep",
    "build_report",
    "default_jobs",
    "EXPERIMENTS",
    "Experiment",
    "experiment_ids",
    "run_experiment",
    "FigureResult",
    "render_table",
    "format_bytes",
    "format_ns",
]
