"""CLI: reproduce one or all figures of the paper.

Usage::

    python -m repro.bench list
    python -m repro.bench fig04 [--n 200000] [--seed 7] [--cache-dir DIR]
    python -m repro.bench all [--n 50000] [--jobs 8]
    python -m repro.bench figures --all --jobs 8 --cache-dir .artifact-cache
    python -m repro.bench figures --all --cache-dir .bench-cache \\
        --cold-warm --out BENCH_figures.json --min-speedup 5
    python -m repro.bench cache stats --cache-dir .artifact-cache
    python -m repro.bench cache gc --cache-dir .artifact-cache --max-age-days 30
    python -m repro.bench build --n 1000000 --layer2-size 16384 \\
        --out BENCH_build.json --min-speedup 20
    python -m repro.bench kernels --n 100000 --out BENCH_kernels.json \\
        --min-speedup 5 [--gate-backend numba]
    python -m repro.bench updates --n 200000 --out BENCH_updates.json \\
        --min-retention 0.5 --max-staleness-s 2.0
    python -m repro.bench tune --n 200000 --out BENCH_tune.json \\
        --min-improvement 0.1
    python -m repro.bench tune --check BENCH_tune.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .registry import EXPERIMENTS, run_experiment


def _figures_main(argv: "list[str]") -> int:
    """``figures`` subcommand: the parallel, cached suite runner."""
    from .suite import (
        FIGURE_SUITE,
        render_suite_report,
        run_suite,
        suite_report,
        write_suite_report,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench figures",
        description="Run the figure suite through the artifact cache",
    )
    parser.add_argument("--all", action="store_true",
                        help="run every figure (figs 2-14; the default)")
    parser.add_argument("--only", metavar="IDS", default=None,
                        help="comma-separated figure ids, e.g. fig04,fig12")
    parser.add_argument("--n", type=int, default=None,
                        help="dataset size (keys per dataset)")
    parser.add_argument("--seed", type=int, default=None,
                        help="dataset / workload seed")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1 = in-process)")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory (shared by workers)")
    parser.add_argument("--cold-warm", action="store_true",
                        help="empty the cache, run cold then warm, and "
                        "verify warm results are cached and bit-identical")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the cold/warm JSON report here")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit 1 unless the warm suite is at least this "
                        "much faster than cold (implies --cold-warm)")
    args = parser.parse_args(argv)

    figure_ids = list(FIGURE_SUITE)
    if args.only:
        figure_ids = [f.strip() for f in args.only.split(",") if f.strip()]
    cold_warm = args.cold_warm or args.min_speedup is not None
    if cold_warm:
        if args.cache_dir is None:
            parser.error("--cold-warm requires --cache-dir")
        report = suite_report(figure_ids, n=args.n, seed=args.seed,
                              jobs=args.jobs, cache_dir=args.cache_dir)
        print(render_suite_report(report))
        if args.out:
            write_suite_report(report, args.out)
            print(f"[report written to {args.out}]")
        failed = []
        if not report["bit_identical"]:
            failed.append("warm results are not bit-identical to cold")
        if not report["all_warm_from_cache"]:
            failed.append("some warm figures were not served from the cache")
        if (args.min_speedup is not None
                and report["speedup"] < args.min_speedup):
            failed.append(f"speedup {report['speedup']:.1f}x is below the "
                          f"required {args.min_speedup:.1f}x")
        for reason in failed:
            print(f"FAIL: {reason}")
        if not failed and args.min_speedup is not None:
            print(f"OK: speedup {report['speedup']:.1f}x >= "
                  f"{args.min_speedup:.1f}x, all warm results cached and "
                  "bit-identical")
        return 1 if failed else 0

    run = run_suite(figure_ids, n=args.n, seed=args.seed, jobs=args.jobs,
                    cache_dir=args.cache_dir)
    for f in run["figures"]:
        if "error" in f:
            print(f"{f['figure']}  {f['seconds']:8.3f}s  FAILED")
            print(f["error"], file=sys.stderr)
            continue
        source = "cache" if f["from_cache"] else "computed"
        print(f"{f['figure']}  {f['seconds']:8.3f}s  {f['rows']:4d} rows  "
              f"[{source}]")
    print(f"total {run['wall_s']:.3f}s across {len(run['figures'])} figures "
          f"(jobs={args.jobs})")
    if run["failed"]:
        print(f"FAIL: {len(run['failed'])} figure(s) raised: "
              f"{', '.join(run['failed'])}")
        return 1
    return 0


def _kernels_main(argv: "list[str]") -> int:
    """``kernels`` subcommand: per-kernel backend microbenchmark."""
    from .kernels import (
        GATE_METRIC,
        INDEX_CHOICES,
        gate_speedups,
        kernels_report,
        render_kernels_report,
        resolve_gate_backend,
        write_kernels_report,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench kernels",
        description="Microbenchmark the kernel backends (routing, "
        "bounded search, fused lookup/serve) and gate the compiled "
        "speedup over the NumPy reference",
    )
    parser.add_argument("--n", type=int, default=100_000,
                        help="dataset size (default: the 100k smoke)")
    parser.add_argument("--dataset", default="books",
                        help="dataset name (default books)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--layer2-size", type=int, default=2**14,
                        help="second-layer size of the smoke RMI")
    parser.add_argument("--bound-type", default="labs",
                        help="error-bound strategy of the smoke RMI")
    parser.add_argument("--queries", type=int, default=None,
                        help="lookup batch size (default: n)")
    parser.add_argument("--runs", type=int, default=9,
                        help="best-of-N timing runs per kernel")
    parser.add_argument("--backends", "--backend", dest="backends",
                        default=None,
                        help="comma-separated backend names "
                        "(default: all known)")
    parser.add_argument("--index", default=None,
                        help="comma-separated index sections to run: 'rmi' "
                        f"and/or family baselines {list(INDEX_CHOICES[1:])} "
                        "(default: all; with rmi excluded, --min-speedup "
                        "binds on the minimum across selected families)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the JSON report here")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit 1 unless the gate backend's fused-"
                        f"{GATE_METRIC} speedup over numpy reaches this")
    parser.add_argument("--gate-backend", default="best-compiled",
                        help="backend the --min-speedup gate binds on: a "
                        "name (CI pins numba) or 'best-compiled' "
                        "(default: the fastest available compiled one)")
    args = parser.parse_args(argv)

    backends = None
    if args.backends:
        backends = [b.strip() for b in args.backends.split(",") if b.strip()]
    indexes = None
    if args.index:
        indexes = [i.strip() for i in args.index.split(",") if i.strip()]
    report = kernels_report(
        n=args.n,
        dataset=args.dataset,
        seed=args.seed,
        layer2_size=args.layer2_size,
        bound_type=args.bound_type,
        queries=args.queries,
        runs=args.runs,
        backends=backends,
        indexes=indexes,
    )
    gate_name = resolve_gate_backend(report, args.gate_backend)
    if args.min_speedup is not None:
        report["gate"] = {
            "backend": gate_name,
            "metric": GATE_METRIC,
            "min_speedup": args.min_speedup,
            "speedup": (gate_speedups(report).get(gate_name)
                        if gate_name else None),
        }
        report["gate"]["passed"] = bool(
            report["gate"]["speedup"] is not None
            and report["gate"]["speedup"] >= args.min_speedup
        )
    print(render_kernels_report(report))
    if args.out:
        write_kernels_report(report, args.out)
        print(f"[report written to {args.out}]")
    if args.min_speedup is not None:
        gate = report["gate"]
        if gate["backend"] is None:
            print(f"FAIL: gate backend {args.gate_backend!r} is not an "
                  "available compiled backend")
            return 1
        if not gate["passed"]:
            shown = (f"{gate['speedup']:.2f}x"
                     if gate["speedup"] is not None
                     else "unavailable (no numpy baseline ran)")
            print(f"FAIL: {gate['backend']} {GATE_METRIC} speedup "
                  f"{shown} is below the required "
                  f"{args.min_speedup:.1f}x")
            return 1
        print(f"OK: {gate['backend']} {GATE_METRIC} speedup "
              f"{gate['speedup']:.2f}x >= {args.min_speedup:.1f}x "
              "(bit-identical on all backends)")
    return 0


def _updates_main(argv: "list[str]") -> int:
    """``updates`` subcommand: mixed read/write serving benchmark."""
    from .updates import (
        DEFAULT_WRITE_FRACTIONS,
        render_updates_report,
        updates_report,
        write_updates_report,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench updates",
        description="Serve a mixed read/write stream through the "
        "writable tier (delta buffer + background rebuild + hot-swap) "
        "and gate read-throughput retention and staleness",
    )
    parser.add_argument("--n", type=int, default=200_000,
                        help="dataset size (default 200k)")
    parser.add_argument("--dataset", default="books",
                        help="dataset name (default books)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--index", dest="index_type", default="rmi",
                        help="base index family (default rmi)")
    parser.add_argument("--ops", type=int, default=20_000,
                        help="operations per leg (default 20k)")
    parser.add_argument("--segment-size", type=int, default=512,
                        help="ops per closed-loop segment (default 512)")
    parser.add_argument("--write-fractions", default=None,
                        help="comma-separated write fractions (default "
                        f"{','.join(str(f) for f in DEFAULT_WRITE_FRACTIONS)}"
                        "; 0.0 is always included as the baseline)")
    parser.add_argument("--delete-fraction", type=float, default=0.4,
                        help="deletes among writes (default 0.4)")
    parser.add_argument("--range-fraction", type=float, default=0.1,
                        help="range queries among reads (default 0.1)")
    parser.add_argument("--rebuild-interval-s", type=float, default=0.05,
                        help="background rebuild poll interval")
    parser.add_argument("--rebuild-min-delta", type=int, default=4096,
                        help="delta entries before a rebuild fires "
                        "(default 4096 ~ 2%% of n: a rebuild costs O(n), "
                        "so the trigger must scale with n to amortize)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="fresh-state repeats per leg; the median-"
                        "throughput repeat is reported (default 3)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the JSON report here")
    parser.add_argument("--min-retention", type=float, default=None,
                        help="exit 1 unless the smoke mix (lowest "
                        "non-zero write fraction) retains at least this "
                        "fraction of read-only throughput")
    parser.add_argument("--min-retention-worst", type=float, default=None,
                        help="exit 1 unless every mixed leg (including "
                        "the heaviest write mix) retains at least this")
    parser.add_argument("--max-staleness-s", type=float, default=None,
                        help="exit 1 if high-water staleness exceeds this")
    args = parser.parse_args(argv)

    fractions = DEFAULT_WRITE_FRACTIONS
    if args.write_fractions:
        fractions = tuple(float(f) for f in
                          args.write_fractions.split(",") if f.strip())
    report = updates_report(
        n=args.n,
        dataset=args.dataset,
        seed=args.seed,
        index_type=args.index_type,
        num_ops=args.ops,
        segment_size=args.segment_size,
        delete_fraction=args.delete_fraction,
        range_fraction=args.range_fraction,
        write_fractions=fractions,
        rebuild_interval_s=args.rebuild_interval_s,
        rebuild_min_delta=args.rebuild_min_delta,
        repeats=args.repeats,
    )
    gated = (args.min_retention is not None
             or args.min_retention_worst is not None
             or args.max_staleness_s is not None)
    if gated:
        report["gate"] = {
            "min_retention": args.min_retention,
            "min_retention_worst": args.min_retention_worst,
            "max_staleness_s": args.max_staleness_s,
            "smoke_retention": report["smoke_retention"],
            "retention": report["min_retention"],
            "staleness_s": report["max_staleness_s"],
        }
    print(render_updates_report(report))
    if args.out:
        write_updates_report(report, args.out)
        print(f"[report written to {args.out}]")
    failed = []
    if report["total_wrong"]:
        failed.append(f"{report['total_wrong']} oracle-mismatched answers")
    if not report["all_final_states_ok"]:
        failed.append("final live key set diverged from the oracle")
    if (args.min_retention is not None
            and report["smoke_retention"] < args.min_retention):
        failed.append(
            f"smoke-mix read retention {report['smoke_retention']:.2f}x "
            f"is below the required {args.min_retention:.2f}x"
        )
    if (args.min_retention_worst is not None
            and report["min_retention"] < args.min_retention_worst):
        failed.append(
            f"worst-leg read retention {report['min_retention']:.2f}x "
            f"is below the required {args.min_retention_worst:.2f}x"
        )
    if (args.max_staleness_s is not None
            and report["max_staleness_s"] > args.max_staleness_s):
        failed.append(
            f"high-water staleness {report['max_staleness_s']:.3f}s "
            f"exceeds the {args.max_staleness_s:.3f}s bound"
        )
    for reason in failed:
        print(f"FAIL: {reason}")
    if not failed and gated:
        print(
            f"OK: smoke retention {report['smoke_retention']:.2f}x "
            f"(curve min {report['min_retention']:.2f}x), staleness "
            f"{report['max_staleness_s'] * 1e3:.1f}ms, all answers "
            "oracle-validated"
        )
    return 1 if failed else 0


def _cache_main(argv: "list[str]") -> int:
    """``cache`` subcommand: inspect and collect the artifact store
    plus the compiled-kernel build cache (which lives outside the
    store, keyed by source digest -- merged here at the CLI layer)."""
    from .. import cache as artifact_cache
    from ..kernels import cext_backend

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench cache",
        description="Artifact cache maintenance",
    )
    parser.add_argument("action", choices=["stats", "gc"])
    parser.add_argument("--cache-dir", default=None,
                        help="cache directory (default: $REPRO_CACHE_DIR)")
    parser.add_argument("--json", action="store_true",
                        help="emit compact single-line JSON (machine-"
                        "readable output for CI and the serve CLI)")
    parser.add_argument("--all", action="store_true",
                        help="[gc] drop every entry")
    parser.add_argument("--max-age-days", type=float, default=None,
                        help="[gc] additionally drop entries older than this")
    args = parser.parse_args(argv)

    if args.cache_dir is not None:
        cache = artifact_cache.activate(args.cache_dir)
    else:
        cache = artifact_cache.active_cache()
        if cache is None:
            parser.error("no cache directory: pass --cache-dir or set "
                         "REPRO_CACHE_DIR")

    if args.action == "stats":
        stats = cache.stats()
        stats["kernels"] = cext_backend.build_cache_stats()
        if args.json:
            print(json.dumps(stats, sort_keys=True, separators=(",", ":")))
        else:
            print(json.dumps(stats, indent=2))
        return 0
    outcome = cache.gc(max_age_days=args.max_age_days, drop_all=args.all)
    outcome["kernels"] = cext_backend.build_cache_gc(
        max_age_days=args.max_age_days, drop_all=args.all
    )
    if args.json:
        print(json.dumps(outcome, sort_keys=True, separators=(",", ":")))
    else:
        print(f"gc: removed {outcome['removed']}, kept {outcome['kept']}")
        k = outcome["kernels"]
        print(f"kernels gc: removed {k['removed']}, kept {k['kept']}")
    return 0


def _tune_main(argv: "list[str]") -> int:
    """``tune`` subcommand: closed-loop autotuning benchmark."""
    from .tune import (
        check_tune_report,
        render_tune_report,
        tune_report,
        write_tune_report,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench tune",
        description="Drive a skew-shifting workload against the "
        "closed-loop autotuner: the controller must converge to a "
        "measurably better config, with zero wrong answers and zero "
        "dropped requests across every swap",
    )
    parser.add_argument("--check", metavar="FILE", default=None,
                        help="only structurally validate a committed "
                        "report (no run)")
    parser.add_argument("--n", type=int, default=200_000)
    parser.add_argument("--dataset", default="books")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--start-layer2", type=int, default=16,
                        help="layer2 of the mis-tuned starting RMI "
                        "(default 16: ~n/16 keys per leaf)")
    parser.add_argument("--chunks-per-window", type=int, default=128,
                        help="bulk dispatches per control window")
    parser.add_argument("--bulk-chunk", type=int, default=4096,
                        help="queries per bulk dispatch")
    parser.add_argument("--tuning-windows", type=int, default=6,
                        help="max control windows to converge in")
    parser.add_argument("--skew-windows", type=int, default=3,
                        help="Zipf windows after the shift (default 3)")
    parser.add_argument("--min-improvement", type=float, default=0.10,
                        help="gate: measured converged p99 must beat the "
                        "start phase median by this fraction")
    parser.add_argument("--layer2-grid", default="1024,16384",
                        help="RMI layer2 sizes the planner considers")
    parser.add_argument("--no-calibrate", action="store_true",
                        help="skip kernel-overhead calibration")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory (persists "
                        "calibrations)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the JSON report here")
    args = parser.parse_args(argv)
    if args.check is not None:
        problems = check_tune_report(args.check)
        for problem in problems:
            print(f"FAIL: {problem}")
        if not problems:
            print(f"OK: {args.check} is structurally sound and its "
                  "gates passed")
        return 1 if problems else 0
    if args.cache_dir is not None:
        from .. import cache as artifact_cache

        artifact_cache.activate(args.cache_dir)
    report = tune_report(
        dataset=args.dataset,
        n=args.n,
        seed=args.seed,
        start_layer2=args.start_layer2,
        chunks_per_window=args.chunks_per_window,
        bulk_chunk=args.bulk_chunk,
        tuning_windows=args.tuning_windows,
        skew_windows=args.skew_windows,
        min_improvement=args.min_improvement,
        layer2_grid=tuple(int(s) for s in args.layer2_grid.split(",")
                          if s.strip()),
        calibrate=not args.no_calibrate,
    )
    print(render_tune_report(report))
    if args.out:
        write_tune_report(report, args.out)
        print(f"[report written to {args.out}]")
    return 0 if report["gates"]["passed"] else 1


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if argv and argv[0] == "figures":
        return _figures_main(argv[1:])
    if argv and argv[0] == "kernels":
        return _kernels_main(argv[1:])
    if argv and argv[0] == "updates":
        return _updates_main(argv[1:])
    if argv and argv[0] == "tune":
        return _tune_main(argv[1:])
    if argv and argv[0] == "cache":
        return _cache_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce figures of 'A Critical Analysis of "
        "Recursive Model Indexes' (VLDB 2022)",
    )
    parser.add_argument(
        "figure",
        help="figure id (e.g. fig04), 'all', or 'list'",
    )
    parser.add_argument("--n", type=int, default=None,
                        help="dataset size (keys per dataset)")
    parser.add_argument("--seed", type=int, default=None,
                        help="dataset / workload seed")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="additionally write <figure>.csv files here")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="additionally write <figure>.json files here")
    parser.add_argument("--svg", metavar="DIR", default=None,
                        help="additionally render <figure>.svg plots here")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for build sweeps (drivers "
                        "that support it; default 1 = in-process)")
    parser.add_argument("--cache-dir", default=None,
                        help="serve datasets/indexes/results from this "
                        "artifact cache directory")
    parser.add_argument("--layer2-size", type=int, default=2**14,
                        help="[build] second-layer size")
    parser.add_argument("--dataset", default="books",
                        help="[build] dataset name")
    parser.add_argument("--runs", type=int, default=1,
                        help="[build] best-of-N timing runs")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="[build] write the JSON report here")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="[build] exit 1 unless every config's grouped "
                        "build is at least this much faster than reference")
    args = parser.parse_args(argv)

    if args.cache_dir is not None:
        from .. import cache as artifact_cache

        artifact_cache.activate(args.cache_dir)

    if args.figure == "list":
        for exp in EXPERIMENTS.values():
            print(f"{exp.figure_id}  {exp.paper_reference:25s} {exp.summary}")
        return 0

    if args.figure == "claims":
        from .claims import check_claims, render_outcomes

        outcomes = check_claims(n=args.n or 50_000, seed=args.seed or 42)
        print(render_outcomes(outcomes))
        return 1 if any(o.status in ("FAIL", "ERROR") for o in outcomes) else 0

    if args.figure == "build":
        from .parallel import build_report, render_build_report, \
            write_build_report

        report = build_report(
            n=args.n or 1_000_000,
            layer2_size=args.layer2_size,
            dataset=args.dataset,
            seed=args.seed or 42,
            jobs=args.jobs,
            runs=args.runs,
        )
        print(render_build_report(report))
        if args.out:
            write_build_report(report, args.out)
            print(f"[report written to {args.out}]")
        if args.min_speedup is not None:
            if report["min_speedup"] < args.min_speedup:
                print(f"FAIL: min speedup {report['min_speedup']:.1f}x is "
                      f"below the required {args.min_speedup:.1f}x")
                return 1
            print(f"OK: min speedup {report['min_speedup']:.1f}x >= "
                  f"{args.min_speedup:.1f}x")
        return 0

    kwargs = {}
    if args.n is not None:
        kwargs["n"] = args.n
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.jobs and args.jobs > 1:
        kwargs["jobs"] = args.jobs

    targets = list(EXPERIMENTS) if args.figure == "all" else [args.figure]
    for figure_id in targets:
        t0 = time.perf_counter()
        result = run_experiment(figure_id, **kwargs)
        elapsed = time.perf_counter() - t0
        print(result.render())
        for directory, suffix, method in (
            (args.csv, "csv", result.to_csv),
            (args.json, "json", result.to_json),
        ):
            if directory:
                out_dir = Path(directory)
                out_dir.mkdir(parents=True, exist_ok=True)
                method(out_dir / f"{figure_id}.{suffix}")
        if args.svg:
            from .svgplot import plot_figure

            out_dir = Path(args.svg)
            out_dir.mkdir(parents=True, exist_ok=True)
            if plot_figure(result, out_dir / f"{figure_id}.svg") is None:
                print(f"(no plot spec for {figure_id}; table only)")
        print(f"[{figure_id} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
