"""CLI: reproduce one or all figures of the paper.

Usage::

    python -m repro.bench list
    python -m repro.bench fig04 [--n 200000] [--seed 7]
    python -m repro.bench all [--n 50000] [--jobs 8]
    python -m repro.bench build --n 1000000 --layer2-size 16384 \\
        --out BENCH_build.json --min-speedup 20
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .registry import EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce figures of 'A Critical Analysis of "
        "Recursive Model Indexes' (VLDB 2022)",
    )
    parser.add_argument(
        "figure",
        help="figure id (e.g. fig04), 'all', or 'list'",
    )
    parser.add_argument("--n", type=int, default=None,
                        help="dataset size (keys per dataset)")
    parser.add_argument("--seed", type=int, default=None,
                        help="dataset / workload seed")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="additionally write <figure>.csv files here")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="additionally write <figure>.json files here")
    parser.add_argument("--svg", metavar="DIR", default=None,
                        help="additionally render <figure>.svg plots here")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for build sweeps (drivers "
                        "that support it; default 1 = in-process)")
    parser.add_argument("--layer2-size", type=int, default=2**14,
                        help="[build] second-layer size")
    parser.add_argument("--dataset", default="books",
                        help="[build] dataset name")
    parser.add_argument("--runs", type=int, default=1,
                        help="[build] best-of-N timing runs")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="[build] write the JSON report here")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="[build] exit 1 unless every config's grouped "
                        "build is at least this much faster than reference")
    args = parser.parse_args(argv)

    if args.figure == "list":
        for exp in EXPERIMENTS.values():
            print(f"{exp.figure_id}  {exp.paper_reference:25s} {exp.summary}")
        return 0

    if args.figure == "claims":
        from .claims import check_claims, render_outcomes

        outcomes = check_claims(n=args.n or 50_000, seed=args.seed or 42)
        print(render_outcomes(outcomes))
        return 1 if any(o.status in ("FAIL", "ERROR") for o in outcomes) else 0

    if args.figure == "build":
        from .parallel import build_report, render_build_report, \
            write_build_report

        report = build_report(
            n=args.n or 1_000_000,
            layer2_size=args.layer2_size,
            dataset=args.dataset,
            seed=args.seed or 42,
            jobs=args.jobs,
            runs=args.runs,
        )
        print(render_build_report(report))
        if args.out:
            write_build_report(report, args.out)
            print(f"[report written to {args.out}]")
        if args.min_speedup is not None:
            if report["min_speedup"] < args.min_speedup:
                print(f"FAIL: min speedup {report['min_speedup']:.1f}x is "
                      f"below the required {args.min_speedup:.1f}x")
                return 1
            print(f"OK: min speedup {report['min_speedup']:.1f}x >= "
                  f"{args.min_speedup:.1f}x")
        return 0

    kwargs = {}
    if args.n is not None:
        kwargs["n"] = args.n
    if args.seed is not None:
        kwargs["seed"] = args.seed
    if args.jobs and args.jobs > 1:
        kwargs["jobs"] = args.jobs

    targets = list(EXPERIMENTS) if args.figure == "all" else [args.figure]
    for figure_id in targets:
        t0 = time.perf_counter()
        result = run_experiment(figure_id, **kwargs)
        elapsed = time.perf_counter() - t0
        print(result.render())
        for directory, suffix, method in (
            (args.csv, "csv", result.to_csv),
            (args.json, "json", result.to_json),
        ):
            if directory:
                out_dir = Path(directory)
                out_dir.mkdir(parents=True, exist_ok=True)
                method(out_dir / f"{figure_id}.{suffix}")
        if args.svg:
            from .svgplot import plot_figure

            out_dir = Path(args.svg)
            out_dir.mkdir(parents=True, exist_ok=True)
            if plot_figure(result, out_dir / f"{figure_id}.svg") is None:
                print(f"(no plot spec for {figure_id}; table only)")
        print(f"[{figure_id} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
