"""Figure-suite runner: all figures, in parallel, through the cache.

``python -m repro.bench figures --all --jobs N --cache-dir DIR`` runs
every figure driver (Figures 2-14) in a process pool.  Each worker
activates the shared artifact cache in its initializer, so datasets,
built indexes, and whole figure results written by one worker are
served to every later one -- and to every later suite run.

:func:`suite_report` is the cold-vs-warm benchmark behind
``--cold-warm`` and the committed ``BENCH_figures.json``: it empties
the cache, runs the suite cold, runs it again warm, and verifies that
every warm result is (a) served from the cache and (b) bit-identical
to its cold-run counterpart before reporting the speedup.
"""

from __future__ import annotations

import json
import os
import time
import traceback
from pathlib import Path
from typing import Sequence

from .. import cache as artifact_cache
from .parallel import pool_map
from .registry import EXPERIMENTS, run_experiment_cached

__all__ = [
    "FIGURE_SUITE",
    "run_suite",
    "suite_report",
    "write_suite_report",
    "render_suite_report",
]

#: The paper's evaluation figures, in figure order.
FIGURE_SUITE: tuple[str, ...] = tuple(f"fig{i:02d}" for i in range(2, 15))


def _activate_worker(cache_dir: "str | None") -> None:
    """Pool initializer: point this process at the shared cache."""
    if cache_dir is not None:
        artifact_cache.activate(cache_dir)


def _run_one(entry: "tuple[str, dict]") -> dict:
    """Run one figure (module-level: pool-picklable).

    A raising driver is reported as a row with an ``error`` traceback
    instead of poisoning the whole pool map: the other figures still
    complete and the caller decides how to surface the failure
    (:func:`run_suite` collects failed ids; the CLI exits nonzero;
    :func:`suite_report` refuses to benchmark a failing suite).
    """
    figure_id, kwargs = entry
    t0 = time.perf_counter()
    try:
        result, from_cache = run_experiment_cached(figure_id, **kwargs)
    except Exception:
        return {
            "figure": figure_id,
            "seconds": round(time.perf_counter() - t0, 4),
            "error": traceback.format_exc(),
        }
    return {
        "figure": figure_id,
        "seconds": round(time.perf_counter() - t0, 4),
        "from_cache": from_cache,
        "rows": len(result.rows),
        "payload": json.loads(result.to_json()),
    }


def run_suite(
    figure_ids: "Sequence[str] | None" = None,
    n: "int | None" = None,
    seed: "int | None" = None,
    jobs: int = 1,
    cache_dir: "str | os.PathLike | None" = None,
) -> dict:
    """Run a set of figure drivers, optionally in a process pool.

    Returns ``{"figures": [per-figure dicts], "wall_s": total}``; rows
    come back in ``figure_ids`` order regardless of ``jobs``.
    """
    figure_ids = list(figure_ids or FIGURE_SUITE)
    unknown = [f for f in figure_ids if f not in EXPERIMENTS]
    if unknown:
        known = ", ".join(EXPERIMENTS)
        raise ValueError(f"unknown figures {unknown}; known: {known}")
    kwargs: dict = {}
    if n is not None:
        kwargs["n"] = int(n)
    if seed is not None:
        kwargs["seed"] = int(seed)
    entries = [(figure_id, kwargs) for figure_id in figure_ids]
    t0 = time.perf_counter()
    rows = pool_map(
        _run_one,
        entries,
        jobs=jobs,
        initializer=_activate_worker,
        initargs=(str(cache_dir) if cache_dir is not None else None,),
    )
    return {
        "figures": rows,
        "wall_s": round(time.perf_counter() - t0, 4),
        "failed": [r["figure"] for r in rows if "error" in r],
    }


def suite_report(
    figure_ids: "Sequence[str] | None" = None,
    n: "int | None" = None,
    seed: "int | None" = None,
    jobs: int = 1,
    cache_dir: "str | os.PathLike" = ".bench-cache",
) -> dict:
    """Cold vs warm suite benchmark, as a JSON-ready dict.

    The cache at ``cache_dir`` is emptied first, so the cold run pays
    every generation/build/workload and the warm run should serve every
    figure from the cache.  Each warm payload is compared against its
    cold twin byte-for-byte (canonical JSON); ``bit_identical`` and
    ``all_warm_from_cache`` gate the committed benchmark.
    """
    cache = artifact_cache.activate(cache_dir)
    cache.gc(drop_all=True)
    artifact_cache.clear_memos()
    cold = run_suite(figure_ids, n=n, seed=seed, jobs=jobs,
                     cache_dir=cache_dir)
    _raise_on_failures("cold", cold)
    artifact_cache.clear_memos()
    warm = run_suite(figure_ids, n=n, seed=seed, jobs=jobs,
                     cache_dir=cache_dir)
    _raise_on_failures("warm", warm)
    figures = []
    for c, w in zip(cold["figures"], warm["figures"]):
        identical = (
            json.dumps(c["payload"], sort_keys=True)
            == json.dumps(w["payload"], sort_keys=True)
        )
        figures.append({
            "figure": c["figure"],
            "rows": c["rows"],
            "cold_s": c["seconds"],
            "warm_s": w["seconds"],
            "warm_from_cache": w["from_cache"],
            "bit_identical": identical,
        })
    cold_s = cold["wall_s"]
    warm_s = max(warm["wall_s"], 1e-9)
    return {
        "benchmark": "cold vs warm figure suite",
        "figures": figures,
        "n": n,
        "seed": seed,
        "jobs": int(jobs),
        "cpu_count": os.cpu_count(),
        "cache_dir": str(cache_dir),
        "cold_s": cold_s,
        "warm_s": warm["wall_s"],
        "speedup": round(cold_s / warm_s, 1),
        "bit_identical": all(f["bit_identical"] for f in figures),
        "all_warm_from_cache": all(f["warm_from_cache"] for f in figures),
        "cache": cache.stats(),
    }


def _raise_on_failures(run_name: str, run: dict) -> None:
    """A cold/warm benchmark over a failing suite is meaningless."""
    failed = [r for r in run["figures"] if "error" in r]
    if failed:
        details = "\n".join(r["error"] for r in failed)
        ids = ", ".join(r["figure"] for r in failed)
        raise RuntimeError(
            f"{run_name} suite run failed for {ids}:\n{details}"
        )


def write_suite_report(report: dict, path: "str | os.PathLike") -> None:
    """Write a :func:`suite_report` dict as pretty-printed JSON."""
    Path(path).write_text(json.dumps(report, indent=2) + "\n")


def render_suite_report(report: dict) -> str:
    """Human-readable summary of a :func:`suite_report` dict."""
    lines = [
        f"cold vs warm figure suite -- n={report['n']}, "
        f"seed={report['seed']}, jobs={report['jobs']}",
    ]
    for f in report["figures"]:
        flags = []
        if not f["warm_from_cache"]:
            flags.append("NOT CACHED")
        if not f["bit_identical"]:
            flags.append("MISMATCH")
        lines.append(
            f"  {f['figure']}  cold {f['cold_s']:8.3f}s   "
            f"warm {f['warm_s']:8.4f}s   {f['rows']:4d} rows  "
            f"{' '.join(flags)}".rstrip()
        )
    lines.append(
        f"  total cold {report['cold_s']:.3f}s   warm {report['warm_s']:.4f}s"
        f"   speedup {report['speedup']:.1f}x   "
        f"bit_identical={report['bit_identical']}   "
        f"all_warm_from_cache={report['all_warm_from_cache']}"
    )
    return "\n".join(lines)
