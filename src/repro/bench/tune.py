"""The ``tune`` benchmark: closed-loop autotuning under a shifting load.

Serving starts from a deliberately mis-tuned config (a too-coarse RMI
layer2, whose wide error intervals tax every lookup) and the
:class:`~repro.autotune.controller.AutoTuner` must discover and deploy
something measurably better using only what it can observe: the
sampled live workload and the calibrated cost model.  No leg tells the
controller what the data or the traffic looks like.

Traffic runs through the server's **bulk lane** (``serve_bulk``,
chunked scatter/gather batches), not the per-request micro-batching
lane.  On a shared single-core box the per-request lane's p99 is
~25 microseconds of event-loop overhead per request plus scheduler
stalls -- it measures asyncio, not the index.  Bulk chunks are
service-time dominated (the paper's own batched-lookup protocol), so
the measured improvement is the index's improvement.  Every chunk is
validated against the ``np.searchsorted`` oracle, and each dispatch
records one latency observation, which is what the tuner's post-swap
watchdog windows are built from.

Four phases over one continuously running server:

* **start** -- uniform traffic, tuner *not* stepped: the mis-tuned
  baseline's window p99s (their median is the improvement gate's
  denominator);
* **tuning** -- the controller steps once per window until it has
  swapped and measured the swap (hysteresis means at least
  ``hysteresis_windows`` windows pass first);
* **converged** -- more uniform windows with the tuner still stepping;
  their median p99 is the gate's numerator, and the controller should
  now ``hold`` (the incumbent it installed keeps winning its own
  ranking);
* **skew-shift** -- traffic flips to Zipf; the sampler's reservoir
  turns over, the profile's coverage estimate collapses, and the
  journal records how the controller re-plans under the new profile.

Committed as ``BENCH_tune.json`` and gated in CI:

* the converged median window p99 beats the starting config's by at
  least ``min_improvement`` (the measured, end-to-end serving win --
  not a model number);
* **zero wrong answers**: every position in every chunk is validated
  against the oracle, across every swap and rollback;
* **zero dropped requests**: every query fired comes back (a bulk
  dispatch either returns its full result set or raises -- late is
  possible, lost is not);
* at least one swap happened, and **every** swap's journal record
  carries both the predicted improvement ratio and the measured
  pre/post-swap p99s -- ``predicted_vs_measured`` reports the per-swap
  ratio error and its maximum is the committed error bound.

Window p99s are medianed per phase: single-window tails on a shared CI
box are scheduler noise, the phase median is the signal.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import time
from pathlib import Path
from typing import Any

import numpy as np

from ..autotune import (
    AutoTuner,
    Planner,
    ServerTarget,
    TunerConfig,
    WorkloadSampler,
)
from ..baselines import RMIAsIndex
from ..data import sosd
from ..serve import IndexServer
from ..workload import make_workload

__all__ = ["tune_report", "render_tune_report", "write_tune_report",
           "check_tune_report"]


def _phase_p99(windows: "list[dict[str, Any]]") -> "float | None":
    vals = [w["p99_ms"] for w in windows if w.get("p99_ms") is not None]
    return float(np.median(vals)) if vals else None


async def _run(
    *,
    keys: np.ndarray,
    start_layer2: int,
    chunks_per_window: int,
    bulk_chunk: int,
    start_windows: int,
    tuning_windows: int,
    converged_windows: int,
    skew_windows: int,
    seed: int,
    planner: Planner,
    tuner_config: TunerConfig,
) -> "tuple[list[dict[str, Any]], AutoTuner, dict[str, Any]]":
    sampler = WorkloadSampler(capacity=4096, seed=seed)
    server = IndexServer(
        RMIAsIndex(keys, layer2_size=start_layer2),
        max_queue=8192,
        shed_policy="block",
        sampler=sampler,
        # Sub-ms GIL switching keeps the executor handoff from
        # stretching bulk dispatch latencies on a single core.
        gil_switch_interval_s=0.0005,
    )
    tuner = AutoTuner(ServerTarget(server), planner, tuner_config)
    windows: "list[dict[str, Any]]" = []
    empty = np.empty(0, dtype=np.uint64)
    fired = 0

    async def drive(access: str, num_chunks: int,
                    wl_seed: int) -> "tuple[np.ndarray, int, int]":
        """Fire ``num_chunks`` oracle-checked bulk chunks; returns
        (per-chunk latencies in ms, served, wrong)."""
        wl = make_workload(keys, num_lookups=num_chunks * bulk_chunk,
                           seed=wl_seed, access=access)
        lats = np.empty(num_chunks, dtype=np.float64)
        wrong = 0
        for c in range(num_chunks):
            lo, hi = c * bulk_chunk, (c + 1) * bulk_chunk
            q = wl.queries[lo:hi]
            t0 = time.perf_counter()
            positions, _, _ = await server.serve_bulk(q, empty, empty)
            lats[c] = time.perf_counter() - t0
            wrong += int(np.count_nonzero(
                np.asarray(positions, dtype=np.int64)
                != wl.expected_positions[lo:hi]
            ))
        return lats * 1e3, len(wl.queries), wrong

    async def one_window(phase: str, idx: int, access: str,
                         step: bool) -> None:
        nonlocal fired
        lats_ms, served, wrong = await drive(
            access, chunks_per_window, seed + 17 * (len(windows) + 1))
        fired += served
        record = await tuner.step() if step else None
        windows.append({
            "phase": phase,
            "window": idx,
            "access": access,
            "chunks": int(len(lats_ms)),
            # A bulk dispatch returns its whole chunk or raises, so
            # served counts double as resolved and completed.
            "completed": served,
            "resolved": served,
            "wrong": wrong,
            "p99_ms": round(float(np.percentile(lats_ms, 99)), 4),
            "p50_ms": round(float(np.percentile(lats_ms, 50)), 4),
            "decision": record["kind"] if record else
            ("measured" if step else "off"),
            "serving": (tuner.current.describe()
                        if tuner.current else "unknown"),
        })

    async with server:
        # One unrecorded warmup window: first-touch page faults, numpy
        # temp allocation, thread-pool spin-up.
        await drive("uniform", max(chunks_per_window // 4, 8), seed)
        for i in range(start_windows):
            await one_window("start", i, "uniform", step=False)
        # Arm the controller's metrics baseline on the last quiet
        # window so its first real window diff is fully measurable.
        await tuner.step()
        for i in range(tuning_windows):
            await one_window("tuning", i, "uniform", step=True)
            if tuner.swaps_done and not tuner.pending_swap:
                break  # swapped and post-swap-measured: converged
        for i in range(converged_windows):
            await one_window("converged", i, "uniform", step=True)
        sampler.reset()  # the shift is abrupt; don't average regimes
        for i in range(skew_windows):
            await one_window("skew", i, "zipf", step=True)
        totals = {
            "fired": fired,
            "resolved": sum(w["resolved"] for w in windows),
            "completed": sum(w["completed"] for w in windows),
            "wrong": sum(w["wrong"] for w in windows),
            "server_swaps": int(server.metrics.swaps.value),
        }
    return windows, tuner, totals


def tune_report(
    *,
    dataset: str = "books",
    n: int = 200_000,
    start_layer2: int = 16,
    chunks_per_window: int = 128,
    bulk_chunk: int = 4096,
    start_windows: int = 4,
    tuning_windows: int = 6,
    converged_windows: int = 4,
    skew_windows: int = 3,
    seed: int = 42,
    min_improvement: float = 0.10,
    improvement_threshold: float = 0.05,
    hysteresis_windows: int = 2,
    rollback_threshold: float = 0.50,
    layer2_grid: "tuple[int, ...]" = (1024, 16384),
    families: "tuple[str, ...] | None" = None,
    calibrate: bool = True,
) -> "dict[str, Any]":
    """Run the full skew-shifting autotune benchmark; returns the
    committed report (gates evaluated, not yet enforced)."""
    keys = sosd.generate(dataset, n, seed=seed)
    planner = Planner(
        rmi_layer2_sizes=layer2_grid,
        families=families,
        calibrate=calibrate,
    )
    tuner_config = TunerConfig(
        improvement_threshold=improvement_threshold,
        hysteresis_windows=hysteresis_windows,
        rollback_threshold=rollback_threshold,
        min_window_requests=bulk_chunk,
        dry_run=False,
    )
    t0 = time.perf_counter()
    windows, tuner, totals = asyncio.run(_run(
        keys=keys,
        start_layer2=start_layer2,
        chunks_per_window=chunks_per_window,
        bulk_chunk=bulk_chunk,
        start_windows=start_windows,
        tuning_windows=tuning_windows,
        converged_windows=converged_windows,
        skew_windows=skew_windows,
        seed=seed,
        planner=planner,
        tuner_config=tuner_config,
    ))
    elapsed = time.perf_counter() - t0

    p99_start = _phase_p99([w for w in windows if w["phase"] == "start"])
    p99_converged = _phase_p99(
        [w for w in windows if w["phase"] == "converged"]
    )
    improvement = (1.0 - p99_converged / p99_start
                   if p99_start and p99_converged else None)
    journal = tuner.journal
    pvm = journal.predicted_vs_measured()
    swaps = journal.swaps
    gates = {
        "min_improvement": min_improvement,
        "measured_improvement": (round(improvement, 4)
                                 if improvement is not None else None),
        "improvement_ok": (improvement is not None
                           and improvement >= min_improvement),
        "wrong_answers": totals["wrong"],
        "zero_wrong": totals["wrong"] == 0,
        "fired": totals["fired"],
        "resolved": totals["resolved"],
        "completed": totals["completed"],
        "zero_dropped": (totals["resolved"] == totals["fired"]
                         and totals["completed"] == totals["fired"]),
        "swaps": len(swaps),
        "swapped": len(swaps) >= 1,
        "swaps_measured": pvm["swaps_measured"],
        "every_swap_measured": (len(swaps) > 0
                                and pvm["swaps_measured"] == len(swaps)),
    }
    gates["passed"] = all((
        gates["improvement_ok"], gates["zero_wrong"],
        gates["zero_dropped"], gates["swapped"],
        gates["every_swap_measured"],
    ))
    return {
        "benchmark": "autotune-skew-shift",
        "dataset": dataset,
        "n": int(n),
        "seed": int(seed),
        "start_config": f"rmi[l2={start_layer2}]",
        "converged_config": (tuner.current.key()
                             if tuner.current else None),
        "bulk_chunk": int(bulk_chunk),
        "chunks_per_window": int(chunks_per_window),
        "requests_per_window": int(chunks_per_window * bulk_chunk),
        "phases": {
            "start_p99_ms": p99_start,
            "converged_p99_ms": p99_converged,
        },
        "windows": windows,
        "decisions": journal.summary()["counts"],
        "predicted_vs_measured": pvm,
        "journal": journal.records,
        "gates": gates,
        "elapsed_s": round(elapsed, 2),
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "backend": planner.backend,
        },
        "created": time.time(),
    }


def render_tune_report(report: "dict[str, Any]") -> str:
    lines = [
        f"autotune benchmark: {report['dataset']} n={report['n']:,} "
        f"backend={report['host']['backend']} "
        f"bulk_chunk={report['bulk_chunk']}",
        f"  start:     {report['start_config']}  "
        f"(phase median p99 {report['phases']['start_p99_ms']}ms)",
        f"  converged: {report['converged_config']}  "
        f"(phase median p99 {report['phases']['converged_p99_ms']}ms)",
        "",
        f"{'phase':>10} {'win':>3} {'access':>8} {'p99 ms':>9} "
        f"{'decision':>14}  serving",
    ]
    for w in report["windows"]:
        lines.append(
            f"{w['phase']:>10} {w['window']:>3} {w['access']:>8} "
            f"{w['p99_ms'] if w['p99_ms'] is not None else '-':>9} "
            f"{w['decision']:>14}  {w['serving']}"
        )
    pvm = report["predicted_vs_measured"]
    lines.append("")
    lines.append(f"decisions: {report['decisions']}")
    for e in pvm["entries"]:
        lines.append(
            f"swap -> {e['to']}: predicted p99 ratio "
            f"{e['predicted_ratio']}, measured {e['measured_ratio']} "
            f"(abs error {e['abs_error']}, direction "
            f"{'agrees' if e['direction_agrees'] else 'DISAGREES'})"
        )
    if pvm["entries"]:
        lines.append(f"prediction error bound (max abs ratio error): "
                     f"{pvm['max_abs_error']}")
    g = report["gates"]
    lines.append("")
    lines.append(
        f"gates: improvement {g['measured_improvement']} >= "
        f"{g['min_improvement']} [{'ok' if g['improvement_ok'] else 'FAIL'}]"
        f", wrong={g['wrong_answers']} "
        f"[{'ok' if g['zero_wrong'] else 'FAIL'}], dropped="
        f"{g['fired'] - g['completed']} "
        f"[{'ok' if g['zero_dropped'] else 'FAIL'}], swaps={g['swaps']} "
        f"measured={g['swaps_measured']} "
        f"[{'ok' if g['swapped'] and g['every_swap_measured'] else 'FAIL'}]"
    )
    lines.append("PASSED" if g["passed"] else "FAILED")
    return "\n".join(lines)


def write_tune_report(report: "dict[str, Any]",
                      path: "str | os.PathLike") -> None:
    Path(path).write_text(json.dumps(report, indent=2) + "\n")


def check_tune_report(path: "str | os.PathLike") -> "list[str]":
    """Structural validation of a committed ``BENCH_tune.json`` (the CI
    re-check: the file must carry passing gates and a coherent
    predicted-vs-measured section -- no re-run required)."""
    problems = []
    try:
        report = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        return [f"unreadable report: {exc}"]
    gates = report.get("gates", {})
    if not gates.get("passed"):
        problems.append("committed gates did not pass")
    for gate in ("improvement_ok", "zero_wrong", "zero_dropped",
                 "swapped", "every_swap_measured"):
        if not gates.get(gate):
            problems.append(f"gate {gate!r} is not satisfied")
    pvm = report.get("predicted_vs_measured", {})
    entries = pvm.get("entries", [])
    if not entries:
        problems.append("predicted_vs_measured has no per-swap entries")
    for e in entries:
        for field in ("predicted_ratio", "measured_ratio", "abs_error"):
            v = e.get(field)
            if v is None or not np.isfinite(v):
                problems.append(f"swap entry {field} is not finite: {e}")
    if pvm.get("max_abs_error") is None \
            or not np.isfinite(pvm.get("max_abs_error", np.nan)):
        problems.append("max_abs_error missing or non-finite")
    swaps = [r for r in report.get("journal", [])
             if r.get("kind") == "swap"]
    if not swaps:
        problems.append("journal records no swap")
    for rec in swaps:
        if rec.get("predicted_ratio") is None:
            problems.append("a swap record lacks predicted_ratio")
        if rec.get("measured_pre_p99_ms") is None \
                or rec.get("measured_post_p99_ms") is None:
            problems.append("a swap record lacks pre/post measured p99")
    return problems
