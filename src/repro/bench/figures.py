"""Experiment drivers: one function per figure of the paper.

Every public ``figNN_*`` function regenerates the data series behind
the corresponding figure of the paper's evaluation (Figures 2-14) and
returns a :class:`~repro.bench.report.FigureResult` with one row per
plotted point.  Scale is configurable; defaults run in seconds on a
laptop while preserving every relative relationship the paper reports
(see DESIGN.md for the scale substitution).

Timing figures (8-14) report both the analytic cost-model estimate in
nanoseconds (``est_ns`` -- the paper-machine projection the figures'
shapes are judged by) and, where cheap, measured Python wall time
(``wall_ns`` -- honest but interpreter-dominated).

Shared work flows through :mod:`repro.cache`: datasets are generated at
most once per run (and mmap-loaded when a disk cache is active), one
segmentation sweep feeds Figures 4-7, and one RMI build pool feeds
Figures 8-10/13.  The build-time figures (11, 14) deliberately bypass
the index cache -- a restored index has no build time to measure -- but
still share the cached datasets and result entries.
"""

from __future__ import annotations

import functools
from typing import Callable, Sequence

import numpy as np

from .. import cache as artifact_cache
from ..baselines import (
    ALEXIndex,
    ARTIndex,
    BinarySearchIndex,
    BTreeIndex,
    HistTree,
    INDEX_TYPES,
    PGMIndex,
    RadixSpline,
    RMIAsIndex,
    UnsupportedDataError,
)
from ..core.analysis import (
    interval_stats,
    prediction_errors,
    root_approximation,
    segment_keys,
    segmentation_stats,
)
from ..core.builder import RMIConfig
from ..cost.model import CostModel
from ..data import cdf as cdf_utils
from ..data import sosd
from ..workload import make_workload, measure_build, run_workload
from .parallel import pool_map_keys
from .report import FigureResult

__all__ = [
    "DEFAULT_N",
    "fig02_datasets",
    "fig03_root_approximations",
    "fig04_empty_segments",
    "fig05_largest_segment",
    "fig06_prediction_error",
    "fig07_error_bounds",
    "fig08_lookup_models",
    "fig09_lookup_bounds",
    "fig10_search_algorithms",
    "fig11_build_time",
    "fig12_index_comparison",
    "fig13_eval_vs_search",
    "fig14_build_comparison",
]

DEFAULT_N = 100_000
DEFAULT_SEED = 42

ROOTS = ("lr", "ls", "cs", "rx")
LEAVES = ("lr", "ls")


def _datasets(
    n: int, seed: int, names: Sequence[str] | None = None
) -> dict[str, np.ndarray]:
    """The named datasets, via the artifact cache.

    Every driver used to call ``sosd.generate`` itself, so a suite run
    regenerated each dataset once per figure; the cache's in-process
    LRU makes it once per run even with the disk cache disabled.
    """
    names = names or sosd.dataset_names()
    return {name: artifact_cache.dataset(name, n, seed) for name in names}


def _segment_sweep(n: int) -> list[int]:
    """Second-layer sizes: powers of two up to ~n/8, at least 2^4.

    The paper sweeps 2^8..2^24 on 200M keys (up to ~8% of n); the same
    relative range at reduced n.
    """
    high = max(int(np.log2(max(n // 8, 32))), 5)
    low = max(high - 10, 4)
    return [2**e for e in range(low, high + 1)]


# ---------------------------------------------------------------------------
# Figure 2 -- dataset CDFs
# ---------------------------------------------------------------------------


def fig02_datasets(n: int = DEFAULT_N, seed: int = DEFAULT_SEED) -> FigureResult:
    """Dataset overview: the structural properties of Figure 2."""
    result = FigureResult(
        "fig02",
        "CDFs of the four SOSD-like datasets (structural summary)",
        ["dataset", "n", "min_key", "max_key", "duplicates", "noise",
         "outlier_span"],
    )
    for name, keys in _datasets(n, seed).items():
        summary = cdf_utils.summarize(keys)
        # Ratio between the full key span and the span of the lower 99%
        # of keys: large only for fb, whose 21 outliers dominate the span.
        p99 = float(keys[int(len(keys) * 0.99) - 1])
        span = float(summary.max_key - summary.min_key)
        outlier_span = span / max(p99 - float(summary.min_key), 1.0)
        result.add(
            dataset=name,
            n=summary.n,
            min_key=summary.min_key,
            max_key=summary.max_key,
            duplicates=summary.duplicates,
            noise=round(summary.noise, 3),
            outlier_span=round(outlier_span, 1),
        )
    result.note("fb's outlier_span >> 1 reflects its 21 extreme outliers; "
                "wiki is the only dataset with duplicates (paper Section 4.3)")
    return result


# ---------------------------------------------------------------------------
# Figure 3 -- root-model CDF approximations
# ---------------------------------------------------------------------------


def fig03_root_approximations(
    n: int = DEFAULT_N, seed: int = DEFAULT_SEED, samples: int = 256
) -> FigureResult:
    """How each root model type approximates each dataset's CDF.

    The figure is a plot; its quantitative content is (a) how much of
    the position range each approximation covers and (b) how far it
    deviates from the true CDF.  LR not covering the full range (books,
    wiki) and RX covering only a fraction are the properties Sections
    5.1 discusses.
    """
    result = FigureResult(
        "fig03",
        "CDF approximation by root models",
        ["dataset", "root", "coverage_lo", "coverage_hi", "coverage_frac",
         "median_abs_err", "max_abs_err"],
    )
    for name, keys in _datasets(n, seed).items():
        positions = np.arange(len(keys), dtype=np.float64)
        for root in ROOTS:
            xs, preds = root_approximation(keys, root, samples=samples)
            truth = np.searchsorted(keys, xs, side="left").astype(np.float64)
            err = np.abs(preds - truth)
            lo, hi = float(preds.min()), float(preds.max())
            result.add(
                dataset=name,
                root=root,
                coverage_lo=round(lo, 1),
                coverage_hi=round(hi, 1),
                coverage_frac=round((hi - lo) / max(len(keys) - 1, 1), 3),
                median_abs_err=round(float(np.median(err)), 1),
                max_abs_err=round(float(err.max()), 1),
            )
        del positions
    result.note("coverage_frac < 1 for LR/RX reproduces Figure 3's partial "
                "range coverage; fb collapses for all roots")
    return result


# ---------------------------------------------------------------------------
# Figures 4 & 5 -- segmentation statistics
# ---------------------------------------------------------------------------


@functools.lru_cache(maxsize=512)
def _segment_stats(name: str, n: int, seed: int, root: str, m: int):
    """Segmentation statistics for one (dataset, root, size) point.

    Figures 4 and 5 report different columns of the *same* sweep; this
    memo runs each segmentation once and serves both (and any repeated
    ``segment_counts`` across calls in one process).
    """
    keys = artifact_cache.dataset(name, n, seed)
    return segmentation_stats(segment_keys(keys, root, m), m)


def _segmentation_figure(
    figure_id: str,
    title: str,
    value: Callable[..., object],
    columns: list[str],
    n: int,
    seed: int,
    segment_counts: Sequence[int] | None,
) -> FigureResult:
    result = FigureResult(figure_id, title, columns)
    counts = list(segment_counts or _segment_sweep(n))
    for name in _datasets(n, seed):
        for root in ROOTS:
            for m in counts:
                stats = _segment_stats(name, n, seed, root, m)
                result.add(dataset=name, root=root, segments=m, **value(stats))
    return result


def fig04_empty_segments(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    segment_counts: Sequence[int] | None = None,
) -> FigureResult:
    """Percentage of empty segments per root model (Figure 4)."""
    result = _segmentation_figure(
        "fig04",
        "Percentage of empty segments when segmenting with root models",
        lambda s: {"empty_pct": round(100.0 * s.empty_fraction, 2)},
        ["dataset", "root", "segments", "empty_pct"],
        n,
        seed,
        segment_counts,
    )
    result.note("RX leaves the most segments empty; osmc is high for all "
                "roots due to clustering (paper Section 5.1)")
    return result


def fig05_largest_segment(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    segment_counts: Sequence[int] | None = None,
) -> FigureResult:
    """Number of keys in the largest segment (Figure 5)."""
    result = _segmentation_figure(
        "fig05",
        "Keys in the largest segment when segmenting with root models",
        lambda s: {
            "largest": s.largest_segment,
            "largest_frac": round(s.largest_fraction, 4),
        },
        ["dataset", "root", "segments", "largest", "largest_frac"],
        n,
        seed,
        segment_counts,
    )
    result.note("LR's largest segment stays near-constant (clamping); on fb "
                "almost all keys share one segment (paper Section 5.1)")
    return result


# ---------------------------------------------------------------------------
# Figure 6 -- prediction error of model combinations
# ---------------------------------------------------------------------------


def fig06_prediction_error(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    segment_counts: Sequence[int] | None = None,
    roots: Sequence[str] = ROOTS,
    leaves: Sequence[str] = LEAVES,
) -> FigureResult:
    """Median absolute prediction error per model combination (Figure 6)."""
    result = FigureResult(
        "fig06",
        "Median absolute error of first-layer/second-layer combinations",
        ["dataset", "combo", "segments", "median_err", "mean_err"],
    )
    counts = list(segment_counts or _segment_sweep(n))
    for name in _datasets(n, seed):
        for root in roots:
            for leaf in leaves:
                for m in counts:
                    rmi = artifact_cache.rmi_for(
                        name, n, seed,
                        RMIConfig(model_types=(root, leaf),
                                  layer_sizes=(m,), bound_type="nb"))
                    err = prediction_errors(rmi)
                    result.add(
                        dataset=name,
                        combo=f"{root}->{leaf}",
                        segments=m,
                        median_err=float(np.median(err)),
                        mean_err=round(float(err.mean()), 1),
                    )
    result.note("LR on the second layer always beats LS (it minimizes MSE); "
                "fb errors stay high at all sizes (paper Section 5.2)")
    return result


# ---------------------------------------------------------------------------
# Figure 7 -- error-interval sizes per bound type
# ---------------------------------------------------------------------------

FIG7_COMBOS = (("ls", "lr"), ("cs", "ls"))
BOUNDS_ALL = ("lind", "labs", "gind", "gabs")


def fig07_error_bounds(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    segment_counts: Sequence[int] | None = None,
    combos: Sequence[tuple[str, str]] = FIG7_COMBOS,
) -> FigureResult:
    """Median error-interval size per bound type (Figure 7).

    Rows report index size so the paper's like-for-like comparison
    ("at similar index size, global bounds allow roughly twice the
    segments") can be read off directly.
    """
    result = FigureResult(
        "fig07",
        "Median error interval size for different error bounds",
        ["dataset", "combo", "bounds", "segments", "index_bytes",
         "median_interval"],
    )
    counts = list(segment_counts or _segment_sweep(n))
    datasets = _datasets(n, seed, names=["books", "osmc", "wiki"])
    for name in datasets:
        for root, leaf in combos:
            for bounds in BOUNDS_ALL:
                for m in counts:
                    rmi = artifact_cache.rmi_for(
                        name, n, seed,
                        RMIConfig(model_types=(root, leaf),
                                  layer_sizes=(m,), bound_type=bounds))
                    stats = interval_stats(rmi)
                    result.add(
                        dataset=name,
                        combo=f"{root}->{leaf}",
                        bounds=bounds,
                        segments=m,
                        index_bytes=rmi.size_in_bytes(),
                        median_interval=stats.median,
                    )
    result.note("fb omitted like the paper (interval size constant there); "
                "local bounds yield smaller intervals at matched size")
    return result


# ---------------------------------------------------------------------------
# Figures 8-10 -- lookup time analyses
# ---------------------------------------------------------------------------


def _rmi_lookup_row(
    name: str,
    n: int,
    seed: int,
    wl,
    config: RMIConfig,
    cost_model: CostModel,
) -> dict[str, object]:
    rmi = artifact_cache.rmi_for(name, n, seed, config)
    res = run_workload(rmi, wl, runs=1, cost_model=cost_model)
    return {
        "index_bytes": rmi.size_in_bytes(),
        "est_ns": round(res.estimated_ns_per_lookup, 1),
        "eval_ns": round(res.estimated_eval_ns, 1),
        "search_ns": round(res.estimated_search_ns, 1),
        "wall_ns": round(res.wall_ns_per_lookup, 0),
        "checksum_ok": res.valid,
    }


def fig08_lookup_models(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    segment_counts: Sequence[int] | None = None,
    num_lookups: int = 5_000,
    roots: Sequence[str] = ROOTS,
    leaves: Sequence[str] = LEAVES,
) -> FigureResult:
    """Lookup time per model combination, LAbs + binary search (Figure 8)."""
    result = FigureResult(
        "fig08",
        "Lookup time for model-type combinations (LAbs bounds, Bin search)",
        ["dataset", "combo", "segments", "index_bytes", "est_ns", "wall_ns",
         "checksum_ok"],
    )
    cm = CostModel()
    counts = list(segment_counts or _segment_sweep(n))
    for name, keys in _datasets(n, seed).items():
        # One workload per dataset, shared by every configuration row.
        wl = make_workload(keys, num_lookups=num_lookups, seed=seed)
        # The paper's dashed line: binary search over the sorted array.
        bs = run_workload(BinarySearchIndex(keys), wl, runs=1, cost_model=cm)
        result.add(dataset=name, combo="binary-search", segments=0,
                   index_bytes=0,
                   est_ns=round(bs.estimated_ns_per_lookup, 1),
                   wall_ns=round(bs.wall_ns_per_lookup, 0),
                   checksum_ok=bs.valid)
        for root in roots:
            for leaf in leaves:
                for m in counts:
                    config = RMIConfig(model_types=(root, leaf),
                                       layer_sizes=(m,), bound_type="labs",
                                       search="bin")
                    row = _rmi_lookup_row(name, n, seed, wl, config, cm)
                    row.pop("eval_ns")
                    row.pop("search_ns")
                    result.add(dataset=name, combo=f"{root}->{leaf}",
                               segments=m, **row)
    result.note("no RMI beats binary search on fb (paper Section 6.1); "
                "second-layer LR beats LS throughout")
    return result


FIG9_COMBOS = (("ls", "lr"), ("cs", "ls"))


def fig09_lookup_bounds(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    segment_counts: Sequence[int] | None = None,
    num_lookups: int = 5_000,
    combos: Sequence[tuple[str, str]] = FIG9_COMBOS,
) -> FigureResult:
    """Lookup time per error-bound type, binary search (Figure 9)."""
    result = FigureResult(
        "fig09",
        "Lookup time for different error bounds (binary search)",
        ["dataset", "combo", "bounds", "segments", "index_bytes", "est_ns",
         "wall_ns", "checksum_ok"],
    )
    cm = CostModel()
    counts = list(segment_counts or _segment_sweep(n))
    for name, keys in _datasets(n, seed, names=["books", "osmc", "wiki"]).items():
        wl = make_workload(keys, num_lookups=num_lookups, seed=seed)
        for root, leaf in combos:
            for bounds in BOUNDS_ALL:
                for m in counts:
                    config = RMIConfig(model_types=(root, leaf),
                                       layer_sizes=(m,), bound_type=bounds,
                                       search="bin")
                    row = _rmi_lookup_row(name, n, seed, wl, config, cm)
                    row.pop("eval_ns")
                    row.pop("search_ns")
                    result.add(dataset=name, combo=f"{root}->{leaf}",
                               bounds=bounds, segments=m, **row)
    result.note("local bounds beat global bounds; binary search compresses "
                "large interval differences (paper Section 6.2)")
    return result


#: Search-algorithm pairing of the paper's Figure 10: binary variants
#: use LInd bounds, model-biased linear/exponential use no bounds.
FIG10_SEARCHES = (
    ("bin", "lind"),
    ("mbin", "lind"),
    ("mlin", "nb"),
    ("mexp", "nb"),
)


def fig10_search_algorithms(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    segment_counts: Sequence[int] | None = None,
    num_lookups: int = 2_000,
    combos: Sequence[tuple[str, str]] = FIG9_COMBOS,
    include_plain: bool = False,
) -> FigureResult:
    """Lookup time per search algorithm (Figure 10).

    ``include_plain`` adds the non-model-biased linear/exponential
    searches the paper dropped after finding them always worse.
    """
    searches = list(FIG10_SEARCHES)
    if include_plain:
        searches += [("lin", "lind"), ("exp", "lind")]
    result = FigureResult(
        "fig10",
        "Lookup time for different search algorithms",
        ["dataset", "combo", "search", "bounds", "segments", "index_bytes",
         "est_ns", "mean_comparisons", "checksum_ok"],
    )
    cm = CostModel()
    counts = list(segment_counts or _segment_sweep(n))
    for name, keys in _datasets(n, seed, names=["books", "osmc", "wiki"]).items():
        wl = make_workload(keys, num_lookups=num_lookups, seed=seed)
        for root, leaf in combos:
            for search, bounds in searches:
                for m in counts:
                    config = RMIConfig(model_types=(root, leaf),
                                       layer_sizes=(m,), bound_type=bounds,
                                       search=search)
                    rmi = artifact_cache.rmi_for(name, n, seed, config)
                    res = run_workload(rmi, wl, runs=1, cost_model=cm)
                    result.add(
                        dataset=name,
                        combo=f"{root}->{leaf}",
                        search=search,
                        bounds=bounds,
                        segments=m,
                        index_bytes=rmi.size_in_bytes(),
                        est_ns=round(res.estimated_ns_per_lookup, 1),
                        mean_comparisons=round(res.counters.mean_comparisons, 1),
                        checksum_ok=res.valid,
                    )
    result.note("MExp overtakes Bin once predictions are accurate (books, "
                "wiki, larger sizes); Bin stays best on osmc (Section 6.3)")
    return result


# ---------------------------------------------------------------------------
# Figure 11 -- build time decomposition
# ---------------------------------------------------------------------------


def _fig11_row(keys: np.ndarray, entry: tuple) -> dict:
    """Build one fig11 configuration (module-level: pool-picklable)."""
    panel, variant, cfg, runs = entry
    rmi, build_s = measure_build(lambda: cfg.build(keys), runs=runs)
    st = rmi.build_stats
    return dict(
        panel=panel, variant=variant, segments=cfg.layer_sizes[0],
        index_bytes=rmi.size_in_bytes(),
        build_s=round(build_s, 6),
        train_root_s=round(st.train_root_seconds, 6),
        segment_s=round(st.segment_seconds, 6),
        train_leaves_s=round(st.train_leaves_seconds, 6),
        bounds_s=round(st.bounds_seconds, 6),
        fit=st.fit_path,
    )


def fig11_build_time(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    segment_counts: Sequence[int] | None = None,
    dataset: str = "books",
    runs: int = 1,
    jobs: int = 1,
) -> FigureResult:
    """Build-time analysis on books (Figure 11a-c) plus two ablations.

    ``panel`` column: ``root`` varies the root type (leaf LR, NB);
    ``leaf`` varies the leaf type (root LS, NB); ``bounds`` varies the
    bound type (LS→LR); ``ablation`` compares the reference copying
    trainer with the paper's no-copy optimization (Section 4.1/7);
    ``fit`` compares the grouped closed-form leaf fit with the
    per-segment reference loop (same LS→LR configuration).  The ``fit``
    column reports which path trained each row.  ``jobs > 1`` builds
    the configurations in a process pool.
    """
    result = FigureResult(
        "fig11",
        f"Build times on {dataset} by root type, leaf type, bounds, "
        "copy ablation, and fit-path ablation",
        ["panel", "variant", "segments", "index_bytes", "build_s",
         "train_root_s", "segment_s", "train_leaves_s", "bounds_s", "fit"],
    )
    # Dataset comes from the cache; the builds themselves bypass the
    # index cache on purpose -- a restored RMI has no build time.
    keys = artifact_cache.dataset(dataset, n, seed)
    counts = list(segment_counts or _segment_sweep(n))

    entries: list[tuple] = []

    def record(panel: str, variant: str, config: RMIConfig) -> None:
        for m in counts:
            entries.append((panel, variant, config.with_layer2_size(m), runs))

    for root in ROOTS:  # Figure 11a
        record("root", root, RMIConfig(model_types=(root, "lr"),
                                       layer_sizes=(counts[0],),
                                       bound_type="nb"))
    for leaf in LEAVES:  # Figure 11b
        record("leaf", leaf, RMIConfig(model_types=("ls", leaf),
                                       layer_sizes=(counts[0],),
                                       bound_type="nb"))
    for bounds in ("nb", *BOUNDS_ALL):  # Figure 11c
        record("bounds", bounds, RMIConfig(model_types=("ls", "lr"),
                                           layer_sizes=(counts[0],),
                                           bound_type=bounds))
    # Section 4.1 / 7 ablation: copying vs no-copy training.
    for variant, copy in (("no-copy", False), ("copy", True)):
        record("ablation", variant,
               RMIConfig(model_types=("ls", "lr"), layer_sizes=(counts[0],),
                         bound_type="labs", copy_keys=copy))
    # Fit-path ablation: grouped closed-form fit vs per-segment loop.
    for variant, grouped in (("grouped", True), ("per_segment", False)):
        record("fit", variant,
               RMIConfig(model_types=("ls", "lr"), layer_sizes=(counts[0],),
                         bound_type="labs", grouped_fit=grouped))
    for row in pool_map_keys(_fig11_row, keys, entries, jobs=jobs):
        result.add(**row)
    result.note("LR roots train slowest (they touch all keys); bounds add "
                "a full evaluation pass; no-copy beats copy (Section 7); "
                "the grouped fit beats the per-segment loop")
    return result


# ---------------------------------------------------------------------------
# Figures 12-14 -- comparison against other indexes
# ---------------------------------------------------------------------------


def _comparison_sweeps(
    n: int,
) -> "dict[str, list[tuple[dict, Callable[[np.ndarray], object]]]]":
    """Size-parameter sweeps per index (Table 5's hyperparameters).

    Each variant is a ``(hyperparameters, factory)`` pair.  The dict of
    hyperparameters feeds the artifact cache's index fingerprint, so a
    cached snapshot is keyed by the *actual* constructor arguments --
    changing a sweep definition here invalidates its entries instead of
    silently serving stale structures.
    """
    rmi_sizes = _segment_sweep(n)
    errors = [2**e for e in range(3, 11)]  # 8 .. 1024
    sparsities = [64, 16, 4, 1]
    rbits = max(min(int(np.log2(max(n, 256))) - 4, 16), 6)
    return {
        "rmi": [
            ({"layer2_size": m},
             lambda keys, m=m: RMIAsIndex(keys, layer2_size=m))
            for m in rmi_sizes
        ],
        "pgm-index": [
            ({"eps": e}, lambda keys, e=e: PGMIndex(keys, eps=e))
            for e in errors
        ],
        "radix-spline": [
            ({"max_error": e, "radix_bits": rbits},
             lambda keys, e=e: RadixSpline(keys, max_error=e, radix_bits=rbits))
            for e in errors
        ],
        "alex": [
            ({"sparsity": s}, lambda keys, s=s: ALEXIndex(keys, sparsity=s))
            for s in sparsities
        ],
        "b-tree": [
            ({"sparsity": s}, lambda keys, s=s: BTreeIndex(keys, sparsity=s))
            for s in sparsities
        ],
        "art": [
            ({"sparsity": s}, lambda keys, s=s: ARTIndex(keys, sparsity=s))
            for s in sparsities
        ],
        "hist-tree": [
            ({"num_bins": 64, "max_error": e},
             lambda keys, e=e: HistTree(keys, num_bins=64, max_error=e))
            for e in errors
        ],
        "binary-search": [({}, lambda keys: BinarySearchIndex(keys))],
    }


def fig12_index_comparison(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    num_lookups: int = 2_000,
    datasets: Sequence[str] | None = None,
) -> FigureResult:
    """Lookup time vs index size for all Table 5 indexes (Figure 12)."""
    result = FigureResult(
        "fig12",
        "Lookup performance with respect to index size, all indexes",
        ["dataset", "index", "variant", "index_bytes", "est_ns", "eval_ns",
         "search_ns", "wall_ns", "checksum_ok"],
    )
    cm = CostModel()
    sweeps = _comparison_sweeps(n)
    for name, keys in _datasets(n, seed, names=datasets).items():
        wl = make_workload(keys, num_lookups=num_lookups, seed=seed)
        for index_name, variants in sweeps.items():
            for variant, (spec, factory) in enumerate(variants):
                try:
                    index = artifact_cache.index_for(
                        name, n, seed, index_name, spec, factory,
                        cls=INDEX_TYPES[index_name],
                    )
                except UnsupportedDataError:
                    result.note(f"{index_name} did not work on {name} "
                                "(duplicates), as in the paper")
                    break
                res = run_workload(index, wl, runs=1, cost_model=cm)
                result.add(
                    dataset=name,
                    index=index_name,
                    variant=variant,
                    index_bytes=res.index_bytes,
                    est_ns=round(res.estimated_ns_per_lookup, 1),
                    eval_ns=round(res.estimated_eval_ns, 1),
                    search_ns=round(res.estimated_search_ns, 1),
                    wall_ns=round(res.wall_ns_per_lookup, 0),
                    checksum_ok=res.valid,
                )
    return result


def fig13_eval_vs_search(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    num_lookups: int = 2_000,
    datasets: Sequence[str] = ("books", "osmc"),
) -> FigureResult:
    """Evaluation vs search share for each index's best config (Figure 13)."""
    # Through the registry so the fig12 sub-result is itself a cached
    # artifact: a warm fig13 costs two cache reads, and a cold fig13
    # right after fig12 reuses its rows (when datasets match).
    from .registry import run_experiment

    comparison = run_experiment(
        "fig12", n=n, seed=seed, num_lookups=num_lookups,
        datasets=list(datasets),
    )
    result = FigureResult(
        "fig13",
        "Share of evaluation and search in the best lookup time",
        ["dataset", "index", "index_bytes", "est_ns", "eval_ns", "search_ns",
         "eval_share"],
    )
    for name in datasets:
        indexes = {r["index"] for r in comparison.series(dataset=name)}
        for index_name in sorted(indexes):
            rows = comparison.series(dataset=name, index=index_name)
            best = min(rows, key=lambda r: r["est_ns"])
            total = max(best["est_ns"], 1e-9)
            result.add(
                dataset=name,
                index=index_name,
                index_bytes=best["index_bytes"],
                est_ns=best["est_ns"],
                eval_ns=best["eval_ns"],
                search_ns=best["search_ns"],
                eval_share=round(best["eval_ns"] / total, 3),
            )
    result.note("RMI buys cheap evaluation with unbounded search; PGM/"
                "RadixSpline pay evaluation for capped search (Section 8.1)")
    return result


def _fig14_row(keys: np.ndarray, entry: tuple) -> dict:
    """Build one fig14 index variant (module-level: pool-picklable).

    The sweep factories close over lambdas and cannot cross a process
    boundary, so workers reconstruct the (deterministic) sweep from
    ``n`` and pick their factory by ``(index_name, variant)``.
    """
    n, index_name, variant, runs = entry
    factory = _comparison_sweeps(n)[index_name][variant][1]
    try:
        index, build_s = measure_build(lambda: factory(keys), runs=runs)
    except UnsupportedDataError:
        return dict(index=index_name, variant=variant, unsupported=True)
    return dict(
        index=index_name,
        variant=variant,
        index_bytes=index.size_in_bytes(),
        build_s=round(build_s, 6),
        keys_per_s=round(len(keys) / max(build_s, 1e-9), 0),
    )


def fig14_build_comparison(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    datasets: Sequence[str] | None = None,
    runs: int = 1,
    jobs: int = 1,
) -> FigureResult:
    """Build time vs index size for all Table 5 indexes (Figure 14).

    ``jobs > 1`` builds each dataset's index variants in a process
    pool; rows come back in the same deterministic order either way.
    """
    result = FigureResult(
        "fig14",
        "Build time with respect to index size, all indexes",
        ["dataset", "index", "variant", "index_bytes", "build_s",
         "keys_per_s"],
    )
    sweeps = _comparison_sweeps(n)
    sweeps.pop("binary-search")  # nothing to build
    # Builds bypass the index cache (they are the measurement); the
    # datasets still come from it.
    for name, keys in _datasets(n, seed, names=datasets).items():
        if jobs > 1:
            entries = [
                (n, index_name, variant, runs)
                for index_name, variants in sweeps.items()
                for variant in range(len(variants))
            ]
            unsupported: set[str] = set()
            for row in pool_map_keys(_fig14_row, keys, entries, jobs=jobs):
                index_name = row["index"]
                if index_name in unsupported:
                    continue
                if row.get("unsupported"):
                    unsupported.add(index_name)
                    result.note(f"{index_name} did not work on {name} "
                                "(duplicates), as in the paper")
                    continue
                result.add(dataset=name, **row)
            continue
        for index_name, variants in sweeps.items():
            for variant, (_, factory) in enumerate(variants):
                try:
                    index, build_s = measure_build(
                        lambda: factory(keys), runs=runs
                    )
                except UnsupportedDataError:
                    result.note(f"{index_name} did not work on {name} "
                                "(duplicates), as in the paper")
                    break
                result.add(
                    dataset=name,
                    index=index_name,
                    variant=variant,
                    index_bytes=index.size_in_bytes(),
                    keys_per_s=round(len(keys) / max(build_s, 1e-9), 0),
                    build_s=round(build_s, 6),
                )
    result.note("B-tree/ART build fastest (subset + no training); learned "
                "indexes train on all keys (Section 8.2). Wall times are "
                "Python; compare shapes, not absolutes.")
    return result
