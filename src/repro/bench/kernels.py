"""Per-kernel microbenchmark across kernel backends (ROADMAP item 4).

Behind ``python -m repro.bench kernels`` and the committed
``BENCH_kernels.json``: one tuned RMI smoke configuration (by default
books, 100k keys, 2^14 leaves, LS→LR, LAbs — the regime where the
paper's tuned RMIs live) is packed once, then each of the four kernel
entry points is timed on every loadable backend:

``predict``
    routing + leaf prediction (``rmi_predict``);
``lower_bound_window``
    the bounded search with escape repair, over the exact windows the
    smoke RMI produces;
``lookup``
    the fused route→predict→search batch (``rmi_lookup``) — this is
    the "100k lookup smoke" the speedup gate binds on;
``serve``
    the fused point+range serving unit (``rmi_serve``).

Every backend's outputs are asserted bit-identical to the staged NumPy
reference (and ``lookup`` additionally to the ``searchsorted`` oracle)
before its timings count: a fast wrong kernel must fail the bench, not
win it.  Backends that cannot load in this environment are recorded as
``available: false`` rather than dropped, so a committed report states
explicitly which legs ran (PR-6 precedent: the numba leg binds in the
dedicated CI job, which installs numba; dev containers without it
still gate on the best available compiled backend).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from ..core.rmi import RMI
from ..data import sosd
from ..kernels import KNOWN_BACKENDS, get_backend, pack_rmi

__all__ = [
    "KERNELS",
    "GATE_METRIC",
    "kernels_report",
    "render_kernels_report",
    "write_kernels_report",
    "resolve_gate_backend",
]

#: Kernel names in report order.
KERNELS = ("predict", "lower_bound_window", "lookup", "serve")

#: The kernel whose speedup the ``--min-speedup`` gate binds on.
GATE_METRIC = "lookup"


def _smoke_queries(keys: np.ndarray, m: int, seed: int) -> np.ndarray:
    """Half present / half absent lookup mix, deterministically shuffled.

    Absent keys are drawn from within the key range: out-of-range
    queries all collapse onto the boundary leaves, which flatters no
    one and measures nothing but a hot cache line.
    """
    rng = np.random.default_rng(seed)
    present = rng.choice(keys, m // 2)
    absent = rng.integers(keys.min(), keys.max(), m - m // 2,
                          dtype=np.uint64)
    queries = np.concatenate([present, absent])
    rng.shuffle(queries)
    return np.ascontiguousarray(queries, dtype=np.uint64)


def _windows(packed, pos: np.ndarray, ids: np.ndarray, n: int):
    """The (lo, hi) windows the staged path derives from error bounds."""
    if packed.bkind == 1:
        lo = pos + packed.blo[ids]
        hi = pos + packed.bhi[ids]
    elif packed.bkind == 2:
        lo = pos + packed.blo[0]
        hi = pos + packed.bhi[0]
    else:
        lo = np.zeros(len(pos), dtype=np.int64)
        hi = np.full(len(pos), n - 1, dtype=np.int64)
    return np.clip(lo, 0, n - 1), np.clip(hi, 0, n - 1)


def _best_of(fn, runs: int) -> float:
    fn()  # warm: page-fault outputs, load code paths
    best = float("inf")
    for _ in range(max(runs, 1)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def kernels_report(
    n: int = 100_000,
    dataset: str = "books",
    seed: int = 42,
    layer2_size: int = 2**14,
    model_types: "tuple[str, str]" = ("ls", "lr"),
    bound_type: str = "labs",
    queries: "int | None" = None,
    runs: int = 9,
    backends: "list[str] | None" = None,
) -> dict:
    """Time every kernel on every loadable backend; JSON-ready dict.

    Timings are best-of-``runs`` (microbenchmarks want the noise
    floor, not the scheduler).  Speedups are per kernel against the
    NumPy backend on the same arrays.
    """
    keys = sosd.generate(dataset, n=n, seed=seed)
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    m = int(queries) if queries is not None else int(n)
    qs = _smoke_queries(keys, m, seed + 1)

    rmi = RMI(
        keys,
        layer_sizes=[int(layer2_size)],
        model_types=tuple(model_types),
        bound_type=bound_type,
    )
    packed = pack_rmi(rmi)
    if packed is None:  # pragma: no cover - smoke config is packable
        raise RuntimeError("smoke RMI configuration is not packable")

    reference = get_backend("numpy")
    ref_ids, ref_pos = reference.rmi_predict(packed, qs)
    win_lo, win_hi = _windows(packed, ref_pos, ref_ids, len(keys))
    oracle = np.searchsorted(keys, qs, side="left").astype(np.int64)
    ref_serve = reference.rmi_serve(packed, keys, qs, qs, qs)
    if not np.array_equal(reference.rmi_lookup(packed, keys, qs), oracle):
        raise RuntimeError("numpy backend disagrees with the oracle")

    names = list(backends) if backends else list(KNOWN_BACKENDS)
    report_backends: "dict[str, dict]" = {}
    for name in names:
        try:
            backend = get_backend(name)
        except (ValueError, RuntimeError) as exc:
            report_backends[name] = {"available": False, "error": str(exc)}
            continue
        backend.warmup()

        got_ids, got_pos = backend.rmi_predict(packed, qs)
        got_lbw = backend.lower_bound_window(keys, qs, win_lo, win_hi)
        got_lookup = backend.rmi_lookup(packed, keys, qs)
        got_serve = backend.rmi_serve(packed, keys, qs, qs, qs)
        mismatches = [
            kernel
            for kernel, ok in (
                ("predict", np.array_equal(got_ids, ref_ids)
                 and np.array_equal(got_pos, ref_pos)),
                ("lower_bound_window", np.array_equal(got_lbw, oracle)),
                ("lookup", np.array_equal(got_lookup, oracle)),
                ("serve", all(np.array_equal(g, r)
                              for g, r in zip(got_serve, ref_serve))),
            )
            if not ok
        ]
        if mismatches:
            raise RuntimeError(
                f"backend {backend.name!r} is not bit-identical to the "
                f"NumPy reference on: {', '.join(mismatches)}"
            )

        timings = {
            "predict": _best_of(
                lambda b=backend: b.rmi_predict(packed, qs), runs),
            "lower_bound_window": _best_of(
                lambda b=backend: b.lower_bound_window(
                    keys, qs, win_lo, win_hi), runs),
            "lookup": _best_of(
                lambda b=backend: b.rmi_lookup(packed, keys, qs), runs),
            "serve": _best_of(
                lambda b=backend: b.rmi_serve(packed, keys, qs, qs, qs),
                runs),
        }
        report_backends[name] = {
            "available": True,
            "compiled": bool(backend.compiled),
            "bit_identical": True,
            "kernels": {
                kernel: {
                    "best_s": timings[kernel],
                    "ns_per_op": timings[kernel] / m * 1e9,
                }
                for kernel in KERNELS
            },
        }

    baseline = report_backends.get("numpy")
    speedups: "dict[str, dict[str, float]]" = {}
    if baseline and baseline.get("available"):
        for name, entry in report_backends.items():
            if name == "numpy" or not entry.get("available"):
                continue
            speedups[name] = {
                kernel: (baseline["kernels"][kernel]["best_s"]
                         / entry["kernels"][kernel]["best_s"])
                for kernel in KERNELS
            }

    return {
        "kind": "kernels",
        "dataset": dataset,
        "n": int(n),
        "queries": m,
        "layer2_size": int(layer2_size),
        "model_types": list(model_types),
        "bound_type": bound_type,
        "runs": int(runs),
        "gate_metric": GATE_METRIC,
        "machine": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "backends": report_backends,
        "speedups": speedups,
    }


def resolve_gate_backend(report: dict, gate_backend: str) -> "str | None":
    """Backend name the gate binds on, or ``None`` when none qualifies.

    ``"best-compiled"`` picks the available compiled backend with the
    highest gate-metric speedup; a concrete name requires that backend
    to be available (CI's numba leg must fail loudly when the install
    broke, not silently gate on cext).
    """
    if gate_backend != "best-compiled":
        entry = report["backends"].get(gate_backend)
        if not (entry and entry.get("available") and entry.get("compiled")):
            return None
        return gate_backend
    best_name, best = None, -1.0
    for name, per_kernel in report["speedups"].items():
        if not report["backends"][name].get("compiled"):
            continue
        if per_kernel[GATE_METRIC] > best:
            best_name, best = name, per_kernel[GATE_METRIC]
    return best_name


def render_kernels_report(report: dict) -> str:
    """Human-readable summary of a :func:`kernels_report` dict."""
    lines = [
        f"kernel backends -- {report['dataset']}, n={report['n']:,}, "
        f"{report['queries']:,} queries, layer2=2^"
        f"{int(np.log2(report['layer2_size']))}, "
        f"{'->'.join(report['model_types'])}, {report['bound_type']}, "
        f"best of {report['runs']}",
    ]
    for name, entry in report["backends"].items():
        if not entry.get("available"):
            lines.append(f"  {name:6s} unavailable "
                         f"({entry.get('error', 'not loadable')})")
            continue
        for kernel in KERNELS:
            t = entry["kernels"][kernel]
            speed = report["speedups"].get(name, {}).get(kernel)
            suffix = f"  {speed:5.2f}x vs numpy" if speed else ""
            lines.append(
                f"  {name:6s} {kernel:18s} {t['best_s'] * 1e3:8.2f}ms  "
                f"{t['ns_per_op']:7.1f}ns/op{suffix}"
            )
    return "\n".join(lines)


def write_kernels_report(report: dict, path: "str | os.PathLike") -> None:
    """Write a :func:`kernels_report` dict as pretty-printed JSON."""
    Path(path).write_text(json.dumps(report, indent=2) + "\n")
