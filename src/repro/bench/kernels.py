"""Per-kernel microbenchmark across kernel backends (ROADMAP item 4).

Behind ``python -m repro.bench kernels`` and the committed
``BENCH_kernels.json``: one tuned RMI smoke configuration (by default
books, 100k keys, 2^14 leaves, LS→LR, LAbs — the regime where the
paper's tuned RMIs live) is packed once, then each of the four kernel
entry points is timed on every loadable backend:

``predict``
    routing + leaf prediction (``rmi_predict``);
``lower_bound_window``
    the bounded search with escape repair, over the exact windows the
    smoke RMI produces;
``lookup``
    the fused route→predict→search batch (``rmi_lookup``) — this is
    the "100k lookup smoke" the speedup gate binds on;
``serve``
    the fused point+range serving unit (``rmi_serve``).

Beyond the RMI smoke, the report carries one section per *family
baseline* (``--index`` selects which): each packable index of Table 5
-- PGM, CompressedPGM, RadixSpline, FITing-Tree (``pla`` family),
B-tree and Hist-Tree (``tree`` family) -- is built on the same keys,
packed, and its fused ``lookup``/``serve`` kernels timed per compiled
backend against the index's own staged NumPy batch path.  A final
``sorted_narrowing`` section times the pure-NumPy sorted-batch
narrowing fast path in ``core/search.py`` against the plain windowed
search, so the report also states what indexes gain where nothing
compiles.

Every backend's outputs are asserted bit-identical to the staged NumPy
reference (and ``lookup`` additionally to the ``searchsorted`` oracle)
before its timings count: a fast wrong kernel must fail the bench, not
win it.  Backends that cannot load in this environment are recorded as
``available: false`` rather than dropped, so a committed report states
explicitly which legs ran (PR-6 precedent: the numba leg binds in the
dedicated CI job, which installs numba; dev containers without it
still gate on the best available compiled backend).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from ..baselines.btree import BTreeIndex
from ..baselines.compressed_pgm import CompressedPGMIndex
from ..baselines.fiting_tree import FITingTree
from ..baselines.hist_tree import HistTree
from ..baselines.interfaces import UnsupportedDataError
from ..baselines.pgm import PGMIndex
from ..baselines.radix_spline import RadixSpline
from ..core.rmi import RMI
from ..data import sosd
from ..kernels import KNOWN_BACKENDS, get_backend, pack_rmi, use_backend

__all__ = [
    "KERNELS",
    "FAMILY_KERNELS",
    "GATE_METRIC",
    "INDEX_CHOICES",
    "kernels_report",
    "render_kernels_report",
    "write_kernels_report",
    "resolve_gate_backend",
    "gate_speedups",
]

#: Kernel names in report order (RMI section).
KERNELS = ("predict", "lower_bound_window", "lookup", "serve")

#: Kernel names timed per family baseline (the packed generic entry
#: points; predict/lower_bound_window are RMI-internal stages).
FAMILY_KERNELS = ("lookup", "serve")

#: The kernel whose speedup the ``--min-speedup`` gate binds on.
GATE_METRIC = "lookup"

#: The family-baseline smokes: ``(index name, packed family, builder)``.
#: Builders return ``(index, config)`` where ``config`` records any
#: non-default constructor choice the report should state.  The B-tree
#: runs sparse (the paper's Section 4.5 size knob) so the bench
#: exercises the directory-plus-page-scan shape rather than a dense
#: ``searchsorted`` rename; the Hist-Tree deduplicates the keys it
#: indexes (it rejects duplicate runs by contract).
FAMILY_SMOKES = (
    ("pgm-index", "pla", lambda keys: (PGMIndex(keys), {})),
    ("compressed-pgm", "pla", lambda keys: (CompressedPGMIndex(keys), {})),
    ("radix-spline", "pla", lambda keys: (RadixSpline(keys), {})),
    ("fiting-tree", "pla", lambda keys: (FITingTree(keys), {})),
    ("b-tree", "tree",
     lambda keys: (BTreeIndex(keys, sparsity=8), {"sparsity": 8})),
    ("hist-tree", "tree",
     lambda keys: (HistTree(np.unique(keys)), {"deduplicated": True})),
)

#: Valid ``--index`` selections.
INDEX_CHOICES = ("rmi",) + tuple(name for name, _, _ in FAMILY_SMOKES)


def _smoke_queries(keys: np.ndarray, m: int, seed: int) -> np.ndarray:
    """Half present / half absent lookup mix, deterministically shuffled.

    Absent keys are drawn from within the key range: out-of-range
    queries all collapse onto the boundary leaves, which flatters no
    one and measures nothing but a hot cache line.
    """
    rng = np.random.default_rng(seed)
    present = rng.choice(keys, m // 2)
    absent = rng.integers(keys.min(), keys.max(), m - m // 2,
                          dtype=np.uint64)
    queries = np.concatenate([present, absent])
    rng.shuffle(queries)
    return np.ascontiguousarray(queries, dtype=np.uint64)


def _windows(packed, pos: np.ndarray, ids: np.ndarray, n: int):
    """The (lo, hi) windows the staged path derives from error bounds."""
    if packed.bkind == 1:
        lo = pos + packed.blo[ids]
        hi = pos + packed.bhi[ids]
    elif packed.bkind == 2:
        lo = pos + packed.blo[0]
        hi = pos + packed.bhi[0]
    else:
        lo = np.zeros(len(pos), dtype=np.int64)
        hi = np.full(len(pos), n - 1, dtype=np.int64)
    return np.clip(lo, 0, n - 1), np.clip(hi, 0, n - 1)


def _best_of(fn, runs: int) -> float:
    fn()  # warm: page-fault outputs, load code paths
    best = float("inf")
    for _ in range(max(runs, 1)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _family_section(family: str, build, keys: np.ndarray, qs: np.ndarray,
                    runs: int, loaded: "dict[str, object]") -> dict:
    """One family baseline: staged-NumPy timings plus every compiled
    backend's fused kernels, bit-identity enforced throughout."""
    try:
        index, config = build(keys)
    except (UnsupportedDataError, ValueError) as exc:
        return {"family": family, "built": False, "error": str(exc)}
    m = len(qs)
    oracle = np.searchsorted(index.keys, qs, side="left").astype(np.int64)
    packed = index.pack()
    with use_backend("numpy"):
        if not np.array_equal(index.lookup_batch(qs), oracle):
            raise RuntimeError(
                f"{index.name}: staged batch path disagrees with the oracle"
            )
        staged_serve = index.serve_batch(qs, qs, qs)
        staged = {
            "lookup": _best_of(lambda: index.lookup_batch(qs), runs),
            "serve": _best_of(lambda: index.serve_batch(qs, qs, qs), runs),
        }
    section = {
        "family": family,
        "built": True,
        "n": int(index.n),
        "config": config,
        "packed": packed is not None,
        "backends": {
            "numpy": {
                "available": True,
                "compiled": False,
                "staged": True,
                "kernels": {
                    kernel: {"best_s": t, "ns_per_op": t / m * 1e9}
                    for kernel, t in staged.items()
                },
            }
        },
        "speedups": {},
    }
    if packed is None:
        return section
    for name, backend in loaded.items():
        if name == "numpy" or not backend.compiled:
            continue
        got = backend.lookup(packed, index.keys, qs)
        got_serve = backend.serve(packed, index.keys, qs, qs, qs)
        if not (np.array_equal(got, oracle)
                and all(np.array_equal(g, r)
                        for g, r in zip(got_serve, staged_serve))):
            raise RuntimeError(
                f"backend {name!r} is not bit-identical to the staged "
                f"{index.name} path"
            )
        timings = {
            "lookup": _best_of(
                lambda b=backend: b.lookup(packed, index.keys, qs), runs),
            "serve": _best_of(
                lambda b=backend: b.serve(packed, index.keys, qs, qs, qs),
                runs),
        }
        section["backends"][name] = {
            "available": True,
            "compiled": True,
            "staged": False,
            "bit_identical": True,
            "kernels": {
                kernel: {"best_s": t, "ns_per_op": t / m * 1e9}
                for kernel, t in timings.items()
            },
        }
        section["speedups"][name] = {
            kernel: staged[kernel] / timings[kernel]
            for kernel in FAMILY_KERNELS
        }
    return section


def _sorted_narrowing_section(keys: np.ndarray, qs: np.ndarray,
                              runs: int, half_width: int = 2048) -> dict:
    """Plain vs sorted-batch-narrowed window search on the pure-NumPy
    path: windows of ``±half_width`` around the true positions, the
    shape a coarse index (sparse directory, wide-eps PLA) hands the
    shared search."""
    from ..core.search import (
        NARROW_MIN_BATCH,
        NARROW_MIN_MEAN_WIDTH,
        _batch_lower_bound_window_narrowed,
        _batch_lower_bound_window_plain,
    )

    n = len(keys)
    q = np.ascontiguousarray(qs, dtype=np.uint64)
    oracle = np.searchsorted(keys, q, side="left").astype(np.int64)
    lo = np.maximum(oracle - half_width, 0)
    hi = np.minimum(oracle + half_width, n - 1)
    if not np.array_equal(
        _batch_lower_bound_window_narrowed(keys, q, lo, hi), oracle
    ):
        raise RuntimeError("narrowed window search disagrees with the oracle")
    plain = _best_of(
        lambda: _batch_lower_bound_window_plain(keys, q, lo, hi), runs)
    narrowed = _best_of(
        lambda: _batch_lower_bound_window_narrowed(keys, q, lo, hi), runs)
    width = 2 * half_width + 1
    return {
        "batch": len(q),
        "window_width": width,
        "engages": bool(len(q) >= NARROW_MIN_BATCH
                        and width >= NARROW_MIN_MEAN_WIDTH),
        "plain": {"best_s": plain, "ns_per_op": plain / len(q) * 1e9},
        "narrowed": {"best_s": narrowed,
                     "ns_per_op": narrowed / len(q) * 1e9},
        "speedup": plain / narrowed,
    }


def kernels_report(
    n: int = 100_000,
    dataset: str = "books",
    seed: int = 42,
    layer2_size: int = 2**14,
    model_types: "tuple[str, str]" = ("ls", "lr"),
    bound_type: str = "labs",
    queries: "int | None" = None,
    runs: int = 9,
    backends: "list[str] | None" = None,
    indexes: "list[str] | None" = None,
) -> dict:
    """Time every kernel on every loadable backend; JSON-ready dict.

    Timings are best-of-``runs`` (microbenchmarks want the noise
    floor, not the scheduler).  Speedups are per kernel against the
    NumPy backend on the same arrays.  ``indexes`` selects which
    sections run (``"rmi"`` and/or family baseline names; default
    all); the RMI section keeps its historical top-level
    ``backends``/``speedups`` keys, family sections live under
    ``families``.
    """
    selected = list(indexes) if indexes else list(INDEX_CHOICES)
    unknown = [s for s in selected if s not in INDEX_CHOICES]
    if unknown:
        raise ValueError(
            f"unknown index selection(s) {unknown}; pick from {INDEX_CHOICES}"
        )
    keys = sosd.generate(dataset, n=n, seed=seed)
    keys = np.ascontiguousarray(keys, dtype=np.uint64)
    m = int(queries) if queries is not None else int(n)
    qs = _smoke_queries(keys, m, seed + 1)

    names = list(backends) if backends else list(KNOWN_BACKENDS)
    backend_status: "dict[str, dict]" = {}
    loaded: "dict[str, object]" = {}
    for name in names:
        try:
            backend = get_backend(name)
        except (ValueError, RuntimeError) as exc:
            backend_status[name] = {"available": False, "error": str(exc)}
            continue
        backend.warmup()
        backend_status[name] = {
            "available": True, "compiled": bool(backend.compiled),
        }
        loaded[name] = backend

    report_backends: "dict[str, dict]" = {}
    speedups: "dict[str, dict[str, float]]" = {}
    if "rmi" in selected:
        report_backends, speedups = _rmi_sections(
            keys, qs, layer2_size, model_types, bound_type, runs,
            names, loaded, backend_status,
        )
    families = {
        name: _family_section(family, build, keys, qs, runs, loaded)
        for name, family, build in FAMILY_SMOKES
        if name in selected
    }

    return {
        "kind": "kernels",
        "dataset": dataset,
        "n": int(n),
        "queries": m,
        "layer2_size": int(layer2_size),
        "model_types": list(model_types),
        "bound_type": bound_type,
        "runs": int(runs),
        "gate_metric": GATE_METRIC,
        "indexes": selected,
        "machine": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "backend_status": backend_status,
        "backends": report_backends,
        "speedups": speedups,
        "families": families,
        "sorted_narrowing": _sorted_narrowing_section(keys, qs, runs),
    }


def _rmi_sections(keys, qs, layer2_size, model_types, bound_type, runs,
                  names, loaded, backend_status):
    """The historical RMI smoke: per-backend timings and speedups."""
    rmi = RMI(
        keys,
        layer_sizes=[int(layer2_size)],
        model_types=tuple(model_types),
        bound_type=bound_type,
    )
    packed = pack_rmi(rmi)
    if packed is None:  # pragma: no cover - smoke config is packable
        raise RuntimeError("smoke RMI configuration is not packable")

    reference = get_backend("numpy")
    ref_ids, ref_pos = reference.rmi_predict(packed, qs)
    win_lo, win_hi = _windows(packed, ref_pos, ref_ids, len(keys))
    oracle = np.searchsorted(keys, qs, side="left").astype(np.int64)
    ref_serve = reference.rmi_serve(packed, keys, qs, qs, qs)
    if not np.array_equal(reference.rmi_lookup(packed, keys, qs), oracle):
        raise RuntimeError("numpy backend disagrees with the oracle")

    m = len(qs)
    report_backends: "dict[str, dict]" = {}
    for name in names:
        if name not in loaded:
            report_backends[name] = {
                "available": False,
                "error": backend_status[name].get("error", "not loadable"),
            }
            continue
        backend = loaded[name]

        got_ids, got_pos = backend.rmi_predict(packed, qs)
        got_lbw = backend.lower_bound_window(keys, qs, win_lo, win_hi)
        got_lookup = backend.rmi_lookup(packed, keys, qs)
        got_serve = backend.rmi_serve(packed, keys, qs, qs, qs)
        mismatches = [
            kernel
            for kernel, ok in (
                ("predict", np.array_equal(got_ids, ref_ids)
                 and np.array_equal(got_pos, ref_pos)),
                ("lower_bound_window", np.array_equal(got_lbw, oracle)),
                ("lookup", np.array_equal(got_lookup, oracle)),
                ("serve", all(np.array_equal(g, r)
                              for g, r in zip(got_serve, ref_serve))),
            )
            if not ok
        ]
        if mismatches:
            raise RuntimeError(
                f"backend {backend.name!r} is not bit-identical to the "
                f"NumPy reference on: {', '.join(mismatches)}"
            )

        timings = {
            "predict": _best_of(
                lambda b=backend: b.rmi_predict(packed, qs), runs),
            "lower_bound_window": _best_of(
                lambda b=backend: b.lower_bound_window(
                    keys, qs, win_lo, win_hi), runs),
            "lookup": _best_of(
                lambda b=backend: b.rmi_lookup(packed, keys, qs), runs),
            "serve": _best_of(
                lambda b=backend: b.rmi_serve(packed, keys, qs, qs, qs),
                runs),
        }
        report_backends[name] = {
            "available": True,
            "compiled": bool(backend.compiled),
            "bit_identical": True,
            "kernels": {
                kernel: {
                    "best_s": timings[kernel],
                    "ns_per_op": timings[kernel] / m * 1e9,
                }
                for kernel in KERNELS
            },
        }

    baseline = report_backends.get("numpy")
    speedups: "dict[str, dict[str, float]]" = {}
    if baseline and baseline.get("available"):
        for name, entry in report_backends.items():
            if name == "numpy" or not entry.get("available"):
                continue
            speedups[name] = {
                kernel: (baseline["kernels"][kernel]["best_s"]
                         / entry["kernels"][kernel]["best_s"])
                for kernel in KERNELS
            }
    return report_backends, speedups


def gate_speedups(report: dict) -> "dict[str, float]":
    """Per-backend speedup the ``--min-speedup`` gate binds on.

    When the RMI section ran, its gate-metric speedup (the historical
    gate, unchanged).  Otherwise -- an ``--index`` run selecting only
    family baselines -- the *minimum* gate-metric speedup across the
    selected families: a multi-family gate must clear the bar
    everywhere, not just on its best index.
    """
    if report.get("speedups"):
        return {
            name: per[GATE_METRIC]
            for name, per in report["speedups"].items()
        }
    out: "dict[str, float]" = {}
    for fam in report.get("families", {}).values():
        for name, per in fam.get("speedups", {}).items():
            value = per.get(GATE_METRIC)
            if value is not None:
                out[name] = min(out.get(name, float("inf")), value)
    return out


def _backend_status(report: dict) -> dict:
    """Availability map, tolerating pre-``backend_status`` reports."""
    status = report.get("backend_status")
    if status:
        return status
    return {
        name: {
            "available": bool(entry.get("available")),
            "compiled": bool(entry.get("compiled")),
        }
        for name, entry in report.get("backends", {}).items()
    }


def resolve_gate_backend(report: dict, gate_backend: str) -> "str | None":
    """Backend name the gate binds on, or ``None`` when none qualifies.

    ``"best-compiled"`` picks the available compiled backend with the
    highest gate-metric speedup (see :func:`gate_speedups`); a concrete
    name requires that backend to be available (CI's numba leg must
    fail loudly when the install broke, not silently gate on cext).
    """
    status = _backend_status(report)
    if gate_backend != "best-compiled":
        entry = status.get(gate_backend)
        if not (entry and entry.get("available") and entry.get("compiled")):
            return None
        return gate_backend
    best_name, best = None, -1.0
    for name, value in gate_speedups(report).items():
        if not status.get(name, {}).get("compiled"):
            continue
        if value > best:
            best_name, best = name, value
    return best_name


def render_kernels_report(report: dict) -> str:
    """Human-readable summary of a :func:`kernels_report` dict."""
    lines = [
        f"kernel backends -- {report['dataset']}, n={report['n']:,}, "
        f"{report['queries']:,} queries, layer2=2^"
        f"{int(np.log2(report['layer2_size']))}, "
        f"{'->'.join(report['model_types'])}, {report['bound_type']}, "
        f"best of {report['runs']}",
    ]
    for name, entry in report["backends"].items():
        if not entry.get("available"):
            lines.append(f"  {name:6s} unavailable "
                         f"({entry.get('error', 'not loadable')})")
            continue
        for kernel in KERNELS:
            t = entry["kernels"][kernel]
            speed = report["speedups"].get(name, {}).get(kernel)
            suffix = f"  {speed:5.2f}x vs numpy" if speed else ""
            lines.append(
                f"  {name:6s} {kernel:18s} {t['best_s'] * 1e3:8.2f}ms  "
                f"{t['ns_per_op']:7.1f}ns/op{suffix}"
            )
    for fam_name, fam in report.get("families", {}).items():
        if not fam.get("built"):
            lines.append(
                f"  {fam_name}: not built ({fam.get('error', 'unknown')})"
            )
            continue
        tag = f"{fam_name} [{fam['family']}]"
        for name, entry in fam["backends"].items():
            for kernel in FAMILY_KERNELS:
                t = entry["kernels"][kernel]
                speed = fam["speedups"].get(name, {}).get(kernel)
                if speed:
                    suffix = f"  {speed:5.2f}x vs numpy"
                else:
                    suffix = "  (staged)" if entry.get("staged") else ""
                lines.append(
                    f"  {tag:24s} {name:6s} {kernel:6s} "
                    f"{t['best_s'] * 1e3:8.2f}ms  "
                    f"{t['ns_per_op']:7.1f}ns/op{suffix}"
                )
        if not fam.get("packed"):
            lines.append(f"  {tag:24s} unpackable: staged path only")
    narrowing = report.get("sorted_narrowing")
    if narrowing:
        lines.append(
            f"  sorted-narrowing (numpy, batch={narrowing['batch']:,}, "
            f"window={narrowing['window_width']}): plain "
            f"{narrowing['plain']['ns_per_op']:.1f}ns/op -> narrowed "
            f"{narrowing['narrowed']['ns_per_op']:.1f}ns/op "
            f"({narrowing['speedup']:.2f}x)"
        )
    return "\n".join(lines)


def write_kernels_report(report: dict, path: "str | os.PathLike") -> None:
    """Write a :func:`kernels_report` dict as pretty-printed JSON."""
    Path(path).write_text(json.dumps(report, indent=2) + "\n")
