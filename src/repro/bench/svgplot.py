"""Zero-dependency SVG line plots for figure results.

The paper's evaluation is communicated through line plots; this module
turns a :class:`~repro.bench.report.FigureResult` into an SVG image so
the reproduction regenerates *figures*, not just tables -- without
pulling in matplotlib (the repository is dependency-light by design).

Two layers:

* :class:`LinePlot` -- a minimal chart: linear/log axes, multiple named
  series, ticks, legend, title.  Emits a self-contained SVG string.
* :func:`figure_to_svg` -- groups a ``FigureResult``'s rows into series
  by a key column and plots ``x`` vs ``y``.
* :data:`PLOT_SPECS` -- per-figure plotting recipes (axes, grouping,
  log scales) used by ``python -m repro.bench --svg DIR``.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from .report import FigureResult

__all__ = ["LinePlot", "figure_to_svg", "PLOT_SPECS", "plot_figure"]

#: Categorical palette (colorblind-safe Okabe-Ito).
_COLORS = [
    "#0072B2", "#E69F00", "#009E73", "#D55E00",
    "#CC79A7", "#56B4E9", "#F0E442", "#000000",
]


@dataclass
class _Series:
    name: str
    xs: list[float]
    ys: list[float]


@dataclass
class LinePlot:
    """A minimal multi-series line chart rendered to SVG."""

    title: str = ""
    x_label: str = ""
    y_label: str = ""
    log_x: bool = False
    log_y: bool = False
    width: int = 640
    height: int = 420
    series: list[_Series] = field(default_factory=list)

    _MARGIN_L = 70
    _MARGIN_R = 150
    _MARGIN_T = 40
    _MARGIN_B = 55

    def add_series(self, name: str, xs: Sequence[float],
                   ys: Sequence[float]) -> None:
        pairs = [
            (float(x), float(y))
            for x, y in zip(xs, ys)
            if _plottable(x, self.log_x) and _plottable(y, self.log_y)
        ]
        pairs.sort()
        if pairs:
            self.series.append(_Series(
                name, [p[0] for p in pairs], [p[1] for p in pairs]
            ))

    # -- scaling -----------------------------------------------------------

    def _domain(self, axis: str) -> tuple[float, float]:
        values = [
            v
            for s in self.series
            for v in (s.xs if axis == "x" else s.ys)
        ]
        lo, hi = min(values), max(values)
        if lo == hi:
            pad = abs(lo) * 0.1 or 1.0
            lo, hi = lo - pad, hi + pad
        return lo, hi

    def _scale(self, value: float, axis: str) -> float:
        lo, hi = self._domain(axis)
        log = self.log_x if axis == "x" else self.log_y
        if log:
            value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
        frac = (value - lo) / (hi - lo)
        if axis == "x":
            span = self.width - self._MARGIN_L - self._MARGIN_R
            return self._MARGIN_L + frac * span
        span = self.height - self._MARGIN_T - self._MARGIN_B
        return self.height - self._MARGIN_B - frac * span

    def _ticks(self, axis: str, count: int = 5) -> list[float]:
        lo, hi = self._domain(axis)
        log = self.log_x if axis == "x" else self.log_y
        if log:
            lo_e = math.floor(math.log10(lo))
            hi_e = math.ceil(math.log10(hi))
            step = max((hi_e - lo_e) // count, 1)
            return [10.0**e for e in range(lo_e, hi_e + 1, step)]
        step = (hi - lo) / count
        return [lo + i * step for i in range(count + 1)]

    # -- rendering ----------------------------------------------------------

    def render(self) -> str:
        if not self.series:
            raise ValueError("cannot render a plot with no series")
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" font-family="sans-serif" '
            f'font-size="12">',
            f'<rect width="{self.width}" height="{self.height}" '
            'fill="white"/>',
            f'<text x="{self.width / 2}" y="22" text-anchor="middle" '
            f'font-size="15">{_esc(self.title)}</text>',
        ]
        # Axes box.
        x0, y0 = self._MARGIN_L, self.height - self._MARGIN_B
        x1, y1 = self.width - self._MARGIN_R, self._MARGIN_T
        parts.append(
            f'<rect x="{x0}" y="{y1}" width="{x1 - x0}" height="{y0 - y1}" '
            'fill="none" stroke="#999"/>'
        )
        # Ticks + grid.
        for tick in self._ticks("x"):
            px = self._scale(tick, "x")
            parts.append(f'<line x1="{px:.1f}" y1="{y0}" x2="{px:.1f}" '
                         f'y2="{y1}" stroke="#eee"/>')
            parts.append(f'<text x="{px:.1f}" y="{y0 + 18}" '
                         f'text-anchor="middle">{_fmt_tick(tick)}</text>')
        for tick in self._ticks("y"):
            py = self._scale(tick, "y")
            parts.append(f'<line x1="{x0}" y1="{py:.1f}" x2="{x1}" '
                         f'y2="{py:.1f}" stroke="#eee"/>')
            parts.append(f'<text x="{x0 - 6}" y="{py + 4:.1f}" '
                         f'text-anchor="end">{_fmt_tick(tick)}</text>')
        # Axis labels.
        parts.append(
            f'<text x="{(x0 + x1) / 2}" y="{self.height - 12}" '
            f'text-anchor="middle">{_esc(self.x_label)}</text>'
        )
        parts.append(
            f'<text x="18" y="{(y0 + y1) / 2}" text-anchor="middle" '
            f'transform="rotate(-90 18 {(y0 + y1) / 2})">'
            f'{_esc(self.y_label)}</text>'
        )
        # Series polylines + legend.
        for i, s in enumerate(self.series):
            color = _COLORS[i % len(_COLORS)]
            points = " ".join(
                f"{self._scale(x, 'x'):.1f},{self._scale(y, 'y'):.1f}"
                for x, y in zip(s.xs, s.ys)
            )
            parts.append(f'<polyline points="{points}" fill="none" '
                         f'stroke="{color}" stroke-width="2"/>')
            for x, y in zip(s.xs, s.ys):
                parts.append(
                    f'<circle cx="{self._scale(x, "x"):.1f}" '
                    f'cy="{self._scale(y, "y"):.1f}" r="2.6" '
                    f'fill="{color}"/>'
                )
            ly = self._MARGIN_T + 16 * i
            lx = self.width - self._MARGIN_R + 10
            parts.append(f'<line x1="{lx}" y1="{ly}" x2="{lx + 18}" '
                         f'y2="{ly}" stroke="{color}" stroke-width="2"/>')
            parts.append(f'<text x="{lx + 23}" y="{ly + 4}">'
                         f'{_esc(s.name)}</text>')
        parts.append("</svg>")
        return "\n".join(parts)

    def write(self, path: "str | os.PathLike") -> None:
        Path(path).write_text(self.render())


def _plottable(value: Any, log: bool) -> bool:
    try:
        v = float(value)
    except (TypeError, ValueError):
        return False
    if math.isnan(v) or math.isinf(v):
        return False
    return v > 0 if log else True


def _esc(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def _fmt_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 0.01:
        exp = int(math.floor(math.log10(abs(value))))
        mant = value / 10**exp
        if abs(mant - 1.0) < 1e-9:
            return f"1e{exp}"
        return f"{mant:.1f}e{exp}"
    if abs(value) >= 100:
        return f"{value:,.0f}"
    return f"{value:g}"


def figure_to_svg(
    result: FigureResult,
    x: str,
    y: str,
    series_by: "str | Sequence[str]",
    log_x: bool = False,
    log_y: bool = False,
    path: "str | os.PathLike | None" = None,
) -> str:
    """Plot a FigureResult: ``x`` vs ``y``, one line per ``series_by``
    value (or tuple of values)."""
    if isinstance(series_by, str):
        series_by = [series_by]
    plot = LinePlot(
        title=f"{result.figure_id}: {result.title}",
        x_label=x,
        y_label=y,
        log_x=log_x,
        log_y=log_y,
    )
    groups: dict[str, list[dict]] = {}
    for row in result.rows:
        key = " / ".join(str(row.get(c, "")) for c in series_by)
        groups.setdefault(key, []).append(row)
    for name, rows in groups.items():
        plot.add_series(name, [r.get(x) for r in rows],
                        [r.get(y) for r in rows])
    svg = plot.render()
    if path is not None:
        Path(path).write_text(svg)
    return svg


#: Per-figure plotting recipes for the CLI's ``--svg`` flag.
PLOT_SPECS: dict[str, dict] = {
    "fig04": dict(x="segments", y="empty_pct",
                  series_by=["dataset", "root"], log_x=True),
    "fig05": dict(x="segments", y="largest",
                  series_by=["dataset", "root"], log_x=True, log_y=True),
    "fig06": dict(x="segments", y="median_err",
                  series_by=["dataset", "combo"], log_x=True, log_y=True),
    "fig07": dict(x="index_bytes", y="median_interval",
                  series_by=["dataset", "combo", "bounds"], log_x=True,
                  log_y=True),
    "fig08": dict(x="index_bytes", y="est_ns",
                  series_by=["dataset", "combo"], log_x=True),
    "fig09": dict(x="index_bytes", y="est_ns",
                  series_by=["dataset", "combo", "bounds"], log_x=True),
    "fig10": dict(x="index_bytes", y="est_ns",
                  series_by=["dataset", "combo", "search"], log_x=True),
    "fig11": dict(x="segments", y="build_s",
                  series_by=["panel", "variant"], log_x=True),
    "fig12": dict(x="index_bytes", y="est_ns",
                  series_by=["dataset", "index"], log_x=True, log_y=True),
    "fig14": dict(x="index_bytes", y="build_s",
                  series_by=["dataset", "index"], log_x=True, log_y=True),
}


def plot_figure(result: FigureResult,
                path: "str | os.PathLike") -> "str | None":
    """Plot a figure using its registered spec; None when no spec."""
    spec = PLOT_SPECS.get(result.figure_id)
    if spec is None:
        return None
    return figure_to_svg(result, path=path, **spec)
