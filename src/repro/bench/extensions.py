"""Extension experiments beyond the paper's figures.

Three studies the paper explicitly defers or calls for:

* ``ext_multilayer`` -- RMIs with more than two layers ("We plan to
  explore RMIs with more than two layers as future work", Section 4.2).
* ``ext_robust`` -- outlier-robust RMIs on fb ("a more robust solution
  potentially involving outlier detection should be sought",
  Section 6.1), comparing the plain RMI, the trimmed-LR workaround of
  prior work, and our gap-based :class:`~repro.core.robust.RobustRMI`.
* ``ext_distributions`` -- RMI accuracy on classic statistical
  distributions, backing Section 4.3's remark that "learned indexes are
  known to adapt well to artificial data sampled from statistical
  distributions" (and motivating the paper's real-world datasets).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..baselines import BinarySearchIndex
from ..core.analysis import prediction_errors
from ..core.rmi import RMI
from ..core.robust import RobustRMI
from ..cost.model import CostModel
from ..data import distributions, sosd
from ..workload import make_workload, run_workload
from .figures import DEFAULT_N, DEFAULT_SEED
from .report import FigureResult

__all__ = [
    "ext_multilayer",
    "ext_robust",
    "ext_distributions",
    "ext_variance",
    "ext_baselines",
    "ext_updates",
]


def ext_multilayer(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    num_lookups: int = 2_000,
    datasets: Sequence[str] = ("books", "osmc"),
) -> FigureResult:
    """Two- vs three-layer RMIs at matched leaf counts.

    The comparison holds the last-layer size fixed and inserts a middle
    layer, measuring what the extra layer buys (better segmentation of
    hard CDFs) and costs (one more model evaluation per lookup, longer
    builds).
    """
    result = FigureResult(
        "ext_multilayer",
        "Two-layer vs three-layer RMIs (future work of Section 4.2)",
        ["dataset", "layers", "config", "leaf_models", "index_bytes",
         "median_err", "est_ns", "build_s", "checksum_ok"],
    )
    cm = CostModel()
    leaf_models = max(n // 100, 64)
    mid = max(int(np.sqrt(leaf_models)), 2)
    for name in datasets:
        keys = sosd.generate(name, n=n, seed=seed)
        wl = make_workload(keys, num_lookups=num_lookups, seed=seed)
        variants = [
            ("2", RMI(keys, layer_sizes=[leaf_models],
                      model_types=("ls", "lr"))),
            ("3", RMI(keys, layer_sizes=[mid, leaf_models],
                      model_types=("ls", "ls", "lr"))),
            ("3-cubic", RMI(keys, layer_sizes=[mid, leaf_models],
                            model_types=("cs", "cs", "lr"))),
        ]
        for label, rmi in variants:
            res = run_workload(rmi, wl, runs=1, cost_model=cm)
            result.add(
                dataset=name,
                layers=label,
                config=rmi.describe(),
                leaf_models=leaf_models,
                index_bytes=rmi.size_in_bytes(),
                median_err=float(np.median(prediction_errors(rmi))),
                est_ns=round(res.estimated_ns_per_lookup, 1),
                build_s=round(rmi.build_stats.total_seconds, 6),
                checksum_ok=res.valid,
            )
    result.note("a third layer re-segments each segment, paying one "
                "extra evaluation per lookup; it pays off only when the "
                "two-layer segmentation is the bottleneck")
    return result


def ext_robust(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    num_lookups: int = 2_000,
) -> FigureResult:
    """Outlier handling on fb: plain vs trimmed-LR vs gap-based robust.

    The trimmed-LR root reproduces prior work's workaround (and its
    failure mode when the trim fraction undershoots the outlier count);
    :class:`RobustRMI` implements the detection-based approach the
    paper calls for.
    """
    result = FigureResult(
        "ext_robust",
        "Outlier-robust RMIs on fb (sought by Section 6.1)",
        ["variant", "index_bytes", "median_err", "est_ns", "checksum_ok"],
    )
    cm = CostModel()
    keys = sosd.fb(n=n, seed=seed)
    wl = make_workload(keys, num_lookups=num_lookups, seed=seed)
    layer2 = max(n // 100, 64)

    base = run_workload(BinarySearchIndex(keys), wl, runs=1, cost_model=cm)
    result.add(variant="binary-search", index_bytes=0, median_err=0.0,
               est_ns=round(base.estimated_ns_per_lookup, 1),
               checksum_ok=base.valid)

    plain = RMI(keys, layer_sizes=[layer2])
    res = run_workload(plain, wl, runs=1, cost_model=cm)
    result.add(variant="rmi (plain LS→LR)",
               index_bytes=plain.size_in_bytes(),
               median_err=float(np.median(prediction_errors(plain))),
               est_ns=round(res.estimated_ns_per_lookup, 1),
               checksum_ok=res.valid)

    robust = RobustRMI(keys, layer_sizes=[layer2])
    res = run_workload(robust.body,
                       make_workload(keys[robust.split.lo:robust.split.hi],
                                     num_lookups=num_lookups, seed=seed),
                       runs=1, cost_model=cm)
    got = robust.lookup_batch(wl.queries)
    ok = bool(np.array_equal(got, wl.expected_positions))
    result.add(variant=f"robust rmi ({robust.split.num_outliers} outliers "
                       "side-stepped)",
               index_bytes=robust.size_in_bytes(),
               median_err=float(np.median(prediction_errors(robust.body))),
               est_ns=round(res.estimated_ns_per_lookup, 1),
               checksum_ok=ok)
    result.note("gap-based outlier detection restores RMI performance on "
                "fb without a hard-coded trim fraction")
    return result


def ext_updates(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    insert_fraction: float = 0.1,
) -> FigureResult:
    """Table 1's update column, measured.

    Starts every updatable structure on 90 % of a books-like key set,
    inserts the remaining 10 % one by one, and verifies successor
    queries afterwards.  The RMI row quantifies the alternative the
    paper names: full retraining.  Wall times are Python (relative
    comparison only).
    """
    import time

    from ..baselines import ALEXIndex, ARTIndex, DynamicPGMIndex
    from ..baselines.btree import BulkLoadedBPlusTree

    result = FigureResult(
        "ext_updates",
        "Insert support across structures (Table 1)",
        ["structure", "mechanism", "inserts", "us_per_insert",
         "correct_after"],
    )
    keys = sosd.books(n=n, seed=seed)
    num_inserts = max(int(n * insert_fraction), 1)
    base = np.delete(keys, np.arange(0, n, int(1 / insert_fraction)))
    inserts = np.setdiff1d(keys, base)[:num_inserts]
    reference = set(int(k) for k in base) | set(int(k) for k in inserts)
    probes = sorted(reference)[:: max(len(reference) // 50, 1)]

    def successor_oracle(q: int) -> int | None:
        idx = np.searchsorted(np.asarray(sorted(reference), dtype=np.uint64),
                              np.uint64(q), side="left")
        ordered = sorted(reference)
        return ordered[idx] if idx < len(ordered) else None

    # --- ALEX: gapped arrays absorb inserts --------------------------
    alex = ALEXIndex(base)
    t0 = time.perf_counter()
    for k in inserts:
        alex.insert_key(int(k))
    alex_s = time.perf_counter() - t0
    stored = np.concatenate([l.keys_in_order() for l in alex._leaves_chain])
    ok = bool(np.all(np.diff(stored.astype(np.int64)) > 0)) and len(
        stored
    ) == len(reference)
    result.add(structure="alex", mechanism="gapped arrays + expand",
               inserts=len(inserts),
               us_per_insert=round(alex_s / len(inserts) * 1e6, 1),
               correct_after=ok)

    # --- dynamic PGM: logarithmic method ------------------------------
    dpgm = DynamicPGMIndex(base, eps=32, base_size=256)
    t0 = time.perf_counter()
    for k in inserts:
        dpgm.insert(int(k))
    dpgm_s = time.perf_counter() - t0
    ok = all(dpgm.lower_bound(int(q)) == successor_oracle(int(q))
             for q in probes)
    result.add(structure="dynamic-pgm", mechanism="LSM over PGM runs",
               inserts=len(inserts),
               us_per_insert=round(dpgm_s / len(inserts) * 1e6, 1),
               correct_after=ok)

    # --- B+-tree: split propagation -----------------------------------
    tree = BulkLoadedBPlusTree(base, base.astype(np.int64), fanout=64)
    t0 = time.perf_counter()
    for k in inserts:
        tree.insert(int(k), int(k))
    tree_s = time.perf_counter() - t0
    ok = tree.num_entries == len(reference)
    result.add(structure="b-tree", mechanism="node splits",
               inserts=len(inserts),
               us_per_insert=round(tree_s / len(inserts) * 1e6, 1),
               correct_after=ok)

    # --- ART: adaptive node growth -------------------------------------
    art = ARTIndex(base)
    t0 = time.perf_counter()
    for k in inserts:
        art.insert(int(k))
    art_s = time.perf_counter() - t0
    ok = all(
        (art.lower_bound_key(int(q)) or (None,))[0] == successor_oracle(int(q))
        for q in probes
    )
    result.add(structure="art", mechanism="leaf/prefix splits + growth",
               inserts=len(inserts),
               us_per_insert=round(art_s / len(inserts) * 1e6, 1),
               correct_after=ok)

    # --- RMI: the paper's contrast -- full rebuild ---------------------
    t0 = time.perf_counter()
    rebuilt = RMI(np.asarray(sorted(reference), dtype=np.uint64),
                  layer_sizes=[max(n // 100, 64)])
    rmi_s = time.perf_counter() - t0
    result.add(structure="rmi", mechanism="full retrain (no insert path)",
               inserts=len(inserts),
               us_per_insert=round(rmi_s / len(inserts) * 1e6, 1),
               correct_after=rebuilt.lookup(int(inserts[0])) >= 0)
    result.note("RMIs must be rebuilt on change (Table 1); amortized per "
                "insert the rebuild can still be competitive for batched "
                "updates -- but not for online ones")
    return result


def ext_baselines(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    num_lookups: int = 2_000,
    datasets: Sequence[str] = ("books", "osmc"),
) -> FigureResult:
    """Extension baselines vs the Table 5 set.

    FAST (compared by SOSD, Section 3.2), FITing-tree (unavailable to
    the paper, Section 3.1), and compressed PGM (mentioned in
    Section 3.1) against the paper's fixed-RMI and plain PGM anchors.
    """
    from ..baselines import (
        CompressedPGMIndex,
        FASTIndex,
        FITingTree,
        PGMIndex,
        RMIAsIndex,
    )

    result = FigureResult(
        "ext_baselines",
        "Extension baselines: FAST, FITing-tree, compressed PGM",
        ["dataset", "index", "index_bytes", "est_ns", "checksum_ok"],
    )
    cm = CostModel()
    layer2 = max(n // 100, 64)
    for name in datasets:
        keys = sosd.generate(name, n=n, seed=seed)
        wl = make_workload(keys, num_lookups=num_lookups, seed=seed)
        candidates = [
            RMIAsIndex(keys, layer2_size=layer2),
            PGMIndex(keys, eps=64),
            CompressedPGMIndex(keys, eps=64),
            FITingTree(keys, error=64),
            FASTIndex(keys, sparsity=4),
        ]
        for index in candidates:
            res = run_workload(index, wl, runs=1, cost_model=cm)
            result.add(
                dataset=name,
                index=index.name,
                index_bytes=index.size_in_bytes(),
                est_ns=round(res.estimated_ns_per_lookup, 1),
                checksum_ok=res.valid,
            )
    result.note("compressed PGM trades a wider window for ~1/3 smaller "
                "segments; FITing-tree behaves like an eps-capped "
                "learned index (consistent with its description)")
    return result


def ext_variance(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    num_lookups: int = 1_000,
    datasets: Sequence[str] = ("books", "osmc"),
) -> FigureResult:
    """Per-lookup cost variance: RMI vs error-capped learned indexes.

    Footnote 2 of the paper: "the estimation error of RMIs might vary
    greatly between segments inducing a noticeable variance in lookup
    times.  We tried to accurately measure the variance in lookup times
    for RMIs but due to caching effects were not able to."  Our
    structural counters side-step the caching problem entirely: we
    report the distribution of per-lookup comparison counts, which *is*
    the data-dependent part of the lookup.  PGM-index and RadixSpline
    cap the maximum error, so their comparison counts are uniform; the
    RMI's spread follows its per-segment error spread.
    """
    from ..baselines import PGMIndex, RadixSpline

    result = FigureResult(
        "ext_variance",
        "Per-lookup comparison-count variance (paper footnote 2)",
        ["dataset", "index", "p50_cmp", "p99_cmp", "max_cmp",
         "p99_over_p50"],
    )
    for name in datasets:
        keys = sosd.generate(name, n=n, seed=seed)
        wl = make_workload(keys, num_lookups=num_lookups, seed=seed)
        layer2 = max(n // 100, 64)
        candidates = [
            ("rmi", RMI(keys, layer_sizes=[layer2])),
            ("pgm-index", PGMIndex(keys, eps=64)),
            ("radix-spline", RadixSpline(keys, max_error=64, radix_bits=10)),
        ]
        for index_name, index in candidates:
            comparisons = []
            for q in wl.queries:
                if isinstance(index, RMI):
                    comparisons.append(index.lookup_traced(int(q)).comparisons)
                else:
                    b = index.search_bounds(int(q))
                    comparisons.append(
                        int(np.ceil(np.log2(max(b.hi - b.lo + 1, 1) + 1)))
                    )
            arr = np.asarray(comparisons, dtype=np.float64)
            p50 = float(np.percentile(arr, 50))
            p99 = float(np.percentile(arr, 99))
            result.add(
                dataset=name,
                index=index_name,
                p50_cmp=p50,
                p99_cmp=p99,
                max_cmp=float(arr.max()),
                p99_over_p50=round(p99 / max(p50, 1e-9), 2),
            )
    result.note("error-capped indexes (PGM, RadixSpline) have near-"
                "constant per-lookup cost; the RMI's tail follows its "
                "per-segment error spread")
    return result


def ext_distributions(
    n: int = DEFAULT_N,
    seed: int = DEFAULT_SEED,
    num_lookups: int = 2_000,
) -> FigureResult:
    """RMI accuracy on statistical vs real-world-like data (§4.3)."""
    result = FigureResult(
        "ext_distributions",
        "RMIs on statistical distributions vs SOSD-like data",
        ["source", "dataset", "median_err", "est_ns", "checksum_ok"],
    )
    cm = CostModel()
    layer2 = max(n // 100, 64)
    cases = [("statistical", name, distributions.generate(name, n=n, seed=seed))
             for name in ("uniform", "normal", "lognormal", "sequential")]
    cases += [("real-world", name, sosd.generate(name, n=n, seed=seed))
              for name in sosd.dataset_names()]
    for source, name, keys in cases:
        rmi = RMI(keys, layer_sizes=[layer2])
        wl = make_workload(keys, num_lookups=num_lookups, seed=seed)
        res = run_workload(rmi, wl, runs=1, cost_model=cm)
        result.add(
            source=source,
            dataset=name,
            median_err=float(np.median(prediction_errors(rmi))),
            est_ns=round(res.estimated_ns_per_lookup, 1),
            checksum_ok=res.valid,
        )
    result.note("statistical distributions are uniformly easy -- the "
                "reason the paper evaluates on real-world data (§4.3)")
    return result
