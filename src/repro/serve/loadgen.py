"""Open-loop load generation against an :class:`IndexServer`.

Replays a :func:`repro.workload.make_workload` key stream (uniform or
Zipf access, optional absent keys, optional range-query fraction)
against a running server at a target QPS with Poisson arrivals
(:func:`repro.workload.make_arrivals`).  The generator is *open-loop*:
every request's send time is fixed before the run starts, so an
overloaded server accumulates queueing delay in the measured tail
instead of silently slowing the offered load (the coordinated-omission
pitfall closed-loop benchmarks fall into).  ``qps=None`` offers the
whole stream at once -- the saturation mode the throughput benchmark
uses.

Every response is validated against the ``np.searchsorted`` oracle the
workload generator precomputed: a served position that disagrees counts
as ``wrong`` (the serving analogue of Section 4.4's checksum), and
timed-out or rejected requests are tallied separately -- they carry no
value, so they can be late, but never wrong.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

import numpy as np

from ..workload import make_arrivals, make_range_workload, make_workload
from .batcher import STATUS_OK
from .server import IndexServer

__all__ = [
    "run_open_loop",
    "run_batch_closed_loop",
    "run_mixed_closed_loop",
    "loadgen_report",
]


async def run_open_loop(
    server: IndexServer,
    keys: np.ndarray,
    *,
    num_requests: int = 1000,
    qps: "float | None" = None,
    seed: int = 42,
    access: str = "uniform",
    include_absent: float = 0.0,
    range_fraction: float = 0.0,
    timeout_s: "float | None" = None,
) -> "dict[str, Any]":
    """Fire one workload at ``server``; return a latency/status report.

    ``range_fraction`` of the requests are range-count queries (their
    oracle is precomputed too); the rest are point lookups.  Requests
    are interleaved deterministically from ``seed``, so two runs offer
    byte-identical streams.
    """
    if not 0.0 <= range_fraction <= 1.0:
        raise ValueError("range_fraction must be within [0, 1]")
    num_ranges = int(num_requests * range_fraction)
    num_points = num_requests - num_ranges
    point_wl = make_workload(
        keys, num_lookups=max(num_points, 1), seed=seed,
        include_absent=include_absent, access=access,
    )
    range_wl = make_range_workload(
        keys, num_queries=max(num_ranges, 1), seed=seed + 1
    )
    offsets = make_arrivals(num_requests, qps, seed=seed + 2)
    # Deterministic interleave: ranges spread evenly over the stream.
    is_range = np.zeros(num_requests, dtype=bool)
    if num_ranges:
        is_range[np.linspace(0, num_requests - 1, num_ranges,
                             dtype=np.int64)] = True

    loop = asyncio.get_running_loop()
    t0 = loop.time()
    wall_start = time.monotonic()

    async def fire(i: int, slot: int, range_op: bool):
        delay = t0 + offsets[i] - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        if range_op:
            resp = await server.range_query(
                int(range_wl.lows[slot]), int(range_wl.highs[slot]),
                timeout_s=timeout_s,
            )
            want = (int(range_wl.expected_starts[slot]),
                    int(range_wl.expected_counts[slot]))
        else:
            resp = await server.lookup(
                int(point_wl.queries[slot]), timeout_s=timeout_s
            )
            want = (int(point_wl.expected_positions[slot]), None)
        return resp, want

    tasks = []
    point_slot = range_slot = 0
    for i in range(num_requests):
        if is_range[i]:
            tasks.append(fire(i, range_slot, True))
            range_slot += 1
        else:
            tasks.append(fire(i, point_slot, False))
            point_slot += 1
    outcomes = await asyncio.gather(*tasks)
    wall_s = time.monotonic() - wall_start

    statuses: "dict[str, int]" = {}
    wrong = 0
    ok_latencies = []
    batch_sizes = []
    for resp, (want_pos, want_count) in outcomes:
        statuses[resp.status] = statuses.get(resp.status, 0) + 1
        if resp.status == STATUS_OK:
            ok_latencies.append(resp.latency_s)
            batch_sizes.append(resp.batch_size)
            if resp.position != want_pos:
                wrong += 1
            elif want_count is not None and resp.count != want_count:
                wrong += 1
    completed = statuses.get(STATUS_OK, 0)
    lat = np.asarray(ok_latencies, dtype=np.float64)
    report: "dict[str, Any]" = {
        "num_requests": int(num_requests),
        "offered_qps": None if qps is None else float(qps),
        "achieved_qps": round(completed / wall_s, 1) if wall_s > 0 else 0.0,
        "wall_s": round(wall_s, 4),
        "statuses": statuses,
        "completed": completed,
        "wrong": wrong,
        "mean_batch": round(float(np.mean(batch_sizes)), 2)
        if batch_sizes else 0.0,
        "coalesced_fraction": round(
            float(np.mean(np.asarray(batch_sizes) > 1)), 4
        ) if batch_sizes else 0.0,
    }
    if len(lat):
        report["latency_ms"] = {
            "mean": round(float(lat.mean()) * 1e3, 3),
            "p50": round(float(np.percentile(lat, 50)) * 1e3, 3),
            "p95": round(float(np.percentile(lat, 95)) * 1e3, 3),
            "p99": round(float(np.percentile(lat, 99)) * 1e3, 3),
            "max": round(float(lat.max()) * 1e3, 3),
        }
    return report


async def run_batch_closed_loop(
    target: Any,
    keys: np.ndarray,
    *,
    num_requests: int = 100_000,
    chunk_size: int = 2048,
    inflight: int = 4,
    seed: int = 42,
    access: str = "uniform",
    include_absent: float = 0.0,
    range_fraction: float = 0.0,
) -> "dict[str, Any]":
    """Drive the bulk lanes: chunked batches, bounded inflight, oracle.

    The scaling benchmark's driver.  ``target`` is anything exposing the
    bulk scatter/gather API (``lookup_batch(queries) -> positions`` and
    ``range_query_batch(lows, highs) -> (starts, counts)``) -- in
    practice a :class:`~repro.serve.router.ShardRouter`.  The workload
    is cut into ``chunk_size`` batches with at most ``inflight`` chunks
    outstanding (closed-loop on chunks, so throughput measures the
    serving tier's batch pipeline, not per-request asyncio overhead),
    and **every** returned position/count is validated against the
    ``np.searchsorted`` oracle the workload generator precomputed.
    """
    if not 0.0 <= range_fraction <= 1.0:
        raise ValueError("range_fraction must be within [0, 1]")
    num_ranges = int(num_requests * range_fraction)
    num_points = num_requests - num_ranges
    point_wl = make_workload(
        keys, num_lookups=max(num_points, 1), seed=seed,
        include_absent=include_absent, access=access,
    )
    range_wl = make_range_workload(
        keys, num_queries=max(num_ranges, 1), seed=seed + 1
    )

    sem = asyncio.Semaphore(max(int(inflight), 1))
    wrong = 0
    served = 0

    async def point_chunk(lo: int, hi: int) -> None:
        nonlocal wrong, served
        async with sem:
            got = await target.lookup_batch(point_wl.queries[lo:hi])
        wrong += int(np.count_nonzero(
            np.asarray(got, dtype=np.int64)
            != point_wl.expected_positions[lo:hi]
        ))
        served += hi - lo

    async def range_chunk(lo: int, hi: int) -> None:
        nonlocal wrong, served
        async with sem:
            starts, counts = await target.range_query_batch(
                range_wl.lows[lo:hi], range_wl.highs[lo:hi]
            )
        wrong += int(np.count_nonzero(
            np.asarray(starts, dtype=np.int64)
            != range_wl.expected_starts[lo:hi]
        ))
        wrong += int(np.count_nonzero(
            np.asarray(counts, dtype=np.int64)
            != range_wl.expected_counts[lo:hi]
        ))
        served += hi - lo

    chunks = []
    for lo in range(0, num_points, chunk_size):
        chunks.append(point_chunk(lo, min(lo + chunk_size, num_points)))
    for lo in range(0, num_ranges, chunk_size):
        chunks.append(range_chunk(lo, min(lo + chunk_size, num_ranges)))

    wall_start = time.monotonic()
    await asyncio.gather(*chunks)
    wall_s = time.monotonic() - wall_start
    return {
        "num_requests": int(num_requests),
        "num_points": int(num_points),
        "num_ranges": int(num_ranges),
        "chunk_size": int(chunk_size),
        "inflight": int(inflight),
        "served": int(served),
        "wrong": int(wrong),
        "wall_s": round(wall_s, 4),
        "achieved_qps": round(served / wall_s, 1) if wall_s > 0 else 0.0,
    }


async def run_mixed_closed_loop(
    target: Any,
    workload: Any,
    *,
    timeout_s: "float | None" = None,
    bulk: bool = False,
) -> "dict[str, Any]":
    """Replay a :class:`~repro.workload.MixedWorkload` against ``target``.

    Closed-loop *by segment*: each segment's writes are applied (and
    awaited) through ``target.apply_writes`` before its reads fire, so
    every read has an exact incremental oracle even while a background
    rebuild daemon swaps bases mid-stream.  ``bulk=True`` drives the
    batch lanes (``lookup_batch`` / ``range_query_batch`` -- an
    :class:`~repro.serve.router.ShardRouter` or a bare index);
    ``bulk=False`` drives an :class:`IndexServer`'s per-request futures
    through the coalescing batcher.

    Read throughput is timed over the read phases only (``read_qps``),
    so it is directly comparable with the read-only drivers: the
    retention gate in ``python -m repro.bench updates`` is
    ``read_qps(mixed) / read_qps(write_fraction=0)``.
    """
    statuses: "dict[str, int]" = {}
    wrong = 0
    reads = 0
    writes = 0
    read_wall_s = 0.0
    write_wall_s = 0.0

    for seg in workload.segments:
        if seg.num_writes:
            t0 = time.monotonic()
            writes += int(await target.apply_writes(
                seg.write_keys, seg.write_ops
            ))
            write_wall_s += time.monotonic() - t0
        if not seg.num_reads:
            continue
        t0 = time.monotonic()
        if bulk:
            serve_bulk = getattr(target, "serve_bulk", None)
            if callable(serve_bulk):
                # IndexServer's fused bulk lane: one call serves points
                # and ranges together through the worker executor.
                positions, starts, counts = await serve_bulk(
                    seg.queries, seg.range_lows, seg.range_highs
                )
                wrong += int(np.count_nonzero(
                    np.asarray(positions, dtype=np.int64) != seg.expected
                ))
                wrong += int(np.count_nonzero(
                    np.asarray(starts, dtype=np.int64)
                    != seg.expected_starts
                ))
                wrong += int(np.count_nonzero(
                    np.asarray(counts, dtype=np.int64)
                    != seg.expected_counts
                ))
            else:
                if len(seg.queries):
                    got = await target.lookup_batch(seg.queries)
                    wrong += int(np.count_nonzero(
                        np.asarray(got, dtype=np.int64) != seg.expected
                    ))
                if len(seg.range_lows):
                    starts, counts = await target.range_query_batch(
                        seg.range_lows, seg.range_highs
                    )
                    wrong += int(np.count_nonzero(
                        np.asarray(starts, dtype=np.int64)
                        != seg.expected_starts
                    ))
                    wrong += int(np.count_nonzero(
                        np.asarray(counts, dtype=np.int64)
                        != seg.expected_counts
                    ))
            read_wall_s += time.monotonic() - t0
            reads += seg.num_reads
            statuses[STATUS_OK] = statuses.get(STATUS_OK, 0) + seg.num_reads
            continue
        tasks = [
            target.lookup(int(q), timeout_s=timeout_s) for q in seg.queries
        ] + [
            target.range_query(int(lo), int(hi), timeout_s=timeout_s)
            for lo, hi in zip(seg.range_lows, seg.range_highs)
        ]
        responses = await asyncio.gather(*tasks)
        read_wall_s += time.monotonic() - t0
        reads += seg.num_reads
        num_points = len(seg.queries)
        for i, resp in enumerate(responses):
            statuses[resp.status] = statuses.get(resp.status, 0) + 1
            if resp.status != STATUS_OK:
                continue
            if i < num_points:
                if resp.position != int(seg.expected[i]):
                    wrong += 1
            else:
                j = i - num_points
                if (resp.position != int(seg.expected_starts[j])
                        or resp.count != int(seg.expected_counts[j])):
                    wrong += 1

    return {
        "segments": len(workload.segments),
        "write_fraction": float(workload.write_fraction),
        "reads": int(reads),
        "writes": int(writes),
        "statuses": statuses,
        "wrong": int(wrong),
        "read_wall_s": round(read_wall_s, 4),
        "write_wall_s": round(write_wall_s, 4),
        "read_qps": round(reads / read_wall_s, 1) if read_wall_s > 0
        else 0.0,
    }


def loadgen_report(report: "dict[str, Any]") -> str:
    """Human-readable one-paragraph summary of a loadgen run."""
    lines = [
        f"open-loop run: {report['num_requests']} requests, "
        f"offered {report['offered_qps'] or 'saturation'} qps, "
        f"achieved {report['achieved_qps']} qps in {report['wall_s']:.2f}s",
        f"  statuses: {report['statuses']}   wrong answers: "
        f"{report['wrong']}",
        f"  mean batch {report['mean_batch']}, coalesced "
        f"{report['coalesced_fraction'] * 100:.1f}%",
    ]
    if "latency_ms" in report:
        lm = report["latency_ms"]
        lines.append(
            f"  latency ms: mean {lm['mean']}  p50 {lm['p50']}  "
            f"p95 {lm['p95']}  p99 {lm['p99']}  max {lm['max']}"
        )
    return "\n".join(lines)
