"""Batched vs unbatched serving benchmark (``BENCH_serve.json``).

The serving analogue of PR 1's offline batch-vs-scalar comparison: the
same open-loop request stream is served twice per index, once through
the micro-batcher at its default width and once with ``max_batch_size=1``
(every request pays a full dispatch round-trip, the way a naive
one-request-at-a-time server would).  Both modes use blocking
backpressure so every request completes and the throughput numbers
count identical work.  ``speedup`` is batched/unbatched achieved QPS;
the committed report must show >= 3x on every index (the measured
margin is far larger).
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path
from typing import Any, Sequence

from ..baselines import INDEX_TYPES, UnsupportedDataError
from .loadgen import run_open_loop
from .server import IndexServer

__all__ = ["serve_report", "write_serve_report", "render_serve_report"]

#: Default comparison set: the paper's reference RMI configuration plus
#: one tree and two learned baselines (>= 3 index types, per the
#: acceptance bar).  Binary search is excluded by default: its
#: unbatched mode is already so cheap per request that the batched
#: speedup hovers right at the 3x gate (~3.0x measured) and would make
#: the committed report flaky on loaded machines.
DEFAULT_INDEXES = ("rmi", "b-tree", "pgm-index", "radix-spline")


async def _run_mode(
    index: Any,
    keys,
    *,
    batched: bool,
    max_batch_size: int,
    max_wait_s: float,
    num_requests: int,
    seed: int,
    range_fraction: float,
) -> "dict[str, Any]":
    server = IndexServer(
        index,
        max_batch_size=max_batch_size if batched else 1,
        max_wait_s=max_wait_s if batched else 0.0,
        max_queue=4096,
        shed_policy="block",  # throughput run: complete every request
    )
    async with server:
        report = await run_open_loop(
            server, keys,
            num_requests=num_requests,
            qps=None,  # saturation: measure service capacity
            seed=seed,
            range_fraction=range_fraction,
        )
    if report["wrong"]:
        raise AssertionError(
            f"{getattr(index, 'name', index)}: {report['wrong']} wrong "
            "answers under load"
        )
    if report["completed"] != num_requests:
        raise AssertionError(
            f"{getattr(index, 'name', index)}: only {report['completed']}/"
            f"{num_requests} requests completed ({report['statuses']})"
        )
    report["metrics"] = server.metrics.snapshot()
    return report


def serve_report(
    index_names: "Sequence[str]" = DEFAULT_INDEXES,
    dataset: str = "books",
    n: int = 200_000,
    num_requests: int = 20_000,
    seed: int = 42,
    max_batch_size: int = 512,
    max_wait_s: float = 0.002,
    range_fraction: float = 0.1,
) -> "dict[str, Any]":
    """Serve the same stream batched and unbatched per index type.

    Datasets and built indexes resolve through the artifact cache
    (:func:`repro.cache.dataset` / :func:`repro.cache.index_for`), so a
    warm cache skips every rebuild.
    """
    from .. import cache as artifact_cache

    keys = artifact_cache.dataset(dataset, n, seed)
    entries = []
    for name in index_names:
        cls = INDEX_TYPES[name]
        try:
            index = artifact_cache.index_for(
                dataset, n, seed, name, {}, lambda k, c=cls: c(k), cls=cls
            )
        except UnsupportedDataError as exc:
            entries.append({"index": name, "skipped": str(exc)})
            continue
        common = dict(
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            num_requests=num_requests,
            seed=seed,
            range_fraction=range_fraction,
        )
        batched = asyncio.run(
            _run_mode(index, keys, batched=True, **common)
        )
        unbatched = asyncio.run(
            _run_mode(index, keys, batched=False, **common)
        )
        entries.append({
            "index": name,
            "index_bytes": int(index.size_in_bytes()),
            "batched": batched,
            "unbatched": unbatched,
            "speedup": round(
                batched["achieved_qps"] / max(unbatched["achieved_qps"], 1e-9),
                2,
            ),
        })
    speedups = [e["speedup"] for e in entries if "speedup" in e]
    return {
        "benchmark": "micro-batched vs batch-size-1 serving",
        "dataset": dataset,
        "n": int(n),
        "num_requests": int(num_requests),
        "seed": int(seed),
        "max_batch_size": int(max_batch_size),
        "max_wait_ms": round(max_wait_s * 1e3, 3),
        "range_fraction": range_fraction,
        "cpu_count": os.cpu_count(),
        "indexes": entries,
        "min_speedup": min(speedups) if speedups else None,
        "max_speedup": max(speedups) if speedups else None,
    }


def write_serve_report(report: "dict[str, Any]",
                       path: "str | os.PathLike") -> None:
    """Write a :func:`serve_report` dict as pretty-printed JSON."""
    Path(path).write_text(json.dumps(report, indent=2) + "\n")


def render_serve_report(report: "dict[str, Any]") -> str:
    """Human-readable summary of a :func:`serve_report` dict."""
    lines = [
        f"micro-batched vs batch-size-1 serving -- {report['dataset']}, "
        f"n={report['n']:,}, {report['num_requests']:,} requests, "
        f"max_batch={report['max_batch_size']}, "
        f"max_wait={report['max_wait_ms']}ms",
    ]
    for e in report["indexes"]:
        if "skipped" in e:
            lines.append(f"  {e['index']:14s} skipped ({e['skipped']})")
            continue
        b, u = e["batched"], e["unbatched"]
        lines.append(
            f"  {e['index']:14s} batched {b['achieved_qps']:>10,.0f} qps "
            f"(p99 {b['latency_ms']['p99']:7.2f}ms)   "
            f"unbatched {u['achieved_qps']:>9,.0f} qps "
            f"(p99 {u['latency_ms']['p99']:7.2f}ms)   "
            f"speedup {e['speedup']:6.1f}x"
        )
    lines.append(
        f"  min speedup {report['min_speedup']:.1f}x, "
        f"max {report['max_speedup']:.1f}x"
    )
    return "\n".join(lines)
