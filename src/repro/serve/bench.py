"""Batched vs unbatched serving benchmark (``BENCH_serve.json``).

The serving analogue of PR 1's offline batch-vs-scalar comparison: the
same open-loop request stream is served twice per index, once through
the micro-batcher at its default width and once with ``max_batch_size=1``
(every request pays a full dispatch round-trip, the way a naive
one-request-at-a-time server would).  Both modes use blocking
backpressure so every request completes and the throughput numbers
count identical work.  ``speedup`` is batched/unbatched achieved QPS;
the committed report must show >= 3x on every index (the measured
margin is far larger).

:func:`scaling_report` adds the sharded tier's 1->N curve (committed
under the ``"scaling"`` key of the same file): real multi-process
clusters at each shard count, every response oracle-validated, with an
explicit ``usable_cores``-aware gate -- see the function docstring for
why the gate only binds on machines with at least as many cores as
shards.
"""

from __future__ import annotations

import asyncio
import json
import os
from pathlib import Path
from typing import Any, Sequence

from ..baselines import INDEX_TYPES, UnsupportedDataError
from .loadgen import run_open_loop
from .server import IndexServer

__all__ = [
    "serve_report",
    "write_serve_report",
    "render_serve_report",
    "scaling_report",
    "merge_scaling_into",
    "render_scaling_report",
    "usable_cores",
]

#: Default comparison set: the paper's reference RMI configuration plus
#: one tree and two learned baselines (>= 3 index types, per the
#: acceptance bar).  Binary search is excluded by default: its
#: unbatched mode is already so cheap per request that the batched
#: speedup hovers right at the 3x gate (~3.0x measured) and would make
#: the committed report flaky on loaded machines.
DEFAULT_INDEXES = ("rmi", "b-tree", "pgm-index", "radix-spline")


async def _run_mode(
    index: Any,
    keys,
    *,
    batched: bool,
    max_batch_size: int,
    max_wait_s: float,
    num_requests: int,
    seed: int,
    range_fraction: float,
) -> "dict[str, Any]":
    server = IndexServer(
        index,
        max_batch_size=max_batch_size if batched else 1,
        max_wait_s=max_wait_s if batched else 0.0,
        max_queue=4096,
        shed_policy="block",  # throughput run: complete every request
    )
    async with server:
        report = await run_open_loop(
            server, keys,
            num_requests=num_requests,
            qps=None,  # saturation: measure service capacity
            seed=seed,
            range_fraction=range_fraction,
        )
    if report["wrong"]:
        raise AssertionError(
            f"{getattr(index, 'name', index)}: {report['wrong']} wrong "
            "answers under load"
        )
    if report["completed"] != num_requests:
        raise AssertionError(
            f"{getattr(index, 'name', index)}: only {report['completed']}/"
            f"{num_requests} requests completed ({report['statuses']})"
        )
    report["metrics"] = server.metrics.snapshot()
    return report


def serve_report(
    index_names: "Sequence[str]" = DEFAULT_INDEXES,
    dataset: str = "books",
    n: int = 200_000,
    num_requests: int = 20_000,
    seed: int = 42,
    max_batch_size: int = 512,
    max_wait_s: float = 0.002,
    range_fraction: float = 0.1,
) -> "dict[str, Any]":
    """Serve the same stream batched and unbatched per index type.

    Datasets and built indexes resolve through the artifact cache
    (:func:`repro.cache.dataset` / :func:`repro.cache.index_for`), so a
    warm cache skips every rebuild.
    """
    from .. import cache as artifact_cache

    keys = artifact_cache.dataset(dataset, n, seed)
    entries = []
    for name in index_names:
        cls = INDEX_TYPES[name]
        try:
            index = artifact_cache.index_for(
                dataset, n, seed, name, {}, lambda k, c=cls: c(k), cls=cls
            )
        except UnsupportedDataError as exc:
            entries.append({"index": name, "skipped": str(exc)})
            continue
        common = dict(
            max_batch_size=max_batch_size,
            max_wait_s=max_wait_s,
            num_requests=num_requests,
            seed=seed,
            range_fraction=range_fraction,
        )
        batched = asyncio.run(
            _run_mode(index, keys, batched=True, **common)
        )
        unbatched = asyncio.run(
            _run_mode(index, keys, batched=False, **common)
        )
        entries.append({
            "index": name,
            "index_bytes": int(index.size_in_bytes()),
            "batched": batched,
            "unbatched": unbatched,
            "speedup": round(
                batched["achieved_qps"] / max(unbatched["achieved_qps"], 1e-9),
                2,
            ),
        })
    speedups = [e["speedup"] for e in entries if "speedup" in e]
    return {
        "benchmark": "micro-batched vs batch-size-1 serving",
        "dataset": dataset,
        "n": int(n),
        "num_requests": int(num_requests),
        "seed": int(seed),
        "max_batch_size": int(max_batch_size),
        "max_wait_ms": round(max_wait_s * 1e3, 3),
        "range_fraction": range_fraction,
        "cpu_count": os.cpu_count(),
        "indexes": entries,
        "min_speedup": min(speedups) if speedups else None,
        "max_speedup": max(speedups) if speedups else None,
    }


def usable_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware).

    The 1->N scaling curve is a statement about parallel hardware; a
    container pinned to one core serializes every worker process and
    measures IPC overhead instead of scaling.  The report records this
    number so the gate can be applied where it is physically meaningful
    (``usable_cores >= shards``) and skipped -- loudly, never silently
    -- where it is not.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


async def _scale_point(
    num_shards: int,
    index_name: str,
    keys,
    *,
    num_requests: int,
    seed: int,
    chunk_size: int,
    inflight: int,
    range_fraction: float,
    cache_dir: "str | None",
    dataset: "str | None",
    n: int,
) -> "dict[str, Any]":
    from .cluster import Cluster
    from .loadgen import run_batch_closed_loop
    from .router import ShardRouter

    cluster = Cluster(
        num_shards=num_shards, index_type=index_name, keys=keys,
        dataset=dataset, n=n, seed=seed, cache_dir=cache_dir,
    )
    async with cluster:
        async with ShardRouter(cluster) as router:
            report = await run_batch_closed_loop(
                router, keys,
                num_requests=num_requests,
                chunk_size=chunk_size,
                inflight=inflight,
                seed=seed,
                range_fraction=range_fraction,
            )
            rolled = (await router.cluster_metrics())["cluster"]
    if report["wrong"]:
        raise AssertionError(
            f"{index_name} @ {num_shards} shards: {report['wrong']} "
            "wrong answers under load"
        )
    report["shards"] = int(num_shards)
    report["cluster_completed"] = rolled["requests"]["completed"]
    return report


def scaling_report(
    shard_counts: "Sequence[int]" = (1, 2, 4),
    index_name: str = "rmi",
    dataset: str = "books",
    n: int = 400_000,
    num_requests: int = 200_000,
    seed: int = 42,
    chunk_size: int = 4096,
    inflight: int = 8,
    range_fraction: float = 0.1,
    required_speedup: float = 2.5,
    cache_dir: "str | None" = None,
) -> "dict[str, Any]":
    """1->N shard scaling curve over the bulk scatter/gather lane.

    Each point spins up a real multi-process cluster (one worker per
    shard), drives the router's bulk lanes with the closed-loop batch
    generator, and validates **every** response against the
    ``np.searchsorted`` oracle -- a wrong answer raises, it never just
    lowers a number.  The 1-shard point is the baseline; ``speedup`` is
    aggregate QPS over that baseline and ``efficiency`` is speedup per
    shard.

    The ``gate`` block records whether ``required_speedup`` at the
    largest shard count is *applicable* on this machine: with fewer
    usable cores than shards the workers time-slice one core and the
    curve measures transport overhead, not scaling, so the gate is
    reported but not enforceable.  CI runs this on multi-core runners
    where the gate is live.
    """
    from .. import cache as artifact_cache

    if cache_dir is not None:
        artifact_cache.activate(cache_dir)
    keys = artifact_cache.dataset(dataset, n, seed)
    shard_counts = sorted(set(int(s) for s in shard_counts))
    if shard_counts[0] != 1:
        shard_counts = [1] + shard_counts
    cores = usable_cores()
    curve = []
    baseline_qps = None
    for num_shards in shard_counts:
        point = asyncio.run(_scale_point(
            num_shards, index_name, keys,
            num_requests=num_requests, seed=seed, chunk_size=chunk_size,
            inflight=inflight, range_fraction=range_fraction,
            cache_dir=cache_dir, dataset=dataset, n=n,
        ))
        if baseline_qps is None:
            baseline_qps = point["achieved_qps"]
        point["speedup"] = round(
            point["achieved_qps"] / max(baseline_qps, 1e-9), 3
        )
        point["efficiency"] = round(point["speedup"] / num_shards, 3)
        curve.append(point)
    top = curve[-1]
    applicable = cores >= top["shards"]
    return {
        "benchmark": "1->N shard scaling, bulk scatter/gather lane",
        "dataset": dataset,
        "n": int(n),
        "index": index_name,
        "num_requests": int(num_requests),
        "seed": int(seed),
        "chunk_size": int(chunk_size),
        "inflight": int(inflight),
        "range_fraction": range_fraction,
        "usable_cores": cores,
        "curve": curve,
        "gate": {
            "required_speedup": float(required_speedup),
            "at_shards": top["shards"],
            "measured_speedup": top["speedup"],
            "applicable": applicable,
            "passed": (top["speedup"] >= required_speedup)
            if applicable else None,
        },
    }


def merge_scaling_into(scaling: "dict[str, Any]",
                       path: "str | os.PathLike") -> None:
    """Attach a :func:`scaling_report` under ``"scaling"`` in the
    committed ``BENCH_serve.json``, preserving the existing
    batched-vs-unbatched report."""
    target = Path(path)
    doc = json.loads(target.read_text()) if target.exists() else {}
    doc["scaling"] = scaling
    target.write_text(json.dumps(doc, indent=2) + "\n")


def render_scaling_report(report: "dict[str, Any]") -> str:
    """Human-readable summary of a :func:`scaling_report` dict."""
    lines = [
        f"shard scaling -- {report['index']} over {report['dataset']}, "
        f"n={report['n']:,}, {report['num_requests']:,} requests/point, "
        f"chunk={report['chunk_size']}, "
        f"usable_cores={report['usable_cores']}",
    ]
    for p in report["curve"]:
        lines.append(
            f"  {p['shards']:2d} shard{'s' if p['shards'] > 1 else ' '}  "
            f"{p['achieved_qps']:>12,.0f} qps   "
            f"speedup {p['speedup']:5.2f}x   "
            f"efficiency {p['efficiency'] * 100:5.1f}%"
        )
    gate = report["gate"]
    if gate["applicable"]:
        verdict = "PASS" if gate["passed"] else "FAIL"
        lines.append(
            f"  gate: {verdict} -- {gate['measured_speedup']:.2f}x at "
            f"{gate['at_shards']} shards (required "
            f"{gate['required_speedup']:.1f}x)"
        )
    else:
        lines.append(
            f"  gate: not applicable -- {report['usable_cores']} usable "
            f"core(s) < {gate['at_shards']} shards; workers time-slice "
            "one core, so the curve measures transport overhead here"
        )
    return "\n".join(lines)


def write_serve_report(report: "dict[str, Any]",
                       path: "str | os.PathLike") -> None:
    """Write a :func:`serve_report` dict as pretty-printed JSON.

    Preserves an existing ``"scaling"`` section (written by
    :func:`merge_scaling_into`) when overwriting the file.
    """
    target = Path(path)
    if target.exists():
        try:
            old = json.loads(target.read_text())
        except (ValueError, OSError):
            old = {}
        if "scaling" in old and "scaling" not in report:
            report = {**report, "scaling": old["scaling"]}
    target.write_text(json.dumps(report, indent=2) + "\n")


def render_serve_report(report: "dict[str, Any]") -> str:
    """Human-readable summary of a :func:`serve_report` dict."""
    lines = [
        f"micro-batched vs batch-size-1 serving -- {report['dataset']}, "
        f"n={report['n']:,}, {report['num_requests']:,} requests, "
        f"max_batch={report['max_batch_size']}, "
        f"max_wait={report['max_wait_ms']}ms",
    ]
    for e in report["indexes"]:
        if "skipped" in e:
            lines.append(f"  {e['index']:14s} skipped ({e['skipped']})")
            continue
        b, u = e["batched"], e["unbatched"]
        lines.append(
            f"  {e['index']:14s} batched {b['achieved_qps']:>10,.0f} qps "
            f"(p99 {b['latency_ms']['p99']:7.2f}ms)   "
            f"unbatched {u['achieved_qps']:>9,.0f} qps "
            f"(p99 {u['latency_ms']['p99']:7.2f}ms)   "
            f"speedup {e['speedup']:6.1f}x"
        )
    lines.append(
        f"  min speedup {report['min_speedup']:.1f}x, "
        f"max {report['max_speedup']:.1f}x"
    )
    return "\n".join(lines)
