"""Serving-layer observability: counters and log-binned histograms.

Tail latency is the serving metric that matters (the ROADMAP's
"millions of users" north star is a p99 statement, not a mean), so the
histograms here keep enough resolution to report p50/p95/p99 across six
orders of magnitude without storing per-request samples: geometric
bins, a fixed number per decade, plus exact count/sum/min/max.

Counters are plain Python ints mutated without locks: every producer
runs on the server's single asyncio event loop (and CPython's GIL makes
``int`` increments atomic anyway), so there is no lock to take and no
contention to measure.  :class:`ServeMetrics` aggregates everything the
server and load generator record and exports it two ways -- a JSON
document (:meth:`ServeMetrics.to_json`) for CI artifacts and the CLI,
and a one-line summary (:meth:`ServeMetrics.log_line`) that
:class:`IndexServer` emits periodically under live traffic.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any

__all__ = ["Counter", "Histogram", "ServeMetrics"]


class Counter:
    """A monotonically increasing event counter (single-writer)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Histogram:
    """A geometric-bin histogram with percentile estimation.

    Bin ``i`` covers ``[lo * g**i, lo * g**(i+1))`` with ``g`` chosen so
    every decade splits into ``bins_per_decade`` bins; observations
    outside ``[lo, hi)`` clamp into the first/last bin.  Percentiles
    come from the cumulative bin counts and are reported as the
    geometric midpoint of the selected bin, clamped to the exact
    observed ``[min, max]`` -- a relative error bounded by one bin width
    (~12% at the default 20 bins/decade), plenty for p50/p95/p99
    reporting.
    """

    def __init__(self, lo: float = 1e-6, hi: float = 1e3,
                 bins_per_decade: int = 20) -> None:
        if not 0 < lo < hi:
            raise ValueError("histogram needs 0 < lo < hi")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins_per_decade = int(bins_per_decade)
        decades = math.log10(self.hi / self.lo)
        self.num_bins = max(int(math.ceil(decades * bins_per_decade)), 1)
        self._log_lo = math.log10(self.lo)
        self.counts = [0] * self.num_bins
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self.lo:
            idx = 0
        else:
            idx = int((math.log10(value) - self._log_lo)
                      * self.bins_per_decade)
            idx = min(max(idx, 0), self.num_bins - 1)
        self.counts[idx] += 1

    def _bin_edges(self, idx: int) -> "tuple[float, float]":
        step = 1.0 / self.bins_per_decade
        return (10.0 ** (self._log_lo + idx * step),
                10.0 ** (self._log_lo + (idx + 1) * step))

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``q`` in [0, 100])."""
        if self.count == 0:
            return 0.0
        target = max(int(math.ceil(q / 100.0 * self.count)), 1)
        seen = 0
        for idx, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                lo_edge, hi_edge = self._bin_edges(idx)
                mid = math.sqrt(lo_edge * hi_edge)
                return min(max(mid, self.min), self.max)
        return self.max  # pragma: no cover - unreachable (counts sum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> "dict[str, float]":
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }


class ServeMetrics:
    """Every counter and histogram the serving layer maintains.

    Request accounting is by final status: ``submitted`` splits into
    ``completed`` (answered from an index), ``timeouts`` (deadline
    expired before service), ``rejected`` (shed at admission or during
    shutdown), and ``errors`` (index raised during batch execution).
    ``coalesced`` counts requests answered as part of a multi-request
    batch -- the micro-batcher's effectiveness metric.
    """

    def __init__(self) -> None:
        self.started_at = time.time()
        self.submitted = Counter()
        self.completed = Counter()
        self.timeouts = Counter()
        self.rejected = Counter()
        self.errors = Counter()
        self.batches = Counter()
        self.coalesced = Counter()
        self.swaps = Counter()
        #: Request latency (submit -> response), seconds.
        self.latency_s = Histogram(lo=1e-6, hi=1e3)
        #: Requests per executed batch.
        self.batch_size = Histogram(lo=1.0, hi=1e6, bins_per_decade=40)
        #: Queue depth sampled when each batch is collected.
        self.queue_depth = Histogram(lo=1.0, hi=1e6, bins_per_decade=40)

    # -- recording hooks (called by the server) -------------------------

    def record_batch(self, size: int, queue_depth: int) -> None:
        self.batches.inc()
        self.batch_size.observe(max(size, 1))
        self.queue_depth.observe(max(queue_depth, 1))
        if size > 1:
            self.coalesced.inc(size)

    def record_response(self, status: str, latency_s: float) -> None:
        from .batcher import (
            STATUS_ERROR,
            STATUS_OK,
            STATUS_REJECTED,
            STATUS_TIMEOUT,
        )

        self.latency_s.observe(latency_s)
        if status == STATUS_OK:
            self.completed.inc()
        elif status == STATUS_TIMEOUT:
            self.timeouts.inc()
        elif status == STATUS_REJECTED:
            self.rejected.inc()
        elif status == STATUS_ERROR:
            self.errors.inc()

    # -- derived numbers -------------------------------------------------

    @property
    def coalesced_fraction(self) -> float:
        """Fraction of completed requests served in multi-request batches."""
        done = self.completed.value
        return self.coalesced.value / done if done else 0.0

    def snapshot(self) -> "dict[str, Any]":
        """All metrics as a JSON-ready dict."""
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests": {
                "submitted": self.submitted.value,
                "completed": self.completed.value,
                "timeouts": self.timeouts.value,
                "rejected": self.rejected.value,
                "errors": self.errors.value,
            },
            "batches": self.batches.value,
            "coalesced_requests": self.coalesced.value,
            "coalesced_fraction": round(self.coalesced_fraction, 4),
            "swaps": self.swaps.value,
            "latency_s": _rounded(self.latency_s.summary()),
            "batch_size": _rounded(self.batch_size.summary()),
            "queue_depth": _rounded(self.queue_depth.summary()),
        }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    def log_line(self) -> str:
        """One-line live summary, suitable for periodic logging."""
        lat = self.latency_s
        return (
            f"served={self.completed.value} timeout={self.timeouts.value} "
            f"rejected={self.rejected.value} errors={self.errors.value} "
            f"batches={self.batches.value} "
            f"mean_batch={self.batch_size.mean:.1f} "
            f"coalesced={self.coalesced_fraction * 100:.1f}% "
            f"p50={lat.percentile(50) * 1e3:.2f}ms "
            f"p99={lat.percentile(99) * 1e3:.2f}ms "
            f"swaps={self.swaps.value}"
        )


def _rounded(summary: "dict[str, float]") -> "dict[str, float]":
    return {k: (round(v, 9) if isinstance(v, float) else v)
            for k, v in summary.items()}
