"""Serving-layer observability: counters and log-binned histograms.

Tail latency is the serving metric that matters (the ROADMAP's
"millions of users" north star is a p99 statement, not a mean), so the
histograms here keep enough resolution to report p50/p95/p99 across six
orders of magnitude without storing per-request samples: geometric
bins, a fixed number per decade, plus exact count/sum/min/max.

Counters are plain Python ints mutated without locks: every producer
runs on the server's single asyncio event loop (and CPython's GIL makes
``int`` increments atomic anyway), so there is no lock to take and no
contention to measure.  :class:`ServeMetrics` aggregates everything the
server and load generator record and exports it two ways -- a JSON
document (:meth:`ServeMetrics.to_json`) for CI artifacts and the CLI,
and a one-line summary (:meth:`ServeMetrics.log_line`) that
:class:`IndexServer` emits periodically under live traffic.
"""

from __future__ import annotations

import json
import math
import time
from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "MetricsWindow",
           "ServeMetrics", "rollup_states", "window_between"]

#: Counter attributes of :class:`ServeMetrics`, in snapshot order.
#: ``state()``/``merge_state()`` and the cluster roll-up iterate this
#: tuple so a counter added here is automatically aggregated.
COUNTER_NAMES = (
    "submitted",
    "completed",
    "timeouts",
    "rejected",
    "errors",
    "batches",
    "coalesced",
    "swaps",
    "writes",
)

#: Histogram attributes of :class:`ServeMetrics` (same contract).
HISTOGRAM_NAMES = ("latency_s", "batch_size", "queue_depth")

#: Gauge attributes of :class:`ServeMetrics` (same contract).  Older
#: metric states without a ``gauges`` section merge cleanly -- the
#: roll-up reads them with ``.get``.
GAUGE_NAMES = ("staleness_s",)


class Counter:
    """A monotonically increasing event counter (single-writer)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Gauge:
    """A sampled level metric: the latest value plus its high-water mark.

    The writable tier's staleness bound is the motivating instance:
    ``value`` is the most recent sample (current staleness), ``max``
    the worst observed over the process lifetime -- the number the
    staleness-bound gate binds on.  :meth:`reset` re-arms ``value``
    (after a rebuild hot-swap drains the delta) while ``max`` keeps the
    high-water mark.  Single-writer, like :class:`Counter`.
    """

    __slots__ = ("value", "max", "samples")

    def __init__(self) -> None:
        self.value = 0.0
        self.max = 0.0
        self.samples = 0

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        if value > self.max:
            self.max = value
        self.samples += 1

    def reset(self, value: float = 0.0) -> None:
        """Re-arm the current level without touching the high-water mark."""
        self.value = float(value)

    def state(self) -> "dict[str, Any]":
        return {"value": self.value, "max": self.max,
                "samples": self.samples}

    def merge_state(self, state: "dict[str, Any]") -> None:
        """Fold another gauge's state in (cluster roll-up: worst wins)."""
        self.value = max(self.value, float(state["value"]))
        self.max = max(self.max, float(state["max"]))
        self.samples += int(state.get("samples", 0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge(value={self.value}, max={self.max})"


class Histogram:
    """A geometric-bin histogram with percentile estimation.

    Bin ``i`` covers ``[lo * g**i, lo * g**(i+1))`` with ``g`` chosen so
    every decade splits into ``bins_per_decade`` bins; observations
    outside ``[lo, hi)`` clamp into the first/last bin.  Percentiles
    come from the cumulative bin counts and are reported as the
    geometric midpoint of the selected bin, clamped to the exact
    observed ``[min, max]`` -- a relative error bounded by one bin width
    (~12% at the default 20 bins/decade), plenty for p50/p95/p99
    reporting.
    """

    def __init__(self, lo: float = 1e-6, hi: float = 1e3,
                 bins_per_decade: int = 20) -> None:
        if not 0 < lo < hi:
            raise ValueError("histogram needs 0 < lo < hi")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins_per_decade = int(bins_per_decade)
        decades = math.log10(self.hi / self.lo)
        self.num_bins = max(int(math.ceil(decades * bins_per_decade)), 1)
        self._log_lo = math.log10(self.lo)
        self.counts = [0] * self.num_bins
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self.lo:
            idx = 0
        else:
            idx = int((math.log10(value) - self._log_lo)
                      * self.bins_per_decade)
            idx = min(max(idx, 0), self.num_bins - 1)
        self.counts[idx] += 1

    def _bin_edges(self, idx: int) -> "tuple[float, float]":
        step = 1.0 / self.bins_per_decade
        return (10.0 ** (self._log_lo + idx * step),
                10.0 ** (self._log_lo + (idx + 1) * step))

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``q`` in [0, 100])."""
        if self.count == 0:
            return 0.0
        target = max(int(math.ceil(q / 100.0 * self.count)), 1)
        seen = 0
        for idx, c in enumerate(self.counts):
            seen += c
            if seen >= target:
                lo_edge, hi_edge = self._bin_edges(idx)
                mid = math.sqrt(lo_edge * hi_edge)
                return min(max(mid, self.min), self.max)
        return self.max  # pragma: no cover - unreachable (counts sum)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> "dict[str, float]":
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    # -- cross-process merge ---------------------------------------------

    def state(self) -> "dict[str, Any]":
        """Full-fidelity, picklable/JSON-able histogram state.

        Unlike :meth:`summary` this keeps the raw bin counts, so
        histograms recorded in different worker processes can be merged
        without losing percentile accuracy -- merged percentiles are as
        bin-accurate as if every observation had landed in one
        histogram.
        """
        return {
            "lo": self.lo,
            "hi": self.hi,
            "bins_per_decade": self.bins_per_decade,
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_state(cls, state: "dict[str, Any]") -> "Histogram":
        hist = cls(lo=state["lo"], hi=state["hi"],
                   bins_per_decade=state["bins_per_decade"])
        hist.merge_state(state)
        return hist

    def merge_state(self, state: "dict[str, Any]") -> None:
        """Fold another histogram's :meth:`state` into this one.

        Requires identical binning -- merging differently-binned
        histograms would silently misplace counts.
        """
        if (state["lo"], state["hi"], state["bins_per_decade"]) != (
            self.lo, self.hi, self.bins_per_decade
        ) or len(state["counts"]) != self.num_bins:
            raise ValueError("cannot merge histograms with different bins")
        if not state["count"]:
            return
        for i, c in enumerate(state["counts"]):
            self.counts[i] += c
        self.count += state["count"]
        self.total += state["total"]
        self.min = min(self.min, state["min"])
        self.max = max(self.max, state["max"])


class ServeMetrics:
    """Every counter and histogram the serving layer maintains.

    Request accounting is by final status: ``submitted`` splits into
    ``completed`` (answered from an index), ``timeouts`` (deadline
    expired before service), ``rejected`` (shed at admission or during
    shutdown), and ``errors`` (index raised during batch execution).
    ``coalesced`` counts requests answered as part of a multi-request
    batch -- the micro-batcher's effectiveness metric.
    """

    def __init__(self) -> None:
        self.started_at = time.time()
        self.submitted = Counter()
        self.completed = Counter()
        self.timeouts = Counter()
        self.rejected = Counter()
        self.errors = Counter()
        self.batches = Counter()
        self.coalesced = Counter()
        self.swaps = Counter()
        #: Accepted write operations (inserts + deletes).
        self.writes = Counter()
        #: Age of the oldest unmerged write (the staleness bound);
        #: sampled by the server, reset on rebuild hot-swaps.
        self.staleness_s = Gauge()
        #: Request latency (submit -> response), seconds.  80 bins per
        #: decade (~2.9% bin width): the autotuner compares pre/post-swap
        #: window p99 *ratios*, which coarser bins would quantize away.
        self.latency_s = Histogram(lo=1e-6, hi=1e3, bins_per_decade=80)
        #: Requests per executed batch.
        self.batch_size = Histogram(lo=1.0, hi=1e6, bins_per_decade=40)
        #: Queue depth sampled when each batch is collected.
        self.queue_depth = Histogram(lo=1.0, hi=1e6, bins_per_decade=40)

    # -- recording hooks (called by the server) -------------------------

    def record_batch(self, size: int, queue_depth: int) -> None:
        self.batches.inc()
        self.batch_size.observe(max(size, 1))
        self.queue_depth.observe(max(queue_depth, 1))
        if size > 1:
            self.coalesced.inc(size)

    def record_response(self, status: str, latency_s: float) -> None:
        from .batcher import (
            STATUS_ERROR,
            STATUS_OK,
            STATUS_REJECTED,
            STATUS_TIMEOUT,
        )

        self.latency_s.observe(latency_s)
        if status == STATUS_OK:
            self.completed.inc()
        elif status == STATUS_TIMEOUT:
            self.timeouts.inc()
        elif status == STATUS_REJECTED:
            self.rejected.inc()
        elif status == STATUS_ERROR:
            self.errors.inc()

    # -- derived numbers -------------------------------------------------

    @property
    def coalesced_fraction(self) -> float:
        """Fraction of completed requests served in multi-request batches."""
        done = self.completed.value
        return self.coalesced.value / done if done else 0.0

    def snapshot(self) -> "dict[str, Any]":
        """All metrics as a JSON-ready dict."""
        return {
            "uptime_s": round(time.time() - self.started_at, 3),
            "requests": {
                "submitted": self.submitted.value,
                "completed": self.completed.value,
                "timeouts": self.timeouts.value,
                "rejected": self.rejected.value,
                "errors": self.errors.value,
            },
            "batches": self.batches.value,
            "coalesced_requests": self.coalesced.value,
            "coalesced_fraction": round(self.coalesced_fraction, 4),
            "swaps": self.swaps.value,
            "writes": self.writes.value,
            "staleness_s": _rounded(self.staleness_s.state()),
            "latency_s": _rounded(self.latency_s.summary()),
            "batch_size": _rounded(self.batch_size.summary()),
            "queue_depth": _rounded(self.queue_depth.summary()),
        }

    def to_json(self) -> str:
        return json.dumps(self.snapshot(), indent=2, sort_keys=True)

    # -- cross-process roll-up -------------------------------------------

    def state(self) -> "dict[str, Any]":
        """Full-fidelity metrics state for cross-process aggregation.

        A cluster worker ships this over its control pipe; the router
        merges the states of all shards into one cluster-wide view
        (:func:`rollup_states`) whose p50/p95/p99 are computed from the
        summed bin counts, not averaged summaries.
        """
        return {
            "started_at": self.started_at,
            "counters": {name: getattr(self, name).value
                         for name in COUNTER_NAMES},
            "histograms": {name: getattr(self, name).state()
                           for name in HISTOGRAM_NAMES},
            "gauges": {name: getattr(self, name).state()
                       for name in GAUGE_NAMES},
        }

    @classmethod
    def from_state(cls, state: "dict[str, Any]") -> "ServeMetrics":
        metrics = cls()
        metrics.merge_state(state)
        metrics.started_at = state["started_at"]
        return metrics

    def merge_state(self, state: "dict[str, Any]") -> None:
        """Fold another instance's :meth:`state` into this one."""
        self.started_at = min(self.started_at, state["started_at"])
        for name in COUNTER_NAMES:
            getattr(self, name).inc(state["counters"].get(name, 0))
        for name in HISTOGRAM_NAMES:
            hist_state = state["histograms"].get(name)
            if hist_state is not None:
                getattr(self, name).merge_state(hist_state)
        for name in GAUGE_NAMES:
            gauge_state = state.get("gauges", {}).get(name)
            if gauge_state is not None:
                getattr(self, name).merge_state(gauge_state)

    def log_line(self) -> str:
        """One-line live summary, suitable for periodic logging."""
        lat = self.latency_s
        return (
            f"served={self.completed.value} timeout={self.timeouts.value} "
            f"rejected={self.rejected.value} errors={self.errors.value} "
            f"batches={self.batches.value} "
            f"mean_batch={self.batch_size.mean:.1f} "
            f"coalesced={self.coalesced_fraction * 100:.1f}% "
            f"p50={lat.percentile(50) * 1e3:.2f}ms "
            f"p99={lat.percentile(99) * 1e3:.2f}ms "
            f"swaps={self.swaps.value} writes={self.writes.value} "
            f"stale={self.staleness_s.value * 1e3:.0f}ms"
        )


def rollup_states(states: "list[dict[str, Any]]") -> ServeMetrics:
    """Merge worker :meth:`ServeMetrics.state` payloads into one view.

    The sharded serving tier's cluster-wide metrics: counters sum,
    histograms merge bin-by-bin, so the rolled-up ``p50/p95/p99`` are
    the percentiles of the union of all shards' observations (to bin
    resolution), not an average of per-shard percentiles.
    """
    merged = ServeMetrics()
    for state in states:
        if state is not None:
            merged.merge_state(state)
    return merged


def _histogram_window(prev: "dict[str, Any]",
                      cur: "dict[str, Any]") -> "dict[str, Any]":
    """The histogram state of just the interval ``prev -> cur``.

    Bin counts subtract exactly (both states come from the same
    monotonically growing histogram), so windowed percentiles are as
    bin-accurate as lifetime ones.  ``min``/``max`` are exact whenever
    the lifetime extreme moved during the window; otherwise they are
    bounded by the edges of the outermost non-empty window bins.
    """
    if (cur["lo"], cur["hi"], cur["bins_per_decade"]) != (
        prev["lo"], prev["hi"], prev["bins_per_decade"]
    ) or len(cur["counts"]) != len(prev["counts"]):
        raise ValueError("cannot window histograms with different bins")
    counts = [c - p for c, p in zip(cur["counts"], prev["counts"])]
    count = cur["count"] - prev["count"]
    if count < 0 or any(c < 0 for c in counts):
        raise ValueError("windowed histogram went backwards; snapshots "
                         "must come from the same growing histogram")
    state = dict(cur)
    state["counts"] = counts
    state["count"] = count
    if count == 0:
        state["total"] = 0.0
        state["min"] = None
        state["max"] = None
        return state
    state["total"] = cur["total"] - prev["total"]
    nonzero = [i for i, c in enumerate(counts) if c]
    log_lo = math.log10(cur["lo"])
    step = 1.0 / cur["bins_per_decade"]
    if prev["min"] is None or cur["min"] < prev["min"]:
        state["min"] = cur["min"]
    else:
        state["min"] = min(10.0 ** (log_lo + nonzero[0] * step),
                           cur["max"])
    if prev["max"] is None or cur["max"] > prev["max"]:
        state["max"] = cur["max"]
    else:
        state["max"] = min(10.0 ** (log_lo + (nonzero[-1] + 1) * step),
                           cur["max"])
    if state["min"] > state["max"]:
        state["min"] = state["max"]
    return state


def window_between(prev_state: "dict[str, Any]",
                   cur_state: "dict[str, Any]") -> ServeMetrics:
    """The metrics of just the interval between two ``state()`` snapshots.

    Counters become per-interval deltas, histograms subtract bin-by-bin
    (percentiles of only the window's observations), gauges report the
    current level with a window-scoped high-water mark.  This is what
    lets the autotune controller react to the *last* window instead of
    lifetime aggregates that old traffic dominates.
    """
    window = ServeMetrics()
    for name in COUNTER_NAMES:
        delta = (cur_state["counters"].get(name, 0)
                 - prev_state["counters"].get(name, 0))
        if delta < 0:
            raise ValueError(f"counter {name!r} went backwards between "
                             "snapshots")
        getattr(window, name).inc(delta)
    for name in HISTOGRAM_NAMES:
        prev_h = prev_state["histograms"].get(name)
        cur_h = cur_state["histograms"].get(name)
        if prev_h is not None and cur_h is not None:
            delta_state = _histogram_window(prev_h, cur_h)
            if delta_state["count"]:
                getattr(window, name).merge_state(delta_state)
    for name in GAUGE_NAMES:
        prev_g = prev_state.get("gauges", {}).get(name)
        cur_g = cur_state.get("gauges", {}).get(name)
        if cur_g is None:
            continue
        gauge = getattr(window, name)
        gauge.value = float(cur_g["value"])
        # The lifetime high-water mark only tells the window's max when
        # it moved during the window; otherwise the freshest sample is
        # the best window-scoped bound available.
        if prev_g is None or cur_g["max"] > prev_g["max"]:
            gauge.max = float(cur_g["max"])
        else:
            gauge.max = float(cur_g["value"])
        gauge.samples = (int(cur_g.get("samples", 0))
                         - int(prev_g.get("samples", 0) if prev_g else 0))
    window.started_at = prev_state.get("started_at", window.started_at)
    return window


class MetricsWindow:
    """Rolling per-interval view over a live :class:`ServeMetrics`.

    ``advance()`` returns the metrics of the interval since the previous
    ``advance()`` (or construction) and moves the window forward; the
    wall-clock length of that interval is ``last_window_s``.  The
    controller polls this once per control window.
    """

    def __init__(self, metrics: ServeMetrics,
                 clock=time.monotonic) -> None:
        self._metrics = metrics
        self._clock = clock
        self._prev = metrics.state()
        self._prev_t = clock()
        self.last_window_s = 0.0

    def advance(self) -> ServeMetrics:
        cur = self._metrics.state()
        now = self._clock()
        window = window_between(self._prev, cur)
        self.last_window_s = max(float(now - self._prev_t), 0.0)
        self._prev = cur
        self._prev_t = now
        return window


def _rounded(summary: "dict[str, float]") -> "dict[str, float]":
    return {k: (round(v, 9) if isinstance(v, float) else v)
            for k, v in summary.items()}
