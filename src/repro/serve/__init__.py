"""Async index-serving subsystem: micro-batching, backpressure, metrics.

Everything built before this package runs offline under a benchmark
driver; this package turns the same indexes and workload generators
into a live serving system, the setting SOSD (arXiv:1911.13014) and
*Benchmarking Learned Indexes* (arXiv:2006.12804) argue index quality
must ultimately be judged in.  Four pieces:

* :mod:`repro.serve.batcher` -- a **dynamic micro-batcher** that
  coalesces concurrent ``lookup``/``range`` requests into one
  ``lookup_batch``/``range_query_batch`` call when either a max batch
  size or a max-wait deadline is reached (the continuous-batching shape
  inference servers use);
* :mod:`repro.serve.server` -- :class:`IndexServer`: admission control
  over a bounded queue (load shedding or blocking backpressure),
  per-request deadlines answered with *timeout* responses, atomic
  **snapshot hot-swap** of the served index under live traffic, and
  graceful drain on shutdown;
* :mod:`repro.serve.metrics` -- counters and log-binned latency /
  batch-size / queue-depth histograms with p50/p95/p99, exported as
  JSON and as a periodic log line;
* :mod:`repro.serve.loadgen` -- an **open-loop load generator** that
  replays :mod:`repro.workload.generator` key streams at a target QPS
  with Poisson arrivals (open-loop, so queueing delay shows up in the
  measured tail instead of being hidden by client back-off).

``python -m repro.serve`` exposes ``serve``, ``bench``, and ``swap``
subcommands; ``bench`` produces the committed ``BENCH_serve.json``.
"""

from .batcher import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    MicroBatcher,
    Request,
    Response,
)
from .cluster import Cluster, WorkerOptions, WorkerSpec, cluster_for_dataset
from .loadgen import (
    run_batch_closed_loop,
    run_mixed_closed_loop,
    run_open_loop,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsWindow,
    ServeMetrics,
    rollup_states,
    window_between,
)
from .router import (
    LocalBackend,
    ShardDeadError,
    ShardPlan,
    ShardRouter,
    plan_shards,
)
from .server import IndexServer

__all__ = [
    "Cluster",
    "Counter",
    "Gauge",
    "Histogram",
    "IndexServer",
    "LocalBackend",
    "MetricsWindow",
    "MicroBatcher",
    "Request",
    "Response",
    "ServeMetrics",
    "ShardDeadError",
    "ShardPlan",
    "ShardRouter",
    "STATUS_ERROR",
    "STATUS_OK",
    "STATUS_REJECTED",
    "STATUS_TIMEOUT",
    "WorkerOptions",
    "WorkerSpec",
    "cluster_for_dataset",
    "plan_shards",
    "rollup_states",
    "run_batch_closed_loop",
    "run_mixed_closed_loop",
    "run_open_loop",
    "window_between",
]
