"""Multi-process worker tier of the range-sharded serving cluster.

:class:`Cluster` spawns one OS process per shard.  Each worker runs the
*existing* serving stack -- an :class:`~repro.serve.server.IndexServer`
whose micro-batcher coalesces everything arriving over the control pipe
into fused ``serve_batch`` calls -- over its contiguous slice of the
keyspace, with the dataset and the built index resolved through the
artifact cache when one is active (workers activate it themselves via
the spec's ``cache_dir``).  The parent side implements the backend
contract :class:`~repro.serve.router.ShardRouter` routes through.

**Wire protocol** (pickled tuples over a ``multiprocessing.Pipe``)::

    parent -> worker   (kind, msg_id, payload)
    worker -> parent   (msg_id, ok, payload)

Kinds: ``reqs`` (a frame of point/range requests, served through the
worker's micro-batcher), ``bulk`` (a pre-formed array batch, served via
:meth:`IndexServer.serve_bulk`), ``write`` (a key/op burst applied to a
writable shard via :meth:`IndexServer.apply_writes`; the reply carries
the shard's post-write live cardinality for the router's offset
stitching), ``swap`` (rebuild + zero-loss ``swap_index``; the
``"@rebuild"`` payload compacts a writable shard's delta in place
instead of replacing the index), ``metrics`` (full-fidelity
:meth:`~repro.serve.metrics.ServeMetrics.state`), ``stop`` (graceful
drain: every in-flight frame finishes, the server drains, the final
metrics state comes back), and ``die`` (fault injection: the worker
``os._exit``\\ s without cleanup, simulating a crash).

**Failure model**: one reader thread per worker pushes replies onto the
event loop; EOF on the pipe -- graceful exit *or* SIGKILL -- marks the
shard dead and fails every pending reply future with
:class:`~repro.serve.router.ShardDeadError`, which the router turns
into per-request ``error`` responses.  A dead shard never hangs the
router, and the remaining shards keep serving.

Deadlines cross the process boundary as absolute ``time.monotonic()``
values; on Linux that clock is system-wide, so the worker's dispatcher
applies the same expiry rule as a single-process server.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import multiprocessing as mp
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from .batcher import OP_LOOKUP, OP_RANGE
from .router import ShardDeadError, ShardPlan, plan_shards
from .server import IndexServer

__all__ = ["WorkerSpec", "Cluster", "cluster_for_dataset"]

log = logging.getLogger("repro.serve.cluster")

#: msg_id of the unsolicited ready message every worker sends first.
_READY_ID = 0


@dataclass
class WorkerSpec:
    """Everything one worker needs to build and serve its shard.

    The key slice arrives either directly (``keys``, cheap under fork
    thanks to copy-on-write) or through the artifact cache: with
    ``cache_dir`` set and ``keys`` omitted, the worker activates the
    cache and loads ``dataset(dataset, n, seed)`` as an mmap, slicing
    ``[lo, hi)`` out of it -- the parent never pickles the data.
    ``index_factory`` overrides ``index_type`` for tests that need a
    custom index class.
    """

    shard_id: int
    lo: int
    hi: int
    index_type: str = "binary-search"
    keys: "np.ndarray | None" = None
    dataset: "str | None" = None
    n: int = 0
    seed: int = 42
    cache_dir: "str | None" = None
    index_factory: "Callable[[np.ndarray], Any] | None" = field(
        default=None, repr=False
    )


@dataclass
class WorkerOptions:
    """Per-worker ``IndexServer`` tuning (picklable)."""

    max_batch_size: int = 512
    max_wait_s: float = 0.001
    max_queue: int = 8192


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _shard_keys(spec: WorkerSpec) -> np.ndarray:
    if spec.keys is not None:
        return np.ascontiguousarray(spec.keys, dtype=np.uint64)
    if spec.dataset is None:
        raise ValueError("WorkerSpec needs either keys or a dataset")
    from .. import cache as artifact_cache

    if spec.cache_dir is not None:
        artifact_cache.activate(spec.cache_dir)
    full = artifact_cache.dataset(spec.dataset, spec.n, spec.seed)
    return np.ascontiguousarray(full[spec.lo:spec.hi], dtype=np.uint64)


def _build_index(spec: WorkerSpec, keys: np.ndarray,
                 index_type: "str | None" = None,
                 factory: "Callable | None" = None) -> Any:
    """Build (or restore from the artifact cache) this shard's index."""
    from ..baselines import INDEX_TYPES

    factory = factory if factory is not None else spec.index_factory
    if factory is not None:
        return factory(keys)
    name = index_type if index_type is not None else spec.index_type
    cls = INDEX_TYPES[name]
    if spec.cache_dir is not None and spec.dataset is not None:
        from .. import cache as artifact_cache

        artifact_cache.activate(spec.cache_dir)
        return artifact_cache.index_for(
            spec.dataset, spec.n, spec.seed, name,
            {"shard_lo": spec.lo, "shard_hi": spec.hi},
            lambda _full: cls(keys), cls=cls,
        )
    return cls(keys)


def _worker_main(conn, spec: WorkerSpec, opts: WorkerOptions) -> None:
    """Worker process entry point: build the shard, serve the pipe."""
    try:
        keys = _shard_keys(spec)
        index = _build_index(spec, keys)
    except Exception as exc:  # startup failure: report, don't hang
        try:
            conn.send((_READY_ID, False, f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    try:
        asyncio.run(_worker_serve(conn, spec, keys, index, opts))
    finally:
        try:
            conn.close()
        except OSError:
            pass


async def _worker_serve(conn, spec: WorkerSpec, keys: np.ndarray,
                        index: Any, opts: WorkerOptions) -> None:
    server = IndexServer(
        index,
        max_batch_size=opts.max_batch_size,
        max_wait_s=opts.max_wait_s,
        max_queue=opts.max_queue,
        shed_policy="block",  # backpressure into the pipe, never shed
    )
    loop = asyncio.get_running_loop()
    recv_pool = ThreadPoolExecutor(
        max_workers=1, thread_name_prefix=f"shard{spec.shard_id}-recv"
    )
    frames: "set[asyncio.Task]" = set()
    stop_id: "int | None" = None
    async with server:
        conn.send((_READY_ID, True,
                   {"shard": spec.shard_id, "n": len(keys),
                    "pid": os.getpid()}))
        while True:
            try:
                msg = await loop.run_in_executor(recv_pool, conn.recv)
            except (EOFError, OSError):
                break  # parent went away: drain and exit
            kind, msg_id, payload = msg
            if kind == "stop":
                stop_id = msg_id
                break
            if kind == "die":
                os._exit(17)  # fault injection: crash, no cleanup
            if kind == "reqs":
                task = asyncio.create_task(
                    _serve_frame(server, conn, msg_id, payload)
                )
            elif kind == "bulk":
                task = asyncio.create_task(
                    _serve_bulk_frame(server, conn, msg_id, payload)
                )
            elif kind == "write":
                task = asyncio.create_task(
                    _write_frame(server, conn, msg_id, payload)
                )
            elif kind == "swap":
                task = asyncio.create_task(
                    _swap_frame(server, conn, msg_id, spec, keys, payload)
                )
            elif kind == "metrics":
                conn.send((msg_id, True, server.metrics.state()))
                continue
            else:
                conn.send((msg_id, False, f"unknown message kind {kind!r}"))
                continue
            frames.add(task)
            task.add_done_callback(frames.discard)
        # Graceful drain: finish every in-flight frame (their requests
        # resolve through the still-running server), then the context
        # exit drains the server itself.
        if frames:
            await asyncio.gather(*frames, return_exceptions=True)
        final_state = server.metrics.state()
    if stop_id is not None:
        try:
            conn.send((stop_id, True, final_state))
        except (OSError, BrokenPipeError):
            pass
    recv_pool.shutdown(wait=False)


async def _serve_frame(server: IndexServer, conn, msg_id: int,
                       items: "list[tuple]") -> None:
    """Serve one frame of requests through the worker's micro-batcher."""
    coros = []
    now = time.monotonic()
    for op, key, low, high, deadline in items:
        timeout_s = None if deadline is None else max(deadline - now, 0.0)
        if op == OP_LOOKUP:
            coros.append(server.lookup(key, timeout_s=timeout_s))
        else:
            coros.append(server.range_query(low, high, timeout_s=timeout_s))
    try:
        responses = await asyncio.gather(*coros)
        payload = [(r.status, r.position, r.count, r.batch_size, r.error)
                   for r in responses]
        conn.send((msg_id, True, payload))
    except Exception as exc:
        _send_error(conn, msg_id, exc)


async def _serve_bulk_frame(server: IndexServer, conn, msg_id: int,
                            payload: "tuple") -> None:
    points, lows, highs = payload
    try:
        positions, starts, counts = await server.serve_bulk(points, lows,
                                                            highs)
        conn.send((msg_id, True, (positions, starts, counts)))
    except Exception as exc:
        _send_error(conn, msg_id, exc)


async def _write_frame(server: IndexServer, conn, msg_id: int,
                       payload: "tuple") -> None:
    """Apply one write burst; reply ``(applied, live_cardinality)``."""
    keys, ops = payload
    try:
        applied = await server.apply_writes(keys, ops)
        conn.send((msg_id, True, (applied, len(server.index.keys))))
    except Exception as exc:
        _send_error(conn, msg_id, exc)


async def _swap_frame(server: IndexServer, conn, msg_id: int,
                      spec: WorkerSpec, keys: np.ndarray,
                      payload: Any) -> None:
    """Rebuild this shard's index and hot-swap it (zero-loss)."""
    loop = asyncio.get_running_loop()
    try:
        if isinstance(payload, str) and payload == "@rebuild":
            # Compact a writable shard's delta into its base and re-arm
            # the serving metrics through the normal swap protocol.
            windex = server.index
            rebuild = getattr(windex, "rebuild", None)
            if not callable(rebuild):
                raise TypeError(
                    f"shard index {type(windex).__name__} is not "
                    "writable; '@rebuild' needs a WritableIndex"
                )
            await loop.run_in_executor(None, rebuild)
            server.swap_index(windex)
            conn.send((msg_id, True, "@rebuild"))
            return
        if callable(payload):
            new_index = await loop.run_in_executor(None, payload, keys)
        else:
            new_index = await loop.run_in_executor(
                None, _build_index, spec, keys, str(payload)
            )
        server.swap_index(new_index)
        conn.send((msg_id, True, getattr(new_index, "name",
                                         type(new_index).__name__)))
    except Exception as exc:
        _send_error(conn, msg_id, exc)


def _send_error(conn, msg_id: int, exc: Exception) -> None:
    try:
        conn.send((msg_id, False, f"{type(exc).__name__}: {exc}"))
    except (OSError, BrokenPipeError):
        pass


# ---------------------------------------------------------------------------
# Parent-side cluster handle (the router's process backend)
# ---------------------------------------------------------------------------


class Cluster:
    """N shard workers behind pipes; the multi-process router backend.

    Build either from an explicit key array (tests) or a dataset spec
    (CLI/benchmarks, optionally through the artifact cache)::

        cluster = Cluster(keys=keys, num_shards=4, index_type="rmi")
        async with cluster:
            async with ShardRouter(cluster) as router:
                ...

    ``kill_shard`` SIGKILLs one worker -- the fault-injection hook the
    test suite and the CI smoke use.
    """

    def __init__(
        self,
        *,
        num_shards: int,
        index_type: str = "binary-search",
        keys: "np.ndarray | None" = None,
        dataset: "str | None" = None,
        n: int = 0,
        seed: int = 42,
        cache_dir: "str | None" = None,
        worker_opts: "WorkerOptions | None" = None,
        index_factory: "Callable[[np.ndarray], Any] | None" = None,
        mp_method: "str | None" = None,
        ship_keys: "bool | None" = None,
    ) -> None:
        if keys is None:
            if dataset is None:
                raise ValueError("Cluster needs keys or a dataset spec")
            from .. import cache as artifact_cache

            if cache_dir is not None:
                artifact_cache.activate(cache_dir)
            keys = artifact_cache.dataset(dataset, n, seed)
        self.keys = np.ascontiguousarray(keys, dtype=np.uint64)
        self.plan: ShardPlan = plan_shards(self.keys, num_shards)
        self.index_type = index_type
        self._dataset = dataset
        self._n = int(n)
        self._seed = int(seed)
        self._cache_dir = cache_dir
        self._opts = worker_opts if worker_opts is not None \
            else WorkerOptions()
        self._index_factory = index_factory
        # Fork shares the parent's key array copy-on-write and skips
        # re-importing numpy per worker; spawn stays available for
        # platforms (or tests) that need it.
        self._ctx = mp.get_context(
            mp_method if mp_method is not None
            else ("fork" if "fork" in mp.get_all_start_methods()
                  else "spawn")
        )
        # Ship key slices in the spec unless the workers can load the
        # dataset from the artifact cache themselves.
        self._ship_keys = ship_keys if ship_keys is not None \
            else not (cache_dir is not None and dataset is not None)
        self._procs: "list[mp.process.BaseProcess]" = []
        self._conns: "list[Any]" = []
        self._readers: "list[threading.Thread]" = []
        self._alive: "list[bool]" = []
        self._pending: "list[dict[int, asyncio.Future]]" = []
        self._ids = itertools.count(_READY_ID + 1)
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self.worker_info: "list[dict | None]" = []

    # -- lifecycle -------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    def alive(self, shard_id: int) -> bool:
        return bool(self._alive[shard_id])

    def alive_count(self) -> int:
        return sum(self._alive)

    async def start(self) -> "Cluster":
        if self._procs:
            raise RuntimeError("cluster is already running")
        self._loop = asyncio.get_running_loop()
        ready: "list[asyncio.Future]" = []
        # Spawn every worker before starting any reader thread: forking
        # a process that already carries extra threads is fragile.
        for shard_id in range(self.num_shards):
            lo = int(self.plan.offsets[shard_id])
            hi = int(self.plan.offsets[shard_id + 1])
            spec = WorkerSpec(
                shard_id=shard_id, lo=lo, hi=hi,
                index_type=self.index_type,
                keys=self.keys[lo:hi] if self._ship_keys else None,
                dataset=self._dataset, n=self._n, seed=self._seed,
                cache_dir=self._cache_dir,
                index_factory=self._index_factory,
            )
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main, args=(child_conn, spec, self._opts),
                name=f"repro-shard-{shard_id}", daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
            self._alive.append(True)
            self._pending.append({})
            fut = self._loop.create_future()
            self._pending[shard_id][_READY_ID] = fut
            ready.append(fut)
        self.worker_info = [None] * self.num_shards
        for shard_id in range(self.num_shards):
            thread = threading.Thread(
                target=self._read_loop, args=(shard_id,),
                name=f"repro-shard-{shard_id}-reader", daemon=True,
            )
            thread.start()
            self._readers.append(thread)
        try:
            for shard_id, fut in enumerate(ready):
                self.worker_info[shard_id] = await asyncio.wait_for(
                    fut, timeout=60
                )
        except Exception:
            for proc in self._procs:
                proc.kill()
            raise
        log.info("cluster up: %d shards, sizes %s", self.num_shards,
                 [int(x) for x in self.plan.shard_sizes()])
        return self

    async def stop(self) -> "list[dict | None]":
        """Graceful drain of every live worker; final metric states."""
        states: "list[dict | None]" = [None] * self.num_shards
        waits = []
        for shard_id in range(self.num_shards):
            if self._alive[shard_id]:
                waits.append((shard_id,
                              self._rpc(shard_id, "stop", None)))
        for shard_id, fut in waits:
            try:
                states[shard_id] = await asyncio.wait_for(fut, timeout=30)
            except Exception:
                states[shard_id] = None
        loop = asyncio.get_running_loop()
        for proc in self._procs:
            await loop.run_in_executor(None, proc.join, 10)
            if proc.is_alive():
                proc.kill()
                await loop.run_in_executor(None, proc.join, 5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        for thread in self._readers:
            thread.join(timeout=5)
        self._procs, self._conns, self._readers = [], [], []
        self._alive = [False] * self.num_shards
        return states

    async def __aenter__(self) -> "Cluster":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- fault injection -------------------------------------------------

    def kill_shard(self, shard_id: int, hard: bool = True) -> None:
        """SIGKILL one worker (fault injection).  ``hard=False`` asks
        the worker to ``os._exit`` itself instead (in-process crash)."""
        if not self._alive[shard_id]:
            return
        if hard:
            self._procs[shard_id].kill()
        else:
            try:
                self._conns[shard_id].send(("die", next(self._ids), None))
            except (OSError, BrokenPipeError):
                pass

    # -- reader threads / RPC --------------------------------------------

    def _read_loop(self, shard_id: int) -> None:
        conn = self._conns[shard_id]
        loop = self._loop
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            loop.call_soon_threadsafe(self._on_message, shard_id, msg)
        loop.call_soon_threadsafe(self._on_death, shard_id)

    def _on_message(self, shard_id: int, msg: "tuple") -> None:
        msg_id, ok, payload = msg
        fut = self._pending[shard_id].pop(msg_id, None)
        if fut is None or fut.done():
            return
        if ok:
            fut.set_result(payload)
        else:
            fut.set_exception(ShardDeadError(
                f"shard {shard_id} worker error: {payload}"
            ) if msg_id == _READY_ID else _WorkerError(str(payload)))

    def _on_death(self, shard_id: int) -> None:
        if not self._alive[shard_id]:
            return
        self._alive[shard_id] = False
        pending = self._pending[shard_id]
        if pending:
            log.warning("shard %d worker died with %d pending replies",
                        shard_id, len(pending))
        for fut in pending.values():
            if not fut.done():
                fut.set_exception(ShardDeadError(
                    f"shard {shard_id} worker died"
                ))
        pending.clear()

    def _rpc(self, shard_id: int, kind: str,
             payload: Any) -> "asyncio.Future":
        fut = self._loop.create_future()
        if not self._alive[shard_id]:
            fut.set_exception(ShardDeadError(
                f"shard {shard_id} worker is dead"
            ))
            return fut
        msg_id = next(self._ids)
        self._pending[shard_id][msg_id] = fut
        try:
            self._conns[shard_id].send((kind, msg_id, payload))
        except (OSError, BrokenPipeError):
            self._pending[shard_id].pop(msg_id, None)
            if not fut.done():
                fut.set_exception(ShardDeadError(
                    f"shard {shard_id} pipe is broken"
                ))
        return fut

    # -- backend contract (consumed by ShardRouter) ----------------------

    async def execute_requests(self, shard_id: int, requests):
        items = [(r.op, r.key, r.low, r.high, r.deadline)
                 for r in requests]
        return await self._rpc(shard_id, "reqs", items)

    async def execute_bulk(self, shard_id: int, points, lows, highs):
        return await self._rpc(shard_id, "bulk", (points, lows, highs))

    async def execute_writes(self, shard_id: int, keys,
                             ops) -> "tuple[int, int]":
        """Apply a write burst on one shard; ``(applied, live)``."""
        return await self._rpc(shard_id, "write", (
            np.ascontiguousarray(keys, dtype=np.uint64),
            np.ascontiguousarray(ops, dtype=np.int8),
        ))

    async def swap_shard(self, shard_id: int, index_spec: Any) -> None:
        """Zero-loss hot-swap of one shard's index.

        ``index_spec`` is an index-type name (the worker rebuilds over
        its shard keys, through the artifact cache when active), a
        picklable ``factory(keys)`` callable, or the string
        ``"@rebuild"`` to compact a writable shard's delta in place.
        """
        await self._rpc(shard_id, "swap", index_spec)

    async def shard_metrics(self) -> "list[dict | None]":
        out: "list[dict | None]" = [None] * self.num_shards
        waits = []
        for shard_id in range(self.num_shards):
            if self._alive[shard_id]:
                waits.append((shard_id,
                              self._rpc(shard_id, "metrics", None)))
        for shard_id, fut in waits:
            try:
                out[shard_id] = await fut
            except Exception:
                out[shard_id] = None
        return out


class _WorkerError(RuntimeError):
    """The worker answered a frame with an application-level error."""


def cluster_for_dataset(
    dataset: str,
    n: int,
    seed: int,
    *,
    num_shards: int,
    index_type: str = "rmi",
    cache_dir: "str | None" = None,
    worker_opts: "WorkerOptions | None" = None,
) -> Cluster:
    """Convenience constructor matching the CLI's vocabulary."""
    return Cluster(
        num_shards=num_shards,
        index_type=index_type,
        dataset=dataset,
        n=n,
        seed=seed,
        cache_dir=cache_dir,
        worker_opts=worker_opts,
    )
