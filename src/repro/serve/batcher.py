"""Dynamic micro-batching of index requests.

The serving argument for batching is the same one PR 1 made offline:
every index answers ``lookup_batch`` far faster per key than a Python
round-trip per request, so a server that executes one request at a time
wastes almost its entire budget on dispatch overhead.  The
:class:`MicroBatcher` closes that gap with the continuous-batching
shape inference servers use -- requests accumulate in a bounded queue
and are released as one batch when either

* the batch reaches ``max_batch_size`` requests, or
* ``max_wait_s`` has elapsed since the *oldest* request in the batch
  arrived (so queueing time already spent counts against the budget and
  a backed-up queue drains at full batch width with no extra waiting).

The batcher owns admission: :meth:`try_put` is the load-shedding path
(full queue -> immediate ``False``), :meth:`put` the blocking
backpressure path.  :meth:`close` starts the drain protocol --
:meth:`collect` stops waiting, hands out whatever is queued, and
returns ``None`` once the queue is empty, which is the executor loop's
signal to exit.  Batch *execution* is deliberately not here: the
:class:`~repro.serve.server.IndexServer` decides deadlines, swaps, and
how to run the batch against an index.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "STATUS_REJECTED",
    "STATUS_ERROR",
    "OP_LOOKUP",
    "OP_RANGE",
    "Request",
    "Response",
    "MicroBatcher",
]

STATUS_OK = "ok"
STATUS_TIMEOUT = "timeout"
STATUS_REJECTED = "rejected"
STATUS_ERROR = "error"

OP_LOOKUP = "lookup"
OP_RANGE = "range"

#: Queue sentinel: wakes a collector blocked on an empty queue so it
#: can notice the batcher has been closed.
_WAKE = object()


@dataclass
class Request:
    """One in-flight request: operation, payload, deadline, future."""

    op: str
    key: int = 0
    low: int = 0
    high: int = 0
    #: ``time.monotonic()`` at submission (latency baseline).
    enqueued_at: float = 0.0
    #: Absolute ``time.monotonic()`` deadline, or ``None`` (no limit).
    deadline: "float | None" = None
    future: "asyncio.Future[Response] | None" = field(
        default=None, repr=False, compare=False
    )

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


@dataclass(frozen=True)
class Response:
    """The answer to one request.

    ``status`` is one of ``ok`` / ``timeout`` / ``rejected`` /
    ``error``.  Only ``ok`` responses carry results: ``position`` is the
    lower-bound position (for both ops), ``count`` the number of keys
    in range (``None`` for point lookups).  A timed-out or rejected
    request never carries a value -- a late answer is withheld rather
    than presented as fresh.
    """

    op: str
    status: str
    position: "int | None" = None
    count: "int | None" = None
    latency_s: float = 0.0
    #: Number of requests in the batch that served this one (0 when the
    #: request never reached an index).
    batch_size: int = 0
    error: "str | None" = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class MicroBatcher:
    """Bounded request queue plus the batch-forming state machine."""

    def __init__(self, max_batch_size: int = 256,
                 max_wait_s: float = 0.002,
                 max_queue: int = 1024) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_s = float(max_wait_s)
        self.max_queue = int(max_queue)
        self._queue: "asyncio.Queue[Any]" = asyncio.Queue(maxsize=max_queue)
        self._closed = False
        #: Futures of ``put`` callers blocked on a full queue.  The
        #: batcher manages space waiting itself (instead of relying on
        #: ``asyncio.Queue.put``) so that :meth:`close` can flush every
        #: blocked putter: a put woken *after* close returns ``False``
        #: and never lands a request behind the collector's back.  With
        #: ``Queue.put``, a putter woken by the final drain could
        #: enqueue after the last ``drain_nowait`` sweep -- a dropped
        #: request whose future never resolves.
        self._space_waiters: "deque[asyncio.Future[None]]" = deque()

    # -- admission -------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def depth(self) -> int:
        """Requests currently queued (sentinels excluded, best-effort)."""
        return self._queue.qsize()

    def try_put(self, request: Request) -> bool:
        """Non-blocking admission: ``False`` sheds the request."""
        if self._closed:
            return False
        try:
            self._queue.put_nowait(request)
            return True
        except asyncio.QueueFull:
            return False

    async def put(self, request: Request) -> bool:
        """Blocking admission: waits for queue space (backpressure).

        Returns ``False`` -- without enqueueing -- when the batcher is
        (or becomes) closed, so a putter blocked across :meth:`close`
        resolves instead of landing a request no collector will ever
        see.  The caller answers its request as rejected.
        """
        while not self._closed:
            try:
                self._queue.put_nowait(request)
                return True
            except asyncio.QueueFull:
                pass
            waiter: "asyncio.Future[None]" = (
                asyncio.get_running_loop().create_future()
            )
            self._space_waiters.append(waiter)
            try:
                await waiter
            except asyncio.CancelledError:
                if waiter.done() and not waiter.cancelled():
                    # We consumed a wake-up we will not use: pass it on
                    # so another blocked putter gets the free slot.
                    self._notify_space()
                else:
                    try:
                        self._space_waiters.remove(waiter)
                    except ValueError:
                        pass
                raise
        return False

    def _notify_space(self) -> None:
        """Wake one blocked putter (a queue slot was freed)."""
        while self._space_waiters:
            waiter = self._space_waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                return

    # -- drain -----------------------------------------------------------

    def close(self) -> None:
        """Stop admitting; wake the collector so it can drain and exit.

        Every ``put`` blocked on a full queue is flushed too: it
        re-checks the closed flag and returns ``False``, so no request
        can slip into the queue after the collector's final drain.
        """
        self._closed = True
        while self._space_waiters:
            waiter = self._space_waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
        try:
            self._queue.put_nowait(_WAKE)
        except asyncio.QueueFull:
            pass  # a full queue already keeps the collector awake

    # -- batch formation -------------------------------------------------

    async def collect(self) -> "list[Request] | None":
        """The next batch, or ``None`` when closed and fully drained.

        Waits for a first request, then fills the batch until
        ``max_batch_size`` or until ``max_wait_s`` after that request's
        *enqueue* time -- whichever comes first.  Whatever is already
        queued when the deadline passes still joins the batch (a
        backlog coalesces maximally); after :meth:`close` no new waiting
        happens at all.
        """
        first = await self._next_request()
        if first is None:
            return None
        batch = [first]
        deadline = first.enqueued_at + self.max_wait_s
        while len(batch) < self.max_batch_size:
            remaining = 0.0 if self._closed else deadline - time.monotonic()
            if remaining > 0:
                try:
                    item = await asyncio.wait_for(
                        self._queue.get(), remaining
                    )
                except asyncio.TimeoutError:
                    continue  # deadline hit; drain what is queued
            else:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
            self._notify_space()
            if item is not _WAKE:
                batch.append(item)
        return batch

    def drain_nowait(self) -> "list[Request]":
        """Whatever is still queued, without waiting (post-shutdown sweep)."""
        out: "list[Request]" = []
        while True:
            try:
                item = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return out
            self._notify_space()
            if item is not _WAKE:
                out.append(item)

    async def _next_request(self) -> "Request | None":
        while True:
            if self._closed:
                try:
                    item = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    return None
            else:
                item = await self._queue.get()
            self._notify_space()
            if item is not _WAKE:
                return item
