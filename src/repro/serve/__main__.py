"""CLI for the serving subsystem.

Usage::

    python -m repro.serve serve --dataset books --n 100000 --index rmi \\
        --requests 5000 --qps 2000 --cache-dir .artifact-cache \\
        --metrics-out serve_metrics.json --max-p99-ms 250 --max-errors 0
    python -m repro.serve bench --out BENCH_serve.json --min-speedup 3
    python -m repro.serve swap --dataset books --n 100000 \\
        --from-index rmi --to-index pgm-index --requests 4000 --qps 5000

``serve`` runs a live server against an open-loop workload and reports
tail latency; ``bench`` produces the committed batched-vs-unbatched
comparison; ``swap`` demonstrates the zero-loss hot-swap protocol under
concurrent traffic.  All three resolve datasets and built indexes
through the artifact cache when ``--cache-dir`` (or
``$REPRO_CACHE_DIR``) is set.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import logging
import sys
from pathlib import Path
from typing import Any

from ..baselines import INDEX_TYPES
from .loadgen import loadgen_report, run_open_loop
from .server import IndexServer

log = logging.getLogger("repro.serve")


def _load_index(name: str, dataset: str, n: int, seed: int) -> Any:
    """Build (or restore from the artifact cache) one index by name."""
    from .. import cache as artifact_cache

    if name not in INDEX_TYPES:
        raise SystemExit(
            f"unknown index {name!r}; known: {', '.join(INDEX_TYPES)}"
        )
    cls = INDEX_TYPES[name]
    return artifact_cache.index_for(
        dataset, n, seed, name, {}, lambda k: cls(k), cls=cls
    )


def _dataset(dataset: str, n: int, seed: int):
    from .. import cache as artifact_cache

    return artifact_cache.dataset(dataset, n, seed)


def _cache_stats() -> "dict | None":
    from .. import cache as artifact_cache

    cache = artifact_cache.active_cache()
    return cache.stats() if cache is not None else None


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", default="books",
                        help="SOSD-like dataset name (default books)")
    parser.add_argument("--n", type=int, default=100_000,
                        help="dataset size (default 100000)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--requests", type=int, default=5000,
                        help="number of requests to fire")
    parser.add_argument("--qps", type=float, default=None,
                        help="offered load (default: saturation)")
    parser.add_argument("--max-batch", type=int, default=256,
                        help="micro-batcher width (default 256)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="micro-batcher deadline (default 2ms)")
    parser.add_argument("--max-queue", type=int, default=1024,
                        help="admission queue bound (default 1024)")
    parser.add_argument("--shed-policy", choices=["reject", "block"],
                        default="block",
                        help="full-queue policy (default block)")
    parser.add_argument("--timeout-ms", type=float, default=None,
                        help="per-request deadline (default none)")
    parser.add_argument("--range-fraction", type=float, default=0.0,
                        help="fraction of range queries (default 0)")
    parser.add_argument("--access", choices=["uniform", "zipf"],
                        default="uniform")
    parser.add_argument("--cache-dir", default=None,
                        help="artifact cache directory")


def _activate_cache(args: argparse.Namespace) -> None:
    if args.cache_dir is not None:
        from .. import cache as artifact_cache

        artifact_cache.activate(args.cache_dir)


async def _serve_session(args: argparse.Namespace, index: Any,
                         keys) -> "tuple[dict, dict]":
    server = IndexServer(
        index,
        max_batch_size=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        max_queue=args.max_queue,
        shed_policy=args.shed_policy,
        log_interval_s=args.log_interval,
    )
    async with server:
        report = await run_open_loop(
            server, keys,
            num_requests=args.requests,
            qps=args.qps,
            seed=args.seed,
            access=args.access,
            range_fraction=args.range_fraction,
            timeout_s=None if args.timeout_ms is None
            else args.timeout_ms / 1e3,
        )
    return report, server.metrics.snapshot()


def _gate(report: dict, args: argparse.Namespace) -> "list[str]":
    failed = []
    if args.max_errors is not None:
        bad = (report["wrong"]
               + report["statuses"].get("error", 0)
               + report["statuses"].get("rejected", 0))
        if bad > args.max_errors:
            failed.append(f"{bad} failed/wrong requests exceed the "
                          f"allowed {args.max_errors}")
    if args.max_p99_ms is not None and "latency_ms" in report:
        p99 = report["latency_ms"]["p99"]
        if p99 > args.max_p99_ms:
            failed.append(f"p99 {p99:.2f}ms exceeds the allowed "
                          f"{args.max_p99_ms:.2f}ms")
    return failed


def _serve_main(argv: "list[str]") -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve serve",
        description="Serve one index under an open-loop workload",
    )
    _add_common(parser)
    parser.add_argument("--index", default="rmi",
                        help=f"index type ({', '.join(INDEX_TYPES)})")
    parser.add_argument("--log-interval", type=float, default=1.0,
                        help="seconds between metric log lines")
    parser.add_argument("--metrics-out", metavar="FILE", default=None,
                        help="write loadgen + server metrics JSON here")
    parser.add_argument("--max-p99-ms", type=float, default=None,
                        help="exit 1 when the completed-request p99 "
                        "exceeds this bound")
    parser.add_argument("--max-errors", type=int, default=None,
                        help="exit 1 when wrong/error/rejected requests "
                        "exceed this count")
    args = parser.parse_args(argv)
    _activate_cache(args)

    keys = _dataset(args.dataset, args.n, args.seed)
    index = _load_index(args.index, args.dataset, args.n, args.seed)
    log.info("serving %s over %s (n=%d, %d B index)",
             args.index, args.dataset, args.n, index.size_in_bytes())
    report, metrics = asyncio.run(_serve_session(args, index, keys))
    print(loadgen_report(report))
    if args.metrics_out:
        payload = {"loadgen": report, "server": metrics,
                   "index": args.index, "dataset": args.dataset,
                   "n": args.n, "cache": _cache_stats()}
        Path(args.metrics_out).write_text(
            json.dumps(payload, indent=2) + "\n"
        )
        print(f"[metrics written to {args.metrics_out}]")
    failed = _gate(report, args)
    for reason in failed:
        print(f"FAIL: {reason}")
    return 1 if failed else 0


async def _swap_session(args: argparse.Namespace, first: Any, second: Any,
                        keys) -> "tuple[dict, dict]":
    server = IndexServer(
        first,
        max_batch_size=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        max_queue=args.max_queue,
        shed_policy=args.shed_policy,
        log_interval_s=None,
    )

    async def swap_halfway():
        target = args.requests // 2
        while server.metrics.completed.value < target:
            await asyncio.sleep(0.001)
        server.swap_index(second)

    async with server:
        swapper = asyncio.create_task(swap_halfway())
        report = await run_open_loop(
            server, keys,
            num_requests=args.requests,
            qps=args.qps,
            seed=args.seed,
            access=args.access,
            range_fraction=args.range_fraction,
        )
        swapper.cancel()
        try:
            await swapper
        except asyncio.CancelledError:
            pass
    return report, server.metrics.snapshot()


def _swap_main(argv: "list[str]") -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve swap",
        description="Hot-swap the served index under concurrent traffic",
    )
    _add_common(parser)
    parser.add_argument("--from-index", default="rmi")
    parser.add_argument("--to-index", default="pgm-index")
    args = parser.parse_args(argv)
    _activate_cache(args)

    keys = _dataset(args.dataset, args.n, args.seed)
    first = _load_index(args.from_index, args.dataset, args.n, args.seed)
    second = _load_index(args.to_index, args.dataset, args.n, args.seed)
    report, metrics = asyncio.run(_swap_session(args, first, second, keys))
    print(loadgen_report(report))
    print(f"swaps: {metrics['swaps']}")
    failed = []
    if metrics["swaps"] != 1:
        failed.append(f"expected exactly 1 swap, saw {metrics['swaps']}")
    if report["wrong"]:
        failed.append(f"{report['wrong']} wrong answers across the swap")
    if report["completed"] != args.requests:
        failed.append(
            f"dropped requests across the swap: only {report['completed']}/"
            f"{args.requests} completed ({report['statuses']})"
        )
    for reason in failed:
        print(f"FAIL: {reason}")
    if not failed:
        print(f"OK: swapped {args.from_index} -> {args.to_index} under "
              f"load, all {args.requests} requests answered correctly")
    return 1 if failed else 0


def _bench_main(argv: "list[str]") -> int:
    from .bench import (
        DEFAULT_INDEXES,
        render_serve_report,
        serve_report,
        write_serve_report,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve bench",
        description="Micro-batched vs batch-size-1 serving benchmark",
    )
    parser.add_argument("--indexes", default=",".join(DEFAULT_INDEXES),
                        help="comma-separated index types")
    parser.add_argument("--dataset", default="books")
    parser.add_argument("--n", type=int, default=200_000)
    parser.add_argument("--requests", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--max-batch", type=int, default=512)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--range-fraction", type=float, default=0.1)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the JSON report here")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit 1 unless every index's batched mode is "
                        "at least this much faster")
    args = parser.parse_args(argv)
    _activate_cache(args)

    report = serve_report(
        index_names=[s.strip() for s in args.indexes.split(",") if s.strip()],
        dataset=args.dataset,
        n=args.n,
        num_requests=args.requests,
        seed=args.seed,
        max_batch_size=args.max_batch,
        max_wait_s=args.max_wait_ms / 1e3,
        range_fraction=args.range_fraction,
    )
    print(render_serve_report(report))
    if args.out:
        write_serve_report(report, args.out)
        print(f"[report written to {args.out}]")
    if args.min_speedup is not None:
        if report["min_speedup"] is None \
                or report["min_speedup"] < args.min_speedup:
            print(f"FAIL: min speedup {report['min_speedup']}x is below "
                  f"the required {args.min_speedup:.1f}x")
            return 1
        print(f"OK: min speedup {report['min_speedup']:.1f}x >= "
              f"{args.min_speedup:.1f}x")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(message)s",
        datefmt="%H:%M:%S",
    )
    commands = {"serve": _serve_main, "bench": _bench_main,
                "swap": _swap_main}
    if not argv or argv[0] in ("-h", "--help") or argv[0] not in commands:
        print(__doc__)
        return 0 if argv and argv[0] in ("-h", "--help") else 2
    return commands[argv[0]](argv[1:])


if __name__ == "__main__":
    sys.exit(main())
